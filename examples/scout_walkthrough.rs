//! A step-by-step reconstruction of the paper's Figure 8: three circuits
//! block every minimal path from FC3 to flash chip F2, and Venice's
//! non-minimal fully-adaptive scout finds a conflict-free detour.
//!
//! ```sh
//! cargo run --release --example scout_walkthrough
//! ```

use venice::interconnect::mesh::MeshState;
use venice::interconnect::scout::{ScoutMode, ScoutPacket};
use venice::interconnect::{FcId, Mesh2D, NodeId};
use venice::sim::rng::Lfsr2;

fn main() {
    // Figure 8 uses a 4-row × 5-column mesh, nodes F0..F19 row-major, with
    // controllers FC0..FC3 on the west edge.
    let topo = Mesh2D::new(4, 5);
    let mut mesh = MeshState::new(topo, 4);
    let n = NodeId;

    // The three already-reserved circuits of the figure (drawn in red).
    mesh.reserve_explicit(0, &[n(0), n(1), n(6)]);
    mesh.reserve_explicit(1, &[n(5), n(6), n(7), n(8)]);
    mesh.reserve_explicit(2, &[n(10), n(11), n(12), n(7)]);
    println!("reserved 3 circuits; {} links busy", mesh.reserved_link_count());

    // Request R: FC3 → F2. Every minimal path is blocked.
    let packet = ScoutPacket::new(FcId(3), n(2), ScoutMode::Reserve);
    println!(
        "scout packet on the wire: {:02x?} (header flit, tail flit)",
        packet.encode()
    );

    let mut lfsr = Lfsr2::new();
    let (path, outcome) = mesh
        .scout_walk(3, topo.fc_node(FcId(3)), n(2), &mut lfsr)
        .expect("a non-minimal conflict-free path exists");

    println!(
        "scout reserved a {}-hop path in {} steps (detoured: {}):",
        path.hops(),
        outcome.steps,
        outcome.detoured
    );
    let names: Vec<String> = path.nodes.iter().map(|x| x.to_string()).collect();
    println!("  FC3 -> {}", names.join(" -> "));
    println!(
        "  (minimal distance would be {} hops — the blue path in Figure 8)",
        topo.manhattan(topo.fc_node(FcId(3)), n(2))
    );

    // Each router along the path now holds a reservation-table row.
    for node in &path.nodes {
        let entry = mesh.router(*node).entry(3).expect("row installed");
        println!(
            "  router {node}: packet {} entry={} exit={}",
            entry.packet_id, entry.entry, entry.exit
        );
    }

    mesh.release(&path);
    println!("released; {} links busy remain", mesh.reserved_link_count());
}
