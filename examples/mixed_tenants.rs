//! Multi-tenant scenario: the paper's §6.2 mixed workloads. Two or three
//! independent applications share the SSD; the merged stream is far more
//! intense than any constituent, exacerbating path conflicts.
//!
//! ```sh
//! cargo run --release --example mixed_tenants
//! ```

use venice::interconnect::FabricKind;
use venice::ssd::{run_systems, SsdConfig};
use venice::workloads::mix;

fn main() {
    let cfg = SsdConfig::performance_optimized();
    println!("{:<6} {:>12} {:>9} {:>9} {:>9}", "mix", "interarrival", "Base", "Venice", "Ideal");
    for m in &mix::TABLE3 {
        let trace = mix::generate(m, 600);
        let results = run_systems(
            &cfg,
            &[FabricKind::Baseline, FabricKind::Venice, FabricKind::Ideal],
            &trace,
        );
        let base = &results[0];
        println!(
            "{:<6} {:>10.1}µs {:>9} {:>8.2}x {:>8.2}x   ({})",
            m.name,
            trace.stats().avg_interarrival_us,
            base.execution_time.to_string(),
            results[1].speedup_over(base),
            results[2].speedup_over(base),
            m.description,
        );
    }
}
