//! Multi-tenant scenario: the paper's §6.2 mixed workloads. Two or three
//! independent applications share the SSD; the merged stream is far more
//! intense than any constituent, exacerbating path conflicts.
//!
//! Each constituent app runs as its own tenant (namespace), so besides the
//! merged-stream speedups the run reports the QoS view: each app's p99
//! latency on Venice and Jain's fairness index over the tenants.
//!
//! ```sh
//! cargo run --release --example mixed_tenants
//! ```

use venice::hil::{DeadlineClass, TenantSet, TenantSpec};
use venice::interconnect::FabricKind;
use venice::ssd::{run_systems, SsdConfig};
use venice::workloads::mix;

fn main() {
    let base = SsdConfig::performance_optimized();
    println!(
        "{:<6} {:>12} {:>9} {:>9} {:>9} {:>7}",
        "mix", "interarrival", "Base", "Venice", "Ideal", "Jain"
    );
    for m in &mix::TABLE3 {
        let trace = mix::generate(m, 600);
        // One tenant per constituent app: the mix generator tags each
        // event with its origin stream, and the matching TenantSet routes
        // every app through its own namespace and queue range.
        let tenants = TenantSet::custom(
            m.name,
            m.constituents
                .iter()
                .map(|&name| TenantSpec { name, weight: 1, qd_cap: 0, deadline: DeadlineClass::Default })
                .collect(),
        );
        let cfg = base.clone().with_tenants(tenants);
        let results = run_systems(
            &cfg,
            &[FabricKind::Baseline, FabricKind::Venice, FabricKind::Ideal],
            &trace,
        );
        let (base_run, venice) = (&results[0], &results[1]);
        println!(
            "{:<6} {:>10.1}µs {:>9} {:>8.2}x {:>8.2}x {:>7.3}   ({})",
            m.name,
            trace.stats().avg_interarrival_us,
            base_run.execution_time.to_string(),
            venice.speedup_over(base_run),
            results[2].speedup_over(base_run),
            venice.fairness_index(),
            m.description,
        );
        for t in &venice.tenants {
            println!("{:<8}└ {:<8} p99 {}", "", t.name, t.p99());
        }
    }
}
