//! Design-space exploration through the sweep engine: one grid crossing
//! the flash-array shape (the paper's Figure 15 study) with a custom
//! workload's intensity, executed on the shared worker pool and written as
//! a reproducible artifact under `results/sweep_design_space/`.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use venice::interconnect::FabricKind;
use venice::ssd::SsdConfig;
use venice::workloads::{WorkloadAxis, WorkloadSpec};
use venice_bench::sweep::SweepGrid;

fn main() {
    // A read-heavy bursty workload at three arrival intensities: one
    // workload-axis value per intensity.
    let intensities = [2.0, 8.0, 32.0];
    let workloads: Vec<WorkloadAxis> = intensities
        .iter()
        .map(|&interarrival_us| {
            WorkloadAxis::Spec(
                WorkloadSpec::new(format!("sweep-{interarrival_us}us"), 95.0, 16.0, interarrival_us)
                    .footprint_mb(1024)
                    .burst_mean(32.0),
            )
        })
        .collect();
    let shapes = [(4u16, 16u16), (8, 8), (16, 4)];
    let outcome = SweepGrid::new("design_space")
        .config(SsdConfig::performance_optimized())
        .workloads(workloads)
        .shapes(&shapes)
        .fabrics(&[
            FabricKind::Baseline,
            FabricKind::NoSsd,
            FabricKind::Venice,
            FabricKind::Ideal,
        ])
        .requests(1_500)
        .run();

    for &interarrival_us in &intensities {
        let name = format!("sweep-{interarrival_us}us");
        println!("\n== mean inter-arrival {interarrival_us} µs ==");
        println!("{:<7} {:>8} {:>8} {:>8}", "shape", "NoSSD", "Venice", "Ideal");
        for &shape in &shapes {
            let rows = outcome
                .rows_by_workload(|p| p.workload == name && p.shape == shape);
            let results = &rows.first().expect("point row in outcome").1;
            let base = &results[0];
            println!(
                "{:<7} {:>7.2}x {:>7.2}x {:>7.2}x",
                format!("{}x{}", shape.0, shape.1),
                results[1].speedup_over(base),
                results[2].speedup_over(base),
                results[3].speedup_over(base),
            );
        }
    }

    match outcome.write(&venice_bench::results_dir()) {
        Ok(dir) => eprintln!("sweep artifact: {}", dir.join("manifest.json").display()),
        Err(e) => eprintln!("warning: cannot write sweep artifact: {e}"),
    }
}
