//! Design-space exploration: sweep the flash-array shape (the paper's
//! Figure 15 study) and a custom workload's intensity, printing how each
//! fabric's advantage moves.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use venice::interconnect::FabricKind;
use venice::ssd::{run_systems, SsdConfig};
use venice::workloads::WorkloadSpec;

fn main() {
    // A read-heavy bursty workload whose intensity we sweep.
    for interarrival_us in [2.0, 8.0, 32.0] {
        println!("\n== mean inter-arrival {interarrival_us} µs ==");
        println!("{:<7} {:>8} {:>8} {:>8}", "shape", "NoSSD", "Venice", "Ideal");
        let trace = WorkloadSpec::new("sweep", 95.0, 16.0, interarrival_us)
            .footprint_mb(1024)
            .burst_mean(32.0)
            .generate(1_500);
        for (rows, cols) in [(4u16, 16u16), (8, 8), (16, 4)] {
            let cfg = SsdConfig::performance_optimized().with_shape(rows, cols);
            let results = run_systems(
                &cfg,
                &[
                    FabricKind::Baseline,
                    FabricKind::NoSsd,
                    FabricKind::Venice,
                    FabricKind::Ideal,
                ],
                &trace,
            );
            let base = &results[0];
            println!(
                "{:<7} {:>7.2}x {:>7.2}x {:>7.2}x",
                format!("{rows}x{cols}"),
                results[1].speedup_over(base),
                results[2].speedup_over(base),
                results[3].speedup_over(base),
            );
        }
    }
}
