//! Quickstart: simulate one workload on the Baseline SSD and on Venice,
//! and print the headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use venice::interconnect::FabricKind;
use venice::ssd::{run_systems, SsdConfig};
use venice::workloads::catalog;

fn main() {
    // 1. Pick a workload from the paper's Table 2 catalog and generate a
    //    deterministic synthetic trace with its published statistics.
    let spec = catalog::by_name("hm_0").expect("hm_0 is in the catalog");
    let trace = spec.generate(2_000);
    let stats = trace.stats();
    println!(
        "workload hm_0: {} requests, {:.0}% reads, {:.1} KiB avg, {:.0} µs inter-arrival",
        stats.requests, stats.read_pct, stats.avg_request_kb, stats.avg_interarrival_us
    );

    // 2. Run it on the Table 1 performance-optimized SSD with two fabrics.
    let cfg = SsdConfig::performance_optimized();
    let results = run_systems(
        &cfg,
        &[FabricKind::Baseline, FabricKind::Venice, FabricKind::Ideal],
        &trace,
    );

    // 3. Compare.
    let base = &results[0];
    for m in &results {
        println!(
            "{:<9} exec={:<10} IOPS={:<9.0} p99={:<10} conflicts={:.2}% speedup={:.2}x",
            m.system.label(),
            m.execution_time.to_string(),
            m.iops(),
            m.latencies.clone().percentile(0.99).to_string(),
            m.conflict_pct(),
            m.speedup_over(base),
        );
    }
}
