//! The flash chip state machine.

use std::fmt;

use venice_sim::SimTime;

use crate::{ChipGeometry, NandTiming, OpEnergy, PageAddr};

/// The three array operations a flash die can execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NandCommandKind {
    /// Page read (tR): sense a page into the plane's page register.
    Read,
    /// Page program (tPROG): write the page register into the array.
    Program,
    /// Block erase (tBERS): erase a whole block.
    Erase,
}

impl fmt::Display for NandCommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NandCommandKind::Read => "read",
            NandCommandKind::Program => "program",
            NandCommandKind::Erase => "erase",
        };
        f.write_str(s)
    }
}

/// Errors returned when a command violates chip constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChipError {
    /// The addressed die is still executing a previous operation.
    DieBusy {
        /// The die in question.
        die: u32,
        /// When the in-flight operation completes.
        busy_until: SimTime,
    },
    /// An address is outside this chip's geometry.
    AddressOutOfRange(PageAddr),
    /// A multi-plane command addressed the same plane twice, spanned
    /// multiple dies, or used mismatched block/page offsets.
    InvalidMultiPlane,
    /// Programming a page out of order within its block, or reprogramming a
    /// page without an intervening erase.
    ProgramOrderViolation {
        /// The offending address.
        addr: PageAddr,
        /// The next programmable page index in that block.
        expected_page: u32,
    },
    /// Reading a page that has never been programmed since the last erase.
    ReadOfErasedPage(PageAddr),
    /// The command list was empty.
    EmptyCommand,
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::DieBusy { die, busy_until } => {
                write!(f, "die {die} busy until {busy_until}")
            }
            ChipError::AddressOutOfRange(a) => write!(f, "address {a} out of range"),
            ChipError::InvalidMultiPlane => write!(f, "invalid multi-plane command"),
            ChipError::ProgramOrderViolation {
                addr,
                expected_page,
            } => write!(
                f,
                "program order violation at {addr}, expected page {expected_page}"
            ),
            ChipError::ReadOfErasedPage(a) => write!(f, "read of erased page {a}"),
            ChipError::EmptyCommand => write!(f, "empty command"),
        }
    }
}

impl std::error::Error for ChipError {}

/// Per-block bookkeeping: program write pointer and endurance.
#[derive(Clone, Debug, Default)]
struct BlockState {
    /// Next page index that may legally be programmed (0 = freshly erased).
    write_pointer: u32,
    /// Number of erases this block has sustained.
    erase_count: u32,
}

/// Per-die state: one operation at a time.
#[derive(Clone, Debug)]
struct DieState {
    busy_until: SimTime,
}

/// Cumulative statistics of one chip.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChipStats {
    /// Page reads executed.
    pub reads: u64,
    /// Page programs executed (counting each plane of a multi-plane op).
    pub programs: u64,
    /// Block erases executed.
    pub erases: u64,
    /// Total time the chip's dies spent busy, in nanoseconds.
    pub busy_ns: u64,
    /// Total array-operation energy, in nanojoules.
    pub energy_nj: f64,
}

/// A flash chip: dies, planes, blocks, and pages with their operational
/// constraints, plus timing and statistics.
///
/// The chip is a passive resource: the caller (the SSD model's transaction
/// scheduler) asks whether a die is idle, then [`FlashChip::start`]s an
/// operation, which returns the completion time the caller schedules an
/// event for. The chip enforces geometry and NAND ordering invariants and
/// tracks endurance and energy.
#[derive(Clone, Debug)]
pub struct FlashChip {
    geometry: ChipGeometry,
    timing: NandTiming,
    energy: OpEnergy,
    dies: Vec<DieState>,
    /// Indexed by `(die * planes_per_die + plane) * blocks_per_plane + block`.
    blocks: Vec<BlockState>,
    stats: ChipStats,
}

impl FlashChip {
    /// Creates an idle, fully erased chip with the default energy preset for
    /// its timing.
    pub fn new(geometry: ChipGeometry, timing: NandTiming) -> Self {
        let energy = if timing == NandTiming::z_nand() {
            OpEnergy::z_nand()
        } else {
            OpEnergy::tlc_3d()
        };
        Self::with_energy(geometry, timing, energy)
    }

    /// Creates a chip with an explicit energy preset.
    pub fn with_energy(geometry: ChipGeometry, timing: NandTiming, energy: OpEnergy) -> Self {
        let n_blocks =
            (geometry.dies * geometry.planes_per_die * geometry.blocks_per_plane) as usize;
        FlashChip {
            geometry,
            timing,
            energy,
            dies: (0..geometry.dies)
                .map(|_| DieState {
                    busy_until: SimTime::ZERO,
                })
                .collect(),
            blocks: vec![BlockState::default(); n_blocks],
            stats: ChipStats::default(),
        }
    }

    /// This chip's geometry.
    pub fn geometry(&self) -> ChipGeometry {
        self.geometry
    }

    /// This chip's timing parameters.
    pub fn timing(&self) -> NandTiming {
        self.timing
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ChipStats {
        self.stats
    }

    /// When the given die becomes idle (`SimTime::ZERO` if it never ran).
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn die_busy_until(&self, die: u32) -> SimTime {
        self.dies[die as usize].busy_until
    }

    /// True if the die is idle at time `now`.
    pub fn is_die_idle(&self, die: u32, now: SimTime) -> bool {
        self.die_busy_until(die) <= now
    }

    fn block_index(&self, a: PageAddr) -> usize {
        ((a.die * self.geometry.planes_per_die + a.plane) * self.geometry.blocks_per_plane
            + a.block) as usize
    }

    /// Erase count of the block containing `addr`.
    pub fn erase_count(&self, addr: PageAddr) -> u32 {
        self.blocks[self.block_index(addr)].erase_count
    }

    /// Next programmable page of the block containing `addr` (its write
    /// pointer); equals `pages_per_block` when the block is full.
    pub fn write_pointer(&self, addr: PageAddr) -> u32 {
        self.blocks[self.block_index(addr)].write_pointer
    }

    /// Starts an array operation at `now`, returning its completion time.
    ///
    /// `targets` contains one address for a single-plane operation or
    /// several addresses for a multi-plane operation: all on the same die,
    /// distinct planes, identical block and page offsets (the hardware
    /// constraint described in §2.1 of the paper). A multi-plane operation
    /// occupies the die for one operation latency but performs the work of
    /// `targets.len()` operations (counted in the statistics accordingly).
    ///
    /// # Errors
    ///
    /// * [`ChipError::DieBusy`] if the die is mid-operation at `now`,
    /// * [`ChipError::AddressOutOfRange`] for bad addresses,
    /// * [`ChipError::InvalidMultiPlane`] for malformed multi-plane target sets,
    /// * [`ChipError::ProgramOrderViolation`] for out-of-order or in-place
    ///   programs (erase-before-write),
    /// * [`ChipError::ReadOfErasedPage`] for reads of unwritten pages,
    /// * [`ChipError::EmptyCommand`] if `targets` is empty.
    pub fn start(
        &mut self,
        kind: NandCommandKind,
        targets: &[PageAddr],
        now: SimTime,
    ) -> Result<SimTime, ChipError> {
        let &first = targets.first().ok_or(ChipError::EmptyCommand)?;
        for &t in targets {
            if !self.geometry.contains(t) {
                return Err(ChipError::AddressOutOfRange(t));
            }
        }
        // Multi-plane validity: same die, same block/page offset, distinct planes.
        if targets.len() > 1 {
            if targets.len() > self.geometry.planes_per_die as usize {
                return Err(ChipError::InvalidMultiPlane);
            }
            let mut seen_planes = 0u64;
            for &t in targets {
                if t.die != first.die
                    || t.block != first.block
                    || t.page != first.page
                    || seen_planes & (1 << t.plane) != 0
                {
                    return Err(ChipError::InvalidMultiPlane);
                }
                seen_planes |= 1 << t.plane;
            }
        }
        let die = &self.dies[first.die as usize];
        if die.busy_until > now {
            return Err(ChipError::DieBusy {
                die: first.die,
                busy_until: die.busy_until,
            });
        }
        // Validate data-state transitions before mutating anything.
        match kind {
            NandCommandKind::Program => {
                for &t in targets {
                    let b = &self.blocks[self.block_index(t)];
                    if t.page != b.write_pointer {
                        return Err(ChipError::ProgramOrderViolation {
                            addr: t,
                            expected_page: b.write_pointer,
                        });
                    }
                }
            }
            NandCommandKind::Read => {
                for &t in targets {
                    let b = &self.blocks[self.block_index(t)];
                    if t.page >= b.write_pointer {
                        return Err(ChipError::ReadOfErasedPage(t));
                    }
                }
            }
            NandCommandKind::Erase => {}
        }
        // Commit.
        let latency = self.timing.latency(kind);
        let done = now + latency;
        self.dies[first.die as usize].busy_until = done;
        self.stats.busy_ns += latency.as_nanos();
        for &t in targets {
            let idx = self.block_index(t);
            match kind {
                NandCommandKind::Read => self.stats.reads += 1,
                NandCommandKind::Program => {
                    self.blocks[idx].write_pointer += 1;
                    self.stats.programs += 1;
                }
                NandCommandKind::Erase => {
                    self.blocks[idx].write_pointer = 0;
                    self.blocks[idx].erase_count += 1;
                    self.stats.erases += 1;
                }
            }
            self.stats.energy_nj += self.energy.energy_nj(kind);
        }
        Ok(done)
    }

    /// Marks a block as fully programmed without simulating each program —
    /// used to precondition the SSD before a measured run (the paper's
    /// steady-state assumption). Does not advance time, consume energy, or
    /// count in the statistics.
    pub fn precondition_block(&mut self, addr: PageAddr, pages: u32) {
        assert!(self.geometry.contains(addr), "precondition out of range");
        assert!(pages <= self.geometry.pages_per_block);
        let idx = self.block_index(addr);
        self.blocks[idx].write_pointer = self.blocks[idx].write_pointer.max(pages);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_sim::SimDuration;

    fn chip() -> FlashChip {
        FlashChip::new(ChipGeometry::z_nand_small(), NandTiming::z_nand())
    }

    fn page(plane: u32, block: u32, page: u32) -> PageAddr {
        PageAddr {
            die: 0,
            plane,
            block,
            page,
        }
    }

    #[test]
    fn program_then_read_roundtrip() {
        let mut c = chip();
        let t0 = SimTime::ZERO;
        let done = c.start(NandCommandKind::Program, &[page(0, 0, 0)], t0).unwrap();
        assert_eq!(done, t0 + NandTiming::z_nand().t_prog);
        let done2 = c.start(NandCommandKind::Read, &[page(0, 0, 0)], done).unwrap();
        assert_eq!(done2, done + NandTiming::z_nand().t_r);
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().programs, 1);
    }

    #[test]
    fn die_busy_rejects_overlapping_ops() {
        let mut c = chip();
        c.start(NandCommandKind::Program, &[page(0, 0, 0)], SimTime::ZERO)
            .unwrap();
        let err = c
            .start(NandCommandKind::Program, &[page(1, 0, 0)], SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, ChipError::DieBusy { die: 0, .. }));
    }

    #[test]
    fn read_of_erased_page_rejected() {
        let mut c = chip();
        let err = c
            .start(NandCommandKind::Read, &[page(0, 0, 0)], SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, ChipError::ReadOfErasedPage(page(0, 0, 0)));
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut c = chip();
        let err = c
            .start(NandCommandKind::Program, &[page(0, 0, 5)], SimTime::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            ChipError::ProgramOrderViolation {
                addr: page(0, 0, 5),
                expected_page: 0
            }
        );
    }

    #[test]
    fn reprogram_requires_erase() {
        let mut c = chip();
        let mut t = SimTime::ZERO;
        t = c.start(NandCommandKind::Program, &[page(0, 0, 0)], t).unwrap();
        // Reprogramming page 0 must fail (write pointer moved to 1).
        let err = c.start(NandCommandKind::Program, &[page(0, 0, 0)], t).unwrap_err();
        assert!(matches!(err, ChipError::ProgramOrderViolation { .. }));
        // After erase the page is programmable again.
        t = c.start(NandCommandKind::Erase, &[page(0, 0, 0)], t).unwrap();
        c.start(NandCommandKind::Program, &[page(0, 0, 0)], t).unwrap();
        assert_eq!(c.erase_count(page(0, 0, 0)), 1);
    }

    #[test]
    fn multiplane_same_offset_accepted() {
        let mut c = chip();
        let done = c
            .start(
                NandCommandKind::Program,
                &[page(0, 3, 0), page(1, 3, 0)],
                SimTime::ZERO,
            )
            .unwrap();
        // One die occupancy, two programs counted.
        assert_eq!(done, SimTime::ZERO + NandTiming::z_nand().t_prog);
        assert_eq!(c.stats().programs, 2);
        assert_eq!(c.stats().busy_ns, NandTiming::z_nand().t_prog.as_nanos());
    }

    #[test]
    fn multiplane_mismatched_offset_rejected() {
        let mut c = chip();
        let err = c
            .start(
                NandCommandKind::Program,
                &[page(0, 3, 0), page(1, 4, 0)],
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, ChipError::InvalidMultiPlane);
        // Duplicate plane also rejected.
        let err = c
            .start(
                NandCommandKind::Program,
                &[page(0, 3, 0), page(0, 3, 0)],
                SimTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, ChipError::InvalidMultiPlane);
    }

    #[test]
    fn address_validation() {
        let mut c = chip();
        let bad = PageAddr {
            die: 9,
            plane: 0,
            block: 0,
            page: 0,
        };
        assert_eq!(
            c.start(NandCommandKind::Read, &[bad], SimTime::ZERO),
            Err(ChipError::AddressOutOfRange(bad))
        );
        assert_eq!(
            c.start(NandCommandKind::Read, &[], SimTime::ZERO),
            Err(ChipError::EmptyCommand)
        );
    }

    #[test]
    fn erase_resets_write_pointer() {
        let mut c = chip();
        let mut t = SimTime::ZERO;
        for p in 0..3 {
            t = c.start(NandCommandKind::Program, &[page(0, 0, p)], t).unwrap();
        }
        assert_eq!(c.write_pointer(page(0, 0, 0)), 3);
        t = c.start(NandCommandKind::Erase, &[page(0, 0, 0)], t).unwrap();
        assert_eq!(c.write_pointer(page(0, 0, 0)), 0);
        let err = c.start(NandCommandKind::Read, &[page(0, 0, 0)], t).unwrap_err();
        assert_eq!(err, ChipError::ReadOfErasedPage(page(0, 0, 0)));
    }

    #[test]
    fn precondition_marks_pages_readable() {
        let mut c = chip();
        c.precondition_block(page(0, 2, 0), 10);
        c.start(NandCommandKind::Read, &[page(0, 2, 9)], SimTime::ZERO)
            .unwrap();
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().programs, 0);
        assert_eq!(c.stats().energy_nj, OpEnergy::z_nand().read_nj);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut c = chip();
        let mut t = SimTime::ZERO;
        t = c.start(NandCommandKind::Program, &[page(0, 0, 0)], t).unwrap();
        c.start(NandCommandKind::Read, &[page(0, 0, 0)], t).unwrap();
        let expect = NandTiming::z_nand().t_prog + NandTiming::z_nand().t_r;
        assert_eq!(c.stats().busy_ns, expect.as_nanos());
    }

    #[test]
    fn idle_check_respects_time() {
        let mut c = chip();
        let done = c
            .start(NandCommandKind::Program, &[page(0, 0, 0)], SimTime::ZERO)
            .unwrap();
        assert!(!c.is_die_idle(0, SimTime::ZERO));
        assert!(!c.is_die_idle(0, done - SimDuration::from_nanos(1)));
        assert!(c.is_die_idle(0, done));
    }
}
