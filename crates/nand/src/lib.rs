//! NAND flash chip model for the Venice SSD reproduction.
//!
//! Models the flash-chip array of §2.1 of the paper: each **chip** contains
//! one or more **dies** (the unit of operation concurrency), each die has
//! several **planes** (which can only operate together via multi-plane
//! commands at the same block/page offset), planes contain **blocks** (the
//! erase unit), and blocks contain **pages** (the read/program unit).
//!
//! The model enforces real NAND constraints:
//!
//! * pages within a block must be programmed strictly in order,
//! * a page cannot be reprogrammed before its block is erased
//!   (erase-before-write),
//! * a die executes one operation at a time; multi-plane operations must
//!   address distinct planes at identical block/page offsets,
//! * erases count against block endurance.
//!
//! Timing ([`NandTiming`]) and per-operation energy ([`OpEnergy`]) presets
//! correspond to the paper's Table 1 configurations: `z_nand()`
//! (performance-optimized, Samsung Z-NAND-like) and `tlc_3d()`
//! (cost-optimized, 3D TLC like the PM9A3).
//!
//! # Example
//!
//! ```
//! use venice_nand::{ChipGeometry, FlashChip, NandCommandKind, NandTiming, PageAddr};
//! use venice_sim::SimTime;
//!
//! let geom = ChipGeometry::z_nand_small();
//! let mut chip = FlashChip::new(geom, NandTiming::z_nand());
//! let page = PageAddr { die: 0, plane: 0, block: 0, page: 0 };
//! let done = chip
//!     .start(NandCommandKind::Program, &[page], SimTime::ZERO)
//!     .expect("die idle, page fresh");
//! assert_eq!(done, SimTime::ZERO + NandTiming::z_nand().t_prog);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod geometry;
mod power;
mod timing;

pub use chip::{ChipError, ChipStats, FlashChip, NandCommandKind};
pub use geometry::{ChipGeometry, ChipId, PageAddr, PhysicalPageAddr};
pub use power::OpEnergy;
pub use timing::NandTiming;
