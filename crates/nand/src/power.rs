//! Per-operation energy model for flash array operations.
//!
//! The paper takes flash-operation power from the Samsung Z-SSD SZ985
//! brochure (§5); those numbers are not published in machine-readable form,
//! so this module encodes plausible per-operation energies with the right
//! *structure*: program ≫ read per operation, erase largest per operation
//! but amortized over a whole block. Absolute joules only matter for the
//! normalized power/energy plots (Fig. 14), which depend on ratios.

use venice_sim::SimDuration;

/// Energy consumed by one flash array operation, in nanojoules.
///
/// The presets assume an active-power draw of roughly 25 mW during a read,
/// 30 mW during a program, and 35 mW during an erase; energy scales with the
/// preset's operation latency, which is why the cost-optimized TLC preset has
/// larger per-op energies than Z-NAND.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpEnergy {
    /// Energy of one page read (array access only, not transfer).
    pub read_nj: f64,
    /// Energy of one page program.
    pub program_nj: f64,
    /// Energy of one block erase.
    pub erase_nj: f64,
    /// Standby power of one idle chip, in milliwatts (drawn continuously).
    pub standby_mw: f64,
}

impl OpEnergy {
    /// Derives an energy preset from operation latencies and active powers.
    pub fn from_timing(
        t_r: SimDuration,
        t_prog: SimDuration,
        t_bers: SimDuration,
        read_mw: f64,
        program_mw: f64,
        erase_mw: f64,
        standby_mw: f64,
    ) -> Self {
        // mW * ns = picojoules; divide by 1e3 for nanojoules.
        let nj = |mw: f64, d: SimDuration| mw * d.as_nanos() as f64 / 1e3;
        OpEnergy {
            read_nj: nj(read_mw, t_r),
            program_nj: nj(program_mw, t_prog),
            erase_nj: nj(erase_mw, t_bers),
            standby_mw,
        }
    }

    /// Energy preset matching [`crate::NandTiming::z_nand`].
    pub fn z_nand() -> Self {
        let t = crate::NandTiming::z_nand();
        Self::from_timing(t.t_r, t.t_prog, t.t_bers, 25.0, 30.0, 35.0, 2.0)
    }

    /// Energy preset matching [`crate::NandTiming::tlc_3d`].
    pub fn tlc_3d() -> Self {
        let t = crate::NandTiming::tlc_3d();
        Self::from_timing(t.t_r, t.t_prog, t.t_bers, 25.0, 30.0, 35.0, 2.0)
    }

    /// Energy of one operation of the given kind, in nanojoules.
    pub fn energy_nj(&self, kind: crate::NandCommandKind) -> f64 {
        match kind {
            crate::NandCommandKind::Read => self.read_nj,
            crate::NandCommandKind::Program => self.program_nj,
            crate::NandCommandKind::Erase => self.erase_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NandCommandKind;

    #[test]
    fn energies_scale_with_latency() {
        let z = OpEnergy::z_nand();
        let t = OpEnergy::tlc_3d();
        // TLC ops are slower, hence more energy per op at similar power.
        assert!(t.read_nj > z.read_nj);
        assert!(t.program_nj > z.program_nj);
        assert!(t.erase_nj > z.erase_nj);
        // Program energy dominates read energy.
        assert!(z.program_nj > z.read_nj);
    }

    #[test]
    fn from_timing_units() {
        // 10 mW for 1 us = 10 nJ.
        let e = OpEnergy::from_timing(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            10.0,
            10.0,
            10.0,
            1.0,
        );
        assert!((e.read_nj - 10.0).abs() < 1e-9);
        assert_eq!(e.energy_nj(NandCommandKind::Read), e.read_nj);
        assert_eq!(e.energy_nj(NandCommandKind::Program), e.program_nj);
        assert_eq!(e.energy_nj(NandCommandKind::Erase), e.erase_nj);
    }
}
