//! Flash array geometry and physical addressing.

use std::fmt;

/// Identifier of a flash chip within the SSD's chip array.
///
/// Chips are numbered row-major over the (channel/row, way/column) grid, so
/// chip `r * cols + c` sits at row `r`, column `c` — the same node numbering
/// the paper's Figure 8 uses for the mesh.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChipId(pub u16);

impl fmt::Display for ChipId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Geometry of a single flash chip (§2.1: chip → die → plane → block → page).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChipGeometry {
    /// Dies per chip (independent operation units), typically 1–4.
    pub dies: u32,
    /// Planes per die (concurrent only via multi-plane ops), typically 2 or 4.
    pub planes_per_die: u32,
    /// Blocks per plane (erase units).
    pub blocks_per_plane: u32,
    /// Pages per block (program order is enforced within a block).
    pub pages_per_block: u32,
    /// Page size in bytes (unit of read/program transfer).
    pub page_size: u32,
}

impl ChipGeometry {
    /// Table 1 performance-optimized geometry: 1 die, 2 planes, 1024
    /// blocks/plane, 768 pages/block, 4 KiB pages.
    pub const fn z_nand() -> Self {
        ChipGeometry {
            dies: 1,
            planes_per_die: 2,
            blocks_per_plane: 1024,
            pages_per_block: 768,
            page_size: 4 * 1024,
        }
    }

    /// Table 1 cost-optimized geometry: 1 die, 2 planes, 1024 blocks/die
    /// (512 per plane), 16 KiB pages.
    pub const fn tlc_3d() -> Self {
        ChipGeometry {
            dies: 1,
            planes_per_die: 2,
            blocks_per_plane: 512,
            pages_per_block: 768,
            page_size: 16 * 1024,
        }
    }

    /// A scaled-down Z-NAND geometry for fast unit tests (same shape, fewer
    /// blocks/pages).
    pub const fn z_nand_small() -> Self {
        ChipGeometry {
            dies: 1,
            planes_per_die: 2,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_size: 4 * 1024,
        }
    }

    /// Pages per plane.
    pub const fn pages_per_plane(&self) -> u64 {
        self.blocks_per_plane as u64 * self.pages_per_block as u64
    }

    /// Pages per die.
    pub const fn pages_per_die(&self) -> u64 {
        self.pages_per_plane() * self.planes_per_die as u64
    }

    /// Total pages in the chip.
    pub const fn pages_per_chip(&self) -> u64 {
        self.pages_per_die() * self.dies as u64
    }

    /// Total bytes in the chip.
    pub const fn bytes_per_chip(&self) -> u64 {
        self.pages_per_chip() * self.page_size as u64
    }

    /// Number of planes in the chip.
    pub const fn planes_per_chip(&self) -> u32 {
        self.dies * self.planes_per_die
    }

    /// Validates an intra-chip address against this geometry.
    pub fn contains(&self, a: PageAddr) -> bool {
        a.die < self.dies
            && a.plane < self.planes_per_die
            && a.block < self.blocks_per_plane
            && a.page < self.pages_per_block
    }

    /// Flattens an intra-chip page address to a dense index in
    /// `[0, pages_per_chip)`; inverse of [`ChipGeometry::page_from_index`].
    pub fn page_index(&self, a: PageAddr) -> u64 {
        debug_assert!(self.contains(a));
        ((u64::from(a.die) * u64::from(self.planes_per_die) + u64::from(a.plane))
            * u64::from(self.blocks_per_plane)
            + u64::from(a.block))
            * u64::from(self.pages_per_block)
            + u64::from(a.page)
    }

    /// Reconstructs an intra-chip page address from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= pages_per_chip()`.
    pub fn page_from_index(&self, idx: u64) -> PageAddr {
        assert!(idx < self.pages_per_chip(), "page index out of range");
        let page = (idx % u64::from(self.pages_per_block)) as u32;
        let rest = idx / u64::from(self.pages_per_block);
        let block = (rest % u64::from(self.blocks_per_plane)) as u32;
        let rest = rest / u64::from(self.blocks_per_plane);
        let plane = (rest % u64::from(self.planes_per_die)) as u32;
        let die = (rest / u64::from(self.planes_per_die)) as u32;
        PageAddr {
            die,
            plane,
            block,
            page,
        }
    }
}

/// A page address within one chip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr {
    /// Die within the chip.
    pub die: u32,
    /// Plane within the die.
    pub plane: u32,
    /// Block within the plane.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}p{}b{}pg{}",
            self.die, self.plane, self.block, self.page
        )
    }
}

/// A fully qualified physical page address: chip plus intra-chip location.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysicalPageAddr {
    /// The chip holding the page.
    pub chip: ChipId,
    /// Location within the chip.
    pub addr: PageAddr,
}

impl fmt::Display for PhysicalPageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.chip, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries_have_expected_capacity() {
        let g = ChipGeometry::z_nand();
        // 2 planes * 1024 blocks * 768 pages * 4KiB = 6 GiB per chip;
        // 64 chips ≈ 384 GiB raw (240 GB user capacity after OP in the paper).
        assert_eq!(g.pages_per_chip(), 2 * 1024 * 768);
        assert_eq!(g.bytes_per_chip(), 2 * 1024 * 768 * 4096);
        let c = ChipGeometry::tlc_3d();
        assert_eq!(c.planes_per_chip(), 2);
        assert_eq!(c.page_size, 16 * 1024);
    }

    #[test]
    fn page_index_roundtrips() {
        let g = ChipGeometry::z_nand_small();
        for idx in 0..g.pages_per_chip() {
            let a = g.page_from_index(idx);
            assert!(g.contains(a));
            assert_eq!(g.page_index(a), idx);
        }
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = ChipGeometry::z_nand_small();
        assert!(!g.contains(PageAddr {
            die: g.dies,
            ..Default::default()
        }));
        assert!(!g.contains(PageAddr {
            plane: g.planes_per_die,
            ..Default::default()
        }));
        assert!(!g.contains(PageAddr {
            block: g.blocks_per_plane,
            ..Default::default()
        }));
        assert!(!g.contains(PageAddr {
            page: g.pages_per_block,
            ..Default::default()
        }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_from_index_rejects_overflow() {
        let g = ChipGeometry::z_nand_small();
        g.page_from_index(g.pages_per_chip());
    }

    #[test]
    fn display_formats() {
        let p = PhysicalPageAddr {
            chip: ChipId(3),
            addr: PageAddr {
                die: 0,
                plane: 1,
                block: 2,
                page: 7,
            },
        };
        assert_eq!(p.to_string(), "F3:d0p1b2pg7");
    }
}
