//! NAND operation timing presets (Table 1 of the paper).

use venice_sim::SimDuration;

/// Latencies of the three array operations of a flash die.
///
/// The two presets mirror the paper's Table 1:
///
/// | | `z_nand()` (perf-opt) | `tlc_3d()` (cost-opt) |
/// |---|---|---|
/// | read (tR) | 3 µs | 45 µs |
/// | program (tPROG) | 100 µs | 650 µs |
/// | erase (tBERS) | 1 ms | 3.5 ms |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NandTiming {
    /// Array read latency (tR).
    pub t_r: SimDuration,
    /// Program latency (tPROG).
    pub t_prog: SimDuration,
    /// Block erase latency (tBERS).
    pub t_bers: SimDuration,
}

impl NandTiming {
    /// Performance-optimized preset (Samsung Z-NAND, Table 1).
    pub const fn z_nand() -> Self {
        NandTiming {
            t_r: SimDuration::from_micros(3),
            t_prog: SimDuration::from_micros(100),
            t_bers: SimDuration::from_millis(1),
        }
    }

    /// Cost-optimized preset (3D TLC NAND, Table 1).
    pub const fn tlc_3d() -> Self {
        NandTiming {
            t_r: SimDuration::from_micros(45),
            t_prog: SimDuration::from_micros(650),
            t_bers: SimDuration::from_nanos(3_500_000),
        }
    }

    /// Latency of one operation kind.
    pub const fn latency(&self, kind: crate::NandCommandKind) -> SimDuration {
        match kind {
            crate::NandCommandKind::Read => self.t_r,
            crate::NandCommandKind::Program => self.t_prog,
            crate::NandCommandKind::Erase => self.t_bers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NandCommandKind;

    #[test]
    fn presets_match_table1() {
        let z = NandTiming::z_nand();
        assert_eq!(z.t_r, SimDuration::from_micros(3));
        assert_eq!(z.t_prog, SimDuration::from_micros(100));
        assert_eq!(z.t_bers, SimDuration::from_millis(1));
        let t = NandTiming::tlc_3d();
        assert_eq!(t.t_r, SimDuration::from_micros(45));
        assert_eq!(t.t_prog, SimDuration::from_micros(650));
        assert_eq!(t.t_bers.as_nanos(), 3_500_000);
    }

    #[test]
    fn latency_dispatch() {
        let z = NandTiming::z_nand();
        assert_eq!(z.latency(NandCommandKind::Read), z.t_r);
        assert_eq!(z.latency(NandCommandKind::Program), z.t_prog);
        assert_eq!(z.latency(NandCommandKind::Erase), z.t_bers);
    }
}
