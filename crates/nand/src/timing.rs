//! NAND operation timing presets (Table 1 of the paper).

use venice_sim::SimDuration;

/// Latencies of the three array operations of a flash die.
///
/// The two presets mirror the paper's Table 1:
///
/// | | `z_nand()` (perf-opt) | `tlc_3d()` (cost-opt) |
/// |---|---|---|
/// | read (tR) | 3 µs | 45 µs |
/// | program (tPROG) | 100 µs | 650 µs |
/// | erase (tBERS) | 1 ms | 3.5 ms |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NandTiming {
    /// Array read latency (tR).
    pub t_r: SimDuration,
    /// Program latency (tPROG).
    pub t_prog: SimDuration,
    /// Block erase latency (tBERS).
    pub t_bers: SimDuration,
}

impl NandTiming {
    /// Performance-optimized preset (Samsung Z-NAND, Table 1).
    pub const fn z_nand() -> Self {
        NandTiming {
            t_r: SimDuration::from_micros(3),
            t_prog: SimDuration::from_micros(100),
            t_bers: SimDuration::from_millis(1),
        }
    }

    /// Cost-optimized preset (3D TLC NAND, Table 1).
    pub const fn tlc_3d() -> Self {
        NandTiming {
            t_r: SimDuration::from_micros(45),
            t_prog: SimDuration::from_micros(650),
            t_bers: SimDuration::from_nanos(3_500_000),
        }
    }

    /// The named presets, as `(name, timing)` pairs — the sweep engine's
    /// NAND-timing axis vocabulary.
    pub const PRESETS: [(&'static str, NandTiming); 2] = [
        ("z-nand", NandTiming::z_nand()),
        ("tlc-3d", NandTiming::tlc_3d()),
    ];

    /// Looks up a preset by name (`"z-nand"` or `"tlc-3d"`) — the
    /// config-from-axis constructor used by sweep grids and CLIs.
    pub fn named(name: &str) -> Option<NandTiming> {
        Self::PRESETS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, t)| t)
    }

    /// The preset name of this timing, or `None` for a custom one (used to
    /// label sweep points and manifests).
    pub fn preset_name(&self) -> Option<&'static str> {
        Self::PRESETS
            .iter()
            .find(|(_, t)| t == self)
            .map(|&(n, _)| n)
    }

    /// Latency of one operation kind.
    pub const fn latency(&self, kind: crate::NandCommandKind) -> SimDuration {
        match kind {
            crate::NandCommandKind::Read => self.t_r,
            crate::NandCommandKind::Program => self.t_prog,
            crate::NandCommandKind::Erase => self.t_bers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NandCommandKind;

    #[test]
    fn named_presets_round_trip() {
        for (name, timing) in NandTiming::PRESETS {
            assert_eq!(NandTiming::named(name), Some(timing));
            assert_eq!(timing.preset_name(), Some(name));
        }
        assert_eq!(NandTiming::named("qlc"), None);
        let custom = NandTiming {
            t_r: SimDuration::from_micros(7),
            ..NandTiming::z_nand()
        };
        assert_eq!(custom.preset_name(), None);
    }

    #[test]
    fn presets_match_table1() {
        let z = NandTiming::z_nand();
        assert_eq!(z.t_r, SimDuration::from_micros(3));
        assert_eq!(z.t_prog, SimDuration::from_micros(100));
        assert_eq!(z.t_bers, SimDuration::from_millis(1));
        let t = NandTiming::tlc_3d();
        assert_eq!(t.t_r, SimDuration::from_micros(45));
        assert_eq!(t.t_prog, SimDuration::from_micros(650));
        assert_eq!(t.t_bers.as_nanos(), 3_500_000);
    }

    #[test]
    fn latency_dispatch() {
        let z = NandTiming::z_nand();
        assert_eq!(z.latency(NandCommandKind::Read), z.t_r);
        assert_eq!(z.latency(NandCommandKind::Program), z.t_prog);
        assert_eq!(z.latency(NandCommandKind::Erase), z.t_bers);
    }
}
