//! The Venice router chip: crossbar ports and the router reservation table
//! of Figure 7.
//!
//! Each flash node carries a router chip next to (not inside) the flash
//! chip. The router has four mesh ports (RIGHT/UP/DOWN/LEFT) plus
//! injection/ejection ports to the local flash chip, and a small
//! *router reservation table* that records, per in-flight packet ID, which
//! entry port is circuit-connected to which exit port. The table has one row
//! per flash controller because the packet ID equals the source controller
//! ID, bounding the number of simultaneous reservations.

use crate::Direction;

/// A port of the router: one of the four mesh directions or the local
/// ejection port toward the flash chip. (The injection port is only ever
/// used by the locally attached controller and needs no arbitration.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Port {
    /// One of the four mesh directions.
    Mesh(Direction),
    /// The local port toward the flash chip.
    Ejection,
    /// The local port from the attached flash controller into the mesh.
    Injection,
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Port::Mesh(d) => write!(f, "{d}"),
            Port::Ejection => f.write_str("EJECT"),
            Port::Injection => f.write_str("INJECT"),
        }
    }
}

/// One row of the router reservation table (Figure 7): a packet ID and the
/// bidirectionally connected entry/exit ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReservationEntry {
    /// Packet ID (= source flash controller ID).
    pub packet_id: u8,
    /// Port the scout entered on.
    pub entry: Port,
    /// Port the scout left on.
    pub exit: Port,
}

/// The router reservation table: at most one row per flash controller.
///
/// # Example
///
/// ```
/// use venice_interconnect::router::{Port, ReservationTable};
/// use venice_interconnect::Direction;
///
/// let mut t = ReservationTable::new(8);
/// t.insert(5, Port::Mesh(Direction::Left), Port::Mesh(Direction::Right))
///     .unwrap();
/// assert!(t.entry(5).is_some());
/// t.remove(5);
/// assert!(t.entry(5).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct ReservationTable {
    rows: Vec<Option<ReservationEntry>>,
}

/// Error inserting into a full or conflicting reservation table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReservationError {
    /// The packet already holds a reservation in this router; a circuit may
    /// pass through a router only once per packet at any instant.
    AlreadyReserved(u8),
    /// Packet ID beyond the table capacity.
    PacketIdOutOfRange(u8),
}

impl std::fmt::Display for ReservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReservationError::AlreadyReserved(id) => {
                write!(f, "packet {id} already reserved in this router")
            }
            ReservationError::PacketIdOutOfRange(id) => {
                write!(f, "packet id {id} out of table range")
            }
        }
    }
}

impl std::error::Error for ReservationError {}

impl ReservationTable {
    /// Creates a table with one row per flash controller.
    pub fn new(controllers: usize) -> Self {
        ReservationTable {
            rows: vec![None; controllers],
        }
    }

    /// Number of rows (the controller count).
    pub fn capacity(&self) -> usize {
        self.rows.len()
    }

    /// Number of valid rows.
    pub fn occupied(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// Looks up the reservation held by `packet_id`, if any.
    pub fn entry(&self, packet_id: u8) -> Option<ReservationEntry> {
        self.rows.get(usize::from(packet_id)).copied().flatten()
    }

    /// Records a bidirectional entry↔exit connection for `packet_id`.
    ///
    /// # Errors
    ///
    /// Fails if the packet already holds a row here (a legal circuit visits
    /// a router at most once at any instant) or the ID is out of range.
    pub fn insert(&mut self, packet_id: u8, entry: Port, exit: Port) -> Result<(), ReservationError> {
        let slot = self
            .rows
            .get_mut(usize::from(packet_id))
            .ok_or(ReservationError::PacketIdOutOfRange(packet_id))?;
        if slot.is_some() {
            return Err(ReservationError::AlreadyReserved(packet_id));
        }
        *slot = Some(ReservationEntry {
            packet_id,
            entry,
            exit,
        });
        Ok(())
    }

    /// Clears the reservation of `packet_id` (cancel mode / circuit release).
    /// Removing an absent row is a no-op, mirroring the idempotent cancel
    /// behavior of the hardware.
    pub fn remove(&mut self, packet_id: u8) {
        if let Some(slot) = self.rows.get_mut(usize::from(packet_id)) {
            *slot = None;
        }
    }

    /// Iterates over the valid rows.
    pub fn iter(&self) -> impl Iterator<Item = &ReservationEntry> {
        self.rows.iter().filter_map(|r| r.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut t = ReservationTable::new(8);
        t.insert(3, Port::Mesh(Direction::Left), Port::Ejection)
            .unwrap();
        let e = t.entry(3).unwrap();
        assert_eq!(e.packet_id, 3);
        assert_eq!(e.entry, Port::Mesh(Direction::Left));
        assert_eq!(e.exit, Port::Ejection);
        assert_eq!(t.occupied(), 1);
        t.remove(3);
        assert_eq!(t.occupied(), 0);
        assert!(t.entry(3).is_none());
    }

    #[test]
    fn double_insert_rejected() {
        let mut t = ReservationTable::new(4);
        t.insert(1, Port::Injection, Port::Mesh(Direction::Right))
            .unwrap();
        assert_eq!(
            t.insert(1, Port::Injection, Port::Mesh(Direction::Up)),
            Err(ReservationError::AlreadyReserved(1))
        );
    }

    #[test]
    fn out_of_range_packet_rejected() {
        let mut t = ReservationTable::new(4);
        assert_eq!(
            t.insert(4, Port::Injection, Port::Ejection),
            Err(ReservationError::PacketIdOutOfRange(4))
        );
    }

    #[test]
    fn remove_is_idempotent() {
        let mut t = ReservationTable::new(2);
        t.remove(0);
        t.remove(7); // out of range: still a no-op
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    fn capacity_bounds_simultaneous_packets() {
        let mut t = ReservationTable::new(8);
        for id in 0..8u8 {
            t.insert(id, Port::Injection, Port::Ejection).unwrap();
        }
        assert_eq!(t.occupied(), 8);
        assert_eq!(t.capacity(), 8);
        assert_eq!(t.iter().count(), 8);
    }
}
