//! Scout packets: the two-flit path-reservation probes of §4.2 (Figure 6) —
//! and the generation-stamped **scout fast-fail cache** that memoizes
//! failed path reservations between attempts.
//!
//! A scout packet consists of two 8-bit flits. Each flit carries a 2-bit
//! type field: the most significant bit distinguishes header (`0`) from tail
//! (`1`), the least significant bit distinguishes cancel (`0`) from reserve
//! (`1`) mode. The header flit's remaining 6 bits carry the destination
//! flash chip ID (enough for 64 chips); the tail flit carries the 3-bit
//! source flash-controller ID, which doubles as the packet ID.
//!
//! # The fast-fail cache
//!
//! Congested big-mesh Venice runs are scout-walk-bound: every retry of a
//! doomed request re-runs a full DFS over the same saturated region and
//! fails the same way. [`ScoutCache`] turns those repeats into O(frontier
//! tiles) rejections. When a walk fails, the fabric records a
//! [`FailedWalk`] — the walk's frontier extent, a snapshot of the mesh's
//! reservation-change sequence, and the failure's observable outputs
//! (steps, misroutes, LFSR draws, the advanced/source-blocked verdict) — in
//! a dense per-`(controller, destination)` slot. The next attempt for the
//! same pair consults the slot: while every router in the extent still
//! carries a generation stamp ≤ the snapshot
//! ([`crate::mesh::MeshState::region_changed_since`]), the mesh is
//! bit-identical to how the failed walk observed it, so the verdict — and,
//! crucially, the LFSR draw count — replay exactly; the DFS is skipped.
//! Any reservation change (install *or* release) intersecting the extent
//! invalidates the entry.
//!
//! Replay exactness rests on two soundness rules, and each slot holds one
//! entry per 2-bit-LFSR phase (the register has exactly three states) to
//! exploit both:
//!
//! 1. **Cap-free failures are phase-invariant.** A walk that never pruned
//!    a port on the livelock entry cap
//!    ([`crate::mesh::ScoutFailure::cap_pruned`] false) exhausted an
//!    order-invariant tree: its verdict, steps, and draw count do not
//!    depend on the LFSR phase the retry starts from, so the entry hits
//!    from *any* phase.
//! 2. **Capped failures are phase-exact.** A walk that did hit the cap
//!    explores an order-dependent tree — but the walk is still a
//!    deterministic function of (observed region, starting phase), so its
//!    entry replays exactly when the retry starts from the *same* phase.
//!    Profiling shows these are the walks that matter: on congested
//!    16×16 meshes capped walks are ~18% of failures but ~90% of
//!    failed-walk steps (~720 steps each).
//!
//! [`ScoutCacheKind::Checked`] re-runs the full walk beside every cache
//! verdict and asserts they agree — including, for rule 1, hits taken
//! from a different phase than the recording walk's.

use crate::mesh::MeshState;
use crate::{FcId, NodeId};

/// Reservation mode of a scout packet (bit 0 of the type field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScoutMode {
    /// Cancel a previous reservation while backtracking.
    Cancel,
    /// Reserve links along the path.
    Reserve,
}

/// A decoded scout packet.
///
/// # Example
///
/// ```
/// use venice_interconnect::{FcId, NodeId};
/// use venice_interconnect::scout::{ScoutMode, ScoutPacket};
///
/// let p = ScoutPacket::new(FcId(5), NodeId(37), ScoutMode::Reserve);
/// let bytes = p.encode();
/// assert_eq!(ScoutPacket::decode(bytes).unwrap(), p);
/// assert_eq!(p.packet_id(), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScoutPacket {
    /// Source flash controller (also the packet ID).
    pub source: FcId,
    /// Destination flash node.
    pub destination: NodeId,
    /// Reserve or cancel mode.
    pub mode: ScoutMode,
}

/// Errors produced when decoding a malformed scout packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoutDecodeError {
    /// First byte did not have the header-flit type bit pattern.
    NotAHeaderFlit,
    /// Second byte did not have the tail-flit type bit pattern.
    NotATailFlit,
    /// Header and tail flits disagreed on reserve/cancel mode.
    ModeMismatch,
}

impl std::fmt::Display for ScoutDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScoutDecodeError::NotAHeaderFlit => "first flit is not a header flit",
            ScoutDecodeError::NotATailFlit => "second flit is not a tail flit",
            ScoutDecodeError::ModeMismatch => "header and tail flits disagree on mode",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ScoutDecodeError {}

impl ScoutPacket {
    /// Number of bytes (flits) in a scout packet.
    pub const WIRE_BYTES: u64 = 2;

    /// Creates a scout packet.
    ///
    /// # Panics
    ///
    /// Panics if the destination does not fit in 6 bits (the Figure 6 layout
    /// supports 64 flash chips) or the controller in 3 bits (8 controllers).
    pub fn new(source: FcId, destination: NodeId, mode: ScoutMode) -> Self {
        assert!(destination.0 < 64, "destination must fit in 6 bits");
        assert!(source.0 < 8, "controller id must fit in 3 bits");
        ScoutPacket {
            source,
            destination,
            mode,
        }
    }

    /// The packet ID: equal to the source flash-controller ID (§4.2), so at
    /// most `n_controllers` scouts can be in flight simultaneously.
    pub fn packet_id(&self) -> u8 {
        self.source.0
    }

    /// Encodes to the Figure 6 wire format: `[header_flit, tail_flit]`.
    pub fn encode(&self) -> [u8; 2] {
        let mode_bit = match self.mode {
            ScoutMode::Cancel => 0,
            ScoutMode::Reserve => 1,
        };
        // Header flit: type (0b0M) in bits 7..6, destination in bits 5..0.
        let header = (mode_bit << 6) | (self.destination.0 as u8 & 0x3F);
        // Tail flit: type (0b1M) in bits 7..6, source FC in bits 5..3.
        let tail = (0b10 << 6) | (mode_bit << 6) | ((self.source.0 & 0x7) << 3);
        [header, tail]
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`ScoutDecodeError`] if the flit type bits are malformed or
    /// the two flits disagree on the mode.
    pub fn decode(bytes: [u8; 2]) -> Result<Self, ScoutDecodeError> {
        let [header, tail] = bytes;
        if header >> 7 != 0 {
            return Err(ScoutDecodeError::NotAHeaderFlit);
        }
        if tail >> 7 != 1 {
            return Err(ScoutDecodeError::NotATailFlit);
        }
        let header_mode = (header >> 6) & 1;
        let tail_mode = (tail >> 6) & 1;
        if header_mode != tail_mode {
            return Err(ScoutDecodeError::ModeMismatch);
        }
        Ok(ScoutPacket {
            source: FcId((tail >> 3) & 0x7),
            destination: NodeId(u16::from(header & 0x3F)),
            mode: if header_mode == 1 {
                ScoutMode::Reserve
            } else {
                ScoutMode::Cancel
            },
        })
    }

    /// Returns a copy of this packet switched to cancel mode (what a router
    /// does when the scout cannot find a free link and must backtrack).
    pub fn cancelled(self) -> Self {
        ScoutPacket {
            mode: ScoutMode::Cancel,
            ..self
        }
    }
}

/// Whether the Venice fabric runs the scout fast-fail cache (an
/// `SsdConfig` knob and sweep axis, like the dispatch policy and scan kind).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ScoutCacheKind {
    /// No cache: every acquisition attempt runs the full scout walk (the
    /// pre-cache engine, and the default).
    #[default]
    Off,
    /// Fast-fail from valid cache entries without re-running the DFS.
    /// Simulated behavior is bit-identical to `Off` (verdicts, conflict
    /// accounting, scout-step stats, and the LFSR stream all replay); only
    /// the new `scout_fastfails` / `scout_cache_invalidations` effort
    /// counters differ.
    On,
    /// Run the full walk *alongside* every cache verdict and assert the two
    /// agree (verdict, steps, misroutes, LFSR draws) — the randomized
    /// cross-check mode; behavior is exactly `Off`'s.
    Checked,
}

impl ScoutCacheKind {
    /// All kinds, in presentation order.
    pub const ALL: [ScoutCacheKind; 3] = [
        ScoutCacheKind::Off,
        ScoutCacheKind::On,
        ScoutCacheKind::Checked,
    ];

    /// Stable label used in sweep-point labels, manifests, and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ScoutCacheKind::Off => "cache-off",
            ScoutCacheKind::On => "cache-on",
            ScoutCacheKind::Checked => "cache-checked",
        }
    }

    /// Looks a kind up by its label (or the bare `off`/`on`/`checked`),
    /// case-insensitively — the manifest/CLI round-trip constructor.
    pub fn by_label(label: &str) -> Option<ScoutCacheKind> {
        ScoutCacheKind::ALL.into_iter().find(|k| {
            k.label().eq_ignore_ascii_case(label)
                || k.label()["cache-".len()..].eq_ignore_ascii_case(label)
        })
    }
}

impl std::fmt::Display for ScoutCacheKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One memoized failed path reservation: everything needed to replay the
/// failure without the DFS, plus the validity condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailedWalk {
    /// Bounding box `(min_row, max_row, min_col, max_col)` of every router
    /// the failed walk entered; any reservation change stamping a router in
    /// this box invalidates the entry.
    pub extent: (u16, u16, u16, u16),
    /// [`MeshState::change_seq`] snapshot at record time: the entry is
    /// valid while no stamp inside the extent exceeds it.
    pub seq: u64,
    /// Steps the recorded walk took (replayed into the scout-step stats).
    pub steps: u32,
    /// Misroute selections the recorded walk made.
    pub misroutes: u32,
    /// LFSR bits the recorded walk consumed — replayed via
    /// [`venice_sim::rng::Lfsr2::advance`] so the fast-fail leaves the
    /// register exactly where the real walk would have.
    pub lfsr_draws: u32,
    /// The [`crate::mesh::ScoutFailure::advanced`] verdict (scout-exhausted
    /// vs source-blocked conflict reason).
    pub advanced: bool,
    /// The 2-bit LFSR state the recorded walk started from (1..=3).
    pub phase: u8,
    /// Whether the recorded walk pruned on the livelock entry cap. Capped
    /// entries replay only from [`FailedWalk::phase`]; cap-free entries
    /// replay from any phase (module docs, soundness rules 1 and 2).
    pub cap_pruned: bool,
}

/// The generation-stamped scout fast-fail cache: one dense slot per
/// `(controller, destination chip)` pair, with one sub-entry per LFSR
/// phase — slab/dense storage per the workspace's hot-path rule, no hash
/// maps.
#[derive(Clone, Debug)]
pub struct ScoutCache {
    nodes: usize,
    /// `slots[fc * nodes + dst][phase - 1]`.
    slots: Vec<[Option<FailedWalk>; 3]>,
    /// Entries dropped because a reservation change intersected their
    /// extent (the `scout_cache_invalidations` stat).
    invalidations: u64,
}

impl ScoutCache {
    /// Creates an empty cache for `controllers` packet IDs over a
    /// `nodes`-router mesh.
    pub fn new(controllers: usize, nodes: usize) -> Self {
        ScoutCache {
            nodes,
            slots: vec![[None; 3]; controllers * nodes],
            invalidations: 0,
        }
    }

    #[inline]
    fn idx(&self, fc: FcId, dst: NodeId) -> usize {
        usize::from(fc.0) * self.nodes + usize::from(dst.0)
    }

    /// Consults the cache for an attempt from controller `fc` to `dst`
    /// whose walk would start from LFSR state `phase`, validating entries
    /// against the mesh's generation stamps (stale entries are dropped and
    /// counted as invalidations). Returns a hit when the pair has a valid
    /// entry recorded from the same phase, or a valid cap-free entry from
    /// any phase (phase-invariant — soundness rule 1).
    pub fn lookup(
        &mut self,
        fc: FcId,
        dst: NodeId,
        phase: u8,
        mesh: &MeshState,
    ) -> Option<FailedWalk> {
        debug_assert!((1..=3).contains(&phase), "2-bit LFSR state is 1..=3");
        let idx = self.idx(fc, dst);
        let own = usize::from(phase - 1);
        // Own-phase sub-entry first (always usable), then the other two
        // (usable only when cap-free). Entries this attempt could not use
        // anyway (wrong-phase capped ones) are not validated — they are
        // dropped lazily when their own phase next probes them — so a
        // lookup performs at most one full extent scan per usable entry.
        for probe in 0..3usize {
            let i = (own + probe) % 3;
            let Some(fw) = self.slots[idx][i] else { continue };
            if probe != 0 && fw.cap_pruned {
                continue;
            }
            if mesh.region_changed_since(fw.seq, fw.extent) {
                self.slots[idx][i] = None;
                self.invalidations += 1;
                continue;
            }
            // Fast-forward the snapshot: the region is unchanged between
            // the stored sequence and now, so the entry is equally valid
            // with the current one — and the next lookup can take the
            // O(1) global-sequence shortcut instead of re-scanning.
            let entry = self.slots[idx][i].as_mut().expect("entry present");
            entry.seq = mesh.change_seq();
            return Some(*entry);
        }
        None
    }

    /// Records a failed walk for the pair under the phase it started from.
    pub fn record(&mut self, fc: FcId, dst: NodeId, walk: FailedWalk) {
        debug_assert!((1..=3).contains(&walk.phase));
        let idx = self.idx(fc, dst);
        self.slots[idx][usize::from(walk.phase - 1)] = Some(walk);
    }

    /// Entries dropped so far because a reservation change intersected
    /// their extent.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// The entry cached for a pair at `phase`, if any (diagnostics/tests).
    pub fn entry(&self, fc: FcId, dst: NodeId, phase: u8) -> Option<FailedWalk> {
        self.slots[self.idx(fc, dst)][usize::from(phase - 1)]
    }

    /// Number of live entries (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.iter().filter(|e| e.is_some()).count())
            .sum()
    }

    /// True when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_fields() {
        for fc in 0..8u8 {
            for dst in [0u16, 1, 31, 63] {
                for mode in [ScoutMode::Reserve, ScoutMode::Cancel] {
                    let p = ScoutPacket::new(FcId(fc), NodeId(dst), mode);
                    assert_eq!(ScoutPacket::decode(p.encode()).unwrap(), p);
                }
            }
        }
    }

    #[test]
    fn figure6_bit_layout() {
        let p = ScoutPacket::new(FcId(0b101), NodeId(0b10_1101), ScoutMode::Reserve);
        let [header, tail] = p.encode();
        // Header: type=01 (header, reserve), destination 0b101101.
        assert_eq!(header, 0b0110_1101);
        // Tail: type=11 (tail, reserve), source FC 0b101, 3 unused zero bits.
        assert_eq!(tail, 0b1110_1000);
    }

    #[test]
    fn cancel_mode_flips_bit() {
        let p = ScoutPacket::new(FcId(1), NodeId(2), ScoutMode::Reserve).cancelled();
        assert_eq!(p.mode, ScoutMode::Cancel);
        let [header, tail] = p.encode();
        assert_eq!(header >> 6, 0b00);
        assert_eq!(tail >> 6, 0b10);
    }

    #[test]
    fn decode_rejects_malformed() {
        // Two header flits.
        assert_eq!(
            ScoutPacket::decode([0b0100_0000, 0b0100_0000]),
            Err(ScoutDecodeError::NotATailFlit)
        );
        // Two tail flits.
        assert_eq!(
            ScoutPacket::decode([0b1100_0000, 0b1100_0000]),
            Err(ScoutDecodeError::NotAHeaderFlit)
        );
        // Mode mismatch.
        assert_eq!(
            ScoutPacket::decode([0b0100_0000, 0b1000_0000]),
            Err(ScoutDecodeError::ModeMismatch)
        );
    }

    #[test]
    #[should_panic(expected = "6 bits")]
    fn oversized_destination_rejected() {
        ScoutPacket::new(FcId(0), NodeId(64), ScoutMode::Reserve);
    }

    #[test]
    #[should_panic(expected = "3 bits")]
    fn oversized_controller_rejected() {
        ScoutPacket::new(FcId(8), NodeId(0), ScoutMode::Reserve);
    }

    #[test]
    fn cache_kind_labels_round_trip() {
        for kind in ScoutCacheKind::ALL {
            assert_eq!(ScoutCacheKind::by_label(kind.label()), Some(kind));
        }
        // Bare forms are accepted for CLI ergonomics.
        assert_eq!(ScoutCacheKind::by_label("on"), Some(ScoutCacheKind::On));
        assert_eq!(ScoutCacheKind::by_label("OFF"), Some(ScoutCacheKind::Off));
        assert_eq!(
            ScoutCacheKind::by_label("Checked"),
            Some(ScoutCacheKind::Checked)
        );
        assert_eq!(ScoutCacheKind::by_label("warp"), None);
        assert_eq!(ScoutCacheKind::default(), ScoutCacheKind::Off);
    }

    #[test]
    fn cache_hits_until_a_change_intersects_the_extent() {
        use crate::Mesh2D;
        let mut mesh = MeshState::new(Mesh2D::new(4, 4), 4);
        let mut cache = ScoutCache::new(4, 16);
        assert!(cache.is_empty());
        let fc = FcId(1);
        let dst = NodeId(7);
        // Record a cap-free failure observed over rows 0..=1 × cols 0..=2
        // at the current change sequence, from LFSR phase 2.
        let walk = FailedWalk {
            extent: (0, 1, 0, 2),
            seq: mesh.change_seq(),
            steps: 9,
            misroutes: 2,
            lfsr_draws: 5,
            advanced: true,
            phase: 2,
            cap_pruned: false,
        };
        cache.record(fc, dst, walk);
        assert_eq!(cache.len(), 1);
        // A hit fast-forwards the entry's snapshot to the current change
        // sequence (sound: the region is unchanged in between), so compare
        // hits modulo `seq`.
        let content = |w: FailedWalk| FailedWalk { seq: 0, ..w };
        // Cap-free entries hit from their own phase and from any other.
        assert_eq!(cache.lookup(fc, dst, 2, &mesh).map(content), Some(walk));
        assert_eq!(cache.lookup(fc, dst, 1, &mesh).map(content), Some(walk));
        // A reservation change outside the extent leaves the entry valid,
        // and the hit advances its snapshot past the unrelated change.
        let topo = mesh.topology();
        let far = mesh.reserve_explicit(0, &[topo.node_at(3, 0), topo.node_at(3, 1)]);
        let hit = cache.lookup(fc, dst, 2, &mesh).expect("far change keeps entry");
        assert_eq!(content(hit), walk);
        assert_eq!(hit.seq, mesh.change_seq(), "snapshot fast-forwarded");
        mesh.release(&far);
        assert_eq!(cache.lookup(fc, dst, 2, &mesh).map(content), Some(walk));
        assert_eq!(cache.invalidations(), 0);
        // A release intersecting the extent invalidates and drops it.
        let inside = mesh.reserve_explicit(0, &[topo.node_at(1, 1), topo.node_at(1, 2)]);
        assert_eq!(cache.lookup(fc, dst, 2, &mesh), None);
        assert_eq!(cache.invalidations(), 1);
        assert!(cache.is_empty());
        mesh.release(&inside);
        // Slots are per (controller, destination): other pairs unaffected.
        let walk2 = FailedWalk {
            seq: mesh.change_seq(),
            ..walk
        };
        cache.record(fc, dst, walk2);
        assert_eq!(cache.lookup(FcId(2), dst, 2, &mesh), None);
        assert_eq!(cache.lookup(fc, NodeId(8), 2, &mesh), None);
        assert_eq!(cache.entry(fc, dst, 2).map(|w| w.steps), Some(9));
    }

    #[test]
    fn capped_entries_only_replay_from_their_own_phase() {
        use crate::Mesh2D;
        let mesh = MeshState::new(Mesh2D::new(4, 4), 4);
        let mut cache = ScoutCache::new(4, 16);
        let fc = FcId(0);
        let dst = NodeId(5);
        let capped = FailedWalk {
            extent: (0, 3, 0, 3),
            seq: 0,
            steps: 700,
            misroutes: 40,
            lfsr_draws: 90,
            advanced: true,
            phase: 1,
            cap_pruned: true,
        };
        cache.record(fc, dst, capped);
        // Same phase: exact replay allowed.
        assert_eq!(cache.lookup(fc, dst, 1, &mesh), Some(capped));
        // Different phase: a capped walk is order-dependent — no hit.
        assert_eq!(cache.lookup(fc, dst, 2, &mesh), None);
        assert_eq!(cache.lookup(fc, dst, 3, &mesh), None);
        // Per-phase sub-slots coexist: record the other phases and every
        // retry phase hits its own entry.
        cache.record(fc, dst, FailedWalk { phase: 2, ..capped });
        cache.record(fc, dst, FailedWalk { phase: 3, ..capped });
        assert_eq!(cache.len(), 3);
        for phase in 1..=3u8 {
            assert_eq!(
                cache.lookup(fc, dst, phase, &mesh).map(|w| w.phase),
                Some(phase)
            );
        }
    }
}
