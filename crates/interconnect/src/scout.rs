//! Scout packets: the two-flit path-reservation probes of §4.2 (Figure 6).
//!
//! A scout packet consists of two 8-bit flits. Each flit carries a 2-bit
//! type field: the most significant bit distinguishes header (`0`) from tail
//! (`1`), the least significant bit distinguishes cancel (`0`) from reserve
//! (`1`) mode. The header flit's remaining 6 bits carry the destination
//! flash chip ID (enough for 64 chips); the tail flit carries the 3-bit
//! source flash-controller ID, which doubles as the packet ID.

use crate::{FcId, NodeId};

/// Reservation mode of a scout packet (bit 0 of the type field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScoutMode {
    /// Cancel a previous reservation while backtracking.
    Cancel,
    /// Reserve links along the path.
    Reserve,
}

/// A decoded scout packet.
///
/// # Example
///
/// ```
/// use venice_interconnect::{FcId, NodeId};
/// use venice_interconnect::scout::{ScoutMode, ScoutPacket};
///
/// let p = ScoutPacket::new(FcId(5), NodeId(37), ScoutMode::Reserve);
/// let bytes = p.encode();
/// assert_eq!(ScoutPacket::decode(bytes).unwrap(), p);
/// assert_eq!(p.packet_id(), 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScoutPacket {
    /// Source flash controller (also the packet ID).
    pub source: FcId,
    /// Destination flash node.
    pub destination: NodeId,
    /// Reserve or cancel mode.
    pub mode: ScoutMode,
}

/// Errors produced when decoding a malformed scout packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoutDecodeError {
    /// First byte did not have the header-flit type bit pattern.
    NotAHeaderFlit,
    /// Second byte did not have the tail-flit type bit pattern.
    NotATailFlit,
    /// Header and tail flits disagreed on reserve/cancel mode.
    ModeMismatch,
}

impl std::fmt::Display for ScoutDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScoutDecodeError::NotAHeaderFlit => "first flit is not a header flit",
            ScoutDecodeError::NotATailFlit => "second flit is not a tail flit",
            ScoutDecodeError::ModeMismatch => "header and tail flits disagree on mode",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ScoutDecodeError {}

impl ScoutPacket {
    /// Number of bytes (flits) in a scout packet.
    pub const WIRE_BYTES: u64 = 2;

    /// Creates a scout packet.
    ///
    /// # Panics
    ///
    /// Panics if the destination does not fit in 6 bits (the Figure 6 layout
    /// supports 64 flash chips) or the controller in 3 bits (8 controllers).
    pub fn new(source: FcId, destination: NodeId, mode: ScoutMode) -> Self {
        assert!(destination.0 < 64, "destination must fit in 6 bits");
        assert!(source.0 < 8, "controller id must fit in 3 bits");
        ScoutPacket {
            source,
            destination,
            mode,
        }
    }

    /// The packet ID: equal to the source flash-controller ID (§4.2), so at
    /// most `n_controllers` scouts can be in flight simultaneously.
    pub fn packet_id(&self) -> u8 {
        self.source.0
    }

    /// Encodes to the Figure 6 wire format: `[header_flit, tail_flit]`.
    pub fn encode(&self) -> [u8; 2] {
        let mode_bit = match self.mode {
            ScoutMode::Cancel => 0,
            ScoutMode::Reserve => 1,
        };
        // Header flit: type (0b0M) in bits 7..6, destination in bits 5..0.
        let header = (mode_bit << 6) | (self.destination.0 as u8 & 0x3F);
        // Tail flit: type (0b1M) in bits 7..6, source FC in bits 5..3.
        let tail = (0b10 << 6) | (mode_bit << 6) | ((self.source.0 & 0x7) << 3);
        [header, tail]
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// Returns a [`ScoutDecodeError`] if the flit type bits are malformed or
    /// the two flits disagree on the mode.
    pub fn decode(bytes: [u8; 2]) -> Result<Self, ScoutDecodeError> {
        let [header, tail] = bytes;
        if header >> 7 != 0 {
            return Err(ScoutDecodeError::NotAHeaderFlit);
        }
        if tail >> 7 != 1 {
            return Err(ScoutDecodeError::NotATailFlit);
        }
        let header_mode = (header >> 6) & 1;
        let tail_mode = (tail >> 6) & 1;
        if header_mode != tail_mode {
            return Err(ScoutDecodeError::ModeMismatch);
        }
        Ok(ScoutPacket {
            source: FcId((tail >> 3) & 0x7),
            destination: NodeId(u16::from(header & 0x3F)),
            mode: if header_mode == 1 {
                ScoutMode::Reserve
            } else {
                ScoutMode::Cancel
            },
        })
    }

    /// Returns a copy of this packet switched to cancel mode (what a router
    /// does when the scout cannot find a free link and must backtrack).
    pub fn cancelled(self) -> Self {
        ScoutPacket {
            mode: ScoutMode::Cancel,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_fields() {
        for fc in 0..8u8 {
            for dst in [0u16, 1, 31, 63] {
                for mode in [ScoutMode::Reserve, ScoutMode::Cancel] {
                    let p = ScoutPacket::new(FcId(fc), NodeId(dst), mode);
                    assert_eq!(ScoutPacket::decode(p.encode()).unwrap(), p);
                }
            }
        }
    }

    #[test]
    fn figure6_bit_layout() {
        let p = ScoutPacket::new(FcId(0b101), NodeId(0b10_1101), ScoutMode::Reserve);
        let [header, tail] = p.encode();
        // Header: type=01 (header, reserve), destination 0b101101.
        assert_eq!(header, 0b0110_1101);
        // Tail: type=11 (tail, reserve), source FC 0b101, 3 unused zero bits.
        assert_eq!(tail, 0b1110_1000);
    }

    #[test]
    fn cancel_mode_flips_bit() {
        let p = ScoutPacket::new(FcId(1), NodeId(2), ScoutMode::Reserve).cancelled();
        assert_eq!(p.mode, ScoutMode::Cancel);
        let [header, tail] = p.encode();
        assert_eq!(header >> 6, 0b00);
        assert_eq!(tail >> 6, 0b10);
    }

    #[test]
    fn decode_rejects_malformed() {
        // Two header flits.
        assert_eq!(
            ScoutPacket::decode([0b0100_0000, 0b0100_0000]),
            Err(ScoutDecodeError::NotATailFlit)
        );
        // Two tail flits.
        assert_eq!(
            ScoutPacket::decode([0b1100_0000, 0b1100_0000]),
            Err(ScoutDecodeError::NotAHeaderFlit)
        );
        // Mode mismatch.
        assert_eq!(
            ScoutPacket::decode([0b0100_0000, 0b1000_0000]),
            Err(ScoutDecodeError::ModeMismatch)
        );
    }

    #[test]
    #[should_panic(expected = "6 bits")]
    fn oversized_destination_rejected() {
        ScoutPacket::new(FcId(0), NodeId(64), ScoutMode::Reserve);
    }

    #[test]
    #[should_panic(expected = "3 bits")]
    fn oversized_controller_rejected() {
        ScoutPacket::new(FcId(8), NodeId(0), ScoutMode::Reserve);
    }
}
