//! Analytical power and area model of the interconnect (Table 4 and §6.6).
//!
//! The paper measures the router with a synthesized UMC-65nm HDL model and
//! the links with ORION 3.0; this module encodes those published constants
//! and derives the paper's headline overhead numbers:
//!
//! * each router: 0.241 mW average power, 614 µm² core area, ~8 mm² on the
//!   PCB once 40 I/O pads (0.2 mm pads, 0.2 mm spacing) are accounted for —
//!   8% of a typical 100 mm² NAND flash chip,
//! * each link: 1.08 mW for a 4 KiB page transfer — 90% less than a shared
//!   channel bus — and 0.04× the area of a shared channel,
//! * an 8×8 mesh needs 112 links vs 8 shared channels, so total link area is
//!   `1 − 112·0.04 / 8·1 = 44%` *lower* than the baseline bus area.

/// Electrical power constants used by the fabric energy accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkPower {
    /// Power of one mesh link while transferring, in mW (paper: 1.08 mW for
    /// a 4 KiB page transfer).
    pub link_mw: f64,
    /// Power of a shared channel bus while transferring, in mW (the paper
    /// states a link consumes 90% less than a bus → 10.8 mW).
    pub bus_mw: f64,
    /// Power of one Venice router while switching a circuit, in mW.
    pub router_mw: f64,
    /// Power of one NoSSD buffered router (16 KiB of buffer per port makes
    /// it substantially hungrier than Venice's bufferless router).
    pub buffered_router_mw: f64,
}

impl LinkPower {
    /// The paper's published constants.
    pub const fn paper() -> Self {
        LinkPower {
            link_mw: 1.08,
            bus_mw: 10.8,
            router_mw: 0.241,
            buffered_router_mw: 2.41,
        }
    }
}

impl Default for LinkPower {
    fn default() -> Self {
        Self::paper()
    }
}

/// Geometric constants for the PCB area model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// Router core area from HDL synthesis, in µm².
    pub router_core_um2: f64,
    /// Number of I/O pins per router chip.
    pub router_pins: u32,
    /// I/O pad edge length, in mm.
    pub pad_mm: f64,
    /// Safety spacing between pads, in mm.
    pub pad_spacing_mm: f64,
    /// Typical NAND flash chip footprint, in mm².
    pub flash_chip_mm2: f64,
    /// Area of one mesh link relative to one shared channel bus.
    pub link_vs_channel_area: f64,
    /// Multiplier for escape routing and keep-out around the pads.
    pub wiring_overhead: f64,
}

impl AreaModel {
    /// The paper's published constants (§6.6).
    pub const fn paper() -> Self {
        AreaModel {
            router_core_um2: 614.0,
            router_pins: 40,
            pad_mm: 0.2,
            pad_spacing_mm: 0.2,
            flash_chip_mm2: 100.0,
            link_vs_channel_area: 0.04,
            wiring_overhead: 1.25,
        }
    }

    /// PCB footprint of one router chip, dominated by its I/O pads: each pad
    /// occupies a `(pad + spacing)²` cell, and escape routing adds the
    /// wiring-overhead multiplier. The synthesized core (614 µm²) is
    /// negligible next to the pads — exactly the paper's point that the pads,
    /// not the logic, set the 8 mm² footprint.
    pub fn router_pcb_mm2(&self) -> f64 {
        let pitch = self.pad_mm + self.pad_spacing_mm;
        let pads = self.router_pins as f64 * pitch * pitch;
        let core = self.router_core_um2 / 1e6;
        (pads + core) * self.wiring_overhead
    }

    /// Router PCB area as a fraction of the flash chip footprint (the
    /// paper's "8% of a typical 100 mm² NAND flash chip").
    pub fn router_overhead_fraction(&self) -> f64 {
        self.router_pcb_mm2() / self.flash_chip_mm2
    }

    /// Total link-area change of an `rows × cols` mesh versus the baseline's
    /// `rows` shared channels: positive values mean the mesh uses *less*
    /// area (the paper's 0.44 for 8×8 — a 44% reduction).
    pub fn link_area_reduction(&self, rows: u16, cols: u16) -> f64 {
        let mesh = crate::Mesh2D::new(rows, cols);
        let links = mesh.link_count() as f64;
        let channels = f64::from(rows);
        1.0 - (links * self.link_vs_channel_area) / channels
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// One row of the paper's Table 4.
#[derive(Clone, Debug, PartialEq)]
pub struct Table4Row {
    /// Component name.
    pub component: &'static str,
    /// Instances per flash node.
    pub instances: &'static str,
    /// Average power for a 4 KiB page transfer, mW.
    pub avg_power_mw: f64,
    /// Area description.
    pub area: String,
}

/// Produces the two rows of Table 4 from the models.
pub fn table4(power: &LinkPower, area: &AreaModel) -> Vec<Table4Row> {
    vec![
        Table4Row {
            component: "Router",
            instances: "1 per flash node",
            avg_power_mw: power.router_mw,
            area: format!(
                "{:.0}% of flash chip area",
                area.router_overhead_fraction() * 100.0
            ),
        },
        Table4Row {
            component: "Link",
            instances: "Up to 4 per flash node",
            avg_power_mw: power.link_mw,
            area: format!("{:.2}x flash channel area", area.link_vs_channel_area),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_pcb_area_matches_paper() {
        let a = AreaModel::paper();
        // The paper quotes ~8 mm², i.e. 8% of a 100 mm² flash chip.
        let mm2 = a.router_pcb_mm2();
        assert!((7.5..=8.5).contains(&mm2), "router PCB area {mm2} mm²");
        let frac = a.router_overhead_fraction();
        assert!((0.075..=0.085).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn link_area_reduction_is_44_percent_for_8x8() {
        let a = AreaModel::paper();
        let r = a.link_area_reduction(8, 8);
        assert!((r - 0.44).abs() < 1e-9, "got {r}");
    }

    #[test]
    fn link_power_is_90_percent_below_bus() {
        let p = LinkPower::paper();
        assert!((p.link_mw / p.bus_mw - 0.1).abs() < 1e-9);
    }

    #[test]
    fn table4_rows_match_constants() {
        let rows = table4(&LinkPower::paper(), &AreaModel::paper());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].component, "Router");
        assert!((rows[0].avg_power_mw - 0.241).abs() < 1e-12);
        assert_eq!(rows[1].component, "Link");
        assert!((rows[1].avg_power_mw - 1.08).abs() < 1e-12);
    }
}
