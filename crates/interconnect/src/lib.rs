//! Intra-SSD communication fabrics for the Venice reproduction.
//!
//! This crate implements the paper's contribution and every fabric it is
//! compared against, behind the uniform [`Fabric`] interface:
//!
//! * the **Baseline** multi-channel shared bus, **pSSD** (2× bandwidth) and
//!   **pnSSD** (row + column buses) of Kim et al.,
//! * **NoSSD** — a 2D mesh of buffered routers with deterministic
//!   dimension-order routing (Tavakkol et al.),
//! * **Venice** — router chips beside each flash chip, *scout packet* path
//!   reservation ([`scout`]), router reservation tables ([`router`]), and
//!   the non-minimal fully-adaptive routing algorithm of the paper's
//!   Algorithm 1 ([`mesh::MeshState::scout_walk`]) over circuit-switched
//!   bidirectional links,
//! * the **Ideal** path-conflict-free SSD used as the upper bound.
//!
//! The [`area_power`] module encodes the paper's Table 4 power/area
//! constants and derives the §6.6 overhead results.
//!
//! # Example: reserving a conflict-free path the Venice way
//!
//! ```
//! use venice_interconnect::mesh::MeshState;
//! use venice_interconnect::{Mesh2D, NodeId};
//! use venice_sim::rng::Lfsr2;
//!
//! let mut mesh = MeshState::new(Mesh2D::new(8, 8), 8);
//! let mut lfsr = Lfsr2::new();
//! let (path, outcome) = mesh
//!     .scout_walk(0, NodeId(0), NodeId(63), &mut lfsr)
//!     .expect("idle mesh always has a path");
//! assert_eq!(path.hops(), 14); // minimal Manhattan route
//! assert!(!outcome.detoured);
//! mesh.release(&path);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area_power;
mod fabric;
pub mod mesh;
pub mod router;
pub mod scout;
mod topology;

pub use area_power::{table4, AreaModel, LinkPower, Table4Row};
pub use fabric::{
    build_fabric, AcquireError, ConflictReason, Fabric, FabricFault, FabricKind, FabricParams,
    FabricStats, FaultImpact, FreedResource, PathGrant, ReleaseInfo,
};
pub use scout::{FailedWalk, ScoutCache, ScoutCacheKind};
pub use topology::{Direction, FcId, LinkId, Mesh2D, NodeId};
