//! Shared mesh state: link reservations, router reservation tables, and the
//! two routing algorithms (Venice's non-minimal fully-adaptive scout walk,
//! and dimension-order XY used by NoSSD).

use venice_sim::rng::Lfsr2;

use crate::router::{Port, ReservationTable};
use crate::{Direction, LinkId, Mesh2D, NodeId};

/// A reserved circuit through the mesh: the ordered nodes and links from the
/// source (controller attach) node to the destination flash node.
///
/// Paths handed out by [`MeshState::scout_walk`] / [`MeshState::xy_path`]
/// draw their `nodes`/`links` buffers from the mesh's internal pool; return
/// them with [`MeshState::release_owned`] (or [`MeshState::recycle`] for
/// never-reserved paths) to keep steady-state routing allocation-free.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReservedPath {
    /// Packet ID (= source controller ID) holding the reservation.
    pub packet_id: u8,
    /// Nodes visited, source first, destination last.
    pub nodes: Vec<NodeId>,
    /// Links reserved, in traversal order (`nodes.len() - 1` of them).
    pub links: Vec<LinkId>,
}

impl ReservedPath {
    /// Number of router-to-router hops.
    pub fn hops(&self) -> u32 {
        self.links.len() as u32
    }

    /// Bounding box of the path's nodes as `(min_row, max_row, min_col,
    /// max_col)` in `topo` — the *mesh region* a release reports on its
    /// wake list (any chip whose route could cross this box may have been
    /// unblocked by freeing these links).
    ///
    /// # Panics
    ///
    /// Panics if the path is empty (granted paths never are: they carry at
    /// least the source node).
    pub fn extent(&self, topo: &crate::Mesh2D) -> (u16, u16, u16, u16) {
        assert!(!self.nodes.is_empty(), "extent of an empty path");
        let mut ext = (u16::MAX, 0u16, u16::MAX, 0u16);
        for &n in &self.nodes {
            let (r, c) = (topo.row(n), topo.col(n));
            ext = (ext.0.min(r), ext.1.max(r), ext.2.min(c), ext.3.max(c));
        }
        ext
    }
}

/// Why a scout walk failed to reserve a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScoutFailure {
    /// Total forward/backtrack steps taken before giving up.
    pub steps: u32,
    /// True when the scout made it past the source router before being
    /// cancelled — the blockage sits deep in the mesh. False means every
    /// usable port out of the source was already held: purely local
    /// congestion that a different controller choice might sidestep.
    pub advanced: bool,
    /// Misroute (non-minimal port) selections made before giving up.
    pub misroutes: u32,
    /// LFSR bits the walk consumed (tie-breaks + misroute picks).
    pub lfsr_draws: u32,
    /// True when the livelock entry cap rejected at least one port that
    /// passed every other usability test. A capped walk's exploration tree
    /// depends on visit order (and therefore on the LFSR phase it started
    /// from), so its failure is **not cacheable**: only cap-free failures
    /// have phase-invariant verdict/steps/draws (see
    /// [`crate::scout::ScoutCache`]).
    pub cap_pruned: bool,
    /// Bounding box `(min_row, max_row, min_col, max_col)` of every router
    /// the scout *entered*. Every link whose state the walk observed has at
    /// least one endpoint in this box, so any later reservation-state change
    /// inside the box is a superset of the changes that could alter the
    /// walk's outcome — the fast-fail cache's invalidation extent.
    pub extent: (u16, u16, u16, u16),
}

/// Outcome statistics of a successful scout walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScoutOutcome {
    /// Steps taken, counting forward moves and backtracks.
    pub steps: u32,
    /// True if the walk ever had to misroute (take a non-minimal port) or
    /// backtrack — i.e. a minimal path was not cleanly available.
    pub detoured: bool,
    /// Misroute (non-minimal port) selections made along the way.
    pub misroutes: u32,
    /// LFSR bits the walk consumed (tie-breaks + misroute picks).
    pub lfsr_draws: u32,
}

/// One DFS frame of a scout walk.
#[derive(Clone, Debug)]
struct Frame {
    node: NodeId,
    entry: Port,
    /// Output directions already attempted from this frame.
    tried: [bool; 4],
}

/// Mutable reservation state of a 2D-mesh interconnect: per-link owner and
/// per-router reservation tables.
///
/// Used by both the Venice fabric (scout walks + circuit switching) and the
/// NoSSD fabric (XY paths). All mutation is instantaneous from the
/// simulation's perspective; the caller charges the appropriate wire
/// latencies.
///
/// The mesh owns reusable scout scratch (per-router entry counters, the DFS
/// stack) and a pool of [`ReservedPath`] buffers, so steady-state routing
/// performs no heap allocation.
#[derive(Clone, Debug)]
pub struct MeshState {
    topo: Mesh2D,
    /// `Some(packet_id)` when reserved.
    links: Vec<Option<u8>>,
    routers: Vec<ReservationTable>,
    controllers: usize,
    /// Scout scratch: per-router entry counts (livelock bound), zeroed at
    /// the start of every walk.
    scout_entries: Vec<u8>,
    /// Scout scratch: the DFS stack.
    scout_stack: Vec<Frame>,
    /// Recycled `ReservedPath` buffers.
    path_pool: Vec<ReservedPath>,
    /// Precomputed adjacency: `adj[node][dir]` is the neighbor and
    /// connecting link, or `None` at the mesh edge. Avoids the row/column
    /// arithmetic of [`Mesh2D::neighbor`] in the scout inner loop.
    adj: Vec<[Option<(NodeId, LinkId)>; 4]>,
    /// Fault mask: `true` for links taken down by a fault event. A downed
    /// link rejects new reservations (scout walks and XY circuits alike)
    /// until repaired; a circuit already holding the link drains normally
    /// and the link stays blocked after its release.
    link_down: Vec<bool>,
    /// Fault mask: `true` for routers taken down by a fault event. The
    /// scout DFS refuses to *enter* a downed router and
    /// [`MeshState::try_reserve_path`] rejects paths crossing one.
    router_down: Vec<bool>,
    /// Monotone change sequence: bumped once per reservation-state change
    /// (a circuit installed or released). Failed scout walks restore every
    /// link they touched and do **not** bump it.
    change_seq: u64,
    /// Per-router generation stamp: the [`MeshState::change_seq`] value of
    /// the last reservation change that touched the router. A region whose
    /// stamps are all ≤ some snapshot is bit-identical to how it looked at
    /// snapshot time — the contract the scout fast-fail cache keys on.
    stamps: Vec<u64>,
    /// Second level over [`MeshState::stamps`]: the maximum stamp in each
    /// mesh row, so a validity scan skips whole clean rows in O(1) — on a
    /// saturated 32×32 mesh a fast-fail's extent is often the entire mesh,
    /// and without this tier the O(rows × cols) tile scan eats a good part
    /// of the skipped walk's savings.
    row_stamps: Vec<u64>,
}

impl MeshState {
    /// Creates an idle mesh with `controllers` packet IDs per router table.
    pub fn new(topo: Mesh2D, controllers: usize) -> Self {
        MeshState {
            topo,
            links: vec![None; topo.link_count()],
            routers: (0..topo.node_count())
                .map(|_| ReservationTable::new(controllers))
                .collect(),
            controllers,
            scout_entries: vec![0; topo.node_count()],
            scout_stack: Vec::new(),
            path_pool: Vec::new(),
            adj: (0..topo.node_count())
                .map(|n| {
                    Direction::ALL.map(|d| {
                        let nb = topo.neighbor(NodeId(n as u16), d)?;
                        let link = topo.link(NodeId(n as u16), d)?;
                        Some((nb, link))
                    })
                })
                .collect(),
            link_down: vec![false; topo.link_count()],
            router_down: vec![false; topo.node_count()],
            change_seq: 0,
            stamps: vec![0; topo.node_count()],
            row_stamps: vec![0; usize::from(topo.rows())],
        }
    }

    /// The current reservation-change sequence number (see
    /// [`MeshState::region_changed_since`]). Snapshot it when recording a
    /// failed-walk cache entry.
    pub fn change_seq(&self) -> u64 {
        self.change_seq
    }

    /// The change-sequence stamp of the last reservation change touching
    /// router `n` (0 when never touched).
    pub fn node_stamp(&self, n: NodeId) -> u64 {
        self.stamps[n.0 as usize]
    }

    /// True when any router inside the `(min_row, max_row, min_col,
    /// max_col)` box has seen a reservation change after `snapshot` — the
    /// O(extent tiles) validity test of the scout fast-fail cache.
    pub fn region_changed_since(
        &self,
        snapshot: u64,
        extent: (u16, u16, u16, u16),
    ) -> bool {
        // Every reservation change stamps at least one router, so an
        // unchanged global sequence proves the whole mesh — a fortiori any
        // region — is untouched: the O(1) common case for retries landing
        // between two fabric state changes.
        if self.change_seq <= snapshot {
            return false;
        }
        let (min_row, max_row, min_col, max_col) = extent;
        let full_width = min_col == 0 && max_col + 1 == self.topo.cols();
        for r in min_row..=max_row {
            // Row tier: a row whose maximum stamp is ≤ the snapshot cannot
            // contain a changed tile; a dirty full-width row is decisive.
            if self.row_stamps[usize::from(r)] <= snapshot {
                continue;
            }
            if full_width {
                return true;
            }
            for c in min_col..=max_col {
                if self.stamps[self.topo.node_at(r, c).0 as usize] > snapshot {
                    return true;
                }
            }
        }
        false
    }

    /// Records one reservation-state change touching `nodes`: bumps the
    /// change sequence and stamps every touched router with it. Both
    /// installing and releasing a circuit stamp its nodes — a fast-fail
    /// verdict is only replayable while the observed region is unchanged in
    /// *either* direction (a freed link could un-block the walk; a newly
    /// reserved one would change its exploration and LFSR draws).
    fn stamp_nodes(&mut self, nodes: &[NodeId]) {
        self.change_seq += 1;
        let seq = self.change_seq;
        for &n in nodes {
            self.stamps[n.0 as usize] = seq;
            self.row_stamps[usize::from(self.topo.row(n))] = seq;
        }
    }

    /// Takes an empty path buffer from the pool (or allocates one).
    fn pooled_path(&mut self, packet_id: u8) -> ReservedPath {
        let mut p = self.path_pool.pop().unwrap_or_default();
        p.packet_id = packet_id;
        debug_assert!(p.nodes.is_empty() && p.links.is_empty());
        p
    }

    /// Returns a path's buffers to the pool **without** touching any
    /// reservations (for paths that were never, or are no longer, reserved).
    pub fn recycle(&mut self, mut path: ReservedPath) {
        path.nodes.clear();
        path.links.clear();
        // Bound pool growth; in steady state there is one path per
        // controller plus a few transients.
        if self.path_pool.len() < 4 * self.controllers + 8 {
            self.path_pool.push(path);
        }
    }

    /// Releases a circuit and recycles its buffers: the allocation-free
    /// steady-state variant of [`MeshState::release`].
    pub fn release_owned(&mut self, path: ReservedPath) {
        self.release(&path);
        self.recycle(path);
    }

    /// The mesh topology.
    pub fn topology(&self) -> Mesh2D {
        self.topo
    }

    /// Number of controllers (packet ID space).
    pub fn controllers(&self) -> usize {
        self.controllers
    }

    /// True if the link is currently unreserved **and** not masked down by
    /// a fault: the single gate every reservation path (scout walk, XY
    /// circuit, explicit reserve) goes through.
    pub fn link_free(&self, l: LinkId) -> bool {
        self.links[l.0 as usize].is_none() && !self.link_down[l.0 as usize]
    }

    /// True when the link is masked down by a fault.
    pub fn link_is_down(&self, l: LinkId) -> bool {
        self.link_down[l.0 as usize]
    }

    /// True when the router is masked down by a fault.
    pub fn router_is_down(&self, n: NodeId) -> bool {
        self.router_down[n.0 as usize]
    }

    /// Sets the fault mask of the link between adjacent nodes `a` and `b`
    /// (in either order); `up = false` takes it down, `up = true` repairs
    /// it. Both transitions stamp the link's endpoint routers — the
    /// fault-event contract: a cached scout verdict that observed the link
    /// entered at least one endpoint, so stamping both endpoints
    /// invalidates every intersecting [`crate::scout::ScoutCache`] extent
    /// (a downed link can newly block a walk; a repaired one can un-block
    /// it). Returns `false` when `a` and `b` are not adjacent.
    pub fn set_link_state(&mut self, a: NodeId, b: NodeId, up: bool) -> bool {
        let Some(link) = Direction::ALL
            .into_iter()
            .find(|&d| self.topo.neighbor(a, d) == Some(b))
            .and_then(|d| self.topo.link(a, d))
        else {
            return false;
        };
        let down = !up;
        if self.link_down[link.0 as usize] != down {
            self.link_down[link.0 as usize] = down;
            self.stamp_nodes(&[a, b]);
        }
        true
    }

    /// Sets the fault mask of router `n`; `up = false` takes it down,
    /// `up = true` repairs it. Both transitions stamp the router **and all
    /// its neighbors**: a walk blocked while trying to enter `n` only has
    /// the neighbor it probed from in its recorded extent, so stamping `n`
    /// alone would leave that cached verdict replayable against changed
    /// state.
    pub fn set_router_state(&mut self, n: NodeId, up: bool) {
        let down = !up;
        if self.router_down[n.0 as usize] == down {
            return;
        }
        self.router_down[n.0 as usize] = down;
        let mut touched = [n; 5];
        let mut count = 1;
        for d in Direction::ALL {
            if let Some((nb, _)) = self.adj[n.0 as usize][d.index()] {
                touched[count] = nb;
                count += 1;
            }
        }
        self.stamp_nodes(&touched[..count]);
    }

    /// Which packet holds a link, if any.
    pub fn link_owner(&self, l: LinkId) -> Option<u8> {
        self.links[l.0 as usize]
    }

    /// Number of currently reserved links.
    pub fn reserved_link_count(&self) -> usize {
        self.links.iter().filter(|l| l.is_some()).count()
    }

    /// Read access to a router's reservation table (for diagnostics/tests).
    pub fn router(&self, n: NodeId) -> &ReservationTable {
        &self.routers[n.0 as usize]
    }

    /// Reserves an explicit node path for `packet_id` (test/scenario setup;
    /// the Venice fabric itself reserves via [`MeshState::scout_walk`]).
    ///
    /// # Panics
    ///
    /// Panics if consecutive nodes are not adjacent, a link is already
    /// reserved, or a router already holds a row for this packet.
    pub fn reserve_explicit(&mut self, packet_id: u8, nodes: &[NodeId]) -> ReservedPath {
        assert!(!nodes.is_empty(), "path must contain at least one node");
        let mut links = Vec::with_capacity(nodes.len().saturating_sub(1));
        let mut entry = Port::Injection;
        for w in nodes.windows(2) {
            let dir = Direction::ALL
                .into_iter()
                .find(|&d| self.topo.neighbor(w[0], d) == Some(w[1]))
                .expect("consecutive nodes must be adjacent");
            let link = self.topo.link(w[0], dir).expect("adjacent nodes share a link");
            assert!(self.link_free(link), "link {link} already reserved");
            self.links[link.0 as usize] = Some(packet_id);
            self.routers[w[0].0 as usize]
                .insert(packet_id, entry, Port::Mesh(dir))
                .expect("router row free");
            entry = Port::Mesh(dir.opposite());
            links.push(link);
        }
        let last = *nodes.last().expect("non-empty");
        self.routers[last.0 as usize]
            .insert(packet_id, entry, Port::Ejection)
            .expect("router row free");
        self.stamp_nodes(nodes);
        ReservedPath {
            packet_id,
            nodes: nodes.to_vec(),
            links,
        }
    }

    /// Releases a circuit: frees its links and clears its router rows.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the path's links were not owned by its packet —
    /// that would indicate reservation bookkeeping corruption.
    pub fn release(&mut self, path: &ReservedPath) {
        for &l in &path.links {
            debug_assert_eq!(self.links[l.0 as usize], Some(path.packet_id));
            self.links[l.0 as usize] = None;
        }
        for &n in &path.nodes {
            self.routers[n.0 as usize].remove(path.packet_id);
        }
        self.stamp_nodes(&path.nodes);
    }

    /// The dimension-order (XY) path from `src` to `dst`: X (columns) first,
    /// then Y (rows) — NoSSD's deterministic minimal route.
    ///
    /// The returned path draws its buffers from the mesh's pool; hand it
    /// back with [`MeshState::recycle`] / [`MeshState::release_owned`] to
    /// keep routing allocation-free.
    pub fn xy_path(&mut self, src: NodeId, dst: NodeId) -> ReservedPath {
        let mut path = self.pooled_path(0);
        path.nodes.push(src);
        let mut cur = src;
        loop {
            let dc = i32::from(self.topo.col(dst)) - i32::from(self.topo.col(cur));
            let dr = i32::from(self.topo.row(dst)) - i32::from(self.topo.row(cur));
            let dir = if dc > 0 {
                Direction::Right
            } else if dc < 0 {
                Direction::Left
            } else if dr > 0 {
                Direction::Down
            } else if dr < 0 {
                Direction::Up
            } else {
                break;
            };
            path.links.push(self.topo.link(cur, dir).expect("in-mesh step"));
            cur = self.topo.neighbor(cur, dir).expect("in-mesh step");
            path.nodes.push(cur);
        }
        path
    }

    /// True when `path` crosses a fault-masked resource (a downed link or
    /// router): the reservation failure is *structural*, not contention —
    /// retrying the same route cannot succeed until a repair event. With no
    /// faults injected this is always `false`, so fault-aware callers (the
    /// NoSSD controller fallback) behave identically to the pre-fault code.
    pub fn path_fault_blocked(&self, path: &ReservedPath) -> bool {
        path.nodes.iter().any(|&n| self.router_down[n.0 as usize])
            || path.links.iter().any(|&l| self.link_down[l.0 as usize])
    }

    /// Attempts to atomically reserve an explicit path (used by the NoSSD
    /// fabric for its XY circuits). Returns `false` — reserving nothing —
    /// if any link on the path is busy.
    pub fn try_reserve_path(&mut self, packet_id: u8, path: &ReservedPath) -> bool {
        if path.nodes.iter().any(|&n| self.router_down[n.0 as usize]) {
            return false;
        }
        if !path.links.iter().all(|&l| self.link_free(l)) {
            return false;
        }
        for &l in &path.links {
            self.links[l.0 as usize] = Some(packet_id);
        }
        // NoSSD routers are buffered and have no reservation table; rows are
        // only maintained for the Venice walk, so nothing to record here.
        self.stamp_nodes(&path.nodes);
        true
    }

    /// Venice's path reservation: routes a scout packet from `src` to `dst`
    /// with the non-minimal fully-adaptive algorithm (Algorithm 1), reserving
    /// links as it goes, backtracking in cancel mode when stuck, and bounding
    /// revisits per router (livelock rule: at most 3 revisits, i.e. 4 entries).
    ///
    /// On success the path's links are left reserved for `packet_id` and the
    /// corresponding router-reservation-table rows are installed; the caller
    /// later frees them with [`MeshState::release`]. On failure all tentative
    /// reservations have been cancelled and the mesh is unchanged.
    ///
    /// `lfsr` provides the 2-bit hardware tie-break between two minimal
    /// candidate ports.
    ///
    /// # Errors
    ///
    /// [`ScoutFailure`] when every feasible port assignment was exhausted
    /// (the scout returned to the source controller in cancel mode).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` are out of the mesh or `packet_id` exceeds
    /// the controller count.
    pub fn scout_walk(
        &mut self,
        packet_id: u8,
        src: NodeId,
        dst: NodeId,
        lfsr: &mut Lfsr2,
    ) -> Result<(ReservedPath, ScoutOutcome), ScoutFailure> {
        self.scout_walk_opts(packet_id, src, dst, lfsr, true)
    }

    /// [`MeshState::scout_walk`] with the non-minimal misrouting stage made
    /// optional (`allow_misroute = false` restricts the scout to minimal
    /// ports plus backtracking — the ablation of §4.3's key technique).
    pub fn scout_walk_opts(
        &mut self,
        packet_id: u8,
        src: NodeId,
        dst: NodeId,
        lfsr: &mut Lfsr2,
        allow_misroute: bool,
    ) -> Result<(ReservedPath, ScoutOutcome), ScoutFailure> {
        assert!((src.0 as usize) < self.topo.node_count(), "src out of mesh");
        assert!((dst.0 as usize) < self.topo.node_count(), "dst out of mesh");
        assert!(
            usize::from(packet_id) < self.controllers,
            "packet id out of range"
        );

        // Reusable scratch: take the buffers out of `self` for the duration
        // of the walk (the walk itself needs `&mut self` for reservations).
        let mut entries = std::mem::take(&mut self.scout_entries);
        let mut stack = std::mem::take(&mut self.scout_stack);
        let result =
            self.scout_walk_dfs(packet_id, src, dst, lfsr, allow_misroute, &mut entries, &mut stack);
        self.scout_entries = entries;
        self.scout_stack = stack;
        result
    }

    /// The DFS body of [`MeshState::scout_walk_opts`], operating on the
    /// caller-provided scratch buffers.
    #[allow(clippy::too_many_arguments)]
    fn scout_walk_dfs(
        &mut self,
        packet_id: u8,
        src: NodeId,
        dst: NodeId,
        lfsr: &mut Lfsr2,
        allow_misroute: bool,
        entries: &mut Vec<u8>,
        stack: &mut Vec<Frame>,
    ) -> Result<(ReservedPath, ScoutOutcome), ScoutFailure> {
        // Livelock bound: a scout may enter a router at most `1 + 3` times
        // (ports minus the entry port, per the paper's §4.3 footnote).
        const MAX_ENTRIES_PER_ROUTER: u8 = 4;
        entries.clear();
        entries.resize(self.topo.node_count(), 0);
        entries[src.0 as usize] = 1;

        stack.clear();
        stack.push(Frame {
            node: src,
            entry: Port::Injection,
            tried: [false; 4],
        });
        let mut steps: u32 = 0;
        let mut detoured = false;
        let mut advanced = false;
        let mut misroutes: u32 = 0;
        let mut lfsr_draws: u32 = 0;
        let mut cap_pruned = false;
        // Bounding box of entered routers (the fast-fail cache's extent).
        let (src_r, src_c) = (self.topo.row(src), self.topo.col(src));
        let mut extent = (src_r, src_r, src_c, src_c);
        // Hard safety net: the DFS tries each (router, port) pair at most
        // once per episode, so steps are bounded; guard against logic bugs.
        let step_cap = (self.topo.node_count() as u32) * 16 + 64;

        loop {
            steps += 1;
            assert!(steps <= step_cap, "scout walk exceeded step bound");
            let frame = stack.last().expect("stack never empties before return");
            let cur = frame.node;

            if cur == dst {
                // Destination reached: install the ejection row and return.
                self.routers[cur.0 as usize]
                    .insert(packet_id, frame.entry, Port::Ejection)
                    .expect("destination router row must be free");
                let mut path = self.pooled_path(packet_id);
                path.nodes.extend(stack.iter().map(|f| f.node));
                // Each non-source frame's entry port names the link taken
                // from its parent.
                for (i, f) in stack.iter().enumerate().skip(1) {
                    let Port::Mesh(entry_dir) = f.entry else {
                        unreachable!("non-source frames enter on a mesh port")
                    };
                    let (nb, link) = self.adj[stack[i - 1].node.0 as usize]
                        [entry_dir.opposite().index()]
                    .expect("path steps are adjacent");
                    debug_assert_eq!(nb, f.node);
                    path.links.push(link);
                }
                self.stamp_nodes(&path.nodes);
                return Ok((
                    path,
                    ScoutOutcome {
                        steps,
                        detoured,
                        misroutes,
                        lfsr_draws,
                    },
                ));
            }

            // Candidate output ports, Algorithm 1: minimal first.
            let diff_x = i32::from(self.topo.col(dst)) - i32::from(self.topo.col(cur));
            let diff_y = i32::from(self.topo.row(dst)) - i32::from(self.topo.row(cur));
            let mut minimal: [Option<Direction>; 2] = [None, None];
            let mut n_min = 0;
            // Row index grows downward, so positive diff_y means Down.
            let mut push_min = |d: Direction| {
                minimal[n_min] = Some(d);
                n_min += 1;
            };
            if diff_x > 0 {
                push_min(Direction::Right);
            } else if diff_x < 0 {
                push_min(Direction::Left);
            }
            if diff_y > 0 {
                push_min(Direction::Down);
            } else if diff_y < 0 {
                push_min(Direction::Up);
            }

            // Port usability, with the livelock-cap rejection reported
            // separately: a cap rejection makes the walk's exploration
            // order-dependent, which disqualifies its failure from the
            // fast-fail cache (see `ScoutFailure::cap_pruned`).
            #[derive(Clone, Copy, PartialEq, Eq)]
            enum PortCheck {
                Usable,
                Blocked,
                CapPruned,
            }
            let check = |state: &Self,
                         frame: &Frame,
                         entries: &[u8],
                         d: Direction|
             -> PortCheck {
                if frame.tried[d.index()] {
                    return PortCheck::Blocked;
                }
                let Some((nb, link)) = state.adj[cur.0 as usize][d.index()] else {
                    return PortCheck::Blocked;
                };
                // Fault mask: a downed router is never entered (and
                // `link_free` below already folds in downed links).
                if state.router_down[nb.0 as usize] {
                    return PortCheck::Blocked;
                }
                if !state.link_free(link) {
                    return PortCheck::Blocked; // incl. our own partial path
                }
                // A circuit may cross a router only once (one table row per
                // packet), and the livelock rule bounds re-entries.
                if state.routers[nb.0 as usize].entry(packet_id).is_some() {
                    return PortCheck::Blocked;
                }
                if entries[nb.0 as usize] >= MAX_ENTRIES_PER_ROUTER {
                    return PortCheck::CapPruned;
                }
                PortCheck::Usable
            };

            let mut candidates: [Option<Direction>; 2] = [None, None];
            let mut n_cand = 0;
            for d in minimal.iter().flatten().copied() {
                match check(self, frame, entries, d) {
                    PortCheck::Usable => {
                        candidates[n_cand] = Some(d);
                        n_cand += 1;
                    }
                    PortCheck::CapPruned => cap_pruned = true,
                    PortCheck::Blocked => {}
                }
            }

            let choice = match n_cand {
                2 => {
                    // Two minimal candidates: LFSR tie-break (Alg. 1 line 28).
                    lfsr_draws += 1;
                    let pick = usize::from(lfsr.next_bit());
                    Some(candidates[pick].expect("two candidates present"))
                }
                1 => Some(candidates[0].expect("one candidate present")),
                _ => {
                    // No minimal port: misroute through any free port
                    // (Alg. 1 lines 34–45). Gather and pick pseudo-randomly.
                    let mut non_min: [Option<Direction>; 4] = [None; 4];
                    let mut n_non_min = 0usize;
                    if allow_misroute {
                        for d in Direction::ALL {
                            match check(self, frame, entries, d) {
                                PortCheck::Usable => {
                                    non_min[n_non_min] = Some(d);
                                    n_non_min += 1;
                                }
                                PortCheck::CapPruned => cap_pruned = true,
                                PortCheck::Blocked => {}
                            }
                        }
                    }
                    if n_non_min == 0 {
                        None
                    } else {
                        detoured = true;
                        misroutes += 1;
                        // Select with successive LFSR bits: cheap hardware
                        // equivalent of a uniform pick among ≤ 4 options.
                        lfsr_draws += 2;
                        let mut idx = usize::from(lfsr.next_bit()) * 2
                            + usize::from(lfsr.next_bit());
                        idx %= n_non_min;
                        Some(non_min[idx].expect("counted candidate"))
                    }
                }
            };

            match choice {
                Some(dir) => {
                    let frame = stack.last_mut().expect("nonempty");
                    frame.tried[dir.index()] = true;
                    let (nb, link) =
                        self.adj[cur.0 as usize][dir.index()].expect("usable link exists");
                    self.links[link.0 as usize] = Some(packet_id);
                    self.routers[cur.0 as usize]
                        .insert(packet_id, frame.entry, Port::Mesh(dir))
                        .expect("row free: circuit visits a router once");
                    entries[nb.0 as usize] += 1;
                    advanced = true;
                    let (r, c) = (self.topo.row(nb), self.topo.col(nb));
                    extent = (
                        extent.0.min(r),
                        extent.1.max(r),
                        extent.2.min(c),
                        extent.3.max(c),
                    );
                    stack.push(Frame {
                        node: nb,
                        entry: Port::Mesh(dir.opposite()),
                        tried: [false; 4],
                    });
                }
                None => {
                    // Dead end: backtrack in cancel mode (Alg. 1 line 47).
                    detoured = true;
                    let dead = stack.pop().expect("nonempty");
                    if stack.is_empty() {
                        // Scout arrived back at the controller: failure.
                        // The walk restored every link it touched, so no
                        // generation stamp moves — that is what lets the
                        // fast-fail cache treat "stamps unchanged" as "this
                        // exact failure replays".
                        return Err(ScoutFailure {
                            steps,
                            advanced,
                            misroutes,
                            lfsr_draws,
                            cap_pruned,
                            extent,
                        });
                    }
                    let parent = stack.last().expect("nonempty after pop");
                    // Cancel the parent's row and free the link we came over:
                    // the dead frame's entry port names that link's far end.
                    let Port::Mesh(entry_dir) = dead.entry else {
                        unreachable!("non-source frames enter on a mesh port")
                    };
                    let (nb, link) = self.adj[parent.node.0 as usize]
                        [entry_dir.opposite().index()]
                    .expect("parent adjacent to dead end");
                    debug_assert_eq!(nb, dead.node);
                    debug_assert_eq!(self.links[link.0 as usize], Some(packet_id));
                    self.links[link.0 as usize] = None;
                    self.routers[parent.node.0 as usize].remove(packet_id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(rows: u16, cols: u16) -> MeshState {
        MeshState::new(Mesh2D::new(rows, cols), rows as usize)
    }

    fn assert_path_valid(m: &MeshState, p: &ReservedPath, src: NodeId, dst: NodeId) {
        assert_eq!(*p.nodes.first().unwrap(), src);
        assert_eq!(*p.nodes.last().unwrap(), dst);
        assert_eq!(p.links.len() + 1, p.nodes.len());
        // Simple path: no repeated routers.
        let set: std::collections::HashSet<_> = p.nodes.iter().collect();
        assert_eq!(set.len(), p.nodes.len(), "circuit must not cross itself");
        // Every link owned by the packet.
        for &l in &p.links {
            assert_eq!(m.link_owner(l), Some(p.packet_id));
        }
    }

    #[test]
    fn scout_finds_minimal_path_in_idle_mesh() {
        let mut m = mesh(8, 8);
        let mut lfsr = Lfsr2::new();
        let src = m.topology().node_at(2, 0);
        let dst = m.topology().node_at(5, 6);
        let (p, out) = m.scout_walk(1, src, dst, &mut lfsr).unwrap();
        assert_path_valid(&m, &p, src, dst);
        assert_eq!(p.hops(), m.topology().manhattan(src, dst));
        assert!(!out.detoured);
        m.release(&p);
        assert_eq!(m.reserved_link_count(), 0);
    }

    #[test]
    fn scout_to_self_is_zero_hops() {
        let mut m = mesh(4, 4);
        let mut lfsr = Lfsr2::new();
        let n = m.topology().node_at(1, 0);
        let (p, _) = m.scout_walk(0, n, n, &mut lfsr).unwrap();
        assert_eq!(p.hops(), 0);
        // Ejection row installed even for the trivial path.
        assert!(m.router(n).entry(0).is_some());
        m.release(&p);
        assert!(m.router(n).entry(0).is_none());
    }

    #[test]
    fn figure8_scenario_non_minimal_route() {
        // The paper's Figure 8: 4×5 mesh, three circuits already reserved,
        // request R from FC3 to F2 must find a non-minimal conflict-free path.
        let m2 = Mesh2D::new(4, 5);
        let mut m = MeshState::new(m2, 4);
        let n = |i: u16| NodeId(i);
        // FC0 → F0 → F1 → F6
        m.reserve_explicit(0, &[n(0), n(1), n(6)]);
        // FC1 → F5 → F6 → F7 → F8
        m.reserve_explicit(1, &[n(5), n(6), n(7), n(8)]);
        // FC2 → F10 → F11 → F12 → F7
        m.reserve_explicit(2, &[n(10), n(11), n(12), n(7)]);

        let mut lfsr = Lfsr2::new();
        let src = n(15); // FC3 attaches at row 3, col 0 = F15
        let dst = n(2);
        let before = m.reserved_link_count();
        let (p, out) = m.scout_walk(3, src, dst, &mut lfsr).expect("a free path exists");
        assert_path_valid(&m, &p, src, dst);
        // Minimal distance is 5 but every minimal path is blocked, so the
        // scout must detour.
        assert!(p.hops() > m.topology().manhattan(src, dst));
        assert!(out.detoured);
        // Other circuits untouched.
        assert_eq!(m.reserved_link_count(), before + p.links.len());
        m.release(&p);
        assert_eq!(m.reserved_link_count(), before);
    }

    #[test]
    fn scout_fails_when_source_is_walled_in() {
        // Reserve every link around the source so no output port is free.
        let m2 = Mesh2D::new(3, 3);
        let mut m = MeshState::new(m2, 3);
        let src = m2.node_at(1, 0);
        // Wall: circuits that consume all three links incident to src.
        m.reserve_explicit(0, &[m2.node_at(0, 0), src, m2.node_at(2, 0)]);
        m.reserve_explicit(1, &[m2.node_at(1, 1), src]);
        let mut lfsr = Lfsr2::new();
        let err = m.scout_walk(2, src, m2.node_at(1, 2), &mut lfsr).unwrap_err();
        assert!(err.steps >= 1);
        // Failure must leave no residue for packet 2.
        assert!(m.router(src).entry(2).is_none());
        for l in 0..m2.link_count() as u32 {
            assert_ne!(m.link_owner(LinkId(l)), Some(2));
        }
    }

    #[test]
    fn concurrent_circuits_do_not_share_links() {
        let mut m = mesh(8, 8);
        let mut lfsr = Lfsr2::new();
        let t = m.topology();
        let mut paths = Vec::new();
        for fc in 0..8u8 {
            let src = t.fc_node(crate::FcId(fc));
            // Eight simultaneous full-row circuits: the mesh must sustain one
            // circuit per controller with zero link sharing.
            let dst = t.node_at(u16::from(fc), 7);
            let (p, _) = m.scout_walk(fc, src, dst, &mut lfsr).expect("mesh has capacity");
            paths.push(p);
        }
        let mut all_links = std::collections::HashSet::new();
        for p in &paths {
            for &l in &p.links {
                assert!(all_links.insert(l), "link {l} reserved by two circuits");
            }
        }
        for p in &paths {
            m.release(p);
        }
        assert_eq!(m.reserved_link_count(), 0);
    }

    #[test]
    fn xy_path_goes_x_then_y() {
        let mut m = mesh(8, 8);
        let t = m.topology();
        let p = m.xy_path(t.node_at(2, 0), t.node_at(5, 3));
        assert_eq!(p.hops(), 6);
        // First three steps move along the row (X), then down the column (Y).
        for i in 0..3 {
            assert_eq!(t.row(p.nodes[i]), 2);
        }
        for i in 3..p.nodes.len() {
            assert_eq!(t.col(p.nodes[i]), 3);
        }
    }

    #[test]
    fn try_reserve_path_is_atomic() {
        let mut m = mesh(4, 4);
        let t = m.topology();
        let p1 = m.xy_path(t.node_at(0, 0), t.node_at(0, 3));
        assert!(m.try_reserve_path(0, &p1));
        // Overlapping XY path cannot be reserved...
        let p2 = m.xy_path(t.node_at(0, 1), t.node_at(0, 2));
        assert!(!m.try_reserve_path(1, &p2));
        // ...and the failed attempt reserved nothing.
        let before: Vec<_> = (0..t.link_count() as u32)
            .map(|l| m.link_owner(LinkId(l)))
            .collect();
        assert!(!before.contains(&Some(1)));
        m.release(&ReservedPath { packet_id: 0, ..p1 });
        assert_eq!(m.reserved_link_count(), 0);
    }

    #[test]
    fn release_clears_router_rows() {
        let mut m = mesh(4, 4);
        let mut lfsr = Lfsr2::new();
        let t = m.topology();
        let (p, _) = m
            .scout_walk(2, t.node_at(2, 0), t.node_at(0, 3), &mut lfsr)
            .unwrap();
        for &n in &p.nodes {
            assert!(m.router(n).entry(2).is_some());
        }
        m.release(&p);
        for &n in &p.nodes {
            assert!(m.router(n).entry(2).is_none());
        }
    }

    #[test]
    fn generation_stamps_track_reservation_changes() {
        let mut m = mesh(4, 4);
        let t = m.topology();
        assert_eq!(m.change_seq(), 0);
        let p = m.reserve_explicit(0, &[t.node_at(1, 0), t.node_at(1, 1), t.node_at(1, 2)]);
        // Installing a circuit stamps exactly its nodes.
        assert_eq!(m.change_seq(), 1);
        for n in [t.node_at(1, 0), t.node_at(1, 1), t.node_at(1, 2)] {
            assert_eq!(m.node_stamp(n), 1);
        }
        assert_eq!(m.node_stamp(t.node_at(0, 0)), 0, "untouched router");
        // A region containing a stamped node is "changed since 0"...
        assert!(m.region_changed_since(0, (1, 1, 0, 2)));
        // ...but not since the stamp itself, and untouched regions never.
        assert!(!m.region_changed_since(1, (1, 1, 0, 2)));
        assert!(!m.region_changed_since(0, (3, 3, 0, 3)));
        // Releasing stamps the same nodes again with a new sequence.
        m.release(&p);
        assert_eq!(m.change_seq(), 2);
        assert!(m.region_changed_since(1, (1, 1, 0, 2)));
        // A failed walk is state-neutral: no stamp moves. Wall in a source
        // and fail a walk out of it.
        let mut m = mesh(3, 3);
        let t = m.topology();
        let src = t.node_at(1, 0);
        m.reserve_explicit(0, &[t.node_at(0, 0), src, t.node_at(2, 0)]);
        m.reserve_explicit(1, &[t.node_at(1, 1), src]);
        let seq = m.change_seq();
        let mut lfsr = Lfsr2::new();
        m.scout_walk(2, src, t.node_at(1, 2), &mut lfsr).unwrap_err();
        assert_eq!(m.change_seq(), seq, "failed walks must not stamp");
    }

    #[test]
    fn successful_walks_stamp_their_path() {
        let mut m = mesh(4, 4);
        let t = m.topology();
        let mut lfsr = Lfsr2::new();
        let (p, _) = m.scout_walk(0, t.node_at(0, 0), t.node_at(0, 3), &mut lfsr).unwrap();
        assert_eq!(m.change_seq(), 1);
        for &n in &p.nodes {
            assert_eq!(m.node_stamp(n), 1);
        }
        m.release(&p);
        assert_eq!(m.change_seq(), 2);
    }

    #[test]
    fn failed_walk_outcome_is_invariant_to_lfsr_phase() {
        // The fast-fail cache's soundness contract: for a cap-free failure
        // over an unchanged mesh region, the verdict, step count, misroute
        // count, and LFSR draw count must not depend on the LFSR phase the
        // walk starts from — that is what lets a fast-fail replay the
        // recorded draw count and keep the register stream bit-identical.
        // Build a deeply-blocked scenario (Figure 8 with the escape column
        // also walled) so the scout advances, wanders, and fails.
        let build = || {
            let m2 = Mesh2D::new(4, 5);
            let mut m = MeshState::new(m2, 4);
            let n = |i: u16| NodeId(i);
            m.reserve_explicit(0, &[n(0), n(1), n(2), n(3), n(4), n(9)]);
            m.reserve_explicit(1, &[n(5), n(6), n(7), n(8)]);
            m.reserve_explicit(2, &[n(10), n(11), n(12), n(13), n(14)]);
            m
        };
        let mut reference: Option<ScoutFailure> = None;
        for phase in 0..3u8 {
            let mut m = build();
            let mut lfsr = Lfsr2::with_seed(phase + 1);
            let before = m.reserved_link_count();
            let fail = m
                .scout_walk(3, NodeId(15), NodeId(4), &mut lfsr)
                .expect_err("destination is fully walled off");
            assert_eq!(m.reserved_link_count(), before, "failure is atomic");
            if fail.cap_pruned {
                continue; // capped walks are excluded from the invariant
            }
            match &reference {
                None => reference = Some(fail),
                Some(r) => {
                    assert_eq!(
                        (r.steps, r.misroutes, r.lfsr_draws, r.advanced, r.extent),
                        (
                            fail.steps,
                            fail.misroutes,
                            fail.lfsr_draws,
                            fail.advanced,
                            fail.extent
                        ),
                        "phase {phase}: cap-free failure must be phase-invariant"
                    );
                }
            }
        }
        let r = reference.expect("at least one cap-free failure");
        assert!(r.advanced, "the scout advanced past the source");
        assert!(r.steps > 1);
    }

    #[test]
    fn failure_extent_covers_every_entered_router() {
        // Wall in the source: the walk never leaves it, so the extent is
        // exactly the source tile.
        let m2 = Mesh2D::new(3, 3);
        let mut m = MeshState::new(m2, 3);
        let src = m2.node_at(1, 0);
        m.reserve_explicit(0, &[m2.node_at(0, 0), src, m2.node_at(2, 0)]);
        m.reserve_explicit(1, &[m2.node_at(1, 1), src]);
        let mut lfsr = Lfsr2::new();
        let fail = m.scout_walk(2, src, m2.node_at(1, 2), &mut lfsr).unwrap_err();
        assert!(!fail.advanced);
        assert_eq!(fail.extent, (1, 1, 0, 0), "source-blocked extent is one tile");
        assert_eq!(fail.lfsr_draws, 0, "no candidates, no draws");
        assert_eq!(fail.misroutes, 0);
    }

    #[test]
    fn downed_links_block_walks_and_stamp_on_both_transitions() {
        let mut m = mesh(4, 4);
        let t = m.topology();
        let mut lfsr = Lfsr2::new();
        let (a, b) = (t.node_at(1, 1), t.node_at(1, 2));
        // Taking the link down stamps both endpoints (cache invalidation).
        assert!(m.set_link_state(a, b, false));
        assert_eq!(m.change_seq(), 1);
        assert!(m.region_changed_since(0, (1, 1, 1, 1)));
        assert!(m.region_changed_since(0, (1, 1, 2, 2)));
        // The scout routes around the dead link instead of using it.
        let (p, out) = m
            .scout_walk(1, t.node_at(1, 0), t.node_at(1, 3), &mut lfsr)
            .expect("path diversity survives one dead link");
        assert!(p.hops() > t.manhattan(t.node_at(1, 0), t.node_at(1, 3)));
        assert!(out.detoured);
        for w in p.nodes.windows(2) {
            let uses_dead_link = (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a);
            assert!(!uses_dead_link);
        }
        m.release(&p);
        // An XY circuit over the dead link is rejected atomically.
        let xy = m.xy_path(t.node_at(1, 0), t.node_at(1, 3));
        assert!(!m.try_reserve_path(0, &xy));
        m.recycle(xy);
        // Repair stamps again and restores minimal routing.
        let seq = m.change_seq();
        assert!(m.set_link_state(b, a, true));
        assert!(m.change_seq() > seq, "repair must stamp too");
        assert!(m.region_changed_since(seq, (1, 1, 1, 2)));
        let (p, out) = m
            .scout_walk(1, t.node_at(1, 0), t.node_at(1, 3), &mut lfsr)
            .unwrap();
        assert_eq!(p.hops(), 3);
        assert!(!out.detoured);
        m.release(&p);
        // Redundant transitions are idempotent: no stamp churn.
        let seq = m.change_seq();
        assert!(m.set_link_state(a, b, true));
        assert_eq!(m.change_seq(), seq);
        // Non-adjacent nodes are rejected.
        assert!(!m.set_link_state(t.node_at(0, 0), t.node_at(2, 2), false));
    }

    #[test]
    fn downed_routers_are_never_entered_and_stamp_their_neighborhood() {
        let mut m = mesh(4, 4);
        let t = m.topology();
        let mut lfsr = Lfsr2::new();
        let dead = t.node_at(1, 1);
        m.set_router_state(dead, false);
        // The down transition stamps the router *and* its neighbors: a walk
        // blocked entering `dead` only recorded the probing neighbor in its
        // extent.
        for n in [dead, t.node_at(0, 1), t.node_at(2, 1), t.node_at(1, 0), t.node_at(1, 2)] {
            assert!(m.node_stamp(n) > 0, "neighborhood of {n} must be stamped");
        }
        let (p, _) = m
            .scout_walk(1, t.node_at(1, 0), t.node_at(1, 3), &mut lfsr)
            .expect("detour around the dead router exists");
        assert!(!p.nodes.contains(&dead));
        m.release(&p);
        // XY circuits crossing the dead router are rejected.
        let xy = m.xy_path(t.node_at(1, 0), t.node_at(1, 3));
        assert!(!m.try_reserve_path(0, &xy));
        m.recycle(xy);
        // A walk *to* the dead router fails without residue.
        let before = m.reserved_link_count();
        m.scout_walk(2, t.node_at(3, 0), dead, &mut lfsr).unwrap_err();
        assert_eq!(m.reserved_link_count(), before);
        // Repair restores direct routing through it.
        m.set_router_state(dead, true);
        let (p, _) = m
            .scout_walk(1, t.node_at(1, 0), t.node_at(1, 3), &mut lfsr)
            .unwrap();
        assert_eq!(p.hops(), 3);
        m.release(&p);
    }

    #[test]
    fn scout_respects_livelock_bound_and_terminates() {
        // Dense random traffic on a small mesh: every walk must terminate
        // (the step-cap assert inside scout_walk enforces the bound).
        let mut m = mesh(4, 4);
        let t = m.topology();
        let mut lfsr = Lfsr2::new();
        let mut rng = venice_sim::rng::Xorshift64Star::new(99);
        let mut live: Vec<ReservedPath> = Vec::new();
        for round in 0..500 {
            if !live.is_empty() && rng.next_bool(0.4) {
                let idx = rng.next_bounded(live.len() as u64) as usize;
                let p = live.swap_remove(idx);
                m.release(&p);
            }
            let fc = (round % 4) as u8;
            if live.iter().any(|p| p.packet_id == fc) {
                continue; // one in-flight circuit per controller
            }
            let src = t.fc_node(crate::FcId(fc));
            let dst = NodeId(rng.next_bounded(16) as u16);
            if let Ok((p, _)) = m.scout_walk(fc, src, dst, &mut lfsr) {
                live.push(p);
            }
        }
        for p in &live {
            m.release(p);
        }
        assert_eq!(m.reserved_link_count(), 0);
    }
}
