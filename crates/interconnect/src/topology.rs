//! 2D-mesh topology of flash nodes and flash-controller attach points.

use std::fmt;

/// A node (flash chip + router chip) in the interconnection network,
/// numbered row-major: node `r * cols + c` is at row `r`, column `c` —
/// matching the paper's Figure 8 labeling (`F0..F19` for a 4×5 mesh).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// Identifier of a flash controller. Controllers attach to the west edge of
/// the mesh, one per row (Figure 8: `FC0..FC3` on the left).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FcId(pub u8);

impl fmt::Display for FcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FC{}", self.0)
    }
}

/// One of the four mesh directions, with the paper's 2-bit port encoding
/// (Figure 7: `00` RIGHT, `01` UP, `10` DOWN, `11` LEFT).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger column index (`+x`), encoding `00`.
    Right,
    /// Toward smaller row index (`-y`), encoding `01`.
    Up,
    /// Toward larger row index (`+y`), encoding `10`.
    Down,
    /// Toward smaller column index (`-x`), encoding `11`.
    Left,
}

impl Direction {
    /// All four directions, in encoding order.
    pub const ALL: [Direction; 4] = [
        Direction::Right,
        Direction::Up,
        Direction::Down,
        Direction::Left,
    ];

    /// The paper's 2-bit port encoding.
    pub const fn encoding(self) -> u8 {
        match self {
            Direction::Right => 0b00,
            Direction::Up => 0b01,
            Direction::Down => 0b10,
            Direction::Left => 0b11,
        }
    }

    /// Decodes a 2-bit port value.
    pub const fn from_encoding(bits: u8) -> Direction {
        match bits & 0b11 {
            0b00 => Direction::Right,
            0b01 => Direction::Up,
            0b10 => Direction::Down,
            _ => Direction::Left,
        }
    }

    /// The opposite direction (the port a packet *enters* on the far router
    /// after leaving through `self`).
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::Right => Direction::Left,
            Direction::Left => Direction::Right,
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }

    /// Dense index in `[0, 4)` for table lookups.
    pub const fn index(self) -> usize {
        self.encoding() as usize
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Right => "RIGHT",
            Direction::Up => "UP",
            Direction::Down => "DOWN",
            Direction::Left => "LEFT",
        };
        f.write_str(s)
    }
}

/// A bidirectional link between two adjacent routers, identified by a dense
/// index: horizontal links first (row-major), then vertical links.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An `rows × cols` 2D mesh of flash nodes with one flash controller per
/// row attached at column 0 (the paper's Figure 5/8 arrangement).
///
/// # Example
///
/// ```
/// use venice_interconnect::{Direction, Mesh2D, NodeId};
/// let m = Mesh2D::new(8, 8);
/// assert_eq!(m.link_count(), 112); // the paper's 112 links for 8×8
/// let n = m.node_at(3, 4);
/// assert_eq!(m.neighbor(n, Direction::Right), Some(m.node_at(3, 5)));
/// assert_eq!(m.neighbor(m.node_at(0, 0), Direction::Up), None);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mesh2D {
    rows: u16,
    cols: u16,
}

impl Mesh2D {
    /// Creates a mesh with `rows` rows and `cols` columns.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are at least 1 and the node count fits
    /// in a `u16`.
    pub fn new(rows: u16, cols: u16) -> Self {
        assert!(rows >= 1 && cols >= 1, "mesh must be at least 1x1");
        assert!(
            (rows as u32) * (cols as u32) <= u16::MAX as u32,
            "mesh too large"
        );
        Mesh2D { rows, cols }
    }

    /// Number of rows (also the number of flash controllers).
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns (chips per row).
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        usize::from(self.rows) * usize::from(self.cols)
    }

    /// Total number of bidirectional links: `rows*(cols-1)` horizontal plus
    /// `(rows-1)*cols` vertical (112 for the paper's 8×8 mesh).
    pub fn link_count(&self) -> usize {
        usize::from(self.rows) * usize::from(self.cols - 1)
            + usize::from(self.rows - 1) * usize::from(self.cols)
    }

    /// The node at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node_at(&self, row: u16, col: u16) -> NodeId {
        assert!(row < self.rows && col < self.cols, "node out of range");
        NodeId(row * self.cols + col)
    }

    /// Row of a node.
    pub fn row(&self, n: NodeId) -> u16 {
        n.0 / self.cols
    }

    /// Column of a node.
    pub fn col(&self, n: NodeId) -> u16 {
        n.0 % self.cols
    }

    /// The neighboring node in `dir`, or `None` at the mesh edge.
    pub fn neighbor(&self, n: NodeId, dir: Direction) -> Option<NodeId> {
        let (r, c) = (self.row(n), self.col(n));
        let (nr, nc) = match dir {
            Direction::Right => (r, c.checked_add(1).filter(|&x| x < self.cols)?),
            Direction::Left => (r, c.checked_sub(1)?),
            Direction::Up => (r.checked_sub(1)?, c),
            Direction::Down => (r.checked_add(1).filter(|&x| x < self.rows)?, c),
        };
        Some(self.node_at(nr, nc))
    }

    /// The bidirectional link leaving `n` in direction `dir`, or `None` at
    /// the mesh edge.
    pub fn link(&self, n: NodeId, dir: Direction) -> Option<LinkId> {
        let (r, c) = (self.row(n), self.col(n));
        let h_count = u32::from(self.rows) * u32::from(self.cols - 1);
        match dir {
            Direction::Right if c + 1 < self.cols => {
                Some(LinkId(u32::from(r) * u32::from(self.cols - 1) + u32::from(c)))
            }
            Direction::Left if c > 0 => {
                Some(LinkId(u32::from(r) * u32::from(self.cols - 1) + u32::from(c) - 1))
            }
            Direction::Down if r + 1 < self.rows => {
                Some(LinkId(h_count + u32::from(r) * u32::from(self.cols) + u32::from(c)))
            }
            Direction::Up if r > 0 => Some(LinkId(
                h_count + u32::from(r - 1) * u32::from(self.cols) + u32::from(c),
            )),
            _ => None,
        }
    }

    /// Manhattan distance between two nodes (minimal hop count).
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> u32 {
        let dr = i32::from(self.row(a)) - i32::from(self.row(b));
        let dc = i32::from(self.col(a)) - i32::from(self.col(b));
        dr.unsigned_abs() + dc.unsigned_abs()
    }

    /// Attach node of a flash controller: column 0 of its row.
    ///
    /// # Panics
    ///
    /// Panics if `fc.0 >= rows`.
    pub fn fc_node(&self, fc: FcId) -> NodeId {
        assert!(u16::from(fc.0) < self.rows, "controller out of range");
        self.node_at(u16::from(fc.0), 0)
    }

    /// Number of flash controllers (one per row).
    pub fn fc_count(&self) -> usize {
        usize::from(self.rows)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u16).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrips() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_encoding(d.encoding()), d);
            assert_eq!(d.opposite().opposite(), d);
        }
        // Figure 7 encodings.
        assert_eq!(Direction::Right.encoding(), 0b00);
        assert_eq!(Direction::Up.encoding(), 0b01);
        assert_eq!(Direction::Down.encoding(), 0b10);
        assert_eq!(Direction::Left.encoding(), 0b11);
    }

    #[test]
    fn paper_mesh_has_112_links() {
        assert_eq!(Mesh2D::new(8, 8).link_count(), 112);
        assert_eq!(Mesh2D::new(4, 16).link_count(), 4 * 15 + 3 * 16);
        assert_eq!(Mesh2D::new(16, 4).link_count(), 16 * 3 + 15 * 4);
    }

    #[test]
    fn neighbors_at_edges_are_none() {
        let m = Mesh2D::new(3, 3);
        assert_eq!(m.neighbor(m.node_at(0, 0), Direction::Up), None);
        assert_eq!(m.neighbor(m.node_at(0, 0), Direction::Left), None);
        assert_eq!(m.neighbor(m.node_at(2, 2), Direction::Down), None);
        assert_eq!(m.neighbor(m.node_at(2, 2), Direction::Right), None);
    }

    #[test]
    fn links_are_shared_between_endpoints() {
        let m = Mesh2D::new(4, 4);
        for n in m.nodes() {
            for d in Direction::ALL {
                if let Some(nb) = m.neighbor(n, d) {
                    let l1 = m.link(n, d).unwrap();
                    let l2 = m.link(nb, d.opposite()).unwrap();
                    assert_eq!(l1, l2, "link identity must be direction-agnostic");
                }
            }
        }
    }

    #[test]
    fn all_link_ids_are_dense_and_unique() {
        let m = Mesh2D::new(5, 7);
        let mut seen = std::collections::HashSet::new();
        for n in m.nodes() {
            for d in [Direction::Right, Direction::Down] {
                if let Some(l) = m.link(n, d) {
                    assert!((l.0 as usize) < m.link_count());
                    assert!(seen.insert(l), "duplicate link id {l}");
                }
            }
        }
        assert_eq!(seen.len(), m.link_count());
    }

    #[test]
    fn manhattan_distance() {
        let m = Mesh2D::new(8, 8);
        assert_eq!(m.manhattan(m.node_at(0, 0), m.node_at(7, 7)), 14);
        assert_eq!(m.manhattan(m.node_at(3, 3), m.node_at(3, 3)), 0);
    }

    #[test]
    fn fc_nodes_on_west_edge() {
        let m = Mesh2D::new(8, 8);
        for fc in 0..8u8 {
            let n = m.fc_node(FcId(fc));
            assert_eq!(m.col(n), 0);
            assert_eq!(m.row(n), u16::from(fc));
        }
        assert_eq!(m.fc_count(), 8);
    }

    #[test]
    fn figure8_node_numbering() {
        // Figure 8 uses a 4-row × 5-column mesh labeled F0..F19 row-major.
        let m = Mesh2D::new(4, 5);
        assert_eq!(m.node_at(0, 2), NodeId(2));
        assert_eq!(m.node_at(3, 4), NodeId(19));
        assert_eq!(m.row(NodeId(7)), 1);
        assert_eq!(m.col(NodeId(7)), 2);
    }
}
