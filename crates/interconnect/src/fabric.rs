//! The six intra-SSD communication fabrics behind one interface.
//!
//! Each fabric implements [`Fabric`]: a controller-to-chip *path* is
//! acquired for one transfer burst (a command, or a page of data), held for
//! the duration returned by [`Fabric::transfer`], and released. This mirrors
//! the service timeline of Figure 3: the path is free while the flash array
//! operation (tR/tPROG/tBERS) executes inside the chip.
//!
//! Designs (§3 and §4 of the paper):
//!
//! * [`FabricKind::Baseline`] — multi-channel shared bus, one channel per row.
//! * [`FabricKind::Pssd`] — packetized SSD: same topology, 2× bus bandwidth.
//! * [`FabricKind::PnSsd`] — packetized network SSD: a row bus *and* a column
//!   bus reach every chip; each controller drives one row and one column bus.
//! * [`FabricKind::NoSsd`] — 2D mesh with buffered routers and deterministic
//!   dimension-order (XY) routing.
//! * [`FabricKind::Venice`] — 2D mesh of router chips, circuit switching via
//!   scout-packet path reservation, non-minimal fully-adaptive routing.
//! * [`FabricKind::Ideal`] — the path-conflict-free SSD: a dedicated channel
//!   (and controller) per chip; requests only ever wait on the chip itself.

use std::fmt;

use venice_sim::rng::Lfsr2;
use venice_sim::SimDuration;

use crate::mesh::{MeshState, ReservedPath};
use crate::scout::{FailedWalk, ScoutCache, ScoutCacheKind};
use crate::{FcId, LinkPower, Mesh2D, NodeId};

/// Which fabric design an SSD uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// Multi-channel shared bus (the Baseline SSD).
    Baseline,
    /// Packetized SSD: 2× channel bandwidth at 20% flash-die area cost.
    Pssd,
    /// Packetized network SSD: row + column shared buses.
    PnSsd,
    /// Network-on-SSD: buffered-router mesh with XY routing.
    NoSsd,
    /// Venice: circuit-switched mesh with scout-based path reservation.
    Venice,
    /// Ideal path-conflict-free SSD (upper bound).
    Ideal,
}

impl FabricKind {
    /// All fabrics, in the order the paper's figures present them.
    pub const ALL: [FabricKind; 6] = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
        FabricKind::Ideal,
    ];

    /// Looks up a fabric by its report label (`"Venice"`, `"pSSD"`, ...),
    /// case-insensitively — the config-from-axis constructor used when
    /// parsing sweep-grid definitions and CLI system lists.
    pub fn by_label(label: &str) -> Option<FabricKind> {
        FabricKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(label))
    }

    /// Short label used in reports ("pSSD", "Venice", ...).
    pub fn label(&self) -> &'static str {
        match self {
            FabricKind::Baseline => "Baseline",
            FabricKind::Pssd => "pSSD",
            FabricKind::PnSsd => "pnSSD",
            FabricKind::NoSsd => "NoSSD",
            FabricKind::Venice => "Venice",
            FabricKind::Ideal => "Ideal",
        }
    }
}

impl fmt::Display for FabricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Physical parameters shared by all fabrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricParams {
    /// Flash-array rows; also the controller/channel count.
    pub rows: u16,
    /// Chips per row.
    pub cols: u16,
    /// Shared-channel bandwidth in bytes per nanosecond (1.2 for Table 1's
    /// 1.2 GB/s flash channel I/O rate).
    pub bus_bytes_per_ns: f64,
    /// Fixed per-burst bus arbitration/turnaround overhead.
    pub bus_overhead: SimDuration,
    /// Mesh link width in bytes (8-bit links → 1).
    pub link_width_bytes: u32,
    /// Latency of one link transfer of `link_width_bytes` (1 ns at 1 GHz).
    pub link_latency: SimDuration,
    /// Per-hop pipeline latency of NoSSD's buffered routers.
    pub nossd_router_latency: SimDuration,
    /// Ablation knob: restrict Venice's routing to minimal paths (disables
    /// the §4.3 non-minimal misrouting stage; backtracking still works).
    pub venice_minimal_only: bool,
    /// Whether Venice runs the generation-stamped scout fast-fail cache
    /// (see [`crate::scout::ScoutCache`]); [`ScoutCacheKind::Off`] is the
    /// default and reproduces the pre-cache engine exactly.
    pub scout_cache: ScoutCacheKind,
    /// Electrical power model (Table 4 constants).
    pub power: LinkPower,
}

impl FabricParams {
    /// Table 1 parameters: 8×8 array, 1.2 GB/s buses, 8-bit 1 GHz links.
    pub fn table1() -> Self {
        FabricParams {
            rows: 8,
            cols: 8,
            bus_bytes_per_ns: 1.2,
            bus_overhead: SimDuration::from_nanos(3),
            link_width_bytes: 1,
            link_latency: SimDuration::from_nanos(1),
            nossd_router_latency: SimDuration::from_nanos(2),
            venice_minimal_only: false,
            scout_cache: ScoutCacheKind::Off,
            power: LinkPower::paper(),
        }
    }

    /// Same electrical parameters with a different array shape (Figure 15's
    /// 4×16 / 8×8 / 16×4 sweep).
    pub fn with_shape(rows: u16, cols: u16) -> Self {
        FabricParams {
            rows,
            cols,
            ..Self::table1()
        }
    }

    /// The mesh topology implied by these parameters.
    pub fn mesh(&self) -> Mesh2D {
        Mesh2D::new(self.rows, self.cols)
    }

    /// Duration of a bus burst of `bytes` at `mult`× the base bandwidth.
    fn bus_duration(&self, bytes: u64, mult: f64) -> SimDuration {
        self.bus_overhead
            + SimDuration::from_nanos_f64(bytes as f64 / (self.bus_bytes_per_ns * mult))
    }

    /// Equation 1 of the paper: circuit transfer time over `hops` links.
    fn circuit_duration(&self, hops: u32, bytes: u64) -> SimDuration {
        let beats = bytes.div_ceil(u64::from(self.link_width_bytes));
        self.link_latency * (u64::from(hops) + beats)
    }
}

/// What exactly blocked a path-conflict acquisition failure.
///
/// Dispatch policies use this to tell conflicts that back off profitably
/// (another in-flight transfer holds the resource and will release it soon)
/// from structural blockage deep in the mesh. All reasons count equally as
/// Figure 13 path conflicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictReason {
    /// A shared channel bus is mid-transfer (Baseline/pSSD/pnSSD).
    BusBusy,
    /// The deterministic XY route crossed a link held by another circuit
    /// (NoSSD has no way around it).
    RouteBlocked,
    /// A Venice scout advanced into the mesh but exhausted every feasible
    /// port assignment and was cancelled back to the controller.
    ScoutExhausted,
    /// A Venice scout could not leave the source router at all — every
    /// usable local port was already reserved.
    SourceBlocked,
}

impl ConflictReason {
    /// Short diagnostic label.
    pub fn label(&self) -> &'static str {
        match self {
            ConflictReason::BusBusy => "bus busy",
            ConflictReason::RouteBlocked => "route blocked",
            ConflictReason::ScoutExhausted => "scout exhausted",
            ConflictReason::SourceBlocked => "source blocked",
        }
    }
}

/// Why a path acquisition failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// Every eligible flash controller is busy with another transfer.
    NoFreeController,
    /// A controller was available but the path/bus to the chip was occupied —
    /// this is the paper's *path conflict* (Figure 13). The payload says what
    /// specifically blocked the path.
    PathConflict(ConflictReason),
    /// The ideal SSD's dedicated per-chip channel is mid-transfer; by the
    /// paper's definition this is a chip-side delay, not a path conflict.
    ChannelBusy,
    /// The path's resource (bus row, chip port, or dedicated channel) is
    /// failed: **no retry can succeed until a repair event restores it**.
    /// Unlike [`AcquireError::PathConflict`] this is not a transient
    /// conflict — it never counts toward Figure 13's path conflicts, never
    /// triggers conflict backoff, and the dispatcher responds by failing
    /// the chip's queued requests instead of re-arming on a release.
    ResourceDead,
}

impl AcquireError {
    /// Whether this failure counts as a path conflict in Figure 13's metric.
    pub fn is_path_conflict(&self) -> bool {
        matches!(self, AcquireError::PathConflict(_))
    }

    /// The structured conflict reason, when this is a path conflict.
    pub fn conflict_reason(&self) -> Option<ConflictReason> {
        match self {
            AcquireError::PathConflict(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcquireError::NoFreeController => f.write_str("no free flash controller"),
            AcquireError::PathConflict(r) => write!(f, "path conflict ({})", r.label()),
            AcquireError::ChannelBusy => f.write_str("dedicated channel busy"),
            AcquireError::ResourceDead => f.write_str("path resource failed"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// The route held by a grant (opaque outside this crate).
#[derive(Clone, Debug)]
enum Route {
    /// A shared bus (row bus `0..rows`, or `rows + c` for pnSSD column buses).
    Bus { bus: u16, bandwidth_mult: f64 },
    /// A reserved Venice circuit, with the scout's round-trip latency.
    Circuit {
        path: ReservedPath,
        scout_latency: SimDuration,
    },
    /// A NoSSD wormhole path (whole XY path held for the burst).
    Wormhole { path: ReservedPath },
    /// The ideal SSD's dedicated channel to one chip.
    Dedicated { chip: NodeId },
}

/// A granted controller + path, held for one transfer burst.
///
/// Obtain with [`Fabric::try_acquire`]; pass to [`Fabric::transfer`] to get
/// the burst duration; return with [`Fabric::release`] when the burst ends.
#[derive(Clone, Debug)]
pub struct PathGrant {
    /// The controller servicing the burst.
    pub fc: FcId,
    /// Destination chip node.
    pub chip: NodeId,
    route: Route,
}

impl PathGrant {
    /// Number of mesh hops held by this grant (0 for bus/dedicated routes).
    pub fn hops(&self) -> u32 {
        match &self.route {
            Route::Circuit { path, .. } | Route::Wormhole { path } => path.hops(),
            _ => 0,
        }
    }
}

/// Which shared resource a [`Fabric::release`] just freed — the fabric's
/// *wake list*.
///
/// Freeing a resource is the only fabric state change that can turn a
/// failing [`Fabric::try_acquire`] into a success, so the release report is
/// what an incremental dispatcher keys its re-arming on. The contract every
/// fabric must honor: the report names the resource whose links/slots the
/// release returned to the pool. Bus fabrics name the bus; the ideal SSD
/// names the chip's dedicated channel; mesh fabrics name the bounding box
/// of the released circuit. For the bus and channel designs the resource
/// maps exactly onto the chips it gates; for adaptive mesh routing the box
/// is a locality hint only (see [`FreedResource::may_unblock`]), which is
/// why the engine's re-arming keys on the freed *controller* plus its
/// queued-work ready sets rather than on per-chip region tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreedResource {
    /// A row-shared channel bus (Baseline, pSSD, pnSSD row buses).
    RowBus(u16),
    /// A pnSSD column bus.
    ColBus(u16),
    /// The ideal SSD's dedicated per-chip channel.
    Channel(NodeId),
    /// The mesh region a released circuit occupied, as a node bounding box
    /// (`min_row..=max_row` × `min_col..=max_col`).
    MeshRegion {
        /// Topmost row the circuit touched.
        min_row: u16,
        /// Bottommost row the circuit touched.
        max_row: u16,
        /// Leftmost column the circuit touched.
        min_col: u16,
        /// Rightmost column the circuit touched.
        max_col: u16,
    },
}

impl FreedResource {
    /// Whether the chip `chip`, sitting at `(row, col)`, is on this
    /// resource's wake list — i.e. whether freeing the resource could
    /// unblock a transfer to that chip.
    ///
    /// `RowBus`/`ColBus`/`Channel` are exact: bus designs gate a chip on
    /// precisely its row/column bus, and a dedicated channel can only have
    /// blocked its own chip. `MeshRegion` is a *heuristic* hint, not a
    /// guarantee: adaptive (non-minimal) mesh routes can depend on links
    /// outside any box-derived test, so a re-arming policy consuming it
    /// must keep a fallback that eventually retries every chip with queued
    /// work — the engine's ready sets and probe rounds already are one.
    pub fn may_unblock(&self, chip: NodeId, row: u16, col: u16) -> bool {
        match *self {
            FreedResource::RowBus(r) => r == row,
            FreedResource::ColBus(c) => c == col,
            FreedResource::Channel(freed) => freed == chip,
            FreedResource::MeshRegion {
                min_row,
                max_row,
                min_col,
                max_col,
            } => {
                // Heuristic: a minimal route to (row, col) shares the
                // box's rows or columns; misrouted/backtracked circuits
                // may not (see the doc above for the fallback requirement).
                (min_row..=max_row).contains(&row) || (min_col..=max_col).contains(&col)
            }
        }
    }
}

/// What a [`Fabric::release`] freed: the controller returned to the pool
/// (when the design has one) plus the path resource on the wake list.
///
/// The SSD engine consumes `controller` to clear its
/// parked-until-controller-free dispatch state; `resource` is the per-chip
/// wake list available to finer-grained re-arming policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReleaseInfo {
    /// The flash controller freed, for designs with a controller pool
    /// (`None` for the ideal SSD, whose per-chip channels are not pooled).
    pub controller: Option<FcId>,
    /// The freed path resource.
    pub resource: FreedResource,
}

/// A fault (or repair) event delivered to a fabric by the fault-injection
/// calendar.
///
/// Faults are expressed against the *physical* 2D layout every design
/// shares (the flash array is a `rows × cols` grid whether or not the
/// fabric is a mesh); each fabric maps the event onto its own topology and
/// reports the blast radius via [`FaultImpact`]:
///
/// * Bus designs have no mesh links — a `LinkDown` between two same-row
///   nodes breaks the row's shared bus, stranding the **whole row** (the
///   degraded-mode story the fault ablation measures). pnSSD keeps its
///   chips reachable over the column buses until a column link also dies.
/// * Mesh designs mask the link/router in [`MeshState`]; the scout DFS and
///   XY reservation treat it as blocked and route around it, so a link
///   fault strands **no** chips.
/// * `RouterDown` kills the chip attached to that node on every design
///   (the chip's port into the fabric is gone). On mesh designs it also
///   blocks through-traffic; on the ideal SSD it is the chip's dedicated
///   channel failing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricFault {
    /// The link between two physically adjacent nodes fails.
    LinkDown {
        /// One endpoint of the failing link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The link between two physically adjacent nodes is repaired.
    LinkUp {
        /// One endpoint of the repaired link.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The router / fabric port at a node fails.
    RouterDown(NodeId),
    /// The router / fabric port at a node is repaired.
    RouterUp(NodeId),
}

impl FabricFault {
    /// True for the `*Down` halves (injections), false for repairs.
    pub fn is_down(&self) -> bool {
        matches!(self, FabricFault::LinkDown { .. } | FabricFault::RouterDown(_))
    }

    /// The repair event that undoes this fault (`*Down` → `*Up`); repairs
    /// return themselves. Fault plans use this to pair every scripted
    /// outage with the matching repair.
    pub fn repaired(&self) -> FabricFault {
        match *self {
            FabricFault::LinkDown { a, b } | FabricFault::LinkUp { a, b } => {
                FabricFault::LinkUp { a, b }
            }
            FabricFault::RouterDown(n) | FabricFault::RouterUp(n) => FabricFault::RouterUp(n),
        }
    }
}

/// What a [`Fabric::inject_fault`] changed — the engine's contract for
/// degraded-mode bookkeeping.
///
/// `dead_chips` lists chips that just became unreachable on this design
/// (the engine fails their queued work and drops them from its ready
/// sets); `revived_chips` lists chips a repair just made reachable again.
/// `freed` names the resource a repair returned to service, following the
/// same wake-list discipline as [`Fabric::release`]'s [`ReleaseInfo`]: the
/// engine re-arms dispatch for chips parked on it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultImpact {
    /// Chips this fault made unreachable.
    pub dead_chips: Vec<NodeId>,
    /// Chips this repair made reachable again.
    pub revived_chips: Vec<NodeId>,
    /// The resource a repair returned to service (wake list), if any.
    pub freed: Option<FreedResource>,
}

/// Cumulative fabric statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FabricStats {
    /// Successful path acquisitions.
    pub acquisitions: u64,
    /// Failed acquisitions that count as path conflicts (Fig. 13).
    pub conflicts: u64,
    /// Failed acquisitions because no controller was free.
    pub controller_unavailable: u64,
    /// Failed acquisitions on the ideal SSD's dedicated channels.
    pub channel_busy: u64,
    /// Completed transfer bursts.
    pub transfers: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Transfer energy (links/buses + routers), nanojoules.
    pub transfer_energy_nj: f64,
    /// Scout steps walked (Venice only).
    pub scout_steps: u64,
    /// Scout walks that detoured (misrouted or backtracked) before success.
    pub scout_detours: u64,
    /// Misroute (non-minimal port) selections across all scout walks.
    pub scout_misroutes: u64,
    /// Scout steps spent in walks that ultimately failed (the fast-fail
    /// cache's target; a subset of [`FabricStats::scout_steps`]).
    pub scout_failed_steps: u64,
    /// Acquisition attempts resolved by the scout fast-fail cache without a
    /// DFS (in `Checked` mode: cache verdicts verified against a live
    /// walk). Zero when the cache is off — an *effort* stat, excluded from
    /// behavioral cross-checks.
    pub scout_fastfails: u64,
    /// Cache entries dropped because a reservation change intersected
    /// their extent. Zero when the cache is off (effort stat).
    pub scout_cache_invalidations: u64,
    /// Sum of hops over all granted mesh paths (mean path length diagnostics).
    pub hops_total: u64,
}

/// A communication fabric between flash controllers and flash chips.
///
/// Implementations are deterministic and instantaneous: time only passes via
/// the durations they return, which the caller turns into simulation events.
pub trait Fabric {
    /// Which design this is.
    fn kind(&self) -> FabricKind;

    /// Number of flash controllers (concurrent transfer bound).
    fn controller_count(&self) -> usize;

    /// Attempts to acquire a controller and a path to `chip` for one burst.
    ///
    /// # Errors
    ///
    /// See [`AcquireError`]; callers retry when the fabric next changes
    /// state (a release), which the simulation core tracks.
    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError>;

    /// True when the chip's *closest* controller is available right now.
    ///
    /// Schedulers use this as a dispatch-affinity hint: issuing transfers to
    /// chips whose home-row controller is free keeps circuits short and
    /// row-local (the paper's §4.2 controller-selection policy), which both
    /// shortens transfers and leaves the mesh free for other circuits.
    fn home_controller_free(&self, chip: NodeId) -> bool;

    /// True when controllers are pooled (any controller can reach any
    /// chip). In pooled fabrics a path conflict occupies the selected
    /// controller — the hardware controller retries the same request's
    /// reservation rather than switching to other work — so the dispatcher
    /// must stop issuing after the first conflict. Bus designs return false:
    /// their per-row channels fail independently.
    fn pooled(&self) -> bool {
        false
    }

    /// Duration of a `bytes`-byte burst over the granted path, including any
    /// reservation latency. Also accrues transfer energy into the stats.
    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration;

    /// Releases the grant's controller and path, reporting what freed (the
    /// wake list an incremental dispatcher re-arms from — see
    /// [`ReleaseInfo`] and [`FreedResource`] for the contract new fabrics
    /// must honor).
    fn release(&mut self, grant: PathGrant) -> ReleaseInfo;

    /// Applies a fault or repair event, reporting its blast radius (see
    /// [`FabricFault`] for the per-design semantics and [`FaultImpact`]
    /// for what the engine does with the report). Grants already in
    /// flight over the failed resource drain normally — faults are
    /// fail-stop at burst boundaries; only *new* acquisitions see the
    /// mask. The default is a no-op for fabrics without shared hardware
    /// to fail.
    fn inject_fault(&mut self, fault: FabricFault) -> FaultImpact {
        let _ = fault;
        FaultImpact::default()
    }

    /// Cumulative statistics.
    fn stats(&self) -> FabricStats;
}

/// Constructs the fabric for `kind` with the given parameters.
///
/// # Example
///
/// ```
/// use venice_interconnect::{build_fabric, FabricKind, FabricParams, NodeId};
/// let mut fabric = build_fabric(FabricKind::Venice, FabricParams::table1());
/// let grant = fabric.try_acquire(NodeId(42)).unwrap();
/// let d = fabric.transfer(&grant, 4096);
/// assert!(d.as_nanos() >= 4096);
/// fabric.release(grant);
/// ```
pub fn build_fabric(kind: FabricKind, params: FabricParams) -> Box<dyn Fabric> {
    match kind {
        FabricKind::Baseline => Box::new(BusFabric::new(params, FabricKind::Baseline, 1.0)),
        FabricKind::Pssd => Box::new(BusFabric::new(params, FabricKind::Pssd, 2.0)),
        FabricKind::PnSsd => Box::new(PnSsdFabric::new(params)),
        FabricKind::NoSsd => Box::new(NoSsdFabric::new(params)),
        FabricKind::Venice => Box::new(VeniceFabric::new(params)),
        FabricKind::Ideal => Box::new(IdealFabric::new(params)),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Controller availability tracking shared by the mesh fabrics.
#[derive(Clone, Debug)]
struct ControllerPool {
    busy: Vec<bool>,
    /// Controllers whose west-edge attach router is masked down by a fault:
    /// excluded from selection (a scout could not even leave the router).
    dead: Vec<bool>,
    rows: u16,
}

impl ControllerPool {
    fn new(rows: u16) -> Self {
        ControllerPool {
            busy: vec![false; usize::from(rows)],
            dead: vec![false; usize::from(rows)],
            rows,
        }
    }

    /// The paper's §4.2 policy: the closest controller to the target chip if
    /// free, otherwise the nearest free controller (distance = row offset,
    /// since controllers sit one per row on the west edge).
    fn nearest_free(&self, chip_row: u16) -> Option<FcId> {
        let n = i32::from(self.rows);
        let target = i32::from(chip_row);
        (0..n)
            .filter(|&fc| !self.busy[fc as usize] && !self.dead[fc as usize])
            .min_by_key(|&fc| ((fc - target).abs(), fc))
            .map(|fc| FcId(fc as u8))
    }

    /// The next free controller after `prev` in [`ControllerPool::nearest_free`]'s
    /// `(distance, id)` ordering — the NoSSD fault fallback walks this chain
    /// when a deterministic XY route is severed by a downed link or router,
    /// so the fixed-route fabric still reaches the chip from a controller
    /// whose route avoids the fault. Strictly increasing keys guarantee
    /// termination.
    fn next_free_after(&self, prev: FcId, chip_row: u16) -> Option<FcId> {
        let n = i32::from(self.rows);
        let target = i32::from(chip_row);
        let prev_key = ((i32::from(prev.0) - target).abs(), i32::from(prev.0));
        (0..n)
            .filter(|&fc| !self.busy[fc as usize] && !self.dead[fc as usize])
            .map(|fc| ((fc - target).abs(), fc))
            .filter(|&k| k > prev_key)
            .min()
            .map(|(_, fc)| FcId(fc as u8))
    }

    fn acquire(&mut self, fc: FcId) {
        debug_assert!(!self.busy[usize::from(fc.0)], "controller already busy");
        self.busy[usize::from(fc.0)] = true;
    }

    fn release(&mut self, fc: FcId) {
        debug_assert!(self.busy[usize::from(fc.0)], "controller not busy");
        self.busy[usize::from(fc.0)] = false;
    }
}

/// Shared [`Fabric::inject_fault`] body of the two mesh fabrics (NoSSD and
/// Venice): maps the fault onto [`MeshState`]'s down-masks — whose setters
/// stamp the PR-5 generation counters, invalidating every intersecting
/// scout-cache extent — and computes the blast radius. A link fault strands
/// no chips (the mesh routes around it); a router fault kills exactly the
/// chip at that node, and when the node is a west-edge controller attach
/// point it takes the controller out of the pool too.
fn mesh_inject_fault(
    mesh: &mut MeshState,
    fcs: &mut ControllerPool,
    fault: FabricFault,
) -> FaultImpact {
    let topo = mesh.topology();
    let mut impact = FaultImpact::default();
    match fault {
        FabricFault::LinkDown { a, b } => {
            mesh.set_link_state(a, b, false);
        }
        FabricFault::LinkUp { a, b } => {
            if mesh.set_link_state(a, b, true) {
                let (ra, ca) = (topo.row(a), topo.col(a));
                let (rb, cb) = (topo.row(b), topo.col(b));
                impact.freed = Some(FreedResource::MeshRegion {
                    min_row: ra.min(rb),
                    max_row: ra.max(rb),
                    min_col: ca.min(cb),
                    max_col: ca.max(cb),
                });
            }
        }
        FabricFault::RouterDown(n) => {
            mesh.set_router_state(n, false);
            if topo.col(n) == 0 {
                fcs.dead[usize::from(topo.row(n))] = true;
            }
            impact.dead_chips.push(n);
        }
        FabricFault::RouterUp(n) => {
            mesh.set_router_state(n, true);
            if topo.col(n) == 0 {
                fcs.dead[usize::from(topo.row(n))] = false;
            }
            impact.revived_chips.push(n);
            let (r, c) = (topo.row(n), topo.col(n));
            impact.freed = Some(FreedResource::MeshRegion {
                min_row: r.saturating_sub(1),
                max_row: (r + 1).min(topo.rows() - 1),
                min_col: c.saturating_sub(1),
                max_col: (c + 1).min(topo.cols() - 1),
            });
        }
    }
    impact
}

// ---------------------------------------------------------------------------
// Baseline / pSSD: multi-channel shared bus
// ---------------------------------------------------------------------------

/// Baseline and pSSD: one shared bus per row; the row's controller and bus
/// are a single contended resource (the paper's path conflict in its purest
/// form).
#[derive(Debug)]
struct BusFabric {
    params: FabricParams,
    kind: FabricKind,
    bandwidth_mult: f64,
    bus_busy: Vec<bool>,
    /// Active link-fault count per row bus: any break anywhere along the
    /// shared bus strands the whole row (the cost of the baseline
    /// topology; the fault ablation's headline contrast with the mesh).
    row_dead: Vec<u8>,
    stats: FabricStats,
}

impl BusFabric {
    fn new(params: FabricParams, kind: FabricKind, bandwidth_mult: f64) -> Self {
        BusFabric {
            bus_busy: vec![false; usize::from(params.rows)],
            row_dead: vec![0; usize::from(params.rows)],
            params,
            kind,
            bandwidth_mult,
            stats: FabricStats::default(),
        }
    }

    /// Every chip node on `row` (a whole-row blast radius).
    fn row_chips(&self, row: u16) -> Vec<NodeId> {
        let mesh = self.params.mesh();
        (0..self.params.cols).map(|c| mesh.node_at(row, c)).collect()
    }
}

impl Fabric for BusFabric {
    fn kind(&self) -> FabricKind {
        self.kind
    }

    fn controller_count(&self) -> usize {
        usize::from(self.params.rows)
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let row = self.params.mesh().row(chip);
        if self.row_dead[usize::from(row)] > 0 {
            return Err(AcquireError::ResourceDead);
        }
        if self.bus_busy[usize::from(row)] {
            self.stats.conflicts += 1;
            return Err(AcquireError::PathConflict(ConflictReason::BusBusy));
        }
        self.bus_busy[usize::from(row)] = true;
        self.stats.acquisitions += 1;
        Ok(PathGrant {
            fc: FcId(row as u8),
            chip,
            route: Route::Bus {
                bus: row,
                bandwidth_mult: self.bandwidth_mult,
            },
        })
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let Route::Bus { bandwidth_mult, .. } = grant.route else {
            panic!("bus fabric received a non-bus grant");
        };
        let d = self.params.bus_duration(bytes, bandwidth_mult);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        // Bus active power scales with the bandwidth multiplier (pSSD drives
        // the pins twice as often), so energy per bit is constant.
        self.stats.transfer_energy_nj +=
            self.params.power.bus_mw * bandwidth_mult * d.as_nanos() as f64 / 1e3;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Bus { bus, .. } = grant.route else {
            panic!("bus fabric received a non-bus grant");
        };
        debug_assert!(self.bus_busy[usize::from(bus)]);
        self.bus_busy[usize::from(bus)] = false;
        // The row's controller is the bus driver: freeing one frees both.
        ReleaseInfo {
            controller: Some(grant.fc),
            resource: FreedResource::RowBus(bus),
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        let row = usize::from(self.params.mesh().row(chip));
        !self.bus_busy[row] && self.row_dead[row] == 0
    }

    fn inject_fault(&mut self, fault: FabricFault) -> FaultImpact {
        let mesh = self.params.mesh();
        let mut impact = FaultImpact::default();
        match fault {
            // A bus design only has row wiring: a link fault between two
            // same-row nodes breaks that row's shared bus and strands every
            // chip on it. Column links do not exist here — no-op.
            FabricFault::LinkDown { a, b } => {
                let row = mesh.row(a);
                if row == mesh.row(b) {
                    self.row_dead[usize::from(row)] += 1;
                    if self.row_dead[usize::from(row)] == 1 {
                        impact.dead_chips = self.row_chips(row);
                    }
                }
            }
            FabricFault::LinkUp { a, b } => {
                let row = mesh.row(a);
                if row == mesh.row(b) && self.row_dead[usize::from(row)] > 0 {
                    self.row_dead[usize::from(row)] -= 1;
                    if self.row_dead[usize::from(row)] == 0 {
                        impact.revived_chips = self.row_chips(row);
                        impact.freed = Some(FreedResource::RowBus(row));
                    }
                }
            }
            // A router fault on a bus design is the chip's bus interface
            // dying: only that chip is lost, the shared bus keeps working.
            FabricFault::RouterDown(n) => impact.dead_chips.push(n),
            FabricFault::RouterUp(n) => impact.revived_chips.push(n),
        }
        impact
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// pnSSD: row + column shared buses
// ---------------------------------------------------------------------------

/// pnSSD: every chip is reachable over its row bus or its column bus; the
/// controller of the matching index drives each bus, one transfer at a time.
#[derive(Debug)]
struct PnSsdFabric {
    params: FabricParams,
    /// `rows` row buses followed by `cols` column buses.
    bus_busy: Vec<bool>,
    fc_busy: Vec<bool>,
    /// Active link-fault count per bus (same indexing as `bus_busy`). A
    /// chip is stranded only when *both* its row and column buses are dead
    /// — pnSSD's two-path redundancy is its degraded-mode advantage over
    /// Baseline/pSSD, bought back by the mesh's full path diversity.
    bus_dead: Vec<u8>,
    stats: FabricStats,
}

impl PnSsdFabric {
    fn new(params: FabricParams) -> Self {
        assert_eq!(
            params.rows, params.cols,
            "pnSSD requires an N×N flash array (paper §6.5 footnote)"
        );
        PnSsdFabric {
            bus_busy: vec![false; usize::from(params.rows) + usize::from(params.cols)],
            fc_busy: vec![false; usize::from(params.rows)],
            bus_dead: vec![0; usize::from(params.rows) + usize::from(params.cols)],
            params,
            stats: FabricStats::default(),
        }
    }

    /// Bus index of the link between `a` and `b`: a same-row link is part
    /// of that row's bus, a same-column link part of that column's bus.
    fn bus_of_link(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let mesh = self.params.mesh();
        if mesh.row(a) == mesh.row(b) {
            Some(usize::from(mesh.row(a)))
        } else if mesh.col(a) == mesh.col(b) {
            Some(usize::from(self.params.rows) + usize::from(mesh.col(a)))
        } else {
            None
        }
    }

    /// Chips stranded (or un-stranded) by the row/col bus `bus` changing
    /// state while the crossing buses are in their current state: exactly
    /// the chips whose *other* bus is also dead.
    fn chips_gated_by(&self, bus: usize) -> Vec<NodeId> {
        let mesh = self.params.mesh();
        let rows = usize::from(self.params.rows);
        if bus < rows {
            let row = bus as u16;
            (0..self.params.cols)
                .filter(|&c| self.bus_dead[rows + usize::from(c)] > 0)
                .map(|c| mesh.node_at(row, c))
                .collect()
        } else {
            let col = (bus - rows) as u16;
            (0..self.params.rows)
                .filter(|&r| self.bus_dead[usize::from(r)] > 0)
                .map(|r| mesh.node_at(r, col))
                .collect()
        }
    }
}

impl Fabric for PnSsdFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::PnSsd
    }

    fn controller_count(&self) -> usize {
        usize::from(self.params.rows)
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let mesh = self.params.mesh();
        let (row, col) = (mesh.row(chip), mesh.col(chip));
        // Horizontal channel first (it is the baseline path), then vertical.
        let row_bus = usize::from(row);
        let col_bus = usize::from(self.params.rows) + usize::from(col);
        let candidates = [(row, row_bus), (col, col_bus)];
        if candidates.iter().all(|&(_, bus)| self.bus_dead[bus] > 0) {
            return Err(AcquireError::ResourceDead);
        }
        for (fc, bus) in candidates {
            if self.bus_dead[bus] > 0 {
                continue;
            }
            if !self.fc_busy[usize::from(fc)] && !self.bus_busy[bus] {
                self.fc_busy[usize::from(fc)] = true;
                self.bus_busy[bus] = true;
                self.stats.acquisitions += 1;
                return Ok(PathGrant {
                    fc: FcId(fc as u8),
                    chip,
                    route: Route::Bus {
                        bus: bus as u16,
                        bandwidth_mult: 1.0,
                    },
                });
            }
        }
        // In a bus design the controller *is* the channel driver, so any
        // failure to start a transfer is a path conflict (both of the chip's
        // two paths are occupied).
        self.stats.conflicts += 1;
        Err(AcquireError::PathConflict(ConflictReason::BusBusy))
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let d = self.params.bus_duration(bytes, 1.0);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.transfer_energy_nj += self.params.power.bus_mw * d.as_nanos() as f64 / 1e3;
        let _ = grant;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Bus { bus, .. } = grant.route else {
            panic!("pnSSD fabric received a non-bus grant");
        };
        self.bus_busy[usize::from(bus)] = false;
        self.fc_busy[usize::from(grant.fc.0)] = false;
        ReleaseInfo {
            controller: Some(grant.fc),
            resource: if bus < self.params.rows {
                FreedResource::RowBus(bus)
            } else {
                FreedResource::ColBus(bus - self.params.rows)
            },
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        let row = usize::from(self.params.mesh().row(chip));
        !self.fc_busy[row] && !self.bus_busy[row] && self.bus_dead[row] == 0
    }

    fn inject_fault(&mut self, fault: FabricFault) -> FaultImpact {
        let mut impact = FaultImpact::default();
        match fault {
            FabricFault::LinkDown { a, b } => {
                if let Some(bus) = self.bus_of_link(a, b) {
                    self.bus_dead[bus] += 1;
                    if self.bus_dead[bus] == 1 {
                        impact.dead_chips = self.chips_gated_by(bus);
                    }
                }
            }
            FabricFault::LinkUp { a, b } => {
                if let Some(bus) = self.bus_of_link(a, b) {
                    if self.bus_dead[bus] > 0 {
                        self.bus_dead[bus] -= 1;
                        if self.bus_dead[bus] == 0 {
                            impact.revived_chips = self.chips_gated_by(bus);
                            let rows = usize::from(self.params.rows);
                            impact.freed = Some(if bus < rows {
                                FreedResource::RowBus(bus as u16)
                            } else {
                                FreedResource::ColBus((bus - rows) as u16)
                            });
                        }
                    }
                }
            }
            FabricFault::RouterDown(n) => impact.dead_chips.push(n),
            FabricFault::RouterUp(n) => impact.revived_chips.push(n),
        }
        impact
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// NoSSD: buffered-router mesh, deterministic XY routing
// ---------------------------------------------------------------------------

/// NoSSD: the chips form a mesh, but routing is deterministic dimension-order
/// and there is no reservation/backtracking — a transfer whose fixed XY path
/// is blocked simply waits.
#[derive(Debug)]
struct NoSsdFabric {
    params: FabricParams,
    mesh: MeshState,
    fcs: ControllerPool,
    stats: FabricStats,
}

impl NoSsdFabric {
    fn new(params: FabricParams) -> Self {
        NoSsdFabric {
            mesh: MeshState::new(params.mesh(), usize::from(params.rows)),
            fcs: ControllerPool::new(params.rows),
            params,
            stats: FabricStats::default(),
        }
    }
}

impl Fabric for NoSsdFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::NoSsd
    }

    fn controller_count(&self) -> usize {
        usize::from(self.params.rows)
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let topo = self.mesh.topology();
        let Some(first) = self.fcs.nearest_free(topo.row(chip)) else {
            self.stats.controller_unavailable += 1;
            return Err(AcquireError::NoFreeController);
        };
        let mut fc = first;
        loop {
            let mut path = self.mesh.xy_path(topo.fc_node(fc), chip);
            path.packet_id = fc.0;
            if self.mesh.try_reserve_path(fc.0, &path) {
                self.fcs.acquire(fc);
                self.stats.acquisitions += 1;
                self.stats.hops_total += u64::from(path.hops());
                return Ok(PathGrant {
                    fc,
                    chip,
                    route: Route::Wormhole { path },
                });
            }
            let fault_blocked = self.mesh.path_fault_blocked(&path);
            self.mesh.recycle(path);
            if !fault_blocked {
                // Ordinary contention on the deterministic route: NoSSD has
                // no adaptivity, so the transfer waits (pre-fault behavior,
                // bit-identical when no faults are injected).
                self.stats.conflicts += 1;
                return Err(AcquireError::PathConflict(ConflictReason::RouteBlocked));
            }
            // The fixed XY route is severed by a downed link/router, which
            // no amount of waiting fixes. Fall back to the next-nearest free
            // controller — its XY route takes a different row spine, so a
            // single fault never strands a live chip. Exhausting the pool
            // leaves a retryable conflict (a repair event re-opens routes).
            match self.fcs.next_free_after(fc, topo.row(chip)) {
                Some(next) => fc = next,
                None => {
                    self.stats.conflicts += 1;
                    return Err(AcquireError::PathConflict(ConflictReason::RouteBlocked));
                }
            }
        }
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let Route::Wormhole { path } = &grant.route else {
            panic!("NoSSD fabric received a non-wormhole grant");
        };
        let hops = path.hops();
        let d = self.params.circuit_duration(hops, bytes)
            + self.params.nossd_router_latency * u64::from(hops);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        let ns = d.as_nanos() as f64;
        let p = &self.params.power;
        // Links along the path plus the buffered routers they connect.
        self.stats.transfer_energy_nj += (p.link_mw * hops as f64
            + p.buffered_router_mw * (hops + 1) as f64)
            * ns
            / 1e3;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Wormhole { path } = grant.route else {
            panic!("NoSSD fabric received a non-wormhole grant");
        };
        let (min_row, max_row, min_col, max_col) = path.extent(&self.params.mesh());
        self.mesh.release_owned(path);
        self.fcs.release(grant.fc);
        ReleaseInfo {
            controller: Some(grant.fc),
            resource: FreedResource::MeshRegion {
                min_row,
                max_row,
                min_col,
                max_col,
            },
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        let row = usize::from(self.mesh.topology().row(chip));
        !self.fcs.busy[row] && !self.fcs.dead[row]
    }

    fn pooled(&self) -> bool {
        true
    }

    fn inject_fault(&mut self, fault: FabricFault) -> FaultImpact {
        mesh_inject_fault(&mut self.mesh, &mut self.fcs, fault)
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Venice: circuit switching with scout-packet reservation
// ---------------------------------------------------------------------------

/// Venice: the paper's design. Nearest-free controller, scout-packet path
/// reservation with the non-minimal fully-adaptive routing of Algorithm 1,
/// and circuit-switched bursts over the reserved bidirectional path.
#[derive(Debug)]
struct VeniceFabric {
    params: FabricParams,
    mesh: MeshState,
    fcs: ControllerPool,
    lfsr: Lfsr2,
    stats: FabricStats,
    /// The fast-fail cache, present unless [`ScoutCacheKind::Off`].
    cache: Option<ScoutCache>,
}

impl VeniceFabric {
    fn new(params: FabricParams) -> Self {
        let mesh = MeshState::new(params.mesh(), usize::from(params.rows));
        let cache = (params.scout_cache != ScoutCacheKind::Off).then(|| {
            ScoutCache::new(usize::from(params.rows), params.mesh().node_count())
        });
        VeniceFabric {
            mesh,
            fcs: ControllerPool::new(params.rows),
            lfsr: Lfsr2::new(),
            params,
            stats: FabricStats::default(),
            cache,
        }
    }

    /// Charges the stats of one failed path reservation (live or replayed)
    /// and produces the acquire error. Keeping the two failure paths on one
    /// accounting routine is what makes a fast-fail indistinguishable from
    /// the walk it memoized — conflicts, scout steps, and the conflict
    /// reason all match the uncached engine exactly.
    fn charge_failed_walk(
        &mut self,
        steps: u32,
        misroutes: u32,
        advanced: bool,
    ) -> AcquireError {
        self.stats.conflicts += 1;
        self.stats.scout_steps += u64::from(steps);
        self.stats.scout_failed_steps += u64::from(steps);
        self.stats.scout_misroutes += u64::from(misroutes);
        let reason = if advanced {
            ConflictReason::ScoutExhausted
        } else {
            ConflictReason::SourceBlocked
        };
        AcquireError::PathConflict(reason)
    }
}

impl Fabric for VeniceFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Venice
    }

    fn controller_count(&self) -> usize {
        usize::from(self.params.rows)
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let topo = self.mesh.topology();
        let Some(fc) = self.fcs.nearest_free(topo.row(chip)) else {
            self.stats.controller_unavailable += 1;
            return Err(AcquireError::NoFreeController);
        };
        // Fast-fail cache consult: while every generation the recorded walk
        // observed is unchanged, the failure replays in O(frontier tiles).
        let phase = self.lfsr.state();
        let mut predicted: Option<FailedWalk> = None;
        if let Some(cache) = self.cache.as_mut() {
            if let Some(fw) = cache.lookup(fc, chip, phase, &self.mesh) {
                if self.params.scout_cache == ScoutCacheKind::On {
                    self.stats.scout_fastfails += 1;
                    // The skipped walk would have consumed exactly these
                    // LFSR bits (same phase, or a phase-invariant cap-free
                    // entry); replaying them keeps every later walk's
                    // tie-breaks bit-identical to the uncached engine.
                    self.lfsr.advance(fw.lfsr_draws);
                    return Err(self.charge_failed_walk(
                        fw.steps,
                        fw.misroutes,
                        fw.advanced,
                    ));
                }
                // Checked: run the real walk below and cross-assert.
                predicted = Some(fw);
            }
        }
        match self.mesh.scout_walk_opts(
            fc.0,
            topo.fc_node(fc),
            chip,
            &mut self.lfsr,
            !self.params.venice_minimal_only,
        ) {
            Ok((path, outcome)) => {
                assert!(
                    predicted.is_none(),
                    "scout cache predicted a fast-fail for fc{} -> {} but the \
                     live walk succeeded (false fast-fail; Checked mode)",
                    fc.0,
                    chip.0
                );
                self.fcs.acquire(fc);
                self.stats.acquisitions += 1;
                self.stats.scout_steps += u64::from(outcome.steps);
                self.stats.scout_detours += u64::from(outcome.detoured);
                self.stats.scout_misroutes += u64::from(outcome.misroutes);
                self.stats.hops_total += u64::from(path.hops());
                // Scout round trip: forward walk steps plus the return along
                // the reserved path, one link latency per flit hop.
                let scout_latency =
                    self.params.link_latency * u64::from(outcome.steps + path.hops());
                Ok(PathGrant {
                    fc,
                    chip,
                    route: Route::Circuit {
                        path,
                        scout_latency,
                    },
                })
            }
            Err(fail) => {
                if let Some(fw) = predicted {
                    // Checked-mode cross-check: the cache's replayed outcome
                    // must match the live walk in every observable.
                    assert_eq!(
                        (fw.steps, fw.misroutes, fw.lfsr_draws, fw.advanced),
                        (fail.steps, fail.misroutes, fail.lfsr_draws, fail.advanced),
                        "scout cache verdict diverged from the live walk for \
                         fc{} -> {} (steps/misroutes/draws/advanced)",
                        fc.0,
                        chip.0
                    );
                    self.stats.scout_fastfails += 1; // verified prediction
                }
                if let Some(cache) = self.cache.as_mut() {
                    cache.record(
                        fc,
                        chip,
                        FailedWalk {
                            extent: fail.extent,
                            seq: self.mesh.change_seq(),
                            steps: fail.steps,
                            misroutes: fail.misroutes,
                            lfsr_draws: fail.lfsr_draws,
                            advanced: fail.advanced,
                            phase,
                            cap_pruned: fail.cap_pruned,
                        },
                    );
                }
                Err(self.charge_failed_walk(fail.steps, fail.misroutes, fail.advanced))
            }
        }
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let Route::Circuit {
            path,
            scout_latency,
        } = &grant.route
        else {
            panic!("Venice fabric received a non-circuit grant");
        };
        let hops = path.hops();
        let d = *scout_latency + self.params.circuit_duration(hops, bytes);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        let ns = d.as_nanos() as f64;
        let p = &self.params.power;
        self.stats.transfer_energy_nj +=
            (p.link_mw * hops as f64 + p.router_mw * (hops + 1) as f64) * ns / 1e3;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Circuit { path, .. } = grant.route else {
            panic!("Venice fabric received a non-circuit grant");
        };
        let (min_row, max_row, min_col, max_col) = path.extent(&self.params.mesh());
        self.mesh.release_owned(path);
        self.fcs.release(grant.fc);
        ReleaseInfo {
            controller: Some(grant.fc),
            resource: FreedResource::MeshRegion {
                min_row,
                max_row,
                min_col,
                max_col,
            },
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        let row = usize::from(self.mesh.topology().row(chip));
        !self.fcs.busy[row] && !self.fcs.dead[row]
    }

    fn pooled(&self) -> bool {
        true
    }

    fn inject_fault(&mut self, fault: FabricFault) -> FaultImpact {
        // The mask setters stamp the generation counters, so intersecting
        // fast-fail cache entries self-invalidate on their next lookup —
        // both for faults (a cached *success* region now blocked) and for
        // repairs (a cached *failure* that the freed link could un-block).
        mesh_inject_fault(&mut self.mesh, &mut self.fcs, fault)
    }

    fn stats(&self) -> FabricStats {
        let mut stats = self.stats;
        if let Some(cache) = &self.cache {
            stats.scout_cache_invalidations = cache.invalidations();
        }
        stats
    }
}

// ---------------------------------------------------------------------------
// Ideal: path-conflict-free SSD
// ---------------------------------------------------------------------------

/// The ideal SSD of §3.3: every chip has its own channel and controller, so
/// the only possible wait is on the chip's dedicated channel itself (which
/// the paper classifies as chip business, not a path conflict).
#[derive(Debug)]
struct IdealFabric {
    params: FabricParams,
    chan_busy: Vec<bool>,
    /// Dedicated channels failed by a router fault (the one shared-nothing
    /// resource the ideal SSD can lose; link faults are no-ops here).
    chan_dead: Vec<bool>,
    stats: FabricStats,
}

impl IdealFabric {
    fn new(params: FabricParams) -> Self {
        IdealFabric {
            chan_busy: vec![false; params.mesh().node_count()],
            chan_dead: vec![false; params.mesh().node_count()],
            params,
            stats: FabricStats::default(),
        }
    }
}

impl Fabric for IdealFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Ideal
    }

    fn controller_count(&self) -> usize {
        self.params.mesh().node_count()
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let idx = usize::from(chip.0);
        if self.chan_dead[idx] {
            return Err(AcquireError::ResourceDead);
        }
        if self.chan_busy[idx] {
            self.stats.channel_busy += 1;
            return Err(AcquireError::ChannelBusy);
        }
        self.chan_busy[idx] = true;
        self.stats.acquisitions += 1;
        Ok(PathGrant {
            fc: FcId((chip.0 % self.params.rows) as u8),
            chip,
            route: Route::Dedicated { chip },
        })
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let d = self.params.bus_duration(bytes, 1.0);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.transfer_energy_nj += self.params.power.bus_mw * d.as_nanos() as f64 / 1e3;
        let _ = grant;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Dedicated { chip } = grant.route else {
            panic!("ideal fabric received a non-dedicated grant");
        };
        debug_assert!(self.chan_busy[usize::from(chip.0)]);
        self.chan_busy[usize::from(chip.0)] = false;
        // Channels are per chip, not pooled: no controller returns to a
        // pool, and only the chip itself can have been waiting.
        ReleaseInfo {
            controller: None,
            resource: FreedResource::Channel(chip),
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        let idx = usize::from(chip.0);
        !self.chan_busy[idx] && !self.chan_dead[idx]
    }

    fn inject_fault(&mut self, fault: FabricFault) -> FaultImpact {
        let mut impact = FaultImpact::default();
        match fault {
            // No shared links to break: the ideal SSD only loses a chip
            // when that chip's own channel/port fails.
            FabricFault::LinkDown { .. } | FabricFault::LinkUp { .. } => {}
            FabricFault::RouterDown(n) => {
                self.chan_dead[usize::from(n.0)] = true;
                impact.dead_chips.push(n);
            }
            FabricFault::RouterUp(n) => {
                self.chan_dead[usize::from(n.0)] = false;
                impact.revived_chips.push(n);
                impact.freed = Some(FreedResource::Channel(n));
            }
        }
        impact
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acquire_ok(f: &mut dyn Fabric, chip: u16) -> PathGrant {
        f.try_acquire(NodeId(chip)).expect("acquire should succeed")
    }

    #[test]
    fn baseline_same_row_conflicts() {
        let mut f = build_fabric(FabricKind::Baseline, FabricParams::table1());
        let g = acquire_ok(f.as_mut(), 0);
        // Chip 1 shares row 0's bus.
        assert_eq!(
            f.try_acquire(NodeId(1)).unwrap_err(),
            AcquireError::PathConflict(ConflictReason::BusBusy)
        );
        // Chip 8 is on row 1: free bus.
        let g2 = acquire_ok(f.as_mut(), 8);
        f.release(g);
        let g3 = acquire_ok(f.as_mut(), 1);
        f.release(g2);
        f.release(g3);
        assert_eq!(f.stats().conflicts, 1);
        assert_eq!(f.stats().acquisitions, 3);
    }

    #[test]
    fn bus_transfer_times_match_table1() {
        let mut f = build_fabric(FabricKind::Baseline, FabricParams::table1());
        let g = acquire_ok(f.as_mut(), 0);
        // 4 KiB at 1.2 GB/s ≈ 3413 ns + 3 ns overhead.
        let d = f.transfer(&g, 4096);
        assert_eq!(d.as_nanos(), 3 + (4096.0f64 / 1.2).round() as u64);
        // Command burst ≈ 10 ns (the paper's perf-optimized CMD latency).
        let d_cmd = f.transfer(&g, 8);
        assert!((9..=11).contains(&d_cmd.as_nanos()), "cmd {d_cmd}");
        f.release(g);
    }

    #[test]
    fn pssd_is_twice_as_fast_on_the_wire() {
        let mut base = build_fabric(FabricKind::Baseline, FabricParams::table1());
        let mut pssd = build_fabric(FabricKind::Pssd, FabricParams::table1());
        let gb = acquire_ok(base.as_mut(), 5);
        let gp = acquire_ok(pssd.as_mut(), 5);
        let db = base.transfer(&gb, 16 * 1024);
        let dp = pssd.transfer(&gp, 16 * 1024);
        assert!(db.as_nanos() > dp.as_nanos());
        // Wire time (minus fixed overhead) halves.
        assert!(((db.as_nanos() - 3) as f64 / (dp.as_nanos() - 3) as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn pnssd_uses_column_bus_when_row_is_busy() {
        let mut f = build_fabric(FabricKind::PnSsd, FabricParams::table1());
        let g_row = acquire_ok(f.as_mut(), 0); // row 0 via row bus, FC0
        assert_eq!(g_row.fc, FcId(0));
        // Second chip on row 0, column 3: row bus busy → column bus 3 (FC3).
        let g_col = acquire_ok(f.as_mut(), 3);
        assert_eq!(g_col.fc, FcId(3));
        // Third chip on row 0, column 3 again: both buses busy → conflict.
        let err = f.try_acquire(NodeId(3)).unwrap_err();
        assert_eq!(err, AcquireError::PathConflict(ConflictReason::BusBusy));
        f.release(g_row);
        f.release(g_col);
    }

    #[test]
    fn nossd_routes_from_nearest_free_controller() {
        let params = FabricParams::table1();
        let mut f = build_fabric(FabricKind::NoSsd, params);
        // Chip (0,7): nearest controller is FC0 → 7 hops along row 0.
        let g = acquire_ok(f.as_mut(), 7);
        assert_eq!(g.fc, FcId(0));
        assert_eq!(g.hops(), 7);
        // Chip (0,6) while FC0 is busy: falls over to FC1, whose XY path
        // runs along row 1 and then up — 8 hops, no shared link.
        let g2 = acquire_ok(f.as_mut(), 6);
        assert_eq!(g2.fc, FcId(1));
        assert_eq!(g2.hops(), 7);
        f.release(g);
        f.release(g2);
        assert_eq!(f.stats().acquisitions, 2);
    }

    #[test]
    fn venice_adapts_around_blocked_links() {
        let params = FabricParams::table1();
        let mut f = build_fabric(FabricKind::Venice, params);
        // Saturate: acquire one circuit per controller; all must succeed
        // because the adaptive walk finds disjoint paths.
        let mut grants = Vec::new();
        for i in 0..8u16 {
            let chip = i * 8 + 7; // column 7 of each row
            grants.push(acquire_ok(f.as_mut(), chip));
        }
        assert_eq!(f.stats().acquisitions, 8);
        // Ninth acquisition fails: all controllers busy.
        assert_eq!(
            f.try_acquire(NodeId(0)).unwrap_err(),
            AcquireError::NoFreeController
        );
        for g in grants {
            f.release(g);
        }
    }

    #[test]
    fn venice_transfer_follows_equation_1() {
        let mut f = build_fabric(FabricKind::Venice, FabricParams::table1());
        let g = acquire_ok(f.as_mut(), 7); // row 0, col 7 → 7 hops from FC0
        assert_eq!(g.hops(), 7);
        let d = f.transfer(&g, 4096);
        // (distance + bytes/width) * link_lat = (7 + 4096) ns, plus the
        // scout's round trip.
        assert!(d.as_nanos() >= 7 + 4096, "duration {d}");
        assert!(d.as_nanos() < 7 + 4096 + 200, "scout latency too large: {d}");
        f.release(g);
    }

    #[test]
    fn ideal_only_blocks_per_chip() {
        let mut f = build_fabric(FabricKind::Ideal, FabricParams::table1());
        let mut grants = Vec::new();
        for chip in 0..64u16 {
            grants.push(acquire_ok(f.as_mut(), chip));
        }
        // A second transfer to chip 0 hits the dedicated channel.
        let err = f.try_acquire(NodeId(0)).unwrap_err();
        assert_eq!(err, AcquireError::ChannelBusy);
        assert!(!err.is_path_conflict());
        for g in grants {
            f.release(g);
        }
        assert_eq!(f.stats().conflicts, 0);
    }

    #[test]
    fn venice_beats_nossd_under_cross_traffic() {
        // Deterministic scenario: two transfers whose XY routes share a
        // column-7 link. NoSSD conflicts; Venice adapts around it.
        let params = FabricParams::table1();
        let mut nossd = build_fabric(FabricKind::NoSsd, params);
        let mut venice = build_fabric(FabricKind::Venice, params);

        let run = |f: &mut Box<dyn Fabric>| -> (Vec<PathGrant>, Result<PathGrant, AcquireError>) {
            let mut holds = Vec::new();
            // Pin FC1..FC4 to their own nodes (zero-hop circuits) so the
            // nearest-free policy must reach over rows for the real traffic.
            for row in 1..5u16 {
                holds.push(f.try_acquire(NodeId(row * 8)).unwrap());
            }
            // FC5 → (3,7): descends column 7 over rows 3..5.
            holds.push(f.try_acquire(NodeId(3 * 8 + 7)).unwrap());
            // FC6 → (4,7): its XY route needs the (4,7)–(5,7) link already
            // held by the previous transfer.
            let attempt = f.try_acquire(NodeId(4 * 8 + 7));
            (holds, attempt)
        };

        let (holds_n, res_n) = run(&mut nossd);
        assert_eq!(
            res_n.unwrap_err(),
            AcquireError::PathConflict(ConflictReason::RouteBlocked)
        );
        for g in holds_n {
            nossd.release(g);
        }

        let (holds_v, res_v) = run(&mut venice);
        let g = res_v.expect("venice's adaptive walk must find a detour");
        venice.release(g);
        for g in holds_v {
            venice.release(g);
        }
    }

    #[test]
    fn release_reports_the_freed_resource() {
        let params = FabricParams::table1();
        // Baseline: chip 9 sits on row 1; its bus and controller free together.
        let mut base = build_fabric(FabricKind::Baseline, params);
        let g = acquire_ok(base.as_mut(), 9);
        let info = base.release(g);
        assert_eq!(info.controller, Some(FcId(1)));
        assert_eq!(info.resource, FreedResource::RowBus(1));
        assert!(info.resource.may_unblock(NodeId(13), 1, 5));
        assert!(!info.resource.may_unblock(NodeId(21), 2, 5));

        // pnSSD: row bus first, then the column bus fallback.
        let mut pn = build_fabric(FabricKind::PnSsd, params);
        let g_row = acquire_ok(pn.as_mut(), 3);
        let g_col = acquire_ok(pn.as_mut(), 3); // row 0 busy → column bus 3
        assert_eq!(pn.release(g_col).resource, FreedResource::ColBus(3));
        assert_eq!(pn.release(g_row).resource, FreedResource::RowBus(0));

        // Mesh fabrics: the freed region must cover the circuit's endpoints.
        for kind in [FabricKind::NoSsd, FabricKind::Venice] {
            let mut f = build_fabric(kind, params);
            let g = acquire_ok(f.as_mut(), 2 * 8 + 5); // chip (2, 5)
            let fc = g.fc;
            let info = f.release(g);
            assert_eq!(info.controller, Some(fc), "{kind}");
            let FreedResource::MeshRegion {
                min_row,
                max_row,
                min_col,
                max_col,
            } = info.resource
            else {
                panic!("{kind}: mesh release must report a region");
            };
            assert!((min_row..=max_row).contains(&2), "{kind}");
            assert!((min_col..=max_col).contains(&5), "{kind}");
            assert!(
                info.resource.may_unblock(NodeId(2 * 8 + 5), 2, 5),
                "{kind}: target on wake list"
            );
        }

        // Ideal: per-chip channel, no pooled controller. The freed channel's
        // own chip is the one chip it can have blocked.
        let mut ideal = build_fabric(FabricKind::Ideal, params);
        let g = acquire_ok(ideal.as_mut(), 42);
        let info = ideal.release(g);
        assert_eq!(info.controller, None);
        assert_eq!(info.resource, FreedResource::Channel(NodeId(42)));
        assert!(info.resource.may_unblock(NodeId(42), 5, 2), "own chip woken");
        assert!(!info.resource.may_unblock(NodeId(43), 5, 3), "nobody else");
    }

    #[test]
    fn label_round_trips_through_by_label() {
        for kind in FabricKind::ALL {
            assert_eq!(FabricKind::by_label(kind.label()), Some(kind));
        }
        assert_eq!(FabricKind::by_label("venice"), Some(FabricKind::Venice));
        assert_eq!(FabricKind::by_label("PSSD"), Some(FabricKind::Pssd));
        assert_eq!(FabricKind::by_label("warp-drive"), None);
    }

    #[test]
    fn pooled_flag_matches_design() {
        let params = FabricParams::table1();
        for kind in FabricKind::ALL {
            let f = build_fabric(kind, params);
            let expect = matches!(kind, FabricKind::NoSsd | FabricKind::Venice);
            assert_eq!(f.pooled(), expect, "{kind}");
        }
    }

    #[test]
    fn home_controller_free_tracks_acquisitions() {
        for kind in FabricKind::ALL {
            let mut f = build_fabric(kind, FabricParams::table1());
            // Chip (0,1): its home row is 0.
            assert!(f.home_controller_free(NodeId(1)), "{kind}: idle fabric");
            let g = f.try_acquire(NodeId(1)).unwrap();
            assert!(
                !f.home_controller_free(NodeId(1)),
                "{kind}: home resource must appear busy"
            );
            f.release(g);
            assert!(f.home_controller_free(NodeId(1)), "{kind}: released");
        }
    }

    #[test]
    fn minimal_only_venice_cannot_take_the_figure8_detour() {
        // With misrouting disabled, a fully blocked minimal frontier makes
        // the reservation fail where full Venice succeeds.
        let mut params = FabricParams::table1();
        params.rows = 4;
        params.cols = 5;
        let build_blocked = |minimal_only: bool| {
            let mut p = params;
            p.venice_minimal_only = minimal_only;
            let mut mesh = MeshState::new(p.mesh(), 4);
            mesh.reserve_explicit(0, &[NodeId(0), NodeId(1), NodeId(6)]);
            mesh.reserve_explicit(1, &[NodeId(5), NodeId(6), NodeId(7), NodeId(8)]);
            mesh.reserve_explicit(2, &[NodeId(10), NodeId(11), NodeId(12), NodeId(7)]);
            (p, mesh)
        };
        use crate::mesh::MeshState;
        use venice_sim::rng::Lfsr2;
        let (_, mut mesh_min) = build_blocked(true);
        let mut lfsr = Lfsr2::new();
        assert!(
            mesh_min
                .scout_walk_opts(3, NodeId(15), NodeId(2), &mut lfsr, false)
                .is_err(),
            "minimal-only routing must fail the Figure 8 scenario"
        );
        let (_, mut mesh_full) = build_blocked(false);
        assert!(
            mesh_full
                .scout_walk_opts(3, NodeId(15), NodeId(2), &mut lfsr, true)
                .is_ok(),
            "full non-minimal routing must succeed"
        );
    }

    #[test]
    fn venice_scout_cache_replays_failures_bit_identically() {
        // Drive a cache-off and a cache-on Venice fabric in lockstep with a
        // deterministic random acquire/release script on a small, easily
        // congested mesh. Every outcome (success / error kind / transfer
        // duration) must match step for step — in particular, whenever an
        // attempt fails on a path conflict we immediately retry it, which
        // on the cached fabric exercises the fast-fail path (nothing
        // changed in between) while the uncached fabric re-runs the DFS.
        let mut params = FabricParams::table1();
        params.rows = 4;
        params.cols = 4;
        let mut off = VeniceFabric::new(FabricParams {
            scout_cache: crate::ScoutCacheKind::Off,
            ..params
        });
        let mut on = VeniceFabric::new(FabricParams {
            scout_cache: crate::ScoutCacheKind::On,
            ..params
        });
        let mut rng = venice_sim::rng::Xorshift64Star::new(0x5C07);
        let mut grants: Vec<(PathGrant, PathGrant)> = Vec::new();
        let mut conflicts = 0u32;
        for _ in 0..4_000 {
            if !grants.is_empty() && rng.next_bool(0.35) {
                let idx = rng.next_bounded(grants.len() as u64) as usize;
                let (a, b) = grants.swap_remove(idx);
                off.release(a);
                on.release(b);
                continue;
            }
            let chip = NodeId(rng.next_bounded(16) as u16);
            let (ra, rb) = (off.try_acquire(chip), on.try_acquire(chip));
            match (ra, rb) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.fc, b.fc);
                    assert_eq!(a.hops(), b.hops());
                    let (da, db) = (off.transfer(&a, 4096), on.transfer(&b, 4096));
                    assert_eq!(da, db, "transfer durations must match");
                    grants.push((a, b));
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "failure kinds must match");
                    if ea.is_path_conflict() {
                        conflicts += 1;
                        // Immediate retry over an unchanged mesh: the
                        // cached fabric must reproduce the uncached walk's
                        // verdict without running it.
                        let (ra2, rb2) = (off.try_acquire(chip), on.try_acquire(chip));
                        assert_eq!(ra2.unwrap_err(), rb2.unwrap_err());
                    }
                }
                (a, b) => panic!("engines diverged: off={a:?} on={b:?}"),
            }
        }
        for (a, b) in grants.drain(..) {
            off.release(a);
            on.release(b);
        }
        let (so, sn) = (off.stats(), on.stats());
        assert!(conflicts > 0, "script must exercise path conflicts");
        assert!(sn.scout_fastfails > 0, "cache must actually fast-fail");
        // Every simulated-behavior stat is bit-identical; only the cache's
        // own effort counters may differ.
        assert_eq!(so.acquisitions, sn.acquisitions);
        assert_eq!(so.conflicts, sn.conflicts);
        assert_eq!(so.scout_steps, sn.scout_steps);
        assert_eq!(so.scout_failed_steps, sn.scout_failed_steps);
        assert_eq!(so.scout_misroutes, sn.scout_misroutes);
        assert_eq!(so.scout_detours, sn.scout_detours);
        assert_eq!(so.hops_total, sn.hops_total);
        assert_eq!(so.transfer_energy_nj.to_bits(), sn.transfer_energy_nj.to_bits());
        assert_eq!(so.scout_fastfails, 0);
        // And the two LFSRs end in the same state — the draw-replay
        // contract that keeps later walks aligned.
        assert_eq!(off.lfsr.state(), on.lfsr.state());
    }

    #[test]
    fn checked_mode_verifies_cache_verdicts_live() {
        // Same script shape as above but in Checked mode: the cache's
        // verdicts are asserted against the live walk inside try_acquire,
        // so simply completing the run is the cross-check.
        let mut params = FabricParams::table1();
        params.rows = 4;
        params.cols = 4;
        params.scout_cache = crate::ScoutCacheKind::Checked;
        let mut f = VeniceFabric::new(params);
        let mut rng = venice_sim::rng::Xorshift64Star::new(0xC4EC);
        let mut grants: Vec<PathGrant> = Vec::new();
        for _ in 0..4_000 {
            if !grants.is_empty() && rng.next_bool(0.35) {
                let idx = rng.next_bounded(grants.len() as u64) as usize;
                f.release(grants.swap_remove(idx));
                continue;
            }
            let chip = NodeId(rng.next_bounded(16) as u16);
            match f.try_acquire(chip) {
                Ok(g) => grants.push(g),
                Err(e) if e.is_path_conflict() => {
                    // Unchanged mesh: the prediction must verify (any
                    // divergence panics inside try_acquire).
                    let retry = f.try_acquire(chip);
                    assert!(retry.is_err(), "unchanged mesh cannot start succeeding");
                }
                Err(_) => {}
            }
        }
        assert!(
            f.stats().scout_fastfails > 0,
            "checked mode must verify at least one cached verdict"
        );
    }

    #[test]
    fn bus_link_fault_strands_the_row_until_repair() {
        let mesh = FabricParams::table1().mesh();
        for kind in [FabricKind::Baseline, FabricKind::Pssd] {
            let mut f = build_fabric(kind, FabricParams::table1());
            let (a, b) = (mesh.node_at(1, 3), mesh.node_at(1, 4));
            let impact = f.inject_fault(FabricFault::LinkDown { a, b });
            // One broken bus segment strands the whole row.
            assert_eq!(impact.dead_chips.len(), 8, "{kind}");
            assert!(impact.dead_chips.iter().all(|&n| mesh.row(n) == 1));
            assert_eq!(
                f.try_acquire(mesh.node_at(1, 0)).unwrap_err(),
                AcquireError::ResourceDead,
                "{kind}"
            );
            assert!(!f.home_controller_free(mesh.node_at(1, 0)));
            // Dead-resource rejections are not Figure 13 path conflicts.
            assert_eq!(f.stats().conflicts, 0, "{kind}");
            // Other rows are unaffected.
            let g = acquire_ok(f.as_mut(), 2 * 8);
            f.release(g);
            // Repair revives the row and frees the bus on the wake list.
            let impact = f.inject_fault(FabricFault::LinkUp { a, b });
            assert_eq!(impact.revived_chips.len(), 8, "{kind}");
            assert_eq!(impact.freed, Some(FreedResource::RowBus(1)));
            let g = acquire_ok(f.as_mut(), 8);
            f.release(g);
        }
    }

    #[test]
    fn pnssd_survives_one_dead_bus_and_loses_only_the_intersection_of_two() {
        let params = FabricParams::table1();
        let mesh = params.mesh();
        let mut f = build_fabric(FabricKind::PnSsd, params);
        // Row bus 1 dies: no chip is stranded — the column buses remain.
        let impact = f.inject_fault(FabricFault::LinkDown {
            a: mesh.node_at(1, 3),
            b: mesh.node_at(1, 4),
        });
        assert!(impact.dead_chips.is_empty());
        let g = acquire_ok(f.as_mut(), 8 + 5); // chip (1,5) via column bus 5
        assert_eq!(g.fc, FcId(5));
        f.release(g);
        // Column bus 3 also dies: exactly chip (1,3) is now unreachable.
        let impact = f.inject_fault(FabricFault::LinkDown {
            a: mesh.node_at(5, 3),
            b: mesh.node_at(6, 3),
        });
        assert_eq!(impact.dead_chips, vec![mesh.node_at(1, 3)]);
        assert_eq!(
            f.try_acquire(mesh.node_at(1, 3)).unwrap_err(),
            AcquireError::ResourceDead
        );
        // Same column, different row: still served over its row bus.
        let g = acquire_ok(f.as_mut(), 2 * 8 + 3);
        assert_eq!(g.fc, FcId(2));
        f.release(g);
        // Repairing the column bus revives the intersection chip.
        let impact = f.inject_fault(FabricFault::LinkUp {
            a: mesh.node_at(5, 3),
            b: mesh.node_at(6, 3),
        });
        assert_eq!(impact.revived_chips, vec![mesh.node_at(1, 3)]);
        assert_eq!(impact.freed, Some(FreedResource::ColBus(3)));
        let g = acquire_ok(f.as_mut(), 8 + 3);
        f.release(g);
    }

    #[test]
    fn venice_reroutes_around_a_link_fault_that_blocks_nossd_xy() {
        let params = FabricParams::table1();
        let mesh = params.mesh();
        let fault = FabricFault::LinkDown {
            a: mesh.node_at(1, 3),
            b: mesh.node_at(1, 4),
        };
        // NoSSD: the deterministic XY route from the home-row controller
        // dies on the masked link, so the pool falls over to the next
        // controller (in nearest-first order) whose XY route avoids it.
        let mut nossd = build_fabric(FabricKind::NoSsd, params);
        assert!(nossd.inject_fault(fault).dead_chips.is_empty());
        let g = nossd
            .try_acquire(mesh.node_at(1, 7))
            .expect("a detour controller must route around the fault");
        assert_ne!(g.fc, FcId(1), "home-row route is severed");
        nossd.release(g);
        // With every other controller mid-transfer, the chip is only
        // *temporarily* unreachable — a retryable conflict (repair or a
        // release unblocks it), never a dead resource.
        let held: Vec<_> = (0u16..8)
            .filter(|&r| r != 1)
            .map(|r| acquire_ok(nossd.as_mut(), r * 8 + 1))
            .collect();
        assert_eq!(
            nossd.try_acquire(mesh.node_at(1, 7)).unwrap_err(),
            AcquireError::PathConflict(ConflictReason::RouteBlocked)
        );
        for g in held {
            nossd.release(g);
        }
        // Venice: the scout detours around the dead link and still grants.
        let mut venice = build_fabric(FabricKind::Venice, params);
        assert!(venice.inject_fault(fault).dead_chips.is_empty());
        let g = venice
            .try_acquire(mesh.node_at(1, 7))
            .expect("scout must route around the dead link");
        assert!(g.hops() > 7, "minimal row path is broken, must detour");
        venice.release(g);
    }

    #[test]
    fn router_fault_kills_the_chip_and_a_west_edge_fault_parks_the_controller() {
        let params = FabricParams::table1();
        let mesh = params.mesh();
        let mut f = build_fabric(FabricKind::Venice, params);
        // Mid-mesh router dies: exactly that chip is lost; traffic around
        // it still routes.
        let dead = mesh.node_at(1, 4);
        let impact = f.inject_fault(FabricFault::RouterDown(dead));
        assert_eq!(impact.dead_chips, vec![dead]);
        let g = acquire_ok(f.as_mut(), 8 + 7); // chip (1,7) beyond the hole
        f.release(g);
        // West-edge router dies: its controller leaves the pool, so the
        // nearest-free policy silently falls over to a neighbor row.
        let edge = mesh.node_at(2, 0);
        f.inject_fault(FabricFault::RouterDown(edge));
        let g = acquire_ok(f.as_mut(), 2 * 8 + 5);
        assert_ne!(g.fc, FcId(2), "dead controller must not be selected");
        f.release(g);
        // Repairs restore both.
        f.inject_fault(FabricFault::RouterUp(edge));
        f.inject_fault(FabricFault::RouterUp(dead));
        let g = acquire_ok(f.as_mut(), 2 * 8 + 5);
        assert_eq!(g.fc, FcId(2));
        f.release(g);
    }

    #[test]
    fn ideal_loses_only_the_faulted_channel() {
        let mut f = build_fabric(FabricKind::Ideal, FabricParams::table1());
        let impact = f.inject_fault(FabricFault::RouterDown(NodeId(42)));
        assert_eq!(impact.dead_chips, vec![NodeId(42)]);
        assert_eq!(
            f.try_acquire(NodeId(42)).unwrap_err(),
            AcquireError::ResourceDead
        );
        let g = acquire_ok(f.as_mut(), 43);
        f.release(g);
        // Link faults have nothing to break on dedicated channels.
        let impact = f.inject_fault(FabricFault::LinkDown {
            a: NodeId(0),
            b: NodeId(1),
        });
        assert_eq!(impact, FaultImpact::default());
        let impact = f.inject_fault(FabricFault::RouterUp(NodeId(42)));
        assert_eq!(impact.freed, Some(FreedResource::Channel(NodeId(42))));
        let g = acquire_ok(f.as_mut(), 42);
        f.release(g);
    }

    #[test]
    fn stats_track_energy_and_bytes() {
        let mut f = build_fabric(FabricKind::Venice, FabricParams::table1());
        let g = acquire_ok(f.as_mut(), 9);
        f.transfer(&g, 4096);
        f.release(g);
        let s = f.stats();
        assert_eq!(s.bytes, 4096);
        assert_eq!(s.transfers, 1);
        assert!(s.transfer_energy_nj > 0.0);
    }
}
