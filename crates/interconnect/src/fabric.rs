//! The six intra-SSD communication fabrics behind one interface.
//!
//! Each fabric implements [`Fabric`]: a controller-to-chip *path* is
//! acquired for one transfer burst (a command, or a page of data), held for
//! the duration returned by [`Fabric::transfer`], and released. This mirrors
//! the service timeline of Figure 3: the path is free while the flash array
//! operation (tR/tPROG/tBERS) executes inside the chip.
//!
//! Designs (§3 and §4 of the paper):
//!
//! * [`FabricKind::Baseline`] — multi-channel shared bus, one channel per row.
//! * [`FabricKind::Pssd`] — packetized SSD: same topology, 2× bus bandwidth.
//! * [`FabricKind::PnSsd`] — packetized network SSD: a row bus *and* a column
//!   bus reach every chip; each controller drives one row and one column bus.
//! * [`FabricKind::NoSsd`] — 2D mesh with buffered routers and deterministic
//!   dimension-order (XY) routing.
//! * [`FabricKind::Venice`] — 2D mesh of router chips, circuit switching via
//!   scout-packet path reservation, non-minimal fully-adaptive routing.
//! * [`FabricKind::Ideal`] — the path-conflict-free SSD: a dedicated channel
//!   (and controller) per chip; requests only ever wait on the chip itself.

use std::fmt;

use venice_sim::rng::Lfsr2;
use venice_sim::SimDuration;

use crate::mesh::{MeshState, ReservedPath};
use crate::scout::{FailedWalk, ScoutCache, ScoutCacheKind};
use crate::{FcId, LinkPower, Mesh2D, NodeId};

/// Which fabric design an SSD uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// Multi-channel shared bus (the Baseline SSD).
    Baseline,
    /// Packetized SSD: 2× channel bandwidth at 20% flash-die area cost.
    Pssd,
    /// Packetized network SSD: row + column shared buses.
    PnSsd,
    /// Network-on-SSD: buffered-router mesh with XY routing.
    NoSsd,
    /// Venice: circuit-switched mesh with scout-based path reservation.
    Venice,
    /// Ideal path-conflict-free SSD (upper bound).
    Ideal,
}

impl FabricKind {
    /// All fabrics, in the order the paper's figures present them.
    pub const ALL: [FabricKind; 6] = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
        FabricKind::Ideal,
    ];

    /// Looks up a fabric by its report label (`"Venice"`, `"pSSD"`, ...),
    /// case-insensitively — the config-from-axis constructor used when
    /// parsing sweep-grid definitions and CLI system lists.
    pub fn by_label(label: &str) -> Option<FabricKind> {
        FabricKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(label))
    }

    /// Short label used in reports ("pSSD", "Venice", ...).
    pub fn label(&self) -> &'static str {
        match self {
            FabricKind::Baseline => "Baseline",
            FabricKind::Pssd => "pSSD",
            FabricKind::PnSsd => "pnSSD",
            FabricKind::NoSsd => "NoSSD",
            FabricKind::Venice => "Venice",
            FabricKind::Ideal => "Ideal",
        }
    }
}

impl fmt::Display for FabricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Physical parameters shared by all fabrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FabricParams {
    /// Flash-array rows; also the controller/channel count.
    pub rows: u16,
    /// Chips per row.
    pub cols: u16,
    /// Shared-channel bandwidth in bytes per nanosecond (1.2 for Table 1's
    /// 1.2 GB/s flash channel I/O rate).
    pub bus_bytes_per_ns: f64,
    /// Fixed per-burst bus arbitration/turnaround overhead.
    pub bus_overhead: SimDuration,
    /// Mesh link width in bytes (8-bit links → 1).
    pub link_width_bytes: u32,
    /// Latency of one link transfer of `link_width_bytes` (1 ns at 1 GHz).
    pub link_latency: SimDuration,
    /// Per-hop pipeline latency of NoSSD's buffered routers.
    pub nossd_router_latency: SimDuration,
    /// Ablation knob: restrict Venice's routing to minimal paths (disables
    /// the §4.3 non-minimal misrouting stage; backtracking still works).
    pub venice_minimal_only: bool,
    /// Whether Venice runs the generation-stamped scout fast-fail cache
    /// (see [`crate::scout::ScoutCache`]); [`ScoutCacheKind::Off`] is the
    /// default and reproduces the pre-cache engine exactly.
    pub scout_cache: ScoutCacheKind,
    /// Electrical power model (Table 4 constants).
    pub power: LinkPower,
}

impl FabricParams {
    /// Table 1 parameters: 8×8 array, 1.2 GB/s buses, 8-bit 1 GHz links.
    pub fn table1() -> Self {
        FabricParams {
            rows: 8,
            cols: 8,
            bus_bytes_per_ns: 1.2,
            bus_overhead: SimDuration::from_nanos(3),
            link_width_bytes: 1,
            link_latency: SimDuration::from_nanos(1),
            nossd_router_latency: SimDuration::from_nanos(2),
            venice_minimal_only: false,
            scout_cache: ScoutCacheKind::Off,
            power: LinkPower::paper(),
        }
    }

    /// Same electrical parameters with a different array shape (Figure 15's
    /// 4×16 / 8×8 / 16×4 sweep).
    pub fn with_shape(rows: u16, cols: u16) -> Self {
        FabricParams {
            rows,
            cols,
            ..Self::table1()
        }
    }

    /// The mesh topology implied by these parameters.
    pub fn mesh(&self) -> Mesh2D {
        Mesh2D::new(self.rows, self.cols)
    }

    /// Duration of a bus burst of `bytes` at `mult`× the base bandwidth.
    fn bus_duration(&self, bytes: u64, mult: f64) -> SimDuration {
        self.bus_overhead
            + SimDuration::from_nanos_f64(bytes as f64 / (self.bus_bytes_per_ns * mult))
    }

    /// Equation 1 of the paper: circuit transfer time over `hops` links.
    fn circuit_duration(&self, hops: u32, bytes: u64) -> SimDuration {
        let beats = bytes.div_ceil(u64::from(self.link_width_bytes));
        self.link_latency * (u64::from(hops) + beats)
    }
}

/// What exactly blocked a path-conflict acquisition failure.
///
/// Dispatch policies use this to tell conflicts that back off profitably
/// (another in-flight transfer holds the resource and will release it soon)
/// from structural blockage deep in the mesh. All reasons count equally as
/// Figure 13 path conflicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictReason {
    /// A shared channel bus is mid-transfer (Baseline/pSSD/pnSSD).
    BusBusy,
    /// The deterministic XY route crossed a link held by another circuit
    /// (NoSSD has no way around it).
    RouteBlocked,
    /// A Venice scout advanced into the mesh but exhausted every feasible
    /// port assignment and was cancelled back to the controller.
    ScoutExhausted,
    /// A Venice scout could not leave the source router at all — every
    /// usable local port was already reserved.
    SourceBlocked,
}

impl ConflictReason {
    /// Short diagnostic label.
    pub fn label(&self) -> &'static str {
        match self {
            ConflictReason::BusBusy => "bus busy",
            ConflictReason::RouteBlocked => "route blocked",
            ConflictReason::ScoutExhausted => "scout exhausted",
            ConflictReason::SourceBlocked => "source blocked",
        }
    }
}

/// Why a path acquisition failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// Every eligible flash controller is busy with another transfer.
    NoFreeController,
    /// A controller was available but the path/bus to the chip was occupied —
    /// this is the paper's *path conflict* (Figure 13). The payload says what
    /// specifically blocked the path.
    PathConflict(ConflictReason),
    /// The ideal SSD's dedicated per-chip channel is mid-transfer; by the
    /// paper's definition this is a chip-side delay, not a path conflict.
    ChannelBusy,
}

impl AcquireError {
    /// Whether this failure counts as a path conflict in Figure 13's metric.
    pub fn is_path_conflict(&self) -> bool {
        matches!(self, AcquireError::PathConflict(_))
    }

    /// The structured conflict reason, when this is a path conflict.
    pub fn conflict_reason(&self) -> Option<ConflictReason> {
        match self {
            AcquireError::PathConflict(r) => Some(*r),
            _ => None,
        }
    }
}

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcquireError::NoFreeController => f.write_str("no free flash controller"),
            AcquireError::PathConflict(r) => write!(f, "path conflict ({})", r.label()),
            AcquireError::ChannelBusy => f.write_str("dedicated channel busy"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// The route held by a grant (opaque outside this crate).
#[derive(Clone, Debug)]
enum Route {
    /// A shared bus (row bus `0..rows`, or `rows + c` for pnSSD column buses).
    Bus { bus: u16, bandwidth_mult: f64 },
    /// A reserved Venice circuit, with the scout's round-trip latency.
    Circuit {
        path: ReservedPath,
        scout_latency: SimDuration,
    },
    /// A NoSSD wormhole path (whole XY path held for the burst).
    Wormhole { path: ReservedPath },
    /// The ideal SSD's dedicated channel to one chip.
    Dedicated { chip: NodeId },
}

/// A granted controller + path, held for one transfer burst.
///
/// Obtain with [`Fabric::try_acquire`]; pass to [`Fabric::transfer`] to get
/// the burst duration; return with [`Fabric::release`] when the burst ends.
#[derive(Clone, Debug)]
pub struct PathGrant {
    /// The controller servicing the burst.
    pub fc: FcId,
    /// Destination chip node.
    pub chip: NodeId,
    route: Route,
}

impl PathGrant {
    /// Number of mesh hops held by this grant (0 for bus/dedicated routes).
    pub fn hops(&self) -> u32 {
        match &self.route {
            Route::Circuit { path, .. } | Route::Wormhole { path } => path.hops(),
            _ => 0,
        }
    }
}

/// Which shared resource a [`Fabric::release`] just freed — the fabric's
/// *wake list*.
///
/// Freeing a resource is the only fabric state change that can turn a
/// failing [`Fabric::try_acquire`] into a success, so the release report is
/// what an incremental dispatcher keys its re-arming on. The contract every
/// fabric must honor: the report names the resource whose links/slots the
/// release returned to the pool. Bus fabrics name the bus; the ideal SSD
/// names the chip's dedicated channel; mesh fabrics name the bounding box
/// of the released circuit. For the bus and channel designs the resource
/// maps exactly onto the chips it gates; for adaptive mesh routing the box
/// is a locality hint only (see [`FreedResource::may_unblock`]), which is
/// why the engine's re-arming keys on the freed *controller* plus its
/// queued-work ready sets rather than on per-chip region tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreedResource {
    /// A row-shared channel bus (Baseline, pSSD, pnSSD row buses).
    RowBus(u16),
    /// A pnSSD column bus.
    ColBus(u16),
    /// The ideal SSD's dedicated per-chip channel.
    Channel(NodeId),
    /// The mesh region a released circuit occupied, as a node bounding box
    /// (`min_row..=max_row` × `min_col..=max_col`).
    MeshRegion {
        /// Topmost row the circuit touched.
        min_row: u16,
        /// Bottommost row the circuit touched.
        max_row: u16,
        /// Leftmost column the circuit touched.
        min_col: u16,
        /// Rightmost column the circuit touched.
        max_col: u16,
    },
}

impl FreedResource {
    /// Whether the chip `chip`, sitting at `(row, col)`, is on this
    /// resource's wake list — i.e. whether freeing the resource could
    /// unblock a transfer to that chip.
    ///
    /// `RowBus`/`ColBus`/`Channel` are exact: bus designs gate a chip on
    /// precisely its row/column bus, and a dedicated channel can only have
    /// blocked its own chip. `MeshRegion` is a *heuristic* hint, not a
    /// guarantee: adaptive (non-minimal) mesh routes can depend on links
    /// outside any box-derived test, so a re-arming policy consuming it
    /// must keep a fallback that eventually retries every chip with queued
    /// work — the engine's ready sets and probe rounds already are one.
    pub fn may_unblock(&self, chip: NodeId, row: u16, col: u16) -> bool {
        match *self {
            FreedResource::RowBus(r) => r == row,
            FreedResource::ColBus(c) => c == col,
            FreedResource::Channel(freed) => freed == chip,
            FreedResource::MeshRegion {
                min_row,
                max_row,
                min_col,
                max_col,
            } => {
                // Heuristic: a minimal route to (row, col) shares the
                // box's rows or columns; misrouted/backtracked circuits
                // may not (see the doc above for the fallback requirement).
                (min_row..=max_row).contains(&row) || (min_col..=max_col).contains(&col)
            }
        }
    }
}

/// What a [`Fabric::release`] freed: the controller returned to the pool
/// (when the design has one) plus the path resource on the wake list.
///
/// The SSD engine consumes `controller` to clear its
/// parked-until-controller-free dispatch state; `resource` is the per-chip
/// wake list available to finer-grained re-arming policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReleaseInfo {
    /// The flash controller freed, for designs with a controller pool
    /// (`None` for the ideal SSD, whose per-chip channels are not pooled).
    pub controller: Option<FcId>,
    /// The freed path resource.
    pub resource: FreedResource,
}

/// Cumulative fabric statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FabricStats {
    /// Successful path acquisitions.
    pub acquisitions: u64,
    /// Failed acquisitions that count as path conflicts (Fig. 13).
    pub conflicts: u64,
    /// Failed acquisitions because no controller was free.
    pub controller_unavailable: u64,
    /// Failed acquisitions on the ideal SSD's dedicated channels.
    pub channel_busy: u64,
    /// Completed transfer bursts.
    pub transfers: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Transfer energy (links/buses + routers), nanojoules.
    pub transfer_energy_nj: f64,
    /// Scout steps walked (Venice only).
    pub scout_steps: u64,
    /// Scout walks that detoured (misrouted or backtracked) before success.
    pub scout_detours: u64,
    /// Misroute (non-minimal port) selections across all scout walks.
    pub scout_misroutes: u64,
    /// Scout steps spent in walks that ultimately failed (the fast-fail
    /// cache's target; a subset of [`FabricStats::scout_steps`]).
    pub scout_failed_steps: u64,
    /// Acquisition attempts resolved by the scout fast-fail cache without a
    /// DFS (in `Checked` mode: cache verdicts verified against a live
    /// walk). Zero when the cache is off — an *effort* stat, excluded from
    /// behavioral cross-checks.
    pub scout_fastfails: u64,
    /// Cache entries dropped because a reservation change intersected
    /// their extent. Zero when the cache is off (effort stat).
    pub scout_cache_invalidations: u64,
    /// Sum of hops over all granted mesh paths (mean path length diagnostics).
    pub hops_total: u64,
}

/// A communication fabric between flash controllers and flash chips.
///
/// Implementations are deterministic and instantaneous: time only passes via
/// the durations they return, which the caller turns into simulation events.
pub trait Fabric {
    /// Which design this is.
    fn kind(&self) -> FabricKind;

    /// Number of flash controllers (concurrent transfer bound).
    fn controller_count(&self) -> usize;

    /// Attempts to acquire a controller and a path to `chip` for one burst.
    ///
    /// # Errors
    ///
    /// See [`AcquireError`]; callers retry when the fabric next changes
    /// state (a release), which the simulation core tracks.
    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError>;

    /// True when the chip's *closest* controller is available right now.
    ///
    /// Schedulers use this as a dispatch-affinity hint: issuing transfers to
    /// chips whose home-row controller is free keeps circuits short and
    /// row-local (the paper's §4.2 controller-selection policy), which both
    /// shortens transfers and leaves the mesh free for other circuits.
    fn home_controller_free(&self, chip: NodeId) -> bool;

    /// True when controllers are pooled (any controller can reach any
    /// chip). In pooled fabrics a path conflict occupies the selected
    /// controller — the hardware controller retries the same request's
    /// reservation rather than switching to other work — so the dispatcher
    /// must stop issuing after the first conflict. Bus designs return false:
    /// their per-row channels fail independently.
    fn pooled(&self) -> bool {
        false
    }

    /// Duration of a `bytes`-byte burst over the granted path, including any
    /// reservation latency. Also accrues transfer energy into the stats.
    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration;

    /// Releases the grant's controller and path, reporting what freed (the
    /// wake list an incremental dispatcher re-arms from — see
    /// [`ReleaseInfo`] and [`FreedResource`] for the contract new fabrics
    /// must honor).
    fn release(&mut self, grant: PathGrant) -> ReleaseInfo;

    /// Cumulative statistics.
    fn stats(&self) -> FabricStats;
}

/// Constructs the fabric for `kind` with the given parameters.
///
/// # Example
///
/// ```
/// use venice_interconnect::{build_fabric, FabricKind, FabricParams, NodeId};
/// let mut fabric = build_fabric(FabricKind::Venice, FabricParams::table1());
/// let grant = fabric.try_acquire(NodeId(42)).unwrap();
/// let d = fabric.transfer(&grant, 4096);
/// assert!(d.as_nanos() >= 4096);
/// fabric.release(grant);
/// ```
pub fn build_fabric(kind: FabricKind, params: FabricParams) -> Box<dyn Fabric> {
    match kind {
        FabricKind::Baseline => Box::new(BusFabric::new(params, FabricKind::Baseline, 1.0)),
        FabricKind::Pssd => Box::new(BusFabric::new(params, FabricKind::Pssd, 2.0)),
        FabricKind::PnSsd => Box::new(PnSsdFabric::new(params)),
        FabricKind::NoSsd => Box::new(NoSsdFabric::new(params)),
        FabricKind::Venice => Box::new(VeniceFabric::new(params)),
        FabricKind::Ideal => Box::new(IdealFabric::new(params)),
    }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Controller availability tracking shared by the mesh fabrics.
#[derive(Clone, Debug)]
struct ControllerPool {
    busy: Vec<bool>,
    rows: u16,
}

impl ControllerPool {
    fn new(rows: u16) -> Self {
        ControllerPool {
            busy: vec![false; usize::from(rows)],
            rows,
        }
    }

    /// The paper's §4.2 policy: the closest controller to the target chip if
    /// free, otherwise the nearest free controller (distance = row offset,
    /// since controllers sit one per row on the west edge).
    fn nearest_free(&self, chip_row: u16) -> Option<FcId> {
        let n = i32::from(self.rows);
        let target = i32::from(chip_row);
        (0..n)
            .filter(|&fc| !self.busy[fc as usize])
            .min_by_key(|&fc| ((fc - target).abs(), fc))
            .map(|fc| FcId(fc as u8))
    }

    fn acquire(&mut self, fc: FcId) {
        debug_assert!(!self.busy[usize::from(fc.0)], "controller already busy");
        self.busy[usize::from(fc.0)] = true;
    }

    fn release(&mut self, fc: FcId) {
        debug_assert!(self.busy[usize::from(fc.0)], "controller not busy");
        self.busy[usize::from(fc.0)] = false;
    }
}

// ---------------------------------------------------------------------------
// Baseline / pSSD: multi-channel shared bus
// ---------------------------------------------------------------------------

/// Baseline and pSSD: one shared bus per row; the row's controller and bus
/// are a single contended resource (the paper's path conflict in its purest
/// form).
#[derive(Debug)]
struct BusFabric {
    params: FabricParams,
    kind: FabricKind,
    bandwidth_mult: f64,
    bus_busy: Vec<bool>,
    stats: FabricStats,
}

impl BusFabric {
    fn new(params: FabricParams, kind: FabricKind, bandwidth_mult: f64) -> Self {
        BusFabric {
            bus_busy: vec![false; usize::from(params.rows)],
            params,
            kind,
            bandwidth_mult,
            stats: FabricStats::default(),
        }
    }
}

impl Fabric for BusFabric {
    fn kind(&self) -> FabricKind {
        self.kind
    }

    fn controller_count(&self) -> usize {
        usize::from(self.params.rows)
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let row = self.params.mesh().row(chip);
        if self.bus_busy[usize::from(row)] {
            self.stats.conflicts += 1;
            return Err(AcquireError::PathConflict(ConflictReason::BusBusy));
        }
        self.bus_busy[usize::from(row)] = true;
        self.stats.acquisitions += 1;
        Ok(PathGrant {
            fc: FcId(row as u8),
            chip,
            route: Route::Bus {
                bus: row,
                bandwidth_mult: self.bandwidth_mult,
            },
        })
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let Route::Bus { bandwidth_mult, .. } = grant.route else {
            panic!("bus fabric received a non-bus grant");
        };
        let d = self.params.bus_duration(bytes, bandwidth_mult);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        // Bus active power scales with the bandwidth multiplier (pSSD drives
        // the pins twice as often), so energy per bit is constant.
        self.stats.transfer_energy_nj +=
            self.params.power.bus_mw * bandwidth_mult * d.as_nanos() as f64 / 1e3;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Bus { bus, .. } = grant.route else {
            panic!("bus fabric received a non-bus grant");
        };
        debug_assert!(self.bus_busy[usize::from(bus)]);
        self.bus_busy[usize::from(bus)] = false;
        // The row's controller is the bus driver: freeing one frees both.
        ReleaseInfo {
            controller: Some(grant.fc),
            resource: FreedResource::RowBus(bus),
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        !self.bus_busy[usize::from(self.params.mesh().row(chip))]
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// pnSSD: row + column shared buses
// ---------------------------------------------------------------------------

/// pnSSD: every chip is reachable over its row bus or its column bus; the
/// controller of the matching index drives each bus, one transfer at a time.
#[derive(Debug)]
struct PnSsdFabric {
    params: FabricParams,
    /// `rows` row buses followed by `cols` column buses.
    bus_busy: Vec<bool>,
    fc_busy: Vec<bool>,
    stats: FabricStats,
}

impl PnSsdFabric {
    fn new(params: FabricParams) -> Self {
        assert_eq!(
            params.rows, params.cols,
            "pnSSD requires an N×N flash array (paper §6.5 footnote)"
        );
        PnSsdFabric {
            bus_busy: vec![false; usize::from(params.rows) + usize::from(params.cols)],
            fc_busy: vec![false; usize::from(params.rows)],
            params,
            stats: FabricStats::default(),
        }
    }
}

impl Fabric for PnSsdFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::PnSsd
    }

    fn controller_count(&self) -> usize {
        usize::from(self.params.rows)
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let mesh = self.params.mesh();
        let (row, col) = (mesh.row(chip), mesh.col(chip));
        // Horizontal channel first (it is the baseline path), then vertical.
        let row_bus = usize::from(row);
        let col_bus = usize::from(self.params.rows) + usize::from(col);
        let candidates = [(row, row_bus), (col, col_bus)];
        for (fc, bus) in candidates {
            if !self.fc_busy[usize::from(fc)] && !self.bus_busy[bus] {
                self.fc_busy[usize::from(fc)] = true;
                self.bus_busy[bus] = true;
                self.stats.acquisitions += 1;
                return Ok(PathGrant {
                    fc: FcId(fc as u8),
                    chip,
                    route: Route::Bus {
                        bus: bus as u16,
                        bandwidth_mult: 1.0,
                    },
                });
            }
        }
        // In a bus design the controller *is* the channel driver, so any
        // failure to start a transfer is a path conflict (both of the chip's
        // two paths are occupied).
        self.stats.conflicts += 1;
        Err(AcquireError::PathConflict(ConflictReason::BusBusy))
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let d = self.params.bus_duration(bytes, 1.0);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.transfer_energy_nj += self.params.power.bus_mw * d.as_nanos() as f64 / 1e3;
        let _ = grant;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Bus { bus, .. } = grant.route else {
            panic!("pnSSD fabric received a non-bus grant");
        };
        self.bus_busy[usize::from(bus)] = false;
        self.fc_busy[usize::from(grant.fc.0)] = false;
        ReleaseInfo {
            controller: Some(grant.fc),
            resource: if bus < self.params.rows {
                FreedResource::RowBus(bus)
            } else {
                FreedResource::ColBus(bus - self.params.rows)
            },
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        let row = usize::from(self.params.mesh().row(chip));
        !self.fc_busy[row] && !self.bus_busy[row]
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// NoSSD: buffered-router mesh, deterministic XY routing
// ---------------------------------------------------------------------------

/// NoSSD: the chips form a mesh, but routing is deterministic dimension-order
/// and there is no reservation/backtracking — a transfer whose fixed XY path
/// is blocked simply waits.
#[derive(Debug)]
struct NoSsdFabric {
    params: FabricParams,
    mesh: MeshState,
    fcs: ControllerPool,
    stats: FabricStats,
}

impl NoSsdFabric {
    fn new(params: FabricParams) -> Self {
        NoSsdFabric {
            mesh: MeshState::new(params.mesh(), usize::from(params.rows)),
            fcs: ControllerPool::new(params.rows),
            params,
            stats: FabricStats::default(),
        }
    }
}

impl Fabric for NoSsdFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::NoSsd
    }

    fn controller_count(&self) -> usize {
        usize::from(self.params.rows)
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let topo = self.mesh.topology();
        let Some(fc) = self.fcs.nearest_free(topo.row(chip)) else {
            self.stats.controller_unavailable += 1;
            return Err(AcquireError::NoFreeController);
        };
        let mut path = self.mesh.xy_path(topo.fc_node(fc), chip);
        path.packet_id = fc.0;
        if !self.mesh.try_reserve_path(fc.0, &path) {
            self.stats.conflicts += 1;
            self.mesh.recycle(path);
            return Err(AcquireError::PathConflict(ConflictReason::RouteBlocked));
        }
        self.fcs.acquire(fc);
        self.stats.acquisitions += 1;
        self.stats.hops_total += u64::from(path.hops());
        Ok(PathGrant {
            fc,
            chip,
            route: Route::Wormhole { path },
        })
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let Route::Wormhole { path } = &grant.route else {
            panic!("NoSSD fabric received a non-wormhole grant");
        };
        let hops = path.hops();
        let d = self.params.circuit_duration(hops, bytes)
            + self.params.nossd_router_latency * u64::from(hops);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        let ns = d.as_nanos() as f64;
        let p = &self.params.power;
        // Links along the path plus the buffered routers they connect.
        self.stats.transfer_energy_nj += (p.link_mw * hops as f64
            + p.buffered_router_mw * (hops + 1) as f64)
            * ns
            / 1e3;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Wormhole { path } = grant.route else {
            panic!("NoSSD fabric received a non-wormhole grant");
        };
        let (min_row, max_row, min_col, max_col) = path.extent(&self.params.mesh());
        self.mesh.release_owned(path);
        self.fcs.release(grant.fc);
        ReleaseInfo {
            controller: Some(grant.fc),
            resource: FreedResource::MeshRegion {
                min_row,
                max_row,
                min_col,
                max_col,
            },
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        !self.fcs.busy[usize::from(self.mesh.topology().row(chip))]
    }

    fn pooled(&self) -> bool {
        true
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Venice: circuit switching with scout-packet reservation
// ---------------------------------------------------------------------------

/// Venice: the paper's design. Nearest-free controller, scout-packet path
/// reservation with the non-minimal fully-adaptive routing of Algorithm 1,
/// and circuit-switched bursts over the reserved bidirectional path.
#[derive(Debug)]
struct VeniceFabric {
    params: FabricParams,
    mesh: MeshState,
    fcs: ControllerPool,
    lfsr: Lfsr2,
    stats: FabricStats,
    /// The fast-fail cache, present unless [`ScoutCacheKind::Off`].
    cache: Option<ScoutCache>,
}

impl VeniceFabric {
    fn new(params: FabricParams) -> Self {
        let mesh = MeshState::new(params.mesh(), usize::from(params.rows));
        let cache = (params.scout_cache != ScoutCacheKind::Off).then(|| {
            ScoutCache::new(usize::from(params.rows), params.mesh().node_count())
        });
        VeniceFabric {
            mesh,
            fcs: ControllerPool::new(params.rows),
            lfsr: Lfsr2::new(),
            params,
            stats: FabricStats::default(),
            cache,
        }
    }

    /// Charges the stats of one failed path reservation (live or replayed)
    /// and produces the acquire error. Keeping the two failure paths on one
    /// accounting routine is what makes a fast-fail indistinguishable from
    /// the walk it memoized — conflicts, scout steps, and the conflict
    /// reason all match the uncached engine exactly.
    fn charge_failed_walk(
        &mut self,
        steps: u32,
        misroutes: u32,
        advanced: bool,
    ) -> AcquireError {
        self.stats.conflicts += 1;
        self.stats.scout_steps += u64::from(steps);
        self.stats.scout_failed_steps += u64::from(steps);
        self.stats.scout_misroutes += u64::from(misroutes);
        let reason = if advanced {
            ConflictReason::ScoutExhausted
        } else {
            ConflictReason::SourceBlocked
        };
        AcquireError::PathConflict(reason)
    }
}

impl Fabric for VeniceFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Venice
    }

    fn controller_count(&self) -> usize {
        usize::from(self.params.rows)
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let topo = self.mesh.topology();
        let Some(fc) = self.fcs.nearest_free(topo.row(chip)) else {
            self.stats.controller_unavailable += 1;
            return Err(AcquireError::NoFreeController);
        };
        // Fast-fail cache consult: while every generation the recorded walk
        // observed is unchanged, the failure replays in O(frontier tiles).
        let phase = self.lfsr.state();
        let mut predicted: Option<FailedWalk> = None;
        if let Some(cache) = self.cache.as_mut() {
            if let Some(fw) = cache.lookup(fc, chip, phase, &self.mesh) {
                if self.params.scout_cache == ScoutCacheKind::On {
                    self.stats.scout_fastfails += 1;
                    // The skipped walk would have consumed exactly these
                    // LFSR bits (same phase, or a phase-invariant cap-free
                    // entry); replaying them keeps every later walk's
                    // tie-breaks bit-identical to the uncached engine.
                    self.lfsr.advance(fw.lfsr_draws);
                    return Err(self.charge_failed_walk(
                        fw.steps,
                        fw.misroutes,
                        fw.advanced,
                    ));
                }
                // Checked: run the real walk below and cross-assert.
                predicted = Some(fw);
            }
        }
        match self.mesh.scout_walk_opts(
            fc.0,
            topo.fc_node(fc),
            chip,
            &mut self.lfsr,
            !self.params.venice_minimal_only,
        ) {
            Ok((path, outcome)) => {
                assert!(
                    predicted.is_none(),
                    "scout cache predicted a fast-fail for fc{} -> {} but the \
                     live walk succeeded (false fast-fail; Checked mode)",
                    fc.0,
                    chip.0
                );
                self.fcs.acquire(fc);
                self.stats.acquisitions += 1;
                self.stats.scout_steps += u64::from(outcome.steps);
                self.stats.scout_detours += u64::from(outcome.detoured);
                self.stats.scout_misroutes += u64::from(outcome.misroutes);
                self.stats.hops_total += u64::from(path.hops());
                // Scout round trip: forward walk steps plus the return along
                // the reserved path, one link latency per flit hop.
                let scout_latency =
                    self.params.link_latency * u64::from(outcome.steps + path.hops());
                Ok(PathGrant {
                    fc,
                    chip,
                    route: Route::Circuit {
                        path,
                        scout_latency,
                    },
                })
            }
            Err(fail) => {
                if let Some(fw) = predicted {
                    // Checked-mode cross-check: the cache's replayed outcome
                    // must match the live walk in every observable.
                    assert_eq!(
                        (fw.steps, fw.misroutes, fw.lfsr_draws, fw.advanced),
                        (fail.steps, fail.misroutes, fail.lfsr_draws, fail.advanced),
                        "scout cache verdict diverged from the live walk for \
                         fc{} -> {} (steps/misroutes/draws/advanced)",
                        fc.0,
                        chip.0
                    );
                    self.stats.scout_fastfails += 1; // verified prediction
                }
                if let Some(cache) = self.cache.as_mut() {
                    cache.record(
                        fc,
                        chip,
                        FailedWalk {
                            extent: fail.extent,
                            seq: self.mesh.change_seq(),
                            steps: fail.steps,
                            misroutes: fail.misroutes,
                            lfsr_draws: fail.lfsr_draws,
                            advanced: fail.advanced,
                            phase,
                            cap_pruned: fail.cap_pruned,
                        },
                    );
                }
                Err(self.charge_failed_walk(fail.steps, fail.misroutes, fail.advanced))
            }
        }
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let Route::Circuit {
            path,
            scout_latency,
        } = &grant.route
        else {
            panic!("Venice fabric received a non-circuit grant");
        };
        let hops = path.hops();
        let d = *scout_latency + self.params.circuit_duration(hops, bytes);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        let ns = d.as_nanos() as f64;
        let p = &self.params.power;
        self.stats.transfer_energy_nj +=
            (p.link_mw * hops as f64 + p.router_mw * (hops + 1) as f64) * ns / 1e3;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Circuit { path, .. } = grant.route else {
            panic!("Venice fabric received a non-circuit grant");
        };
        let (min_row, max_row, min_col, max_col) = path.extent(&self.params.mesh());
        self.mesh.release_owned(path);
        self.fcs.release(grant.fc);
        ReleaseInfo {
            controller: Some(grant.fc),
            resource: FreedResource::MeshRegion {
                min_row,
                max_row,
                min_col,
                max_col,
            },
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        !self.fcs.busy[usize::from(self.mesh.topology().row(chip))]
    }

    fn pooled(&self) -> bool {
        true
    }

    fn stats(&self) -> FabricStats {
        let mut stats = self.stats;
        if let Some(cache) = &self.cache {
            stats.scout_cache_invalidations = cache.invalidations();
        }
        stats
    }
}

// ---------------------------------------------------------------------------
// Ideal: path-conflict-free SSD
// ---------------------------------------------------------------------------

/// The ideal SSD of §3.3: every chip has its own channel and controller, so
/// the only possible wait is on the chip's dedicated channel itself (which
/// the paper classifies as chip business, not a path conflict).
#[derive(Debug)]
struct IdealFabric {
    params: FabricParams,
    chan_busy: Vec<bool>,
    stats: FabricStats,
}

impl IdealFabric {
    fn new(params: FabricParams) -> Self {
        IdealFabric {
            chan_busy: vec![false; params.mesh().node_count()],
            params,
            stats: FabricStats::default(),
        }
    }
}

impl Fabric for IdealFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Ideal
    }

    fn controller_count(&self) -> usize {
        self.params.mesh().node_count()
    }

    fn try_acquire(&mut self, chip: NodeId) -> Result<PathGrant, AcquireError> {
        let idx = usize::from(chip.0);
        if self.chan_busy[idx] {
            self.stats.channel_busy += 1;
            return Err(AcquireError::ChannelBusy);
        }
        self.chan_busy[idx] = true;
        self.stats.acquisitions += 1;
        Ok(PathGrant {
            fc: FcId((chip.0 % self.params.rows) as u8),
            chip,
            route: Route::Dedicated { chip },
        })
    }

    fn transfer(&mut self, grant: &PathGrant, bytes: u64) -> SimDuration {
        let d = self.params.bus_duration(bytes, 1.0);
        self.stats.transfers += 1;
        self.stats.bytes += bytes;
        self.stats.transfer_energy_nj += self.params.power.bus_mw * d.as_nanos() as f64 / 1e3;
        let _ = grant;
        d
    }

    fn release(&mut self, grant: PathGrant) -> ReleaseInfo {
        let Route::Dedicated { chip } = grant.route else {
            panic!("ideal fabric received a non-dedicated grant");
        };
        debug_assert!(self.chan_busy[usize::from(chip.0)]);
        self.chan_busy[usize::from(chip.0)] = false;
        // Channels are per chip, not pooled: no controller returns to a
        // pool, and only the chip itself can have been waiting.
        ReleaseInfo {
            controller: None,
            resource: FreedResource::Channel(chip),
        }
    }

    fn home_controller_free(&self, chip: NodeId) -> bool {
        !self.chan_busy[usize::from(chip.0)]
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acquire_ok(f: &mut dyn Fabric, chip: u16) -> PathGrant {
        f.try_acquire(NodeId(chip)).expect("acquire should succeed")
    }

    #[test]
    fn baseline_same_row_conflicts() {
        let mut f = build_fabric(FabricKind::Baseline, FabricParams::table1());
        let g = acquire_ok(f.as_mut(), 0);
        // Chip 1 shares row 0's bus.
        assert_eq!(
            f.try_acquire(NodeId(1)).unwrap_err(),
            AcquireError::PathConflict(ConflictReason::BusBusy)
        );
        // Chip 8 is on row 1: free bus.
        let g2 = acquire_ok(f.as_mut(), 8);
        f.release(g);
        let g3 = acquire_ok(f.as_mut(), 1);
        f.release(g2);
        f.release(g3);
        assert_eq!(f.stats().conflicts, 1);
        assert_eq!(f.stats().acquisitions, 3);
    }

    #[test]
    fn bus_transfer_times_match_table1() {
        let mut f = build_fabric(FabricKind::Baseline, FabricParams::table1());
        let g = acquire_ok(f.as_mut(), 0);
        // 4 KiB at 1.2 GB/s ≈ 3413 ns + 3 ns overhead.
        let d = f.transfer(&g, 4096);
        assert_eq!(d.as_nanos(), 3 + (4096.0f64 / 1.2).round() as u64);
        // Command burst ≈ 10 ns (the paper's perf-optimized CMD latency).
        let d_cmd = f.transfer(&g, 8);
        assert!((9..=11).contains(&d_cmd.as_nanos()), "cmd {d_cmd}");
        f.release(g);
    }

    #[test]
    fn pssd_is_twice_as_fast_on_the_wire() {
        let mut base = build_fabric(FabricKind::Baseline, FabricParams::table1());
        let mut pssd = build_fabric(FabricKind::Pssd, FabricParams::table1());
        let gb = acquire_ok(base.as_mut(), 5);
        let gp = acquire_ok(pssd.as_mut(), 5);
        let db = base.transfer(&gb, 16 * 1024);
        let dp = pssd.transfer(&gp, 16 * 1024);
        assert!(db.as_nanos() > dp.as_nanos());
        // Wire time (minus fixed overhead) halves.
        assert!(((db.as_nanos() - 3) as f64 / (dp.as_nanos() - 3) as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn pnssd_uses_column_bus_when_row_is_busy() {
        let mut f = build_fabric(FabricKind::PnSsd, FabricParams::table1());
        let g_row = acquire_ok(f.as_mut(), 0); // row 0 via row bus, FC0
        assert_eq!(g_row.fc, FcId(0));
        // Second chip on row 0, column 3: row bus busy → column bus 3 (FC3).
        let g_col = acquire_ok(f.as_mut(), 3);
        assert_eq!(g_col.fc, FcId(3));
        // Third chip on row 0, column 3 again: both buses busy → conflict.
        let err = f.try_acquire(NodeId(3)).unwrap_err();
        assert_eq!(err, AcquireError::PathConflict(ConflictReason::BusBusy));
        f.release(g_row);
        f.release(g_col);
    }

    #[test]
    fn nossd_routes_from_nearest_free_controller() {
        let params = FabricParams::table1();
        let mut f = build_fabric(FabricKind::NoSsd, params);
        // Chip (0,7): nearest controller is FC0 → 7 hops along row 0.
        let g = acquire_ok(f.as_mut(), 7);
        assert_eq!(g.fc, FcId(0));
        assert_eq!(g.hops(), 7);
        // Chip (0,6) while FC0 is busy: falls over to FC1, whose XY path
        // runs along row 1 and then up — 8 hops, no shared link.
        let g2 = acquire_ok(f.as_mut(), 6);
        assert_eq!(g2.fc, FcId(1));
        assert_eq!(g2.hops(), 7);
        f.release(g);
        f.release(g2);
        assert_eq!(f.stats().acquisitions, 2);
    }

    #[test]
    fn venice_adapts_around_blocked_links() {
        let params = FabricParams::table1();
        let mut f = build_fabric(FabricKind::Venice, params);
        // Saturate: acquire one circuit per controller; all must succeed
        // because the adaptive walk finds disjoint paths.
        let mut grants = Vec::new();
        for i in 0..8u16 {
            let chip = i * 8 + 7; // column 7 of each row
            grants.push(acquire_ok(f.as_mut(), chip));
        }
        assert_eq!(f.stats().acquisitions, 8);
        // Ninth acquisition fails: all controllers busy.
        assert_eq!(
            f.try_acquire(NodeId(0)).unwrap_err(),
            AcquireError::NoFreeController
        );
        for g in grants {
            f.release(g);
        }
    }

    #[test]
    fn venice_transfer_follows_equation_1() {
        let mut f = build_fabric(FabricKind::Venice, FabricParams::table1());
        let g = acquire_ok(f.as_mut(), 7); // row 0, col 7 → 7 hops from FC0
        assert_eq!(g.hops(), 7);
        let d = f.transfer(&g, 4096);
        // (distance + bytes/width) * link_lat = (7 + 4096) ns, plus the
        // scout's round trip.
        assert!(d.as_nanos() >= 7 + 4096, "duration {d}");
        assert!(d.as_nanos() < 7 + 4096 + 200, "scout latency too large: {d}");
        f.release(g);
    }

    #[test]
    fn ideal_only_blocks_per_chip() {
        let mut f = build_fabric(FabricKind::Ideal, FabricParams::table1());
        let mut grants = Vec::new();
        for chip in 0..64u16 {
            grants.push(acquire_ok(f.as_mut(), chip));
        }
        // A second transfer to chip 0 hits the dedicated channel.
        let err = f.try_acquire(NodeId(0)).unwrap_err();
        assert_eq!(err, AcquireError::ChannelBusy);
        assert!(!err.is_path_conflict());
        for g in grants {
            f.release(g);
        }
        assert_eq!(f.stats().conflicts, 0);
    }

    #[test]
    fn venice_beats_nossd_under_cross_traffic() {
        // Deterministic scenario: two transfers whose XY routes share a
        // column-7 link. NoSSD conflicts; Venice adapts around it.
        let params = FabricParams::table1();
        let mut nossd = build_fabric(FabricKind::NoSsd, params);
        let mut venice = build_fabric(FabricKind::Venice, params);

        let run = |f: &mut Box<dyn Fabric>| -> (Vec<PathGrant>, Result<PathGrant, AcquireError>) {
            let mut holds = Vec::new();
            // Pin FC1..FC4 to their own nodes (zero-hop circuits) so the
            // nearest-free policy must reach over rows for the real traffic.
            for row in 1..5u16 {
                holds.push(f.try_acquire(NodeId(row * 8)).unwrap());
            }
            // FC5 → (3,7): descends column 7 over rows 3..5.
            holds.push(f.try_acquire(NodeId(3 * 8 + 7)).unwrap());
            // FC6 → (4,7): its XY route needs the (4,7)–(5,7) link already
            // held by the previous transfer.
            let attempt = f.try_acquire(NodeId(4 * 8 + 7));
            (holds, attempt)
        };

        let (holds_n, res_n) = run(&mut nossd);
        assert_eq!(
            res_n.unwrap_err(),
            AcquireError::PathConflict(ConflictReason::RouteBlocked)
        );
        for g in holds_n {
            nossd.release(g);
        }

        let (holds_v, res_v) = run(&mut venice);
        let g = res_v.expect("venice's adaptive walk must find a detour");
        venice.release(g);
        for g in holds_v {
            venice.release(g);
        }
    }

    #[test]
    fn release_reports_the_freed_resource() {
        let params = FabricParams::table1();
        // Baseline: chip 9 sits on row 1; its bus and controller free together.
        let mut base = build_fabric(FabricKind::Baseline, params);
        let g = acquire_ok(base.as_mut(), 9);
        let info = base.release(g);
        assert_eq!(info.controller, Some(FcId(1)));
        assert_eq!(info.resource, FreedResource::RowBus(1));
        assert!(info.resource.may_unblock(NodeId(13), 1, 5));
        assert!(!info.resource.may_unblock(NodeId(21), 2, 5));

        // pnSSD: row bus first, then the column bus fallback.
        let mut pn = build_fabric(FabricKind::PnSsd, params);
        let g_row = acquire_ok(pn.as_mut(), 3);
        let g_col = acquire_ok(pn.as_mut(), 3); // row 0 busy → column bus 3
        assert_eq!(pn.release(g_col).resource, FreedResource::ColBus(3));
        assert_eq!(pn.release(g_row).resource, FreedResource::RowBus(0));

        // Mesh fabrics: the freed region must cover the circuit's endpoints.
        for kind in [FabricKind::NoSsd, FabricKind::Venice] {
            let mut f = build_fabric(kind, params);
            let g = acquire_ok(f.as_mut(), 2 * 8 + 5); // chip (2, 5)
            let fc = g.fc;
            let info = f.release(g);
            assert_eq!(info.controller, Some(fc), "{kind}");
            let FreedResource::MeshRegion {
                min_row,
                max_row,
                min_col,
                max_col,
            } = info.resource
            else {
                panic!("{kind}: mesh release must report a region");
            };
            assert!((min_row..=max_row).contains(&2), "{kind}");
            assert!((min_col..=max_col).contains(&5), "{kind}");
            assert!(
                info.resource.may_unblock(NodeId(2 * 8 + 5), 2, 5),
                "{kind}: target on wake list"
            );
        }

        // Ideal: per-chip channel, no pooled controller. The freed channel's
        // own chip is the one chip it can have blocked.
        let mut ideal = build_fabric(FabricKind::Ideal, params);
        let g = acquire_ok(ideal.as_mut(), 42);
        let info = ideal.release(g);
        assert_eq!(info.controller, None);
        assert_eq!(info.resource, FreedResource::Channel(NodeId(42)));
        assert!(info.resource.may_unblock(NodeId(42), 5, 2), "own chip woken");
        assert!(!info.resource.may_unblock(NodeId(43), 5, 3), "nobody else");
    }

    #[test]
    fn label_round_trips_through_by_label() {
        for kind in FabricKind::ALL {
            assert_eq!(FabricKind::by_label(kind.label()), Some(kind));
        }
        assert_eq!(FabricKind::by_label("venice"), Some(FabricKind::Venice));
        assert_eq!(FabricKind::by_label("PSSD"), Some(FabricKind::Pssd));
        assert_eq!(FabricKind::by_label("warp-drive"), None);
    }

    #[test]
    fn pooled_flag_matches_design() {
        let params = FabricParams::table1();
        for kind in FabricKind::ALL {
            let f = build_fabric(kind, params);
            let expect = matches!(kind, FabricKind::NoSsd | FabricKind::Venice);
            assert_eq!(f.pooled(), expect, "{kind}");
        }
    }

    #[test]
    fn home_controller_free_tracks_acquisitions() {
        for kind in FabricKind::ALL {
            let mut f = build_fabric(kind, FabricParams::table1());
            // Chip (0,1): its home row is 0.
            assert!(f.home_controller_free(NodeId(1)), "{kind}: idle fabric");
            let g = f.try_acquire(NodeId(1)).unwrap();
            assert!(
                !f.home_controller_free(NodeId(1)),
                "{kind}: home resource must appear busy"
            );
            f.release(g);
            assert!(f.home_controller_free(NodeId(1)), "{kind}: released");
        }
    }

    #[test]
    fn minimal_only_venice_cannot_take_the_figure8_detour() {
        // With misrouting disabled, a fully blocked minimal frontier makes
        // the reservation fail where full Venice succeeds.
        let mut params = FabricParams::table1();
        params.rows = 4;
        params.cols = 5;
        let build_blocked = |minimal_only: bool| {
            let mut p = params;
            p.venice_minimal_only = minimal_only;
            let mut mesh = MeshState::new(p.mesh(), 4);
            mesh.reserve_explicit(0, &[NodeId(0), NodeId(1), NodeId(6)]);
            mesh.reserve_explicit(1, &[NodeId(5), NodeId(6), NodeId(7), NodeId(8)]);
            mesh.reserve_explicit(2, &[NodeId(10), NodeId(11), NodeId(12), NodeId(7)]);
            (p, mesh)
        };
        use crate::mesh::MeshState;
        use venice_sim::rng::Lfsr2;
        let (_, mut mesh_min) = build_blocked(true);
        let mut lfsr = Lfsr2::new();
        assert!(
            mesh_min
                .scout_walk_opts(3, NodeId(15), NodeId(2), &mut lfsr, false)
                .is_err(),
            "minimal-only routing must fail the Figure 8 scenario"
        );
        let (_, mut mesh_full) = build_blocked(false);
        assert!(
            mesh_full
                .scout_walk_opts(3, NodeId(15), NodeId(2), &mut lfsr, true)
                .is_ok(),
            "full non-minimal routing must succeed"
        );
    }

    #[test]
    fn venice_scout_cache_replays_failures_bit_identically() {
        // Drive a cache-off and a cache-on Venice fabric in lockstep with a
        // deterministic random acquire/release script on a small, easily
        // congested mesh. Every outcome (success / error kind / transfer
        // duration) must match step for step — in particular, whenever an
        // attempt fails on a path conflict we immediately retry it, which
        // on the cached fabric exercises the fast-fail path (nothing
        // changed in between) while the uncached fabric re-runs the DFS.
        let mut params = FabricParams::table1();
        params.rows = 4;
        params.cols = 4;
        let mut off = VeniceFabric::new(FabricParams {
            scout_cache: crate::ScoutCacheKind::Off,
            ..params
        });
        let mut on = VeniceFabric::new(FabricParams {
            scout_cache: crate::ScoutCacheKind::On,
            ..params
        });
        let mut rng = venice_sim::rng::Xorshift64Star::new(0x5C07);
        let mut grants: Vec<(PathGrant, PathGrant)> = Vec::new();
        let mut conflicts = 0u32;
        for _ in 0..4_000 {
            if !grants.is_empty() && rng.next_bool(0.35) {
                let idx = rng.next_bounded(grants.len() as u64) as usize;
                let (a, b) = grants.swap_remove(idx);
                off.release(a);
                on.release(b);
                continue;
            }
            let chip = NodeId(rng.next_bounded(16) as u16);
            let (ra, rb) = (off.try_acquire(chip), on.try_acquire(chip));
            match (ra, rb) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.fc, b.fc);
                    assert_eq!(a.hops(), b.hops());
                    let (da, db) = (off.transfer(&a, 4096), on.transfer(&b, 4096));
                    assert_eq!(da, db, "transfer durations must match");
                    grants.push((a, b));
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea, eb, "failure kinds must match");
                    if ea.is_path_conflict() {
                        conflicts += 1;
                        // Immediate retry over an unchanged mesh: the
                        // cached fabric must reproduce the uncached walk's
                        // verdict without running it.
                        let (ra2, rb2) = (off.try_acquire(chip), on.try_acquire(chip));
                        assert_eq!(ra2.unwrap_err(), rb2.unwrap_err());
                    }
                }
                (a, b) => panic!("engines diverged: off={a:?} on={b:?}"),
            }
        }
        for (a, b) in grants.drain(..) {
            off.release(a);
            on.release(b);
        }
        let (so, sn) = (off.stats(), on.stats());
        assert!(conflicts > 0, "script must exercise path conflicts");
        assert!(sn.scout_fastfails > 0, "cache must actually fast-fail");
        // Every simulated-behavior stat is bit-identical; only the cache's
        // own effort counters may differ.
        assert_eq!(so.acquisitions, sn.acquisitions);
        assert_eq!(so.conflicts, sn.conflicts);
        assert_eq!(so.scout_steps, sn.scout_steps);
        assert_eq!(so.scout_failed_steps, sn.scout_failed_steps);
        assert_eq!(so.scout_misroutes, sn.scout_misroutes);
        assert_eq!(so.scout_detours, sn.scout_detours);
        assert_eq!(so.hops_total, sn.hops_total);
        assert_eq!(so.transfer_energy_nj.to_bits(), sn.transfer_energy_nj.to_bits());
        assert_eq!(so.scout_fastfails, 0);
        // And the two LFSRs end in the same state — the draw-replay
        // contract that keeps later walks aligned.
        assert_eq!(off.lfsr.state(), on.lfsr.state());
    }

    #[test]
    fn checked_mode_verifies_cache_verdicts_live() {
        // Same script shape as above but in Checked mode: the cache's
        // verdicts are asserted against the live walk inside try_acquire,
        // so simply completing the run is the cross-check.
        let mut params = FabricParams::table1();
        params.rows = 4;
        params.cols = 4;
        params.scout_cache = crate::ScoutCacheKind::Checked;
        let mut f = VeniceFabric::new(params);
        let mut rng = venice_sim::rng::Xorshift64Star::new(0xC4EC);
        let mut grants: Vec<PathGrant> = Vec::new();
        for _ in 0..4_000 {
            if !grants.is_empty() && rng.next_bool(0.35) {
                let idx = rng.next_bounded(grants.len() as u64) as usize;
                f.release(grants.swap_remove(idx));
                continue;
            }
            let chip = NodeId(rng.next_bounded(16) as u16);
            match f.try_acquire(chip) {
                Ok(g) => grants.push(g),
                Err(e) if e.is_path_conflict() => {
                    // Unchanged mesh: the prediction must verify (any
                    // divergence panics inside try_acquire).
                    let retry = f.try_acquire(chip);
                    assert!(retry.is_err(), "unchanged mesh cannot start succeeding");
                }
                Err(_) => {}
            }
        }
        assert!(
            f.stats().scout_fastfails > 0,
            "checked mode must verify at least one cached verdict"
        );
    }

    #[test]
    fn stats_track_energy_and_bytes() {
        let mut f = build_fabric(FabricKind::Venice, FabricParams::table1());
        let g = acquire_ok(f.as_mut(), 9);
        f.transfer(&g, 4096);
        f.release(g);
        let s = f.stats();
        assert_eq!(s.bytes, 4096);
        assert_eq!(s.transfers, 1);
        assert!(s.transfer_energy_nj > 0.0);
    }
}
