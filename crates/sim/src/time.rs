//! Simulated time: nanosecond-resolution instants and durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` is a transparent `u64` newtype: cheap to copy, totally ordered,
/// and hashable so it can key event calendars. Arithmetic with
/// [`SimDuration`] is checked in debug builds (overflow panics) and follows
/// the usual instant/duration algebra: `SimTime + SimDuration -> SimTime`,
/// `SimTime - SimTime -> SimDuration`.
///
/// # Example
///
/// ```
/// use venice_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_nanos(3_000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use venice_sim::SimDuration;
/// let d = SimDuration::from_micros(4) + SimDuration::from_nanos(10);
/// assert_eq!(d.as_nanos(), 4_010);
/// assert_eq!(d * 2, SimDuration::from_nanos(8_020));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The later of `self` and `other`.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of `self` and `other`.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from a float number of nanoseconds, rounding to the
    /// nearest integer nanosecond and clamping negatives to zero.
    #[inline]
    pub fn from_nanos_f64(nanos: f64) -> Self {
        if nanos <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Length in nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds, as a float (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length in seconds, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of `self` and `other`.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    /// Instant `rhs` earlier than `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Duration between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    /// Human-friendly rendering with an auto-selected unit, e.g. `3.500us`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + SimDuration::ZERO, t);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(30);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(20));
    }

    #[test]
    fn unit_constructors_scale() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_nanos(3_500).to_string(), "3.500us");
        assert_eq!(SimDuration::from_millis(1).to_string(), "1.000ms");
        assert_eq!(SimDuration::from_nanos(2_500_000_000).to_string(), "2.500s");
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d * 3, SimDuration::from_nanos(30));
        assert_eq!((d * 3) / 3, d);
        let total: SimDuration = [d, d, d].into_iter().sum();
        assert_eq!(total, d * 3);
    }

    #[test]
    fn from_nanos_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_nanos_f64(2.6).as_nanos(), 3);
        assert_eq!(SimDuration::from_nanos_f64(-5.0).as_nanos(), 0);
    }

    #[test]
    fn min_max_orderings() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_nanos(3).max(SimDuration::from_nanos(7)),
            SimDuration::from_nanos(7)
        );
    }
}
