//! A stable binary-heap event calendar.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// One scheduled entry: ordered by time, then by insertion sequence so that
/// events scheduled earlier at the same timestamp are delivered first.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar: a priority queue of `(SimTime, E)` pairs with
/// FIFO tie-breaking for events scheduled at the same instant.
///
/// The queue tracks the timestamp of the most recently popped event as the
/// current simulation time ([`EventQueue::now`]); scheduling in the past is a
/// logic error that panics in debug builds (events are clamped to `now` in
/// release builds, keeping the clock monotone).
///
/// # Example
///
/// ```
/// use venice_sim::{EventQueue, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { A, B }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(10), Ev::A);
/// q.schedule(SimTime::from_nanos(10), Ev::B); // same instant: FIFO order
/// assert_eq!(q.pop().unwrap().1, Ev::A);
/// assert_eq!(q.now(), SimTime::from_nanos(10));
/// assert_eq!(q.pop().unwrap().1, Ev::B);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is before [`EventQueue::now`]. In
    /// release builds such events are clamped to `now` so the clock stays
    /// monotone.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time} < now {}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event, advancing [`EventQueue::now`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn interleaved_scheduling_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_nanos(5), "b");
        q.schedule(t, "same-instant");
        assert_eq!(q.pop().unwrap().1, "same-instant");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn counts_scheduled_total() {
        let mut q = EventQueue::new();
        for i in 0..5u8 {
            q.schedule(SimTime::from_nanos(u64::from(i)), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 5);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
