//! The event calendar: a bucketed time wheel with a binary-heap overflow
//! tier for the far future, plus a stable reference heap implementation.
//!
//! The hot path of the SSD simulation schedules short-horizon events (wire
//! bursts, firmware latencies, dispatch wake-ups at the current instant) at a
//! much higher rate than long-horizon ones (tPROG/tBERS array operations).
//! [`EventQueue`] exploits that shape: near-future events go into a
//! fixed-size wheel of [`WHEEL_BUCKETS`] buckets of [`BUCKET_NS`] ns each
//! (O(1) schedule, O(1) amortized pop), and anything beyond the wheel's
//! horizon parks in a [`BinaryHeap`] until its bucket rotates into range.
//!
//! Delivery order is exactly the documented calendar contract — ascending
//! timestamp, FIFO among equal timestamps — and is bit-identical to the
//! reference heap ([`ReferenceHeapQueue`]), which `tests/properties.rs`
//! cross-checks with randomized schedules.
//!
//! Control-plane events ride the same wheel as device work: scripted
//! fault/repair scripts, host request-deadline timeouts, and backoff-jittered
//! host resubmissions are all ordinary calendar entries, so a run's event
//! count doubles as a behavioral fingerprint — features whose knobs default
//! off must schedule zero events to leave it untouched.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::SimTime;

/// Number of buckets in the near-future wheel (must be a power of two).
pub const WHEEL_BUCKETS: usize = 512;
/// Log2 of the default bucket width in nanoseconds.
const DEFAULT_BUCKET_SHIFT: u32 = 8;
/// Width of one wheel bucket in nanoseconds, for [`EventQueue::new`].
/// [`EventQueue::with_bucket_ns`] widens it per configuration (callers
/// auto-tune from their timing parameters); pop order is identical for
/// every width.
pub const BUCKET_NS: u64 = 1 << DEFAULT_BUCKET_SHIFT;
const BITMAP_WORDS: usize = WHEEL_BUCKETS / 64;

/// One scheduled entry: ordered by time, then by insertion sequence so that
/// events scheduled earlier at the same timestamp are delivered first.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry is popped first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event calendar: a priority queue of `(SimTime, E)` pairs with
/// FIFO tie-breaking for events scheduled at the same instant.
///
/// The queue tracks the timestamp of the most recently popped event as the
/// current simulation time ([`EventQueue::now`]); scheduling in the past is a
/// logic error that panics in debug builds (events are clamped to `now` in
/// release builds, keeping the clock monotone).
///
/// Internally this is a bucketed time wheel ([`WHEEL_BUCKETS`] buckets of
/// [`BUCKET_NS`] ns) with a binary-heap overflow tier for events beyond the
/// wheel horizon; see the module docs. The observable pop order is identical
/// to a stable binary heap over `(time, seq)`.
///
/// # Example
///
/// ```
/// use venice_sim::{EventQueue, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { A, B }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(10), Ev::A);
/// q.schedule(SimTime::from_nanos(10), Ev::B); // same instant: FIFO order
/// assert_eq!(q.pop().unwrap().1, Ev::A);
/// assert_eq!(q.now(), SimTime::from_nanos(10));
/// assert_eq!(q.pop().unwrap().1, Ev::B);
/// ```
pub struct EventQueue<E> {
    /// Events at exactly `batch_time`, ready to pop in FIFO order.
    batch: VecDeque<E>,
    /// Timestamp shared by everything in `batch`.
    batch_time: SimTime,
    /// Near-future buckets; slot `b % WHEEL_BUCKETS` holds absolute bucket
    /// `b` for `b` in `[cursor, cursor + WHEEL_BUCKETS)`.
    wheel: Box<[Vec<Entry<E>>]>,
    /// Occupancy bitmap over wheel slots.
    occupied: [u64; BITMAP_WORDS],
    /// Entries currently in the wheel.
    wheel_len: usize,
    /// Absolute bucket index of the current wheel position (`now >> bucket_shift`).
    cursor: u64,
    /// Far-future overflow tier: events beyond the wheel horizon.
    overflow: BinaryHeap<Entry<E>>,
    /// Scratch for sorting one timestamp's batch by sequence number.
    scratch: Vec<(u64, E)>,
    /// Log2 of this calendar's bucket width in nanoseconds.
    bucket_shift: u32,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    pending: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar at time zero with the default
    /// [`BUCKET_NS`] bucket width.
    pub fn new() -> Self {
        Self::with_bucket_ns(BUCKET_NS)
    }

    /// Creates an empty calendar whose wheel buckets are `bucket_ns` wide
    /// (rounded up to a power of two, floored at [`BUCKET_NS`]).
    ///
    /// Callers auto-tune the width from their workload's timing parameters
    /// so that common long-horizon events fall inside the wheel's
    /// `WHEEL_BUCKETS × width` horizon instead of the overflow heap. The
    /// width is a pure performance knob: delivery order is bit-identical
    /// to [`ReferenceHeapQueue`] for every value.
    pub fn with_bucket_ns(bucket_ns: u64) -> Self {
        let bucket_shift = bucket_ns
            .max(BUCKET_NS)
            .next_power_of_two()
            .trailing_zeros();
        EventQueue {
            batch: VecDeque::new(),
            batch_time: SimTime::ZERO,
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            wheel_len: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
            bucket_shift,
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            pending: 0,
        }
    }

    /// Width of one wheel bucket in nanoseconds.
    #[inline]
    pub fn bucket_ns(&self) -> u64 {
        1 << self.bucket_shift
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total number of events ever scheduled (diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is before [`EventQueue::now`]. In
    /// release builds such events are clamped to `now` so the clock stays
    /// monotone.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled event in the past: {time} < now {}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.pending += 1;
        // Same-instant events land directly behind the live batch: their
        // sequence numbers are larger than everything already in it.
        if !self.batch.is_empty() && time == self.batch_time {
            self.batch.push_back(event);
            return;
        }
        let bucket = time.as_nanos() >> self.bucket_shift;
        if bucket < self.cursor + WHEEL_BUCKETS as u64 {
            self.wheel_insert(bucket, Entry { time, seq, event });
        } else {
            self.overflow.push(Entry { time, seq, event });
        }
    }

    #[inline]
    fn wheel_insert(&mut self, bucket: u64, entry: Entry<E>) {
        let slot = (bucket % WHEEL_BUCKETS as u64) as usize;
        self.wheel[slot].push(entry);
        self.occupied[slot / 64] |= 1 << (slot % 64);
        self.wheel_len += 1;
    }

    /// Minimal occupied absolute bucket at or after `cursor`, if any.
    fn next_occupied_bucket(&self) -> Option<u64> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = (self.cursor % WHEEL_BUCKETS as u64) as usize;
        // Scan the bitmap as a rotation starting at `start`.
        let mut checked = 0usize;
        let mut slot = start;
        while checked < WHEEL_BUCKETS {
            let word = slot / 64;
            let bit = slot % 64;
            // Mask off bits below the current slot within this word.
            let w = self.occupied[word] & (!0u64 << bit);
            if w != 0 {
                let found = word * 64 + w.trailing_zeros() as usize;
                // Only accept hits inside the unchecked window.
                let dist = (found + WHEEL_BUCKETS - start) % WHEEL_BUCKETS;
                if dist >= checked && dist < checked + (64 - bit) {
                    return Some(self.cursor + dist as u64);
                }
            }
            // Advance to the next word boundary.
            let step = 64 - bit;
            checked += step;
            slot = (slot + step) % WHEEL_BUCKETS;
        }
        None
    }

    /// Moves the earliest pending timestamp's events into `batch`.
    /// Returns false when the calendar is empty.
    fn refill_batch(&mut self) -> bool {
        debug_assert!(self.batch.is_empty());
        if self.pending == 0 {
            return false;
        }
        let next_wheel = self.next_occupied_bucket();
        let next_over = self
            .overflow
            .peek()
            .map(|e| e.time.as_nanos() >> self.bucket_shift);
        let target = match (next_wheel, next_over) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => unreachable!("pending > 0 with empty tiers"),
        };
        self.cursor = target;
        // Rotate overflow events whose buckets have come into the wheel's
        // horizon window `[cursor, cursor + WHEEL_BUCKETS)`.
        let horizon_ns = (self.cursor + WHEEL_BUCKETS as u64) << self.bucket_shift;
        while let Some(head) = self.overflow.peek() {
            if head.time.as_nanos() >= horizon_ns {
                break;
            }
            let e = self.overflow.pop().expect("peeked");
            let bucket = e.time.as_nanos() >> self.bucket_shift;
            self.wheel_insert(bucket, e);
        }
        // Extract the earliest timestamp from the target bucket.
        let slot = (target % WHEEL_BUCKETS as u64) as usize;
        let mut entries = std::mem::take(&mut self.wheel[slot]);
        debug_assert!(!entries.is_empty(), "occupied bucket must have entries");
        let t = entries.iter().map(|e| e.time).min().expect("non-empty");
        let mut i = 0;
        while i < entries.len() {
            if entries[i].time == t {
                let e = entries.swap_remove(i);
                self.scratch.push((e.seq, e.event));
            } else {
                i += 1;
            }
        }
        self.wheel_len -= self.scratch.len();
        if entries.is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.wheel[slot] = entries; // keep the allocation
        self.scratch.sort_unstable_by_key(|&(seq, _)| seq);
        self.batch.extend(self.scratch.drain(..).map(|(_, e)| e));
        self.batch_time = t;
        true
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.batch.is_empty() {
            return Some(self.batch_time);
        }
        if self.pending == 0 {
            return None;
        }
        let wheel_min = self.next_occupied_bucket().map(|b| {
            let slot = (b % WHEEL_BUCKETS as u64) as usize;
            self.wheel[slot]
                .iter()
                .map(|e| e.time)
                .min()
                .expect("occupied bucket")
        });
        let over_min = self.overflow.peek().map(|e| e.time);
        match (wheel_min, over_min) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (Some(w), None) => Some(w),
            (None, o) => o,
        }
    }

    /// Removes and returns the earliest event, advancing [`EventQueue::now`].
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.batch.is_empty() && !self.refill_batch() {
            return None;
        }
        let event = self.batch.pop_front().expect("refilled");
        self.pending -= 1;
        self.now = self.batch_time;
        Some((self.now, event))
    }

    /// Drains every event scheduled for the earliest pending timestamp into
    /// `out` (in FIFO order) and returns that timestamp, advancing
    /// [`EventQueue::now`] to it. Returns `None` when the calendar is empty.
    ///
    /// Handlers may schedule new events at the returned timestamp while the
    /// batch is being processed; those form a later batch at the same
    /// instant, exactly as they would pop after the already-scheduled events
    /// under one-at-a-time [`EventQueue::pop`].
    ///
    /// # Example
    ///
    /// ```
    /// use venice_sim::{EventQueue, SimTime};
    /// let mut q = EventQueue::new();
    /// q.schedule(SimTime::from_nanos(5), 'a');
    /// q.schedule(SimTime::from_nanos(5), 'b');
    /// q.schedule(SimTime::from_nanos(9), 'c');
    /// let mut batch = Vec::new();
    /// assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_nanos(5)));
    /// assert_eq!(batch, vec!['a', 'b']);
    /// ```
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        if self.batch.is_empty() && !self.refill_batch() {
            return None;
        }
        self.pending -= self.batch.len();
        self.now = self.batch_time;
        out.extend(self.batch.drain(..));
        Some(self.now)
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.pending)
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

/// The original stable binary-heap calendar, kept as the behavioral
/// reference for [`EventQueue`].
///
/// `benches/event_queue.rs` compares the two under hold-model and burst
/// workloads, and the randomized property tests assert bit-identical pop
/// order. Not used on the simulation hot path.
pub struct ReferenceHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for ReferenceHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceHeapQueue<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        ReferenceHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `event` to fire at `time` (clamped to `now`).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn peek_does_not_advance_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn interleaved_scheduling_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), "a");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_nanos(5), "b");
        q.schedule(t, "same-instant");
        assert_eq!(q.pop().unwrap().1, "same-instant");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn counts_scheduled_total() {
        let mut q = EventQueue::new();
        for i in 0..5u8 {
            q.schedule(SimTime::from_nanos(u64::from(i)), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 5);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn far_future_events_survive_the_overflow_tier() {
        // Events far beyond the wheel horizon (tBERS-scale, milliseconds)
        // must come back in order when the wheel rotates to them.
        let mut q = EventQueue::new();
        let far = SimTime::from_micros(5_000);
        q.schedule(far, "erase-done");
        q.schedule(SimTime::from_nanos(3), "burst");
        q.schedule(far + SimDuration::from_nanos(1), "after");
        q.schedule(SimTime::from_micros(200), "tprog");
        assert_eq!(q.pop().unwrap().1, "burst");
        assert_eq!(q.pop().unwrap().1, "tprog");
        assert_eq!(q.pop().unwrap(), (far, "erase-done"));
        assert_eq!(q.pop().unwrap().1, "after");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_bucket_different_times_pop_in_time_order() {
        // Timestamps 1 ns apart share a wheel bucket; extraction must still
        // deliver them in time order, not insertion order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), "late");
        q.schedule(SimTime::from_nanos(6), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn pop_batch_drains_one_timestamp() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), 1);
        q.schedule(SimTime::from_nanos(5), 2);
        q.schedule(SimTime::from_nanos(6), 3);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(SimTime::from_nanos(5)));
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.now(), SimTime::from_nanos(5));
        assert_eq!(q.len(), 1);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(SimTime::from_nanos(6)));
        assert_eq!(out, vec![3]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn pop_batch_interleaves_with_same_instant_schedules() {
        // A handler scheduling at the batch's timestamp forms a second batch
        // at the same instant — identical to the one-at-a-time pop order.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(4), "a");
        let mut out = Vec::new();
        let t = q.pop_batch(&mut out).unwrap();
        q.schedule(t, "b");
        q.schedule(t + SimDuration::from_nanos(1), "c");
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(t));
        assert_eq!(out, vec!["b"]);
    }

    #[test]
    fn custom_bucket_widths_round_and_floor() {
        assert_eq!(EventQueue::<()>::new().bucket_ns(), BUCKET_NS);
        assert_eq!(EventQueue::<()>::with_bucket_ns(0).bucket_ns(), BUCKET_NS);
        assert_eq!(EventQueue::<()>::with_bucket_ns(300).bucket_ns(), 512);
        assert_eq!(EventQueue::<()>::with_bucket_ns(4096).bucket_ns(), 4096);
    }

    #[test]
    fn wide_buckets_preserve_reference_order() {
        use crate::rng::Xorshift64Star;
        // A widened wheel (the auto-tuned configuration for slow NAND)
        // must deliver the exact reference sequence too.
        let mut rng = Xorshift64Star::new(99);
        let mut wheel = EventQueue::with_bucket_ns(4096);
        let mut heap = ReferenceHeapQueue::new();
        for id in 0..3_000u64 {
            if rng.next_bool(0.6) || wheel.is_empty() {
                let delta = rng.next_bounded(4096 * WHEEL_BUCKETS as u64 * 2);
                let t = wheel.now() + SimDuration::from_nanos(delta);
                wheel.schedule(t, id);
                heap.schedule(t, id);
            } else {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_reference_heap_on_a_mixed_schedule() {
        use crate::rng::Xorshift64Star;
        let mut rng = Xorshift64Star::new(7);
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceHeapQueue::new();
        let mut next_id = 0u64;
        for _ in 0..5_000 {
            if rng.next_bool(0.55) || wheel.is_empty() {
                // Mixed horizons: same-instant, sub-bucket, cross-bucket,
                // and far-future (overflow tier) deltas.
                let delta = match rng.next_bounded(4) {
                    0 => 0,
                    1 => rng.next_bounded(64),
                    2 => rng.next_bounded(BUCKET_NS * 32),
                    _ => rng.next_bounded(BUCKET_NS * WHEEL_BUCKETS as u64 * 4),
                };
                let t = wheel.now() + SimDuration::from_nanos(delta);
                wheel.schedule(t, next_id);
                heap.schedule(t, next_id);
                next_id += 1;
            } else {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
