//! Deterministic random number generation.
//!
//! The simulator must be bit-for-bit reproducible across runs and platforms,
//! so it carries its own small generators instead of depending on an external
//! RNG crate:
//!
//! * [`Xorshift64Star`] — the workhorse PRNG used by workload generators and
//!   tie-breaking policies,
//! * [`Lfsr2`] — the 2-bit linear-feedback shift register the Venice paper
//!   places in each router chip for pseudo-random output-port selection
//!   (§4.3, referencing Wang & McCluskey).
//!
//! Distributions (exponential, log-normal, Zipf, bounded uniform) are methods
//! on [`Xorshift64Star`] because every caller in this workspace uses exactly
//! that generator.

/// An `xorshift64*` pseudo-random generator.
///
/// Small, fast, and deterministic: the same seed always produces the same
/// stream on every platform. Quality is far beyond what a workload generator
/// needs (it passes BigCrush except for the lowest bits, which we never use
/// in isolation).
///
/// # Example
///
/// ```
/// use venice_sim::rng::Xorshift64Star;
/// let mut a = Xorshift64Star::new(42);
/// let mut b = Xorshift64Star::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from `seed`. A zero seed is remapped to a fixed
    /// non-zero constant (the xorshift state must never be zero).
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        Xorshift64Star { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // simulation purposes and the result stays deterministic.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Bernoulli draw: true with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    ///
    /// Used for inter-arrival times (an open-loop Poisson host).
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; guard the log argument away from zero.
        let u = self.next_f64().max(1e-12);
        -mean * u.ln()
    }

    /// Log-normally distributed sample parameterized by its *mean* and the
    /// shape `sigma` (the standard deviation of the underlying normal).
    ///
    /// Used for request sizes, which are right-skewed in real traces.
    pub fn next_lognormal(&mut self, mean: f64, sigma: f64) -> f64 {
        // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
        let mu = mean.ln() - sigma * sigma / 2.0;
        let n = self.next_standard_normal();
        (mu + sigma * n).exp()
    }

    /// Standard normal sample via Box–Muller.
    pub fn next_standard_normal(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Zipf-like rank sample over `[0, n)` with exponent `theta` in `[0, 1)`.
    ///
    /// `theta = 0` degenerates to uniform; larger values concentrate
    /// probability on low ranks. Implemented with the classic approximate
    /// inverse transform used by YCSB's scrambled-Zipfian generator.
    pub fn next_zipf(&mut self, n: u64, theta: f64) -> u64 {
        assert!(n > 0, "zipf population must be positive");
        if theta <= f64::EPSILON {
            return self.next_bounded(n);
        }
        let nf = n as f64;
        let alpha = 1.0 / (1.0 - theta);
        let zetan = zeta_approx(nf, theta);
        let eta = (1.0 - (2.0 / nf).powf(1.0 - theta)) / (1.0 - zeta_approx(2.0, theta) / zetan);
        let u = self.next_f64();
        let uz = u * zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(theta) {
            return 1;
        }
        let rank = (nf * (eta * u - eta + 1.0).powf(alpha)) as u64;
        rank.min(n - 1)
    }
}

/// A Zipf(θ) sampler with precomputed normalization constants.
///
/// [`Xorshift64Star::next_zipf`] recomputes the harmonic normalization on
/// every draw, which is fine for a handful of samples but dominates when a
/// workload generator draws hundreds of thousands. This sampler hoists the
/// constants out of the loop.
///
/// # Example
///
/// ```
/// use venice_sim::rng::{Xorshift64Star, ZipfSampler};
/// let mut rng = Xorshift64Star::new(1);
/// let zipf = ZipfSampler::new(1_000_000, 0.9);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000_000);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over ranks `[0, n)` with exponent `theta ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf population must be positive");
        let nf = n as f64;
        let zetan = zeta_approx(nf, theta);
        let eta = if theta <= f64::EPSILON {
            0.0
        } else {
            (1.0 - (2.0 / nf).powf(1.0 - theta)) / (1.0 - zeta_approx(2.0, theta) / zetan)
        };
        ZipfSampler {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta,
        }
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Xorshift64Star) -> u64 {
        if self.theta <= f64::EPSILON {
            return rng.next_bounded(self.n);
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Approximation of the generalized harmonic number `H_{n,theta}` used by the
/// Zipf sampler; exact summation for small `n`, Euler–Maclaurin style
/// approximation for large `n`.
fn zeta_approx(n: f64, theta: f64) -> f64 {
    let n_int = n as u64;
    if n_int <= 10_000 {
        (1..=n_int).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        // Integral tail approximation.
        head + ((n.powf(1.0 - theta) - 10_000f64.powf(1.0 - theta)) / (1.0 - theta))
    }
}

/// The 2-bit maximal-length LFSR the Venice router uses to choose between two
/// candidate output ports (§4.3 of the paper).
///
/// A 2-bit Fibonacci LFSR with taps on both bits cycles through the three
/// non-zero states `01 → 10 → 11 → 01 …`; [`Lfsr2::next_bit`] extracts the
/// low bit, producing a cheap pseudo-random bit stream implementable in a few
/// gates — exactly what a router chip can afford.
///
/// # Example
///
/// ```
/// use venice_sim::rng::Lfsr2;
/// let mut lfsr = Lfsr2::new();
/// // Period of the state sequence is 3.
/// let s0 = lfsr.state();
/// lfsr.next_bit();
/// lfsr.next_bit();
/// lfsr.next_bit();
/// assert_eq!(lfsr.state(), s0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lfsr2 {
    state: u8, // 2 bits, never zero
}

impl Default for Lfsr2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Lfsr2 {
    /// Creates an LFSR in state `01`.
    pub fn new() -> Self {
        Lfsr2 { state: 0b01 }
    }

    /// Creates an LFSR with a chosen non-zero 2-bit state (the low two bits
    /// of `seed`; zero is remapped to `01`).
    pub fn with_seed(seed: u8) -> Self {
        let s = seed & 0b11;
        Lfsr2 {
            state: if s == 0 { 0b01 } else { s },
        }
    }

    /// Current 2-bit state (never zero).
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Advances the register by `draws` output bits, discarding them — the
    /// replay helper for paths that skip a deterministic computation whose
    /// draw count is known (the scout fast-fail cache): the register ends in
    /// exactly the state the skipped computation would have left it in.
    ///
    /// The 2-bit LFSR's state sequence has period 3, so only `draws % 3`
    /// steps are taken; replay cost is O(1) regardless of the recorded count.
    pub fn advance(&mut self, draws: u32) {
        for _ in 0..(draws % 3) {
            self.next_bit();
        }
    }

    /// Advances the register and returns the output bit.
    pub fn next_bit(&mut self) -> bool {
        let b1 = (self.state >> 1) & 1;
        let b0 = self.state & 1;
        let feedback = b1 ^ b0;
        self.state = ((self.state << 1) | feedback) & 0b11;
        debug_assert_ne!(self.state, 0, "2-bit LFSR must never reach zero");
        self.state & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = Xorshift64Star::new(7);
        let mut b = Xorshift64Star::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Xorshift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xorshift64Star::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = Xorshift64Star::new(11);
        for _ in 0..10_000 {
            assert!(r.next_bounded(13) < 13);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Xorshift64Star::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(42.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 42.0).abs() / 42.0 < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_mean_is_close() {
        let mut r = Xorshift64Star::new(9);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_lognormal(16.0, 0.8)).sum();
        let mean = sum / n as f64;
        assert!((mean - 16.0).abs() / 16.0 < 0.05, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = Xorshift64Star::new(13);
        let n = 1000;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..100_000 {
            let k = r.next_zipf(n, 0.9);
            assert!(k < n);
            counts[k as usize] += 1;
        }
        // Rank 0 must be far more popular than a mid-pack rank.
        assert!(counts[0] > 10 * counts[500].max(1));
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let mut r = Xorshift64Star::new(17);
        let n = 10;
        let mut counts = vec![0u32; n as usize];
        for _ in 0..100_000 {
            counts[r.next_zipf(n, 0.0) as usize] += 1;
        }
        for &c in &counts {
            assert!((7_000..13_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn lfsr_cycles_through_three_states() {
        let mut l = Lfsr2::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            seen.insert(l.state());
            l.next_bit();
        }
        assert_eq!(seen.len(), 3);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn lfsr_seed_zero_remaps() {
        assert_ne!(Lfsr2::with_seed(0).state(), 0);
        assert_eq!(Lfsr2::with_seed(0b10).state(), 0b10);
    }

    #[test]
    fn bernoulli_probability_is_close() {
        let mut r = Xorshift64Star::new(23);
        let hits = (0..100_000).filter(|_| r.next_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }
}
