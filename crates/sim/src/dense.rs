//! A dense, ordered bit set over small integer ids.
//!
//! This is the storage behind the engine's *ready sets*: membership flags
//! for a fixed universe of ids (flash chips, dies) that must support O(1)
//! insert/remove/contains **and** iteration in ascending-id order — the
//! property that lets an incremental dispatcher visit exactly the ids a
//! full linear scan would have visited, in the same order, without paying
//! `O(universe)` per round. Per the workspace's hot-path rule it is a plain
//! word array: no hashing, no allocation after construction.
//!
//! Iteration cost is `O(words + members)`, where `words = universe / 64`;
//! for the mesh sizes the simulator sweeps (64–1024 chips) the word walk is
//! 1–16 machine words, which is what makes the ready-set dispatcher's
//! rounds effectively proportional to the number of *ready* chips.

/// A fixed-universe dense bit set with ascending-order iteration.
///
/// # Example
///
/// ```
/// use venice_sim::DenseBitSet;
///
/// let mut s = DenseBitSet::with_capacity(200);
/// s.insert(7);
/// s.insert(130);
/// s.insert(64);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![7, 64, 130]);
/// // Circular iteration from a start id (the dispatcher's rotation).
/// assert_eq!(s.iter_from(64).collect::<Vec<_>>(), vec![64, 130, 7]);
/// s.remove(64);
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct DenseBitSet {
    words: Vec<u64>,
    /// Universe size (ids are `0..capacity`).
    capacity: usize,
    /// Current member count (kept incrementally; `len()` is O(1)).
    len: usize,
}

impl DenseBitSet {
    /// Creates an empty set over the universe `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        DenseBitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// The universe size the set was constructed with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no id is a member.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        assert!(id < self.capacity, "id {id} outside universe {}", self.capacity);
        self.words[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// Inserts `id`; returns true when it was not already a member.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    #[inline]
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(id < self.capacity, "id {id} outside universe {}", self.capacity);
        let (w, b) = (id / 64, 1u64 << (id % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `id`; returns true when it was a member.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    #[inline]
    pub fn remove(&mut self, id: usize) -> bool {
        assert!(id < self.capacity, "id {id} outside universe {}", self.capacity);
        let (w, b) = (id / 64, 1u64 << (id % 64));
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        self.len -= usize::from(was);
        was
    }

    /// Removes every member (O(words)).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            // `wrapping_sub`: `successors` computes the next value while
            // yielding the current one, so the clear-lowest-set-bit step
            // also runs on the 0 terminator `take_while` stops at.
            std::iter::successors(Some(w), |&rest| Some(rest & rest.wrapping_sub(1)))
                .take_while(|&rest| rest != 0)
                .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
        })
    }

    /// Iterates members in *circular* ascending order starting at `start`:
    /// first the members `>= start` ascending, then the members `< start`
    /// ascending. This reproduces a rotated full scan
    /// (`(start + off) % capacity` for `off` in `0..capacity`) restricted to
    /// members — the dispatcher's fairness rotation.
    ///
    /// # Panics
    ///
    /// Panics if `start` is outside the universe (an empty universe admits
    /// only `start == 0`).
    pub fn iter_from(&self, start: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(
            start < self.capacity || (start == 0 && self.capacity == 0),
            "start {start} outside universe {}",
            self.capacity
        );
        self.iter()
            .filter(move |&id| id >= start)
            .chain(self.iter().filter(move |&id| id < start))
    }

    /// Collects the members into `out` (cleared first) in circular ascending
    /// order from `start`, reusing `out`'s capacity — the allocation-free
    /// form the dispatcher's per-round scratch buffer uses.
    ///
    /// # Panics
    ///
    /// Panics if `start` is outside the universe, or if a member does not
    /// fit in `u16` (the engine's chip-id width).
    pub fn collect_into_from(&self, start: usize, out: &mut Vec<u16>) {
        out.clear();
        out.extend(self.iter_from(start).map(|id| {
            debug_assert!(id <= usize::from(u16::MAX));
            id as u16
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = DenseBitSet::with_capacity(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports existing");
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0), "double remove reports missing");
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty() && !s.contains(129));
        assert_eq!(s.capacity(), 130);
    }

    #[test]
    fn iteration_is_ascending_and_matches_a_linear_scan() {
        let mut s = DenseBitSet::with_capacity(256);
        let members = [3usize, 5, 63, 64, 65, 127, 128, 200, 255];
        for &m in &members {
            s.insert(m);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), members);
    }

    #[test]
    fn circular_iteration_matches_a_rotated_full_scan() {
        let mut s = DenseBitSet::with_capacity(64);
        for m in [1usize, 8, 9, 40, 63] {
            s.insert(m);
        }
        for start in 0..64 {
            let expect: Vec<usize> = (0..64)
                .map(|off| (start + off) % 64)
                .filter(|&id| s.contains(id))
                .collect();
            assert_eq!(
                s.iter_from(start).collect::<Vec<_>>(),
                expect,
                "start {start}"
            );
        }
    }

    #[test]
    fn collect_into_reuses_the_buffer() {
        let mut s = DenseBitSet::with_capacity(100);
        s.insert(10);
        s.insert(90);
        let mut out = Vec::new();
        s.collect_into_from(50, &mut out);
        assert_eq!(out, vec![90, 10]);
        let cap = out.capacity();
        s.collect_into_from(0, &mut out);
        assert_eq!(out, vec![10, 90]);
        assert_eq!(out.capacity(), cap, "no reallocation for same-size output");
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_ids_are_rejected() {
        let mut s = DenseBitSet::with_capacity(8);
        s.insert(8);
    }
}
