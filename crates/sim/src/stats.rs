//! Statistics collection: online moments, latency distributions, and the
//! summary helpers the figure harnesses use (percentiles, CDFs, geometric
//! means).

use crate::SimDuration;

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use venice_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] { s.record(x); }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A latency sample set with exact percentile and CDF extraction.
///
/// Stores every observation (as nanoseconds); the simulator produces at most
/// a few hundred thousand request latencies per run, so exact storage is
/// cheaper and more faithful than a sketch. Sorting is deferred and cached.
///
/// # Example
///
/// ```
/// use venice_sim::stats::LatencySamples;
/// use venice_sim::SimDuration;
/// let mut l = LatencySamples::new();
/// for us in [1u64, 2, 3, 4, 100] {
///     l.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(l.percentile(0.5), SimDuration::from_micros(3));
/// assert_eq!(l.percentile(0.99), SimDuration::from_micros(100));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencySamples {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencySamples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        LatencySamples {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&x| u128::from(x)).sum();
        SimDuration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Exact percentile (nearest-rank), `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the sample set is empty or `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        assert!(!self.samples.is_empty(), "percentile of empty sample set");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        SimDuration::from_nanos(self.samples[rank - 1])
    }

    /// The tail of the distribution as a CDF over the slowest `1 - from_q`
    /// fraction of requests: returns `(latency, cumulative_fraction)` pairs
    /// at `points` evenly spaced quantiles in `[from_q, 1]`.
    ///
    /// This is exactly the presentation of the paper's Figure 11 (a CDF
    /// zoomed into the 99th percentile).
    pub fn tail_cdf(&mut self, from_q: f64, points: usize) -> Vec<(SimDuration, f64)> {
        assert!(points >= 2, "need at least two CDF points");
        if self.samples.is_empty() {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let q = from_q + (1.0 - from_q) * i as f64 / (points - 1) as f64;
                (self.percentile(q.min(1.0)), q)
            })
            .collect()
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: &LatencySamples) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// Geometric mean of a sequence of positive values; the paper reports GMEAN
/// speedups across workloads.
///
/// Returns zero for an empty iterator.
///
/// # Example
///
/// ```
/// let g = venice_sim::stats::geometric_mean([1.0, 4.0].into_iter());
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        assert!(v > 0.0, "geometric mean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean of a sequence (zero for an empty iterator).
pub fn arithmetic_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.count(), 4);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for i in 0..50 {
            let x = (i * 7 % 13) as f64;
            a.record(x);
            whole.record(x);
        }
        for i in 0..70 {
            let x = (i * 3 % 17) as f64 + 0.5;
            b.record(x);
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        let l = LatencySamples::new();
        assert!(l.is_empty());
        assert_eq!(l.mean(), SimDuration::ZERO);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut l = LatencySamples::new();
        for ns in 1..=100u64 {
            l.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(l.percentile(0.01), SimDuration::from_nanos(1));
        assert_eq!(l.percentile(0.5), SimDuration::from_nanos(50));
        assert_eq!(l.percentile(0.99), SimDuration::from_nanos(99));
        assert_eq!(l.percentile(1.0), SimDuration::from_nanos(100));
    }

    #[test]
    fn tail_cdf_is_monotone() {
        let mut l = LatencySamples::new();
        let mut rng = crate::rng::Xorshift64Star::new(31);
        for _ in 0..10_000 {
            l.record(SimDuration::from_nanos(rng.next_bounded(1_000_000)));
        }
        let cdf = l.tail_cdf(0.95, 21);
        assert_eq!(cdf.len(), 21);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "latencies must be non-decreasing");
            assert!(w[0].1 <= w[1].1, "quantiles must be non-decreasing");
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
        let g = geometric_mean([2.0, 8.0].into_iter());
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean([1.0, 0.0].into_iter());
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert_eq!(arithmetic_mean(std::iter::empty()), 0.0);
        assert_eq!(arithmetic_mean([1.0, 2.0, 3.0].into_iter()), 2.0);
    }

    #[test]
    fn latency_merge_combines() {
        let mut a = LatencySamples::new();
        let mut b = LatencySamples::new();
        a.record(SimDuration::from_nanos(10));
        b.record(SimDuration::from_nanos(30));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), SimDuration::from_nanos(20));
    }
}
