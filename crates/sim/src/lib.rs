//! Discrete-event simulation engine for the Venice SSD reproduction.
//!
//! This crate provides the substrate every other crate in the workspace
//! builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution simulated clock
//!   (`u64` newtypes with saturating arithmetic and pretty printing),
//! * [`EventQueue`] — a stable (FIFO among equal timestamps) bucketed
//!   time-wheel event calendar (binary-heap overflow tier for the far
//!   future) generic over the event payload, with [`EventQueue::pop_batch`]
//!   for draining same-instant bursts,
//! * [`DenseBitSet`] — a fixed-universe ordered bit set (O(1)
//!   insert/remove, ascending and circular iteration): the storage behind
//!   the SSD engine's incremental ready sets,
//! * [`rng`] — small deterministic generators: an `xorshift64*` PRNG with the
//!   distributions the workload generators need, and the 2-bit linear-feedback
//!   shift register the Venice router uses for random output-port selection,
//! * [`stats`] — online mean/variance, latency histograms with percentile and
//!   CDF extraction, and geometric-mean helpers used by the figure harnesses.
//!
//! # Example
//!
//! Run a tiny simulation that schedules two events and drains them in time
//! order:
//!
//! ```
//! use venice_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(5), "second");
//! q.schedule(SimTime::ZERO + SimDuration::from_nanos(10), "first");
//! let (t1, e1) = q.pop().unwrap();
//! let (t2, e2) = q.pop().unwrap();
//! assert_eq!((e1, e2), ("first", "second"));
//! assert!(t1 < t2);
//! assert!(q.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod event;
pub mod rng;
pub mod stats;
mod time;

pub use dense::DenseBitSet;
pub use event::{EventQueue, ReferenceHeapQueue, BUCKET_NS, WHEEL_BUCKETS};
pub use time::{SimDuration, SimTime};
