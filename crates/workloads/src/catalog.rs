//! The workload catalog: the nineteen traces of Table 2.
//!
//! Each entry carries the paper's published statistics (read %, average
//! request size, average inter-arrival time) plus pattern knobs assigned per
//! trace family:
//!
//! * **MSR Cambridge** volumes — skewed (Zipf 0.9–1.0 equivalent via our
//!   `theta < 1` sampler), small footprints, mild sequentiality,
//! * **YCSB** key-value — large mostly-random reads, high skew,
//! * **Slacker / SYSTOR / YCSB-RocksDB** — medium skew, larger requests.

use crate::WorkloadSpec;

/// One catalog row: Table 2's statistics for a named workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CatalogEntry {
    /// Trace name as the paper prints it.
    pub name: &'static str,
    /// Trace source suite.
    pub suite: &'static str,
    /// Read percentage.
    pub read_pct: f64,
    /// Average request size, KiB.
    pub avg_request_kb: f64,
    /// Average inter-request arrival time, µs.
    pub avg_interarrival_us: f64,
}

/// The nineteen evaluated workloads (Table 2).
pub const TABLE2: [CatalogEntry; 19] = [
    CatalogEntry { name: "hm_0", suite: "MSR", read_pct: 36.0, avg_request_kb: 8.8, avg_interarrival_us: 58.0 },
    CatalogEntry { name: "mds_0", suite: "MSR", read_pct: 12.0, avg_request_kb: 9.6, avg_interarrival_us: 268.0 },
    CatalogEntry { name: "proj_3", suite: "MSR", read_pct: 95.0, avg_request_kb: 9.6, avg_interarrival_us: 19.0 },
    CatalogEntry { name: "prxy_0", suite: "MSR", read_pct: 3.0, avg_request_kb: 7.2, avg_interarrival_us: 242.0 },
    CatalogEntry { name: "rsrch_0", suite: "MSR", read_pct: 9.0, avg_request_kb: 9.6, avg_interarrival_us: 129.0 },
    CatalogEntry { name: "src1_0", suite: "MSR", read_pct: 56.0, avg_request_kb: 43.2, avg_interarrival_us: 49.0 },
    CatalogEntry { name: "src2_1", suite: "MSR", read_pct: 98.0, avg_request_kb: 59.2, avg_interarrival_us: 50.0 },
    CatalogEntry { name: "usr_0", suite: "MSR", read_pct: 40.0, avg_request_kb: 22.8, avg_interarrival_us: 98.0 },
    CatalogEntry { name: "wdev_0", suite: "MSR", read_pct: 20.0, avg_request_kb: 9.2, avg_interarrival_us: 162.0 },
    CatalogEntry { name: "web_1", suite: "MSR", read_pct: 54.0, avg_request_kb: 29.6, avg_interarrival_us: 67.0 },
    CatalogEntry { name: "YCSB_B", suite: "YCSB", read_pct: 99.0, avg_request_kb: 65.7, avg_interarrival_us: 13.0 },
    CatalogEntry { name: "YCSB_D", suite: "YCSB", read_pct: 99.0, avg_request_kb: 62.0, avg_interarrival_us: 14.0 },
    CatalogEntry { name: "jenkins", suite: "Slacker", read_pct: 94.0, avg_request_kb: 33.4, avg_interarrival_us: 615.0 },
    CatalogEntry { name: "postgres", suite: "Slacker", read_pct: 82.0, avg_request_kb: 13.3, avg_interarrival_us: 382.0 },
    CatalogEntry { name: "LUN0", suite: "SYSTOR17", read_pct: 76.0, avg_request_kb: 20.4, avg_interarrival_us: 218.0 },
    CatalogEntry { name: "LUN2", suite: "SYSTOR17", read_pct: 73.0, avg_request_kb: 16.0, avg_interarrival_us: 320.0 },
    CatalogEntry { name: "LUN3", suite: "SYSTOR17", read_pct: 7.0, avg_request_kb: 7.7, avg_interarrival_us: 3127.0 },
    CatalogEntry { name: "ssd-00", suite: "YCSB-RocksDB", read_pct: 91.0, avg_request_kb: 90.0, avg_interarrival_us: 5.0 },
    CatalogEntry { name: "ssd-10", suite: "YCSB-RocksDB", read_pct: 99.0, avg_request_kb: 11.5, avg_interarrival_us: 2.0 },
];

/// All workload names, in Table 2 (and figure x-axis) order.
pub fn names() -> Vec<&'static str> {
    TABLE2.iter().map(|e| e.name).collect()
}

/// Builds the calibrated [`WorkloadSpec`] for a catalog entry.
pub fn spec(entry: &CatalogEntry) -> WorkloadSpec {
    let base = WorkloadSpec::new(
        entry.name,
        entry.read_pct,
        entry.avg_request_kb,
        entry.avg_interarrival_us,
    );
    // Burst pacing: requests inside a burst arrive fast enough to pile up
    // on the flash channels (the condition that exposes path conflicts),
    // scaled by the request size so the per-burst byte rate is comparable
    // across workloads.
    // Per-burst byte rate ≈ 2 GB/s: past the baseline's effective hot-channel
    // rate, below the fabric-pooled designs' aggregate — the knee where path
    // conflicts, not raw bandwidth, decide drain times.
    let gap_us = (entry.avg_request_kb / 48.0).max(0.1);
    let base = base.intra_burst_gap_us(gap_us);
    match entry.suite {
        // MSR volumes: small hot sets, skewed accesses, some sequential runs.
        "MSR" => base.footprint_mb(2048).zipf_theta(0.92).seq_fraction(0.25).burst_mean(192.0),
        // YCSB: big uniform-ish key space with Zipfian hot keys, random I/O.
        "YCSB" => base.footprint_mb(8192).zipf_theta(0.9).seq_fraction(0.05).burst_mean(256.0),
        // Container pulls / database scans: larger sequential share.
        "Slacker" => base.footprint_mb(4096).zipf_theta(0.7).seq_fraction(0.4).burst_mean(128.0),
        "SYSTOR17" => base.footprint_mb(4096).zipf_theta(0.9).seq_fraction(0.2).burst_mean(192.0),
        // RocksDB on SSD: compaction-heavy, large requests, wide space.
        "YCSB-RocksDB" => base.footprint_mb(8192).zipf_theta(0.8).seq_fraction(0.15).burst_mean(256.0),
        _ => base,
    }
}

/// Looks up a catalog workload by name and returns its calibrated spec.
///
/// # Example
///
/// ```
/// let spec = venice_workloads::catalog::by_name("hm_0").unwrap();
/// assert_eq!(spec.read_pct, 36.0);
/// ```
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    TABLE2.iter().find(|e| e.name == name).map(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_workloads() {
        assert_eq!(TABLE2.len(), 19);
        assert_eq!(names().len(), 19);
    }

    #[test]
    fn names_are_unique() {
        let set: std::collections::HashSet<_> = names().into_iter().collect();
        assert_eq!(set.len(), 19);
    }

    #[test]
    fn by_name_finds_every_entry() {
        for e in &TABLE2 {
            let s = by_name(e.name).expect("present");
            assert_eq!(s.read_pct, e.read_pct);
            assert_eq!(s.avg_request_kb, e.avg_request_kb);
            assert_eq!(s.avg_interarrival_us, e.avg_interarrival_us);
        }
        assert!(by_name("not-a-workload").is_none());
    }

    #[test]
    fn generated_traces_hit_table2_statistics() {
        // Spot-check three workloads across intensity classes.
        for name in ["hm_0", "YCSB_B", "LUN3"] {
            let spec = by_name(name).unwrap();
            let t = spec.generate(5_000);
            let s = t.stats();
            assert!(
                (s.read_pct - spec.read_pct).abs() < 3.0,
                "{name} read% {}",
                s.read_pct
            );
            // Bursty arrivals make the sample mean noisy at 5k requests
            // (~150 bursts); the long-run mean converges to the target.
            assert!(
                (s.avg_interarrival_us - spec.avg_interarrival_us).abs()
                    / spec.avg_interarrival_us
                    < 0.25,
                "{name} inter-arrival {}",
                s.avg_interarrival_us
            );
            assert!(
                (s.avg_request_kb - spec.avg_request_kb).abs() / spec.avg_request_kb < 0.25,
                "{name} size {}",
                s.avg_request_kb
            );
        }
    }
}
