//! Workload axes: adapters that present catalog entries, Table 3 mixes,
//! and custom specs through one uniform "axis value → trace" interface.
//!
//! The sweep engine in `venice_bench` expands grids of (workload × system ×
//! config) points; this module is the workload side of that contract. An
//! axis value is cheap to copy around, carries a stable display name for
//! point labels and manifests, and generates its trace deterministically
//! (same axis + same request count ⇒ identical trace bytes).

use crate::{catalog, mix, Trace, WorkloadSpec};

/// One value of a sweep grid's workload axis.
///
/// # Example
///
/// ```
/// use venice_workloads::WorkloadAxis;
/// let axis = WorkloadAxis::catalog("hm_0").unwrap();
/// assert_eq!(axis.name(), "hm_0");
/// assert_eq!(axis.trace(100).len(), 100);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadAxis {
    /// A named Table 2 catalog workload, generated from its calibrated spec.
    Catalog(&'static str),
    /// A named Table 3 mix; the request budget is split evenly across the
    /// mix's constituent streams (Figure 12's convention).
    Mix(&'static str),
    /// A custom synthetic workload.
    Spec(WorkloadSpec),
    /// A named multi-tenant scenario from [`mix`] ("noisy-neighbor",
    /// "noisy-neighbor-trio", "victim-solo"): a tenant-tagged merged
    /// trace for QoS sweeps.
    Scenario(&'static str),
}

impl WorkloadAxis {
    /// A checked catalog axis: `None` if `name` is not in Table 2.
    pub fn catalog(name: &'static str) -> Option<WorkloadAxis> {
        catalog::by_name(name).map(|_| WorkloadAxis::Catalog(name))
    }

    /// A checked mix axis: `None` if `name` is not in Table 3.
    pub fn mix(name: &'static str) -> Option<WorkloadAxis> {
        mix::by_name(name).map(|_| WorkloadAxis::Mix(name))
    }

    /// The congestion-heavy bursty workload: near-saturating arrivals in
    /// long bursts over a hot Zipfian footprint, so transient per-channel
    /// backlogs pile up and the dispatcher's retry strategy dominates the
    /// run. This is the stress axis for dispatch-policy sweeps — under it,
    /// most failed acquisitions are path conflicts rather than idle gaps.
    pub fn congested() -> WorkloadAxis {
        WorkloadAxis::Spec(
            WorkloadSpec::new("congested", 85.0, 16.0, 1.2)
                .footprint_mb(256)
                .burst_mean(48.0)
                .intra_burst_gap_us(0.1)
                .zipf_theta(1.05)
                .seq_fraction(0.05),
        )
    }

    /// All nineteen Table 2 workloads, in catalog (figure x-axis) order.
    pub fn table2() -> Vec<WorkloadAxis> {
        catalog::TABLE2.iter().map(|e| WorkloadAxis::Catalog(e.name)).collect()
    }

    /// All six Table 3 mixes, in table order.
    pub fn table3() -> Vec<WorkloadAxis> {
        mix::TABLE3.iter().map(|m| WorkloadAxis::Mix(m.name)).collect()
    }

    /// The noisy-neighbor QoS scenario: a latency-sensitive read tenant
    /// (victim, tenant 0) sharing the device with a bursty write tenant
    /// (aggressor, tenant 1). The request budget splits evenly between the
    /// two streams.
    pub fn noisy_neighbor() -> WorkloadAxis {
        WorkloadAxis::Scenario("noisy-neighbor")
    }

    /// The three-tenant unequal-weight scenario: the latency-sensitive
    /// victim (tenant 0) and a throughput-oriented mixed second victim
    /// (tenant 1) sharing the device with the bursty write aggressor
    /// (tenant 2). The request budget splits evenly across the three
    /// streams. Pair with the hil crate's `trio-weighted` tenant preset.
    pub fn noisy_neighbor_trio() -> WorkloadAxis {
        WorkloadAxis::Scenario("noisy-neighbor-trio")
    }

    /// The victim stream of [`WorkloadAxis::noisy_neighbor`] running alone:
    /// the per-fabric baseline for measuring the victim's p99 degradation
    /// under the aggressor burst.
    pub fn victim_solo() -> WorkloadAxis {
        WorkloadAxis::Scenario("victim-solo")
    }

    /// The axis value's display name (used in sweep-point labels, manifest
    /// entries, and result file names).
    pub fn name(&self) -> &str {
        match self {
            WorkloadAxis::Catalog(name)
            | WorkloadAxis::Mix(name)
            | WorkloadAxis::Scenario(name) => name,
            WorkloadAxis::Spec(spec) => &spec.name,
        }
    }

    /// Generates the axis value's trace with a total budget of `requests`
    /// requests (mixes split the budget evenly across constituents, with a
    /// floor of one request per stream).
    ///
    /// # Panics
    ///
    /// Panics if a `Catalog`/`Mix` name is unknown — use the checked
    /// [`WorkloadAxis::catalog`] / [`WorkloadAxis::mix`] constructors when
    /// the name comes from user input.
    pub fn trace(&self, requests: usize) -> Trace {
        match self {
            WorkloadAxis::Catalog(name) => catalog::by_name(name)
                .unwrap_or_else(|| panic!("unknown catalog workload {name}"))
                .generate(requests),
            WorkloadAxis::Mix(name) => {
                let entry = mix::by_name(name)
                    .unwrap_or_else(|| panic!("unknown mix {name}"));
                let per_stream = (requests / entry.constituents.len()).max(1);
                mix::generate(entry, per_stream)
            }
            WorkloadAxis::Spec(spec) => spec.generate(requests),
            WorkloadAxis::Scenario("noisy-neighbor") => {
                mix::noisy_neighbor((requests / 2).max(1))
            }
            WorkloadAxis::Scenario("noisy-neighbor-trio") => {
                mix::noisy_neighbor_trio((requests / 3).max(1))
            }
            // Half the budget, like the shared scenario's victim stream:
            // at the same grid request budget, victim-solo replays the
            // exact victim stream of noisy-neighbor, making the p99
            // degradation ratio a comparison of identical streams.
            WorkloadAxis::Scenario("victim-solo") => mix::victim_solo((requests / 2).max(1)),
            WorkloadAxis::Scenario(name) => panic!("unknown scenario {name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_axis_covers_the_catalog_in_order() {
        let axes = WorkloadAxis::table2();
        assert_eq!(axes.len(), catalog::TABLE2.len());
        for (axis, entry) in axes.iter().zip(catalog::TABLE2.iter()) {
            assert_eq!(axis.name(), entry.name);
        }
    }

    #[test]
    fn catalog_axis_matches_direct_generation() {
        let axis = WorkloadAxis::catalog("hm_0").unwrap();
        let direct = catalog::by_name("hm_0").unwrap().generate(200);
        assert_eq!(axis.trace(200).events(), direct.events());
    }

    #[test]
    fn mix_axis_splits_the_request_budget() {
        let axis = WorkloadAxis::mix("mix1").unwrap();
        // mix1 has two constituents: 300 total → 150 each → 300 events.
        assert_eq!(axis.trace(300).len(), 300);
        let three = WorkloadAxis::mix("mix2").unwrap();
        // mix2 has three constituents: 300 → 100 each.
        assert_eq!(three.trace(300).len(), 300);
    }

    #[test]
    fn checked_constructors_reject_unknown_names() {
        assert!(WorkloadAxis::catalog("nope").is_none());
        assert!(WorkloadAxis::mix("mix99").is_none());
    }

    #[test]
    fn congested_axis_is_bursty_and_deterministic() {
        let axis = WorkloadAxis::congested();
        assert_eq!(axis.name(), "congested");
        let a = axis.trace(400);
        let b = WorkloadAxis::congested().trace(400);
        assert_eq!(a.events(), b.events(), "axis must generate deterministically");
        // Near-saturating: the mean inter-arrival tracks the 1.2 µs spec.
        let stats = a.stats();
        assert!(
            stats.avg_interarrival_us < 2.0,
            "arrivals too slow to congest: {} µs",
            stats.avg_interarrival_us
        );
    }

    #[test]
    fn scenario_axes_generate_tagged_traces() {
        let shared = WorkloadAxis::noisy_neighbor();
        assert_eq!(shared.name(), "noisy-neighbor");
        let t = shared.trace(400);
        assert_eq!(t.len(), 400); // budget split 200/200 across two streams
        assert!(t.is_tenant_tagged());
        assert_eq!(t.tenant_count(), 2);
        let trio = WorkloadAxis::noisy_neighbor_trio();
        assert_eq!(trio.name(), "noisy-neighbor-trio");
        let t3 = trio.trace(600);
        assert_eq!(t3.len(), 600); // budget split 200/200/200 across streams
        assert!(t3.is_tenant_tagged());
        assert_eq!(t3.tenant_count(), 3);
        let solo = WorkloadAxis::victim_solo();
        assert_eq!(solo.name(), "victim-solo");
        assert_eq!(solo.trace(200).tenant_count(), 1);
    }

    #[test]
    fn spec_axis_uses_the_spec_name() {
        let axis = WorkloadAxis::Spec(WorkloadSpec::new("custom", 50.0, 8.0, 20.0));
        assert_eq!(axis.name(), "custom");
        assert_eq!(axis.trace(50).len(), 50);
    }
}
