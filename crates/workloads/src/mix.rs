//! Mixed workloads: Table 3's six combinations of concurrent traces.
//!
//! Each mix runs two or three catalog workloads against the same SSD. The
//! constituents share the device but address disjoint partitions of the
//! logical space (as separate tenants would), and the merged arrival stream
//! is time-compressed to the paper's published mix intensity — mixes are
//! much more intense than their constituents (Table 3's inter-arrival
//! column), which is what exacerbates path conflicts in §6.2.

use venice_sim::{SimDuration, SimTime};

use crate::{catalog, Trace, TraceEvent};

/// One Table 3 mix definition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixEntry {
    /// Mix name ("mix1".."mix6").
    pub name: &'static str,
    /// Constituent catalog workload names.
    pub constituents: &'static [&'static str],
    /// The paper's description of the mix.
    pub description: &'static str,
    /// Target average inter-arrival time of the merged stream, µs.
    pub avg_interarrival_us: f64,
}

/// The six mixed workloads (Table 3).
pub const TABLE3: [MixEntry; 6] = [
    MixEntry {
        name: "mix1",
        constituents: &["src2_1", "proj_3"],
        description: "Both workloads are read-intensive",
        avg_interarrival_us: 5.8,
    },
    MixEntry {
        name: "mix2",
        constituents: &["src2_1", "proj_3", "YCSB_D"],
        description: "All three workloads are read-intensive",
        avg_interarrival_us: 8.4,
    },
    MixEntry {
        name: "mix3",
        constituents: &["prxy_0", "rsrch_0"],
        description: "Both workloads are write-intensive",
        avg_interarrival_us: 93.0,
    },
    MixEntry {
        name: "mix4",
        constituents: &["prxy_0", "rsrch_0", "mds_0"],
        description: "All three workloads are write-intensive",
        avg_interarrival_us: 56.0,
    },
    MixEntry {
        name: "mix5",
        constituents: &["prxy_0", "src2_1"],
        description: "prxy_0 is write-intensive and src2_1 is read-intensive",
        avg_interarrival_us: 5.0,
    },
    MixEntry {
        name: "mix6",
        constituents: &["prxy_0", "src2_1", "usr_0"],
        description: "write-intensive + read-intensive + 60/40 mixed",
        avg_interarrival_us: 3.0,
    },
];

/// All mix names in Table 3 order.
pub fn names() -> Vec<&'static str> {
    TABLE3.iter().map(|m| m.name).collect()
}

/// Looks up a mix by name.
pub fn by_name(name: &str) -> Option<&'static MixEntry> {
    TABLE3.iter().find(|m| m.name == name)
}

/// Builds the merged trace of a mix with `requests_per_stream` requests from
/// each constituent.
///
/// Constituents are generated from their calibrated catalog specs, assigned
/// disjoint address partitions, merged by arrival time, and uniformly
/// time-compressed so the merged mean inter-arrival equals Table 3's value.
///
/// # Panics
///
/// Panics if a constituent name is missing from the catalog.
///
/// # Example
///
/// ```
/// use venice_workloads::mix;
/// let m = mix::by_name("mix1").unwrap();
/// let t = mix::generate(m, 500);
/// assert_eq!(t.len(), 1000);
/// let s = t.stats();
/// assert!((s.avg_interarrival_us - 5.8).abs() / 5.8 < 0.05);
/// ```
pub fn generate(mix: &MixEntry, requests_per_stream: usize) -> Trace {
    let traces: Vec<Trace> = mix
        .constituents
        .iter()
        .map(|name| {
            catalog::by_name(name)
                .unwrap_or_else(|| panic!("unknown constituent {name}"))
                .generate(requests_per_stream)
        })
        .collect();
    merge_tagged(mix.name, &traces, Some(mix.avg_interarrival_us))
}

/// Merges constituent traces over disjoint address partitions, tagging each
/// event with its origin stream's index as its tenant id. Both sorts are
/// stable, so the event stream is byte-identical to the untagged merge —
/// the tags purely ride along.
fn merge_tagged(name: &'static str, traces: &[Trace], compress_to_us: Option<f64>) -> Trace {
    // Disjoint partitions: constituent i occupies [base_i, base_i + fp_i).
    let mut merged: Vec<(TraceEvent, u8)> =
        Vec::with_capacity(traces.iter().map(Trace::len).sum());
    let mut base = 0u64;
    for (ti, t) in traces.iter().enumerate() {
        for e in t.events() {
            merged.push((
                TraceEvent {
                    offset: base + e.offset,
                    ..*e
                },
                ti as u8,
            ));
        }
        base += t.footprint_bytes();
    }
    merged.sort_by_key(|(e, _)| e.arrival);

    // Compress time to the published mix intensity.
    if let Some(avg_interarrival_us) = compress_to_us {
        if merged.len() > 1 {
            let span = merged
                .last()
                .expect("non-empty")
                .0
                .arrival
                .saturating_since(merged[0].0.arrival)
                .as_nanos() as f64;
            let target_span = avg_interarrival_us * 1_000.0 * (merged.len() - 1) as f64;
            let scale = target_span / span.max(1.0);
            let t0 = merged[0].0.arrival.as_nanos() as f64;
            for (e, _) in &mut merged {
                let rel = e.arrival.as_nanos() as f64 - t0;
                e.arrival = SimTime::ZERO + SimDuration::from_nanos_f64(rel * scale);
            }
            // Compression can collapse equal timestamps; keep ordering stable.
            merged.sort_by_key(|(e, _)| e.arrival);
        }
    }

    let (events, tenants): (Vec<TraceEvent>, Vec<u8>) = merged.into_iter().unzip();
    Trace::with_tenants(name, base, events, tenants)
}

/// The latency-sensitive victim stream of the noisy-neighbor scenario:
/// steady small random reads, the kind of tenant whose p99 a QoS scheme
/// must protect. Poisson arrivals at 20 µs keep the stream
/// fabric-sensitive: fast enough that interconnect queueing shows up at
/// the tail, slow enough that the victim's own self-queueing does not
/// drown out the aggressor's interference.
fn victim_spec() -> crate::WorkloadSpec {
    crate::WorkloadSpec::new("victim-reads", 100.0, 4.0, 20.0)
        .footprint_mb(64)
        .burst_mean(1.0)
        .seq_fraction(0.05)
}

/// The aggressor stream: long near-saturating write bursts over a larger
/// partition — the noisy neighbor.
fn aggressor_spec() -> crate::WorkloadSpec {
    crate::WorkloadSpec::new("aggressor-writes", 0.0, 32.0, 30.0)
        .footprint_mb(192)
        .burst_mean(96.0)
        .intra_burst_gap_us(0.1)
        .zipf_theta(1.05)
        .seq_fraction(0.3)
}

/// The second victim of the three-tenant scenario: a throughput-oriented
/// mixed stream — steadier and less latency-critical than
/// [`victim_spec`]'s reads, the kind of tenant an operator would give a
/// smaller (but non-zero) WRR share.
fn victim2_spec() -> crate::WorkloadSpec {
    crate::WorkloadSpec::new("victim-mixed", 70.0, 8.0, 40.0)
        .footprint_mb(96)
        .burst_mean(4.0)
        .seq_fraction(0.2)
}

/// The noisy-neighbor scenario: the victim's latency-sensitive reads
/// (tenant 0) sharing the SSD with the aggressor's write bursts
/// (tenant 1), over disjoint partitions. `requests_per_stream` requests
/// from each; arrivals keep each stream's native intensity (no mix-style
/// compression — the aggressor is already near-saturating).
pub fn noisy_neighbor(requests_per_stream: usize) -> Trace {
    let streams = [
        victim_spec().generate(requests_per_stream),
        aggressor_spec().generate(requests_per_stream),
    ];
    merge_tagged("noisy-neighbor", &streams, None)
}

/// The three-tenant unequal-weight scenario: the latency-sensitive victim
/// (tenant 0) and a throughput-oriented second victim (tenant 1) sharing
/// the SSD with the aggressor's write bursts (tenant 2), over disjoint
/// partitions. Pair with an unequal-weight tenant set (the hil crate's
/// `trio-weighted` preset) to test that WRR shares track weights when the
/// victims deserve *different* protections, not just victim-vs-aggressor.
pub fn noisy_neighbor_trio(requests_per_stream: usize) -> Trace {
    let streams = [
        victim_spec().generate(requests_per_stream),
        victim2_spec().generate(requests_per_stream),
        aggressor_spec().generate(requests_per_stream),
    ];
    merge_tagged("noisy-neighbor-trio", &streams, None)
}

/// The victim stream of [`noisy_neighbor`] running alone (same spec, same
/// partition layout): the per-fabric reference for computing the victim's
/// p99 *degradation* under the aggressor burst.
pub fn victim_solo(requests: usize) -> Trace {
    let streams = [victim_spec().generate(requests)];
    merge_tagged("victim-solo", &streams, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoOp;

    #[test]
    fn six_mixes_with_known_constituents() {
        assert_eq!(TABLE3.len(), 6);
        for m in &TABLE3 {
            for c in m.constituents {
                assert!(
                    catalog::by_name(c).is_some(),
                    "constituent {c} of {} missing",
                    m.name
                );
            }
        }
    }

    #[test]
    fn merged_intensity_matches_table3() {
        for m in &TABLE3 {
            let t = generate(m, 400);
            let s = t.stats();
            assert!(
                (s.avg_interarrival_us - m.avg_interarrival_us).abs() / m.avg_interarrival_us
                    < 0.05,
                "{}: inter-arrival {} vs {}",
                m.name,
                s.avg_interarrival_us,
                m.avg_interarrival_us
            );
        }
    }

    #[test]
    fn partitions_do_not_overlap() {
        let m = by_name("mix5").unwrap();
        let t = generate(m, 300);
        // prxy_0 writes land in the low partition; src2_1 reads high. Check
        // that both partitions are touched and no event crosses the end.
        let boundary = 2048u64 * 1024 * 1024; // prxy_0 footprint (MSR: 2 GiB)
        let low = t.events().iter().filter(|e| e.offset < boundary).count();
        let high = t.events().iter().filter(|e| e.offset >= boundary).count();
        assert!(low > 0 && high > 0);
        for e in t.events() {
            assert!(e.offset + u64::from(e.bytes) <= t.footprint_bytes());
        }
    }

    #[test]
    fn read_write_mix_reflects_constituents() {
        // mix3 is write-heavy (prxy_0 3% + rsrch_0 9% reads).
        let t = generate(by_name("mix3").unwrap(), 500);
        let reads = t.events().iter().filter(|e| e.op == IoOp::Read).count();
        let pct = reads as f64 / t.len() as f64 * 100.0;
        assert!(pct < 20.0, "mix3 read% {pct}");
        // mix1 is read-heavy.
        let t = generate(by_name("mix1").unwrap(), 500);
        let reads = t.events().iter().filter(|e| e.op == IoOp::Read).count();
        let pct = reads as f64 / t.len() as f64 * 100.0;
        assert!(pct > 90.0, "mix1 read% {pct}");
    }

    #[test]
    fn names_lookup() {
        assert_eq!(names().len(), 6);
        assert!(by_name("mix7").is_none());
    }

    #[test]
    fn tenant_tags_track_constituents_through_compression() {
        // Every event must carry its origin stream's index, and per-tenant
        // counts must equal the per-stream request budget — tags must
        // survive both stable sorts of the merge.
        let m = by_name("mix2").unwrap(); // three constituents
        let t = generate(m, 250);
        assert!(t.is_tenant_tagged());
        assert_eq!(t.tenant_count(), 3);
        let mut counts = [0usize; 3];
        for i in 0..t.len() {
            counts[usize::from(t.tenant_of(i))] += 1;
        }
        assert_eq!(counts, [250, 250, 250]);
        // Tags also pin the partition: tenant 0 (src2_1) owns the lowest
        // address range, so every tenant-0 event lands below its footprint.
        let fp0 = catalog::by_name("src2_1").unwrap().generate(250).footprint_bytes();
        for (i, e) in t.events().iter().enumerate() {
            if t.tenant_of(i) == 0 {
                assert!(e.offset + u64::from(e.bytes) <= fp0);
            } else {
                assert!(e.offset >= fp0);
            }
        }
    }

    #[test]
    fn tagging_left_the_event_stream_unchanged() {
        // The tagged merge must produce byte-identical events to an untagged
        // reference merge (stable sorts on the same keys preserve order), so
        // pre-tenancy mix results stay reproducible.
        let m = by_name("mix5").unwrap();
        let t = generate(m, 300);
        let reference: Vec<Trace> = m
            .constituents
            .iter()
            .map(|n| catalog::by_name(n).unwrap().generate(300))
            .collect();
        let mut merged: Vec<TraceEvent> = Vec::new();
        let mut base = 0u64;
        for r in &reference {
            for e in r.events() {
                merged.push(TraceEvent { offset: base + e.offset, ..*e });
            }
            base += r.footprint_bytes();
        }
        merged.sort_by_key(|e| e.arrival);
        let span = merged.last().unwrap().arrival.saturating_since(merged[0].arrival).as_nanos()
            as f64;
        let target = m.avg_interarrival_us * 1_000.0 * (merged.len() - 1) as f64;
        let scale = target / span.max(1.0);
        let t0 = merged[0].arrival.as_nanos() as f64;
        for e in &mut merged {
            let rel = e.arrival.as_nanos() as f64 - t0;
            e.arrival = SimTime::ZERO + SimDuration::from_nanos_f64(rel * scale);
        }
        merged.sort_by_key(|e| e.arrival);
        assert_eq!(t.events(), &merged[..]);
    }

    #[test]
    fn noisy_neighbor_pits_reads_against_write_bursts() {
        let t = noisy_neighbor(400);
        assert_eq!(t.len(), 800);
        assert_eq!(t.tenant_count(), 2);
        // Victim (tenant 0) is all reads; aggressor (tenant 1) all writes.
        for (i, e) in t.events().iter().enumerate() {
            match t.tenant_of(i) {
                0 => assert_eq!(e.op, IoOp::Read, "victim event {i} is a write"),
                _ => assert_eq!(e.op, IoOp::Write, "aggressor event {i} is a read"),
            }
        }
        // Deterministic: same call, same bytes and tags.
        let u = noisy_neighbor(400);
        assert_eq!(t.events(), u.events());
        assert_eq!(
            (0..t.len()).map(|i| t.tenant_of(i)).collect::<Vec<_>>(),
            (0..u.len()).map(|i| u.tenant_of(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn noisy_neighbor_trio_layers_a_second_victim_between_the_pair() {
        let t = noisy_neighbor_trio(300);
        assert_eq!(t.len(), 900);
        assert_eq!(t.tenant_count(), 3);
        // Tenant 0 is the all-read victim, tenant 2 the all-write aggressor;
        // tenant 1 (the mixed second victim) must carry both ops.
        let mut ops = [[0usize; 2]; 3];
        for (i, e) in t.events().iter().enumerate() {
            ops[usize::from(t.tenant_of(i))][usize::from(e.op == IoOp::Write)] += 1;
        }
        assert_eq!(ops[0], [300, 0], "victim must be read-only");
        assert!(ops[1][0] > 0 && ops[1][1] > 0, "second victim must mix ops");
        assert_eq!(ops[2], [0, 300], "aggressor must be write-only");
        // Tenant 0 of the trio is byte-identical to the two-tenant victim:
        // the trio only *adds* a stream, it does not perturb the others.
        let pair = noisy_neighbor(300);
        let stream = |tr: &Trace, tenant: u8| -> Vec<TraceEvent> {
            tr.events()
                .iter()
                .enumerate()
                .filter(|(i, _)| tr.tenant_of(*i) == tenant)
                .map(|(_, e)| *e)
                .collect()
        };
        assert_eq!(stream(&t, 0), stream(&pair, 0));
        // Deterministic: same call, same bytes and tags.
        let u = noisy_neighbor_trio(300);
        assert_eq!(t.events(), u.events());
        assert_eq!(
            (0..t.len()).map(|i| t.tenant_of(i)).collect::<Vec<_>>(),
            (0..u.len()).map(|i| u.tenant_of(i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn victim_solo_is_the_victim_stream_of_the_shared_run() {
        // Same spec, so the solo run is a fair degradation baseline: all
        // reads, same request sizes as the shared run's tenant-0 events.
        let solo = victim_solo(300);
        assert_eq!(solo.len(), 300);
        assert_eq!(solo.tenant_count(), 1);
        assert!(solo.events().iter().all(|e| e.op == IoOp::Read));
        let shared = noisy_neighbor(300);
        let victim_bytes: Vec<u32> = shared
            .events()
            .iter()
            .enumerate()
            .filter(|(i, _)| shared.tenant_of(*i) == 0)
            .map(|(_, e)| e.bytes)
            .collect();
        let solo_bytes: Vec<u32> = solo.events().iter().map(|e| e.bytes).collect();
        assert_eq!(victim_bytes, solo_bytes);
    }
}
