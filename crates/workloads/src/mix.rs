//! Mixed workloads: Table 3's six combinations of concurrent traces.
//!
//! Each mix runs two or three catalog workloads against the same SSD. The
//! constituents share the device but address disjoint partitions of the
//! logical space (as separate tenants would), and the merged arrival stream
//! is time-compressed to the paper's published mix intensity — mixes are
//! much more intense than their constituents (Table 3's inter-arrival
//! column), which is what exacerbates path conflicts in §6.2.

use venice_sim::{SimDuration, SimTime};

use crate::{catalog, Trace, TraceEvent};

/// One Table 3 mix definition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixEntry {
    /// Mix name ("mix1".."mix6").
    pub name: &'static str,
    /// Constituent catalog workload names.
    pub constituents: &'static [&'static str],
    /// The paper's description of the mix.
    pub description: &'static str,
    /// Target average inter-arrival time of the merged stream, µs.
    pub avg_interarrival_us: f64,
}

/// The six mixed workloads (Table 3).
pub const TABLE3: [MixEntry; 6] = [
    MixEntry {
        name: "mix1",
        constituents: &["src2_1", "proj_3"],
        description: "Both workloads are read-intensive",
        avg_interarrival_us: 5.8,
    },
    MixEntry {
        name: "mix2",
        constituents: &["src2_1", "proj_3", "YCSB_D"],
        description: "All three workloads are read-intensive",
        avg_interarrival_us: 8.4,
    },
    MixEntry {
        name: "mix3",
        constituents: &["prxy_0", "rsrch_0"],
        description: "Both workloads are write-intensive",
        avg_interarrival_us: 93.0,
    },
    MixEntry {
        name: "mix4",
        constituents: &["prxy_0", "rsrch_0", "mds_0"],
        description: "All three workloads are write-intensive",
        avg_interarrival_us: 56.0,
    },
    MixEntry {
        name: "mix5",
        constituents: &["prxy_0", "src2_1"],
        description: "prxy_0 is write-intensive and src2_1 is read-intensive",
        avg_interarrival_us: 5.0,
    },
    MixEntry {
        name: "mix6",
        constituents: &["prxy_0", "src2_1", "usr_0"],
        description: "write-intensive + read-intensive + 60/40 mixed",
        avg_interarrival_us: 3.0,
    },
];

/// All mix names in Table 3 order.
pub fn names() -> Vec<&'static str> {
    TABLE3.iter().map(|m| m.name).collect()
}

/// Looks up a mix by name.
pub fn by_name(name: &str) -> Option<&'static MixEntry> {
    TABLE3.iter().find(|m| m.name == name)
}

/// Builds the merged trace of a mix with `requests_per_stream` requests from
/// each constituent.
///
/// Constituents are generated from their calibrated catalog specs, assigned
/// disjoint address partitions, merged by arrival time, and uniformly
/// time-compressed so the merged mean inter-arrival equals Table 3's value.
///
/// # Panics
///
/// Panics if a constituent name is missing from the catalog.
///
/// # Example
///
/// ```
/// use venice_workloads::mix;
/// let m = mix::by_name("mix1").unwrap();
/// let t = mix::generate(m, 500);
/// assert_eq!(t.len(), 1000);
/// let s = t.stats();
/// assert!((s.avg_interarrival_us - 5.8).abs() / 5.8 < 0.05);
/// ```
pub fn generate(mix: &MixEntry, requests_per_stream: usize) -> Trace {
    let traces: Vec<Trace> = mix
        .constituents
        .iter()
        .map(|name| {
            catalog::by_name(name)
                .unwrap_or_else(|| panic!("unknown constituent {name}"))
                .generate(requests_per_stream)
        })
        .collect();

    // Disjoint partitions: constituent i occupies [base_i, base_i + fp_i).
    let mut merged: Vec<TraceEvent> = Vec::with_capacity(traces.len() * requests_per_stream);
    let mut base = 0u64;
    for t in &traces {
        for e in t.events() {
            merged.push(TraceEvent {
                offset: base + e.offset,
                ..*e
            });
        }
        base += t.footprint_bytes();
    }
    merged.sort_by_key(|e| e.arrival);

    // Compress time to the published mix intensity.
    if merged.len() > 1 {
        let span = merged
            .last()
            .expect("non-empty")
            .arrival
            .saturating_since(merged[0].arrival)
            .as_nanos() as f64;
        let target_span = mix.avg_interarrival_us * 1_000.0 * (merged.len() - 1) as f64;
        let scale = target_span / span.max(1.0);
        let t0 = merged[0].arrival.as_nanos() as f64;
        for e in &mut merged {
            let rel = e.arrival.as_nanos() as f64 - t0;
            e.arrival = SimTime::ZERO + SimDuration::from_nanos_f64(rel * scale);
        }
        // Compression can collapse equal timestamps; keep ordering stable.
        merged.sort_by_key(|e| e.arrival);
    }

    Trace::new(mix.name, base, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoOp;

    #[test]
    fn six_mixes_with_known_constituents() {
        assert_eq!(TABLE3.len(), 6);
        for m in &TABLE3 {
            for c in m.constituents {
                assert!(
                    catalog::by_name(c).is_some(),
                    "constituent {c} of {} missing",
                    m.name
                );
            }
        }
    }

    #[test]
    fn merged_intensity_matches_table3() {
        for m in &TABLE3 {
            let t = generate(m, 400);
            let s = t.stats();
            assert!(
                (s.avg_interarrival_us - m.avg_interarrival_us).abs() / m.avg_interarrival_us
                    < 0.05,
                "{}: inter-arrival {} vs {}",
                m.name,
                s.avg_interarrival_us,
                m.avg_interarrival_us
            );
        }
    }

    #[test]
    fn partitions_do_not_overlap() {
        let m = by_name("mix5").unwrap();
        let t = generate(m, 300);
        // prxy_0 writes land in the low partition; src2_1 reads high. Check
        // that both partitions are touched and no event crosses the end.
        let boundary = 2048u64 * 1024 * 1024; // prxy_0 footprint (MSR: 2 GiB)
        let low = t.events().iter().filter(|e| e.offset < boundary).count();
        let high = t.events().iter().filter(|e| e.offset >= boundary).count();
        assert!(low > 0 && high > 0);
        for e in t.events() {
            assert!(e.offset + u64::from(e.bytes) <= t.footprint_bytes());
        }
    }

    #[test]
    fn read_write_mix_reflects_constituents() {
        // mix3 is write-heavy (prxy_0 3% + rsrch_0 9% reads).
        let t = generate(by_name("mix3").unwrap(), 500);
        let reads = t.events().iter().filter(|e| e.op == IoOp::Read).count();
        let pct = reads as f64 / t.len() as f64 * 100.0;
        assert!(pct < 20.0, "mix3 read% {pct}");
        // mix1 is read-heavy.
        let t = generate(by_name("mix1").unwrap(), 500);
        let reads = t.events().iter().filter(|e| e.op == IoOp::Read).count();
        let pct = reads as f64 / t.len() as f64 * 100.0;
        assert!(pct > 90.0, "mix1 read% {pct}");
    }

    #[test]
    fn names_lookup() {
        assert_eq!(names().len(), 6);
        assert!(by_name("mix7").is_none());
    }
}
