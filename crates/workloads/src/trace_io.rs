//! MQSim ASCII trace interchange.
//!
//! MQSim (the simulator the paper builds on) replays whitespace-separated
//! ASCII traces with one request per line:
//!
//! ```text
//! <arrival-time-ns> <device> <start-sector-lba> <sectors> <type>
//! ```
//!
//! where sectors are 512 bytes and `type` is `1` for reads, `0` for writes
//! (the MSR Cambridge convention MQSim adopts). This module converts between
//! that format and [`Trace`], so real trace files can be replayed on this
//! simulator and our synthetic traces can be replayed on MQSim for
//! cross-validation.

use std::fmt::Write as _;

use venice_sim::SimTime;

use crate::{IoOp, Trace, TraceEvent};

/// Sector size of the MQSim/MSR trace format.
pub const TRACE_SECTOR_BYTES: u64 = 512;

/// Errors from parsing an MQSim ASCII trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// A line did not have the five expected fields.
    WrongFieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Field index (0-based).
        field: usize,
    },
    /// The request type was neither `0` nor `1`.
    BadType {
        /// 1-based line number.
        line: usize,
    },
    /// Arrival times were not non-decreasing.
    OutOfOrder {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::WrongFieldCount { line, found } => {
                write!(f, "line {line}: expected 5 fields, found {found}")
            }
            TraceParseError::BadNumber { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
            TraceParseError::BadType { line } => {
                write!(f, "line {line}: request type must be 0 (write) or 1 (read)")
            }
            TraceParseError::OutOfOrder { line } => {
                write!(f, "line {line}: arrival times must be non-decreasing")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Parses an MQSim ASCII trace. Empty lines and `#` comments are skipped.
///
/// The trace footprint is derived from the highest sector touched.
///
/// # Errors
///
/// Returns a [`TraceParseError`] describing the first malformed line.
///
/// # Example
///
/// ```
/// use venice_workloads::trace_io::parse_mqsim;
/// let text = "0 0 8 16 1\n1000 0 0 8 0\n";
/// let trace = parse_mqsim("t", text).unwrap();
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.events()[0].bytes, 16 * 512);
/// ```
pub fn parse_mqsim(name: &str, text: &str) -> Result<Trace, TraceParseError> {
    let mut events = Vec::new();
    let mut max_end = 0u64;
    let mut last_arrival = SimTime::ZERO;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(TraceParseError::WrongFieldCount {
                line,
                found: fields.len(),
            });
        }
        let num = |i: usize| -> Result<u64, TraceParseError> {
            fields[i]
                .parse::<u64>()
                .map_err(|_| TraceParseError::BadNumber { line, field: i })
        };
        let arrival = SimTime::from_nanos(num(0)?);
        let _device = num(1)?;
        let lba = num(2)?;
        let sectors = num(3)?.max(1);
        let op = match fields[4] {
            "1" => IoOp::Read,
            "0" => IoOp::Write,
            _ => return Err(TraceParseError::BadType { line }),
        };
        if arrival < last_arrival {
            return Err(TraceParseError::OutOfOrder { line });
        }
        last_arrival = arrival;
        let offset = lba * TRACE_SECTOR_BYTES;
        let bytes = (sectors * TRACE_SECTOR_BYTES) as u32;
        max_end = max_end.max(offset + u64::from(bytes));
        events.push(TraceEvent {
            arrival,
            op,
            offset,
            bytes,
        });
    }
    Ok(Trace::new(name, max_end, events))
}

/// Renders a [`Trace`] in MQSim's ASCII format (device id 0).
///
/// # Example
///
/// ```
/// use venice_workloads::trace_io::{format_mqsim, parse_mqsim};
/// use venice_workloads::WorkloadSpec;
/// let t = WorkloadSpec::new("x", 50.0, 8.0, 100.0).footprint_mb(16).generate(10);
/// let text = format_mqsim(&t);
/// let back = parse_mqsim("x", &text).unwrap();
/// assert_eq!(back.events(), t.events());
/// ```
pub fn format_mqsim(trace: &Trace) -> String {
    let mut out = String::new();
    for e in trace.events() {
        let ty = match e.op {
            IoOp::Read => 1,
            IoOp::Write => 0,
        };
        let _ = writeln!(
            out,
            "{} 0 {} {} {}",
            e.arrival.as_nanos(),
            e.offset / TRACE_SECTOR_BYTES,
            u64::from(e.bytes) / TRACE_SECTOR_BYTES,
            ty
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_trace() {
        let t = parse_mqsim("x", "0 0 0 8 1\n500 0 128 16 0\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].op, IoOp::Read);
        assert_eq!(t.events()[1].op, IoOp::Write);
        assert_eq!(t.events()[1].offset, 128 * 512);
        assert_eq!(t.footprint_bytes(), (128 + 16) * 512);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let t = parse_mqsim("x", "# header\n\n0 0 0 8 1\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(
            parse_mqsim("x", "0 0 0 8\n").unwrap_err(),
            TraceParseError::WrongFieldCount { line: 1, found: 4 }
        );
        assert_eq!(
            parse_mqsim("x", "0 0 zz 8 1\n").unwrap_err(),
            TraceParseError::BadNumber { line: 1, field: 2 }
        );
        assert_eq!(
            parse_mqsim("x", "0 0 0 8 7\n").unwrap_err(),
            TraceParseError::BadType { line: 1 }
        );
        assert_eq!(
            parse_mqsim("x", "100 0 0 8 1\n0 0 0 8 1\n").unwrap_err(),
            TraceParseError::OutOfOrder { line: 2 }
        );
    }

    #[test]
    fn roundtrip_preserves_events() {
        let t = crate::WorkloadSpec::new("rt", 70.0, 16.0, 30.0)
            .footprint_mb(64)
            .generate(200);
        let back = parse_mqsim("rt", &format_mqsim(&t)).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn zero_sector_request_clamped_to_one() {
        let t = parse_mqsim("x", "0 0 0 0 1\n").unwrap();
        assert_eq!(t.events()[0].bytes, 512);
    }

    #[test]
    fn display_of_errors() {
        let e = TraceParseError::BadType { line: 3 };
        assert!(e.to_string().contains("line 3"));
    }
}
