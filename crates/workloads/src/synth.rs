//! Synthetic trace generation calibrated to first-order trace statistics.
//!
//! The paper evaluates on nineteen real enterprise/datacenter traces; those
//! files are external artifacts, so this module generates synthetic traces
//! whose Table 2 statistics (read ratio, mean request size, mean
//! inter-arrival time) match the published numbers, with address-pattern
//! knobs (footprint, Zipfian skew, sequential fraction) chosen per workload
//! class. Path conflicts are driven by arrival intensity versus service rate
//! and by which chips requests touch, both of which these statistics govern —
//! see DESIGN.md for the substitution rationale.

use venice_sim::rng::{Xorshift64Star, ZipfSampler};
use venice_sim::{SimDuration, SimTime};

use crate::{IoOp, Trace, TraceEvent};

/// Logical sector granularity requests are aligned to (4 KiB, the unit real
/// traces use for SSD studies).
pub const SECTOR_BYTES: u64 = 4096;

/// A synthetic workload specification.
///
/// # Example
///
/// ```
/// use venice_workloads::WorkloadSpec;
/// let spec = WorkloadSpec::new("demo", 70.0, 16.0, 50.0);
/// let trace = spec.generate(1_000);
/// let stats = trace.stats();
/// assert!((stats.read_pct - 70.0).abs() < 5.0);
/// assert!((stats.avg_interarrival_us - 50.0) / 50.0 < 0.15);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name.
    pub name: String,
    /// Percentage of reads (Table 2 column 2).
    pub read_pct: f64,
    /// Mean request size in KiB (Table 2 column 3).
    pub avg_request_kb: f64,
    /// Mean inter-arrival time in µs (Table 2 column 4).
    pub avg_interarrival_us: f64,
    /// Logical footprint in MiB.
    pub footprint_mb: u64,
    /// Zipfian skew of random accesses (0 = uniform).
    pub zipf_theta: f64,
    /// Fraction of requests that continue a sequential stream.
    pub seq_fraction: f64,
    /// Log-normal shape for request sizes (0 = constant size).
    pub size_sigma: f64,
    /// Mean burst length: requests arrive in geometric bursts of this mean
    /// size separated by long gaps, keeping the overall mean inter-arrival
    /// at `avg_interarrival_us`. `1.0` degenerates to a Poisson stream.
    /// Real enterprise traces are strongly bursty, and burstiness is what
    /// exposes path conflicts (transient per-channel backlogs).
    pub burst_mean: f64,
    /// Gap between requests inside a burst, µs.
    pub intra_burst_gap_us: f64,
    /// RNG seed (same seed ⇒ identical trace).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Creates a spec with the three Table 2 statistics and default pattern
    /// knobs (4 GiB footprint, mild skew, mixed random/sequential).
    pub fn new(
        name: impl Into<String>,
        read_pct: f64,
        avg_request_kb: f64,
        avg_interarrival_us: f64,
    ) -> Self {
        let name = name.into();
        // Stable per-name seed so every run of a named workload is identical.
        let seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
            });
        WorkloadSpec {
            name,
            read_pct,
            avg_request_kb,
            avg_interarrival_us,
            footprint_mb: 4096,
            zipf_theta: 0.9,
            seq_fraction: 0.2,
            size_sigma: 0.6,
            burst_mean: 12.0,
            intra_burst_gap_us: 0.3,
            seed,
        }
    }

    /// Sets the logical footprint in MiB.
    pub fn footprint_mb(mut self, mb: u64) -> Self {
        self.footprint_mb = mb;
        self
    }

    /// Sets the Zipfian skew of random accesses.
    pub fn zipf_theta(mut self, theta: f64) -> Self {
        self.zipf_theta = theta;
        self
    }

    /// Sets the sequential-stream fraction.
    pub fn seq_fraction(mut self, f: f64) -> Self {
        self.seq_fraction = f;
        self
    }

    /// Sets the request-size shape parameter.
    pub fn size_sigma(mut self, sigma: f64) -> Self {
        self.size_sigma = sigma;
        self
    }

    /// Sets the mean burst length (1 = pure Poisson arrivals).
    pub fn burst_mean(mut self, mean: f64) -> Self {
        self.burst_mean = mean.max(1.0);
        self
    }

    /// Sets the intra-burst request gap, in µs.
    pub fn intra_burst_gap_us(mut self, gap: f64) -> Self {
        self.intra_burst_gap_us = gap.max(0.0);
        self
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates a trace of `requests` requests.
    ///
    /// Inter-arrivals are exponential (an open-loop Poisson host), request
    /// sizes log-normal around the target mean (aligned to 4 KiB sectors),
    /// and addresses mix a sequential stream with scrambled-Zipfian random
    /// accesses, YCSB style.
    pub fn generate(&self, requests: usize) -> Trace {
        let mut rng = Xorshift64Star::new(self.seed);
        let footprint = self.footprint_mb * 1024 * 1024;
        let sectors = (footprint / SECTOR_BYTES).max(1);
        let zipf = ZipfSampler::new(sectors, self.zipf_theta);
        let mut events = Vec::with_capacity(requests);
        let mut clock = SimTime::ZERO;
        let mut seq_ptr: u64 = rng.next_bounded(sectors);
        // Burst state: how many requests remain in the current burst.
        let mut burst_left: u64 = 0;
        // Intra-burst gaps "spend" part of the time budget; the inter-burst
        // gap carries the rest so the overall mean stays on target.
        let intra_ns = (self.intra_burst_gap_us * 1_000.0).min(self.avg_interarrival_us * 500.0);
        for _ in 0..requests {
            if burst_left > 0 {
                burst_left -= 1;
                clock += SimDuration::from_nanos_f64(intra_ns);
            } else {
                // Geometric burst length with the configured mean.
                let p = 1.0 / self.burst_mean.max(1.0);
                let mut len = 1u64;
                while !rng.next_bool(p) && len < 10_000 {
                    len += 1;
                }
                burst_left = len - 1;
                // Inter-burst gap: the burst's whole time budget minus what
                // its intra-burst gaps will consume.
                let budget = self.avg_interarrival_us * 1_000.0 * len as f64;
                let gap = (budget - intra_ns * (len - 1) as f64).max(intra_ns);
                clock += SimDuration::from_nanos_f64(rng.next_exp(gap));
            }
            let op = if rng.next_bool(self.read_pct / 100.0) {
                IoOp::Read
            } else {
                IoOp::Write
            };
            // Size: log-normal mean-matched, ≥ 1 sector, aligned to sectors.
            let raw_kb = if self.size_sigma <= f64::EPSILON {
                self.avg_request_kb
            } else {
                rng.next_lognormal(self.avg_request_kb, self.size_sigma)
            };
            let sectors_len = ((raw_kb * 1024.0 / SECTOR_BYTES as f64).round() as u64)
                .clamp(1, sectors);
            // Address: continue the sequential stream or jump Zipf-random.
            let start_sector = if rng.next_bool(self.seq_fraction) {
                seq_ptr
            } else {
                // Scramble the Zipf rank so hot pages spread over the space.
                let rank = zipf.sample(&mut rng);
                rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % sectors
            };
            let start_sector = start_sector.min(sectors - sectors_len.min(sectors));
            seq_ptr = (start_sector + sectors_len) % sectors;
            events.push(TraceEvent {
                arrival: clock,
                op,
                offset: start_sector * SECTOR_BYTES,
                bytes: (sectors_len * SECTOR_BYTES) as u32,
            });
        }
        Trace::new(self.name.clone(), footprint, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_stats_match_spec() {
        let spec = WorkloadSpec::new("cal", 80.0, 32.0, 25.0).footprint_mb(1024);
        let t = spec.generate(20_000);
        let s = t.stats();
        assert!((s.read_pct - 80.0).abs() < 1.5, "read% {}", s.read_pct);
        assert!(
            (s.avg_interarrival_us - 25.0).abs() / 25.0 < 0.05,
            "interarrival {}",
            s.avg_interarrival_us
        );
        // Log-normal quantization inflates small means slightly; stay loose.
        assert!(
            (s.avg_request_kb - 32.0).abs() / 32.0 < 0.15,
            "size {}",
            s.avg_request_kb
        );
        assert!(s.max_offset <= t.footprint_bytes());
    }

    #[test]
    fn same_seed_same_trace() {
        let a = WorkloadSpec::new("x", 50.0, 8.0, 100.0).generate(100);
        let b = WorkloadSpec::new("x", 50.0, 8.0, 100.0).generate(100);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_names_differ() {
        let a = WorkloadSpec::new("x", 50.0, 8.0, 100.0).generate(50);
        let b = WorkloadSpec::new("y", 50.0, 8.0, 100.0).generate(50);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn sequential_fraction_produces_runs() {
        let seq = WorkloadSpec::new("s", 100.0, 4.0, 10.0)
            .seq_fraction(1.0)
            .size_sigma(0.0)
            .generate(100);
        // With 100% sequentiality each request begins where the last ended
        // (modulo footprint clamping).
        let mut runs = 0;
        for w in seq.events().windows(2) {
            if w[1].offset == w[0].offset + u64::from(w[0].bytes) {
                runs += 1;
            }
        }
        assert!(runs > 90, "sequential runs {runs}");
    }

    #[test]
    fn zero_sigma_gives_constant_sizes() {
        let t = WorkloadSpec::new("c", 50.0, 16.0, 10.0)
            .size_sigma(0.0)
            .generate(50);
        assert!(t.events().iter().all(|e| e.bytes == 16 * 1024));
    }

    #[test]
    fn events_are_time_sorted_and_in_footprint() {
        let t = WorkloadSpec::new("chk", 30.0, 64.0, 5.0)
            .footprint_mb(256)
            .generate(5_000);
        for w in t.events().windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for e in t.events() {
            assert!(e.offset % SECTOR_BYTES == 0);
            assert!(e.offset + u64::from(e.bytes) <= t.footprint_bytes());
        }
    }
}
