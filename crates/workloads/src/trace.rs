//! I/O traces: the unit of workload input to the simulator.

use venice_sim::SimTime;

/// Direction of one I/O request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoOp::Read => "R",
            IoOp::Write => "W",
        })
    }
}

/// One trace record: an I/O request with its arrival time, byte offset into
/// the logical address space, and size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival time at the SSD's host interface.
    pub arrival: SimTime,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset into the logical address space.
    pub offset: u64,
    /// Request size in bytes.
    pub bytes: u32,
}

/// First-order statistics of a trace, matching the columns of the paper's
/// Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceStats {
    /// Fraction of read requests, in percent.
    pub read_pct: f64,
    /// Mean request size in KiB.
    pub avg_request_kb: f64,
    /// Mean inter-arrival time in microseconds.
    pub avg_interarrival_us: f64,
    /// Number of requests.
    pub requests: usize,
    /// Highest byte addressed plus one (footprint upper bound).
    pub max_offset: u64,
}

/// An I/O trace: time-ordered request records over a bounded logical space.
///
/// # Example
///
/// ```
/// use venice_workloads::{IoOp, Trace, TraceEvent};
/// use venice_sim::SimTime;
///
/// let t = Trace::new(
///     "tiny",
///     1 << 20,
///     vec![TraceEvent {
///         arrival: SimTime::ZERO,
///         op: IoOp::Read,
///         offset: 4096,
///         bytes: 8192,
///     }],
/// );
/// let s = t.stats();
/// assert_eq!(s.read_pct, 100.0);
/// assert_eq!(s.avg_request_kb, 8.0);
/// ```
#[derive(Clone, Debug)]
pub struct Trace {
    name: String,
    footprint_bytes: u64,
    events: Vec<TraceEvent>,
    /// Tenant tag per event (parallel to `events`). Empty means the whole
    /// trace belongs to tenant 0 — the single-tenant default, which keeps
    /// untagged traces allocation-free.
    tenants: Vec<u8>,
}

impl Trace {
    /// Creates a single-tenant trace. Events must be sorted by arrival
    /// time and stay within the footprint.
    ///
    /// # Panics
    ///
    /// Panics if events are unsorted or address beyond the footprint.
    pub fn new(name: impl Into<String>, footprint_bytes: u64, events: Vec<TraceEvent>) -> Self {
        Trace::with_tenants(name, footprint_bytes, events, Vec::new())
    }

    /// Creates a tenant-tagged trace: `tenants[i]` is the tenant id of
    /// `events[i]`. An empty tag vector means single-tenant (all tenant 0).
    ///
    /// # Panics
    ///
    /// Panics if events are unsorted, address beyond the footprint, or the
    /// tag vector is non-empty with a length different from the events'.
    pub fn with_tenants(
        name: impl Into<String>,
        footprint_bytes: u64,
        events: Vec<TraceEvent>,
        tenants: Vec<u8>,
    ) -> Self {
        for w in events.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "trace must be time-sorted");
        }
        for e in &events {
            assert!(
                e.offset + u64::from(e.bytes) <= footprint_bytes,
                "event beyond footprint"
            );
        }
        assert!(
            tenants.is_empty() || tenants.len() == events.len(),
            "tenant tags must be empty or one per event"
        );
        Trace {
            name: name.into(),
            footprint_bytes,
            events,
            tenants,
        }
    }

    /// Tenant id of request `i` (0 for untagged traces).
    pub fn tenant_of(&self, i: usize) -> u8 {
        self.tenants.get(i).copied().unwrap_or(0)
    }

    /// Number of distinct tenants the trace addresses (highest tag + 1;
    /// 1 for untagged traces).
    pub fn tenant_count(&self) -> usize {
        self.tenants
            .iter()
            .copied()
            .max()
            .map_or(1, |m| usize::from(m) + 1)
    }

    /// True when the trace carries per-event tenant tags.
    pub fn is_tenant_tagged(&self) -> bool {
        !self.tenants.is_empty()
    }

    /// Workload name (Table 2 row name for catalog workloads).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical address space covered, in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_bytes
    }

    /// The request records, time-ordered.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Computes Table 2-style statistics.
    pub fn stats(&self) -> TraceStats {
        let n = self.events.len();
        if n == 0 {
            return TraceStats {
                read_pct: 0.0,
                avg_request_kb: 0.0,
                avg_interarrival_us: 0.0,
                requests: 0,
                max_offset: 0,
            };
        }
        let reads = self.events.iter().filter(|e| e.op == IoOp::Read).count();
        let bytes: u64 = self.events.iter().map(|e| u64::from(e.bytes)).sum();
        let span = self
            .events
            .last()
            .expect("non-empty")
            .arrival
            .saturating_since(self.events[0].arrival);
        let gaps = (n - 1).max(1);
        TraceStats {
            read_pct: reads as f64 / n as f64 * 100.0,
            avg_request_kb: bytes as f64 / n as f64 / 1024.0,
            avg_interarrival_us: span.as_micros_f64() / gaps as f64,
            requests: n,
            max_offset: self
                .events
                .iter()
                .map(|e| e.offset + u64::from(e.bytes))
                .max()
                .unwrap_or(0),
        }
    }

    /// Returns a copy truncated to the first `n` requests (harness knob for
    /// quick runs).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            name: self.name.clone(),
            footprint_bytes: self.footprint_bytes,
            events: self.events.iter().take(n).copied().collect(),
            tenants: self.tenants.iter().take(n).copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_sim::SimDuration;

    fn ev(us: u64, op: IoOp, offset: u64, bytes: u32) -> TraceEvent {
        TraceEvent {
            arrival: SimTime::ZERO + SimDuration::from_micros(us),
            op,
            offset,
            bytes,
        }
    }

    #[test]
    fn stats_match_hand_computation() {
        let t = Trace::new(
            "t",
            1 << 20,
            vec![
                ev(0, IoOp::Read, 0, 4096),
                ev(10, IoOp::Write, 4096, 8192),
                ev(30, IoOp::Read, 0, 4096),
            ],
        );
        let s = t.stats();
        assert!((s.read_pct - 66.666).abs() < 0.01);
        assert!((s.avg_request_kb - 16384.0 / 3.0 / 1024.0).abs() < 1e-9);
        assert!((s.avg_interarrival_us - 15.0).abs() < 1e-9);
        assert_eq!(s.requests, 3);
        assert_eq!(s.max_offset, 4096 + 8192);
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_events_rejected() {
        Trace::new(
            "bad",
            1 << 20,
            vec![ev(10, IoOp::Read, 0, 4096), ev(5, IoOp::Read, 0, 4096)],
        );
    }

    #[test]
    #[should_panic(expected = "beyond footprint")]
    fn out_of_footprint_rejected() {
        Trace::new("bad", 4096, vec![ev(0, IoOp::Read, 4096, 4096)]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let t = Trace::new(
            "t",
            1 << 20,
            (0..10).map(|i| ev(i, IoOp::Read, 0, 4096)).collect(),
        );
        let t2 = t.truncated(3);
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.name(), "t");
        assert!(!t2.is_empty());
    }

    #[test]
    fn tenant_tags_follow_events() {
        let events: Vec<TraceEvent> = (0..6).map(|i| ev(i, IoOp::Read, 0, 4096)).collect();
        let tags = vec![0u8, 1, 0, 2, 1, 0];
        let t = Trace::with_tenants("tagged", 1 << 20, events, tags);
        assert!(t.is_tenant_tagged());
        assert_eq!(t.tenant_count(), 3);
        assert_eq!(t.tenant_of(3), 2);
        // Truncation slices the tags in step with the events.
        let cut = t.truncated(2);
        assert_eq!(cut.len(), 2);
        assert_eq!(cut.tenant_of(1), 1);
        assert_eq!(cut.tenant_count(), 2);
        // Untagged traces are tenant 0 everywhere.
        let plain = Trace::new("plain", 1 << 20, vec![ev(0, IoOp::Read, 0, 4096)]);
        assert!(!plain.is_tenant_tagged());
        assert_eq!(plain.tenant_of(0), 0);
        assert_eq!(plain.tenant_of(99), 0);
        assert_eq!(plain.tenant_count(), 1);
    }

    #[test]
    #[should_panic(expected = "one per event")]
    fn mismatched_tenant_tags_rejected() {
        Trace::with_tenants(
            "bad",
            1 << 20,
            vec![ev(0, IoOp::Read, 0, 4096)],
            vec![0, 1],
        );
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let t = Trace::new("e", 0, vec![]);
        let s = t.stats();
        assert_eq!(s.requests, 0);
        assert_eq!(s.read_pct, 0.0);
    }
}
