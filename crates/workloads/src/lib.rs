//! Workload catalog and synthetic trace generation for the Venice
//! reproduction.
//!
//! The paper evaluates nineteen real data-intensive storage traces (MSR
//! Cambridge, YCSB, Slacker, SYSTOR '17, YCSB-RocksDB — its Table 2) plus
//! six mixed workloads (Table 3). The raw trace files are external
//! artifacts, so this crate generates deterministic synthetic traces whose
//! published first-order statistics match Table 2 exactly; see
//! [`WorkloadSpec`] and DESIGN.md for the substitution rationale.
//!
//! * [`catalog`] — the nineteen named workloads with calibrated specs,
//! * [`mix`] — the six Table 3 mixes (partitioned address space, merged and
//!   time-compressed to the published intensity),
//! * [`WorkloadSpec`] — build your own workload,
//! * [`WorkloadAxis`] — uniform catalog/mix/custom adapter for sweep grids,
//! * [`Trace`] — the time-ordered request records handed to the simulator.
//!
//! # Example
//!
//! ```
//! use venice_workloads::catalog;
//! let trace = catalog::by_name("src1_0").unwrap().generate(1_000);
//! assert_eq!(trace.len(), 1_000);
//! let stats = trace.stats();
//! assert!((stats.read_pct - 56.0).abs() < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod axis;
pub mod catalog;
pub mod mix;
mod synth;
mod trace;
pub mod trace_io;

pub use axis::WorkloadAxis;
pub use synth::{WorkloadSpec, SECTOR_BYTES};
pub use trace::{IoOp, Trace, TraceEvent, TraceStats};
