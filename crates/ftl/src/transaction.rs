//! Flash transactions: the unit of work the FTL submits to the flash array.

use venice_nand::PhysicalPageAddr;

/// Identifier of a host I/O request (assigned by the host interface layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// Identifier of a flash transaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// What a transaction does and on whose behalf.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Page read for a host request.
    UserRead,
    /// Page program for a host request.
    UserWrite,
    /// Page read issued by the garbage collector (valid-page migration).
    GcRead,
    /// Page program issued by the garbage collector.
    GcWrite,
    /// Block erase issued by the garbage collector.
    GcErase,
    /// Page read issued by the wear leveler.
    WearRead,
    /// Page program issued by the wear leveler.
    WearWrite,
    /// Block erase issued by the wear leveler.
    WearErase,
    /// Mapping-table read (cached-mapping-table miss).
    MapRead,
    /// Mapping-table write-back.
    MapWrite,
    /// Survivor-page read issued by the redundancy rebuild engine
    /// (reconstructing a dead chip's page from its parity group). Lowest
    /// dispatch priority: the TSU serves these only when a chip has no
    /// other queued work.
    RebuildRead,
    /// Remapped program of a reconstructed page issued by the rebuild
    /// engine. Rides the normal write queue — NAND program-order rules
    /// bind it to its allocation like every other program.
    RebuildWrite,
}

impl TxnKind {
    /// True for reads of any origin (read-priority scheduling classes).
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            TxnKind::UserRead
                | TxnKind::GcRead
                | TxnKind::WearRead
                | TxnKind::MapRead
                | TxnKind::RebuildRead
        )
    }

    /// True for programs of any origin.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            TxnKind::UserWrite
                | TxnKind::GcWrite
                | TxnKind::WearWrite
                | TxnKind::MapWrite
                | TxnKind::RebuildWrite
        )
    }

    /// True for erases.
    pub fn is_erase(&self) -> bool {
        matches!(self, TxnKind::GcErase | TxnKind::WearErase)
    }

    /// True when the transaction serves internal maintenance rather than a
    /// host request.
    pub fn is_background(&self) -> bool {
        !matches!(self, TxnKind::UserRead | TxnKind::UserWrite)
    }
}

/// One flash transaction: a page-granularity operation bound to a physical
/// location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Unique id.
    pub id: TxnId,
    /// Operation class.
    pub kind: TxnKind,
    /// Target physical page (for erases: any page in the victim block).
    pub target: PhysicalPageAddr,
    /// Logical page, when the transaction maps to one.
    pub lpa: Option<u64>,
    /// Host request this transaction belongs to, if any.
    pub request: Option<RequestId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification_is_partitioned() {
        use TxnKind::*;
        for k in [
            UserRead, UserWrite, GcRead, GcWrite, GcErase, WearRead, WearWrite, WearErase,
            MapRead, MapWrite, RebuildRead, RebuildWrite,
        ] {
            let classes =
                u8::from(k.is_read()) + u8::from(k.is_write()) + u8::from(k.is_erase());
            assert_eq!(classes, 1, "{k:?} must be exactly one class");
        }
        assert!(!UserRead.is_background());
        assert!(!UserWrite.is_background());
        assert!(GcRead.is_background());
        assert!(MapWrite.is_background());
        assert!(RebuildRead.is_background());
        assert!(RebuildWrite.is_background());
    }
}
