//! Global physical page addressing over the whole flash array.

use venice_nand::{ChipGeometry, ChipId, PageAddr, PhysicalPageAddr};

/// Geometry of the whole flash array: `chips` identical chips.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArrayGeometry {
    /// Number of flash chips.
    pub chips: u16,
    /// Per-chip geometry.
    pub chip: ChipGeometry,
}

impl ArrayGeometry {
    /// Creates an array geometry.
    pub fn new(chips: u16, chip: ChipGeometry) -> Self {
        ArrayGeometry { chips, chip }
    }

    /// Total physical pages in the array.
    pub fn total_pages(&self) -> u64 {
        u64::from(self.chips) * self.chip.pages_per_chip()
    }

    /// Total planes in the array.
    pub fn total_planes(&self) -> u32 {
        u32::from(self.chips) * self.chip.planes_per_chip()
    }

    /// Total blocks in the array.
    pub fn total_blocks(&self) -> u64 {
        u64::from(self.total_planes()) * u64::from(self.chip.blocks_per_plane)
    }

    /// Packs a physical page address into a dense global index.
    pub fn pack(&self, p: PhysicalPageAddr) -> Gppa {
        debug_assert!(p.chip.0 < self.chips);
        Gppa(u64::from(p.chip.0) * self.chip.pages_per_chip() + self.chip.page_index(p.addr))
    }

    /// Unpacks a dense global index into a physical page address.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn unpack(&self, g: Gppa) -> PhysicalPageAddr {
        assert!(g.0 < self.total_pages(), "gppa out of range");
        let chip = ChipId((g.0 / self.chip.pages_per_chip()) as u16);
        let addr = self.chip.page_from_index(g.0 % self.chip.pages_per_chip());
        PhysicalPageAddr { chip, addr }
    }

    /// Dense plane index of a physical page (used by per-plane allocators).
    pub fn plane_index(&self, p: PhysicalPageAddr) -> usize {
        (u32::from(p.chip.0) * self.chip.planes_per_chip()
            + p.addr.die * self.chip.planes_per_die
            + p.addr.plane) as usize
    }

    /// Reconstructs `(chip, die, plane)` from a dense plane index.
    pub fn plane_location(&self, plane_idx: usize) -> (ChipId, u32, u32) {
        let ppc = self.chip.planes_per_chip() as usize;
        let chip = ChipId((plane_idx / ppc) as u16);
        let within = (plane_idx % ppc) as u32;
        (
            chip,
            within / self.chip.planes_per_die,
            within % self.chip.planes_per_die,
        )
    }

    /// The physical page at `(plane_idx, block, page)`.
    pub fn page_at(&self, plane_idx: usize, block: u32, page: u32) -> PhysicalPageAddr {
        let (chip, die, plane) = self.plane_location(plane_idx);
        PhysicalPageAddr {
            chip,
            addr: PageAddr {
                die,
                plane,
                block,
                page,
            },
        }
    }
}

/// A packed global physical page address ("global PPA").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gppa(pub u64);

impl std::fmt::Display for Gppa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gppa:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ArrayGeometry {
        ArrayGeometry::new(4, ChipGeometry::z_nand_small())
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let g = geom();
        for idx in (0..g.total_pages()).step_by(7) {
            let p = g.unpack(Gppa(idx));
            assert_eq!(g.pack(p), Gppa(idx));
        }
    }

    #[test]
    fn plane_index_roundtrip() {
        let g = geom();
        for plane_idx in 0..g.total_planes() as usize {
            let p = g.page_at(plane_idx, 1, 2);
            assert_eq!(g.plane_index(p), plane_idx);
            assert_eq!(p.addr.block, 1);
            assert_eq!(p.addr.page, 2);
        }
    }

    #[test]
    fn totals_are_consistent() {
        let g = geom();
        assert_eq!(
            g.total_pages(),
            g.total_blocks() * u64::from(g.chip.pages_per_block)
        );
        assert_eq!(g.total_planes(), 4 * 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unpack_rejects_out_of_range() {
        let g = geom();
        g.unpack(Gppa(g.total_pages()));
    }
}
