//! Flash translation layer for the Venice SSD reproduction.
//!
//! Implements the four FTL responsibilities the paper describes in §2.2:
//!
//! 1. **Logical-to-physical mapping** with out-of-place writes
//!    ([`PageMap`], [`Ftl::allocate_write`]),
//! 2. **Garbage collection** with greedy least-valid victim selection
//!    ([`Ftl::start_gc`], [`MigrationJob`]),
//! 3. **Wear leveling** via static cold-block migration
//!    ([`Ftl::check_wear_leveling`]),
//! 4. **Mapping caching** in controller DRAM ([`MappingCache`]).
//!
//! Physical pages are allocated with dynamic channel-way-die-plane striping
//! so consecutive writes spread across the whole array — the allocation
//! scheme the paper's baseline (MQSim) uses to maximize internal
//! parallelism. The [`TransactionScheduler`] provides MQSim-style per-chip
//! queues with read priority.
//!
//! The FTL is deliberately time-free: it is a deterministic state machine
//! that the SSD core (crate `venice-ssd`) drives, converting the returned
//! physical locations into timed flash transactions over the interconnect.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cache;
#[allow(clippy::module_inception)]
mod ftl;
mod mapping;
mod transaction;
mod tsu;

pub use addr::{ArrayGeometry, Gppa};
pub use cache::{CacheStats, MappingCache};
pub use ftl::{Ftl, FtlConfig, FtlError, FtlStats, MigrationJob};
pub use mapping::PageMap;
pub use transaction::{RequestId, Transaction, TxnId, TxnKind};
pub use tsu::TransactionScheduler;
