//! Cached mapping table (CMT): the DRAM-resident LRU cache of mapping-table
//! translation pages, in the style of DFTL (the paper's §2.2 notes the FTL
//! caches the L2P table in the SSD's DRAM).

use std::collections::HashMap;

/// Statistics of the mapping cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (requiring a mapping-table flash read).
    pub misses: u64,
    /// Evictions of dirty translation pages (requiring a write-back).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (1.0 when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU cache of mapping-table translation pages.
///
/// Each cached unit is a *translation page* covering
/// `entries_per_page` consecutive logical pages. A lookup misses when the
/// covering translation page is absent; the caller then issues a `MapRead`
/// flash transaction and calls [`MappingCache::fill`]. Updates mark the
/// translation page dirty; evicting a dirty page reports that a `MapWrite`
/// is needed.
///
/// # Example
///
/// ```
/// use venice_ftl::MappingCache;
/// let mut c = MappingCache::new(2, 512);
/// assert!(!c.lookup(0));        // cold miss on translation page 0
/// c.fill(0);
/// assert!(c.lookup(511));       // same translation page: hit
/// assert!(!c.lookup(512));      // next translation page: miss
/// ```
#[derive(Clone, Debug)]
pub struct MappingCache {
    capacity: usize,
    entries_per_page: u64,
    /// translation-page id → (last-use stamp, dirty)
    resident: HashMap<u64, (u64, bool)>,
    clock: u64,
    stats: CacheStats,
}

impl MappingCache {
    /// Creates a cache holding up to `capacity` translation pages, each
    /// covering `entries_per_page` logical pages.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(capacity: usize, entries_per_page: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(entries_per_page > 0, "entries per page must be positive");
        MappingCache {
            capacity,
            entries_per_page,
            resident: HashMap::with_capacity(capacity),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// A cache sized to cover the whole logical space (no misses after
    /// warm-up; the default for the paper-scale experiments, which assume a
    /// fully cached mapping table).
    pub fn covering(logical_pages: u64, entries_per_page: u64) -> Self {
        let pages = logical_pages.div_ceil(entries_per_page).max(1);
        Self::new(pages as usize, entries_per_page)
    }

    /// Translation page covering `lpa`.
    pub fn translation_page(&self, lpa: u64) -> u64 {
        lpa / self.entries_per_page
    }

    /// Number of resident translation pages.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Checks whether the translation page covering `lpa` is resident,
    /// updating recency and hit/miss statistics.
    pub fn lookup(&mut self, lpa: u64) -> bool {
        let tp = self.translation_page(lpa);
        self.clock += 1;
        match self.resident.get_mut(&tp) {
            Some((stamp, _)) => {
                *stamp = self.clock;
                self.stats.hits += 1;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Inserts the translation page covering `lpa` (after a `MapRead`
    /// completes). Returns the id of a dirty translation page that must be
    /// written back, if the insertion evicted one.
    pub fn fill(&mut self, lpa: u64) -> Option<u64> {
        let tp = self.translation_page(lpa);
        self.clock += 1;
        let mut writeback = None;
        if !self.resident.contains_key(&tp) && self.resident.len() >= self.capacity {
            // Evict the least recently used resident page.
            let (&victim, &(_, dirty)) = self
                .resident
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .expect("cache non-empty at capacity");
            self.resident.remove(&victim);
            if dirty {
                self.stats.dirty_evictions += 1;
                writeback = Some(victim);
            }
        }
        self.resident.entry(tp).or_insert((self.clock, false)).0 = self.clock;
        writeback
    }

    /// Marks the translation page covering `lpa` dirty (after a mapping
    /// update). No-op if it is not resident.
    pub fn mark_dirty(&mut self, lpa: u64) {
        let tp = self.translation_page(lpa);
        if let Some((_, dirty)) = self.resident.get_mut(&tp) {
            *dirty = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = MappingCache::new(2, 10);
        c.fill(0); // tp 0
        c.fill(10); // tp 1
        assert!(c.lookup(5)); // touch tp 0 → tp 1 is now LRU
        c.fill(20); // tp 2 evicts tp 1
        assert!(c.lookup(0));
        assert!(!c.lookup(10), "tp 1 must have been evicted");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = MappingCache::new(1, 10);
        c.fill(0);
        c.mark_dirty(3);
        let wb = c.fill(10); // evicts dirty tp 0
        assert_eq!(wb, Some(0));
        assert_eq!(c.stats().dirty_evictions, 1);
        // Clean eviction reports nothing.
        let wb = c.fill(20);
        assert_eq!(wb, None);
    }

    #[test]
    fn covering_cache_never_misses_after_warmup() {
        let mut c = MappingCache::covering(1000, 128);
        for lpa in 0..1000 {
            if !c.lookup(lpa) {
                c.fill(lpa);
            }
        }
        let misses_after_warmup = {
            let before = c.stats().misses;
            for lpa in 0..1000 {
                assert!(c.lookup(lpa));
            }
            c.stats().misses - before
        };
        assert_eq!(misses_after_warmup, 0);
        assert!(c.stats().hit_ratio() > 0.9);
    }

    #[test]
    fn hit_ratio_of_idle_cache_is_one() {
        let c = MappingCache::new(4, 4);
        assert_eq!(c.stats().hit_ratio(), 1.0);
        assert!(c.is_empty());
    }

    #[test]
    fn mark_dirty_nonresident_is_noop() {
        let mut c = MappingCache::new(1, 4);
        c.mark_dirty(0);
        assert!(c.is_empty());
    }
}
