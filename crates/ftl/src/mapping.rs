//! Page-level logical-to-physical mapping table.

use crate::Gppa;

const UNMAPPED: u64 = u64::MAX;

/// The L2P table: a dense array over the logical page space.
///
/// Real controllers keep this table in DRAM (cached via the CMT, see
/// [`crate::MappingCache`]); the simulator keeps it fully resident and
/// charges DRAM-access latency at the SSD level.
///
/// # Example
///
/// ```
/// use venice_ftl::{Gppa, PageMap};
/// let mut m = PageMap::new(100);
/// assert_eq!(m.translate(5), None);
/// assert_eq!(m.update(5, Gppa(42)), None);
/// assert_eq!(m.translate(5), Some(Gppa(42)));
/// assert_eq!(m.update(5, Gppa(77)), Some(Gppa(42))); // old page invalidated
/// ```
#[derive(Clone, Debug)]
pub struct PageMap {
    entries: Vec<u64>,
    mapped: u64,
}

impl PageMap {
    /// Creates an unmapped table covering `logical_pages` pages.
    pub fn new(logical_pages: u64) -> Self {
        PageMap {
            entries: vec![UNMAPPED; logical_pages as usize],
            mapped: 0,
        }
    }

    /// Number of logical pages the table covers.
    pub fn logical_pages(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Number of currently mapped logical pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Looks up the physical page of `lpa`, or `None` if never written.
    ///
    /// # Panics
    ///
    /// Panics if `lpa` is outside the logical space.
    pub fn translate(&self, lpa: u64) -> Option<Gppa> {
        let e = self.entries[lpa as usize];
        (e != UNMAPPED).then_some(Gppa(e))
    }

    /// Points `lpa` at a new physical page, returning the previous physical
    /// page (now invalid) if there was one — the out-of-place write step of
    /// §2.2.
    ///
    /// # Panics
    ///
    /// Panics if `lpa` is outside the logical space.
    pub fn update(&mut self, lpa: u64, gppa: Gppa) -> Option<Gppa> {
        debug_assert_ne!(gppa.0, UNMAPPED);
        let slot = &mut self.entries[lpa as usize];
        let old = *slot;
        *slot = gppa.0;
        if old == UNMAPPED {
            self.mapped += 1;
            None
        } else {
            Some(Gppa(old))
        }
    }

    /// Removes the mapping of `lpa` (e.g. TRIM), returning the old physical
    /// page if there was one.
    pub fn unmap(&mut self, lpa: u64) -> Option<Gppa> {
        let slot = &mut self.entries[lpa as usize];
        let old = *slot;
        *slot = UNMAPPED;
        if old == UNMAPPED {
            None
        } else {
            self.mapped -= 1;
            Some(Gppa(old))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_is_unmapped() {
        let m = PageMap::new(10);
        for lpa in 0..10 {
            assert_eq!(m.translate(lpa), None);
        }
        assert_eq!(m.mapped_pages(), 0);
        assert_eq!(m.logical_pages(), 10);
    }

    #[test]
    fn update_tracks_mapped_count() {
        let mut m = PageMap::new(4);
        assert_eq!(m.update(0, Gppa(1)), None);
        assert_eq!(m.update(1, Gppa(2)), None);
        assert_eq!(m.mapped_pages(), 2);
        // Overwrite does not change the count but reports the stale page.
        assert_eq!(m.update(0, Gppa(9)), Some(Gppa(1)));
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn unmap_roundtrip() {
        let mut m = PageMap::new(4);
        m.update(2, Gppa(5));
        assert_eq!(m.unmap(2), Some(Gppa(5)));
        assert_eq!(m.unmap(2), None);
        assert_eq!(m.translate(2), None);
        assert_eq!(m.mapped_pages(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_lpa_panics() {
        let m = PageMap::new(4);
        m.translate(4);
    }
}
