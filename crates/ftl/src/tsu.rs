//! Transaction scheduling unit (TSU): per-chip queues with read priority.
//!
//! MQSim's TSU keeps separate read/write/erase queues per chip and serves
//! reads first (reads are latency-critical; the paper's §3.1 notes path
//! conflicts hurt reads the most). Writes and erases to the same plane must
//! additionally issue in FIFO order to respect NAND program-order rules, so
//! only the *head* write of a chip's write queue is eligible for dispatch.
//!
//! Every queued transaction carries its enqueue timestamp, and the TSU
//! exposes the age of each chip's oldest entry
//! ([`TransactionScheduler::oldest_enqueue`]) so dispatch policies can
//! prioritize starving chips instead of treating all queued work alike.
//!
//! Rebuild survivor reads ([`crate::TxnKind::RebuildRead`]) form a fourth,
//! *lowest-priority* class: a chip serves them only when it has no other
//! queued work, so background reconstruction traffic never delays
//! foreground reads, programs, or erases at the TSU. Rebuild *writes* ride
//! the normal write queue — NAND program-order rules bind each program to
//! its allocation order within the block, rebuild or not.

use std::collections::VecDeque;

use venice_sim::{DenseBitSet, SimTime};

use crate::{Transaction, TxnKind};

/// One queued transaction plus the time it entered the TSU.
#[derive(Clone, Copy, Debug)]
struct Queued {
    txn: Transaction,
    at: SimTime,
}

/// Per-chip transaction queues with read priority.
#[derive(Clone, Debug)]
pub struct ChipQueues {
    reads: VecDeque<Queued>,
    writes: VecDeque<Queued>,
    erases: VecDeque<Queued>,
    /// Rebuild survivor reads: served only when every other class is empty.
    rebuilds: VecDeque<Queued>,
}

impl ChipQueues {
    fn new() -> Self {
        ChipQueues {
            reads: VecDeque::new(),
            writes: VecDeque::new(),
            erases: VecDeque::new(),
            rebuilds: VecDeque::new(),
        }
    }

    fn len(&self) -> usize {
        self.reads.len() + self.writes.len() + self.erases.len() + self.rebuilds.len()
    }

    /// Earliest enqueue time across the class queues. Fronts are the
    /// oldest entry of each class, so the minimum over fronts is the oldest
    /// entry on the chip.
    fn oldest(&self) -> Option<SimTime> {
        [&self.reads, &self.writes, &self.erases, &self.rebuilds]
            .into_iter()
            .filter_map(|q| q.front().map(|e| e.at))
            .min()
    }
}

/// The transaction scheduling unit over all chips.
///
/// # Example
///
/// ```
/// use venice_ftl::{Transaction, TransactionScheduler, TxnId, TxnKind};
/// use venice_nand::{ChipId, PageAddr, PhysicalPageAddr};
/// use venice_sim::SimTime;
///
/// let mut tsu = TransactionScheduler::new(4);
/// let target = PhysicalPageAddr { chip: ChipId(2), addr: PageAddr::default() };
/// tsu.enqueue(Transaction {
///     id: TxnId(1), kind: TxnKind::UserRead, target, lpa: Some(0), request: None,
/// }, SimTime::from_nanos(7));
/// assert_eq!(tsu.pending(), 1);
/// assert_eq!(tsu.oldest_enqueue(2), Some(SimTime::from_nanos(7)));
/// let next = tsu.peek(2).unwrap();
/// assert_eq!(next.id, TxnId(1));
/// tsu.pop(2);
/// assert_eq!(tsu.pending(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct TransactionScheduler {
    chips: Vec<ChipQueues>,
    pending: usize,
    /// Chips with at least one queued transaction, maintained incrementally
    /// at enqueue/pop so the dispatcher's busy-chip collection costs
    /// O(words + busy) instead of a linear scan over every chip.
    busy_set: DenseBitSet,
}

impl TransactionScheduler {
    /// Creates a scheduler for `chips` flash chips.
    pub fn new(chips: usize) -> Self {
        TransactionScheduler {
            chips: (0..chips).map(|_| ChipQueues::new()).collect(),
            pending: 0,
            busy_set: DenseBitSet::with_capacity(chips),
        }
    }

    /// Number of chips covered.
    pub fn chip_count(&self) -> usize {
        self.chips.len()
    }

    /// Total queued transactions.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Queued transactions for one chip.
    pub fn pending_for(&self, chip: u16) -> usize {
        self.chips[usize::from(chip)].len()
    }

    /// True when nothing is queued anywhere.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Enqueues a transaction on its target chip's class queue, stamped
    /// with the current simulation time `now`.
    pub fn enqueue(&mut self, txn: Transaction, now: SimTime) {
        let chip = usize::from(txn.target.chip.0);
        let q = &mut self.chips[chip];
        let e = Queued { txn, at: now };
        if txn.kind == TxnKind::RebuildRead {
            q.rebuilds.push_back(e);
        } else if txn.kind.is_read() {
            q.reads.push_back(e);
        } else if txn.kind.is_write() {
            q.writes.push_back(e);
        } else {
            q.erases.push_back(e);
        }
        self.pending += 1;
        self.busy_set.insert(chip);
    }

    /// The next transaction that would dispatch on `chip`: the oldest read
    /// if any (read priority), else the head write, else the head erase,
    /// and only on an otherwise idle chip the head rebuild read.
    pub fn peek(&self, chip: u16) -> Option<&Transaction> {
        let q = &self.chips[usize::from(chip)];
        q.reads
            .front()
            .or_else(|| q.writes.front())
            .or_else(|| q.erases.front())
            .or_else(|| q.rebuilds.front())
            .map(|e| &e.txn)
    }

    /// Removes and returns what [`TransactionScheduler::peek`] returned.
    pub fn pop(&mut self, chip: u16) -> Option<Transaction> {
        let q = &mut self.chips[usize::from(chip)];
        let t = q
            .reads
            .pop_front()
            .or_else(|| q.writes.pop_front())
            .or_else(|| q.erases.pop_front())
            .or_else(|| q.rebuilds.pop_front());
        if t.is_some() {
            self.pending -= 1;
            if q.len() == 0 {
                self.busy_set.remove(usize::from(chip));
            }
        }
        t.map(|e| e.txn)
    }

    /// Removes *every* transaction queued on `chip` into `out` (cleared
    /// first), in dispatch order (reads, then writes, then erases, then
    /// rebuild reads, FIFO within each class), clearing the chip's busy
    /// bit.
    ///
    /// This is the chip-death path: the engine completes the drained
    /// transactions with error status instead of dispatching them. The
    /// caller must re-invoke after processing — failing a migration step
    /// can requeue follow-on work onto the same dead chip.
    pub fn drain_chip_into(&mut self, chip: u16, out: &mut Vec<Transaction>) {
        out.clear();
        let q = &mut self.chips[usize::from(chip)];
        out.extend(
            q.reads
                .drain(..)
                .chain(q.writes.drain(..))
                .chain(q.erases.drain(..))
                .chain(q.rebuilds.drain(..))
                .map(|e| e.txn),
        );
        self.pending -= out.len();
        if !out.is_empty() {
            self.busy_set.remove(usize::from(chip));
        }
    }

    /// Enqueue time of the oldest transaction queued on `chip`, if any —
    /// the chip's *queue age* anchor. Dispatch policies compare this
    /// against the current time to find starving chips.
    pub fn oldest_enqueue(&self, chip: u16) -> Option<SimTime> {
        self.chips[usize::from(chip)].oldest()
    }

    /// Age in nanoseconds of `chip`'s oldest queued transaction at `now`
    /// (zero for an empty chip queue).
    pub fn queue_age_ns(&self, chip: u16, now: SimTime) -> u64 {
        self.oldest_enqueue(chip)
            .map_or(0, |at| now.saturating_since(at).as_nanos())
    }

    /// Iterates over chips that have at least one queued transaction, by
    /// linearly scanning every chip's queues (O(chips)). Retained as the
    /// reference for [`TransactionScheduler::busy_chips_into`] — the
    /// full-scan dispatcher and the randomized cross-checks use it.
    pub fn busy_chips(&self) -> impl Iterator<Item = u16> + '_ {
        self.chips
            .iter()
            .enumerate()
            .filter(|(_, q)| q.len() > 0)
            .map(|(i, _)| i as u16)
    }

    /// Collects the busy chips into `out` (cleared first), in ascending
    /// chip-id order, without allocating in steady state — the dispatcher's
    /// per-round scratch buffer keeps its capacity across calls.
    ///
    /// Backed by the incrementally maintained busy set, so the cost is
    /// O(words + busy chips) rather than a scan of every chip; the output
    /// is bit-identical to collecting [`TransactionScheduler::busy_chips`].
    pub fn busy_chips_into(&self, out: &mut Vec<u16>) {
        self.busy_set.collect_into_from(0, out);
    }

    /// [`TransactionScheduler::busy_chips_into`] via the linear reference
    /// scan (O(chips)). The retained full-scan dispatcher uses this so the
    /// incremental engine can be cross-checked against an implementation
    /// that shares none of its ready-set bookkeeping.
    pub fn busy_chips_scan_into(&self, out: &mut Vec<u16>) {
        out.clear();
        if self.pending == 0 {
            return;
        }
        out.extend(self.busy_chips());
    }

    /// Requeues a transaction at the *front* of its class queue with its
    /// original enqueue time `at` (used when a dispatch attempt fails to
    /// acquire a path and must be retried without losing its position or
    /// its age).
    pub fn requeue_front(&mut self, txn: Transaction, at: SimTime) {
        let chip = usize::from(txn.target.chip.0);
        let q = &mut self.chips[chip];
        let e = Queued { txn, at };
        if txn.kind == TxnKind::RebuildRead {
            q.rebuilds.push_front(e);
        } else if txn.kind.is_read() {
            q.reads.push_front(e);
        } else if txn.kind.is_write() {
            q.writes.push_front(e);
        } else {
            q.erases.push_front(e);
        }
        self.pending += 1;
        self.busy_set.insert(chip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxnId;
    use venice_nand::{ChipId, PageAddr, PhysicalPageAddr};

    fn txn(id: u64, kind: TxnKind, chip: u16) -> Transaction {
        Transaction {
            id: TxnId(id),
            kind,
            target: PhysicalPageAddr {
                chip: ChipId(chip),
                addr: PageAddr::default(),
            },
            lpa: None,
            request: None,
        }
    }

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn reads_have_priority_over_writes() {
        let mut tsu = TransactionScheduler::new(1);
        tsu.enqueue(txn(1, TxnKind::UserWrite, 0), at(0));
        tsu.enqueue(txn(2, TxnKind::UserRead, 0), at(0));
        tsu.enqueue(txn(3, TxnKind::GcErase, 0), at(0));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(2));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(1));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(3));
        assert!(tsu.pop(0).is_none());
    }

    #[test]
    fn drain_chip_empties_one_chip_and_clears_its_busy_bit() {
        let mut tsu = TransactionScheduler::new(2);
        tsu.enqueue(txn(1, TxnKind::UserWrite, 0), at(0));
        tsu.enqueue(txn(2, TxnKind::UserRead, 0), at(1));
        tsu.enqueue(txn(3, TxnKind::GcErase, 0), at(2));
        tsu.enqueue(txn(4, TxnKind::UserRead, 1), at(3));
        let mut out = Vec::new();
        tsu.drain_chip_into(0, &mut out);
        // Dispatch order: reads, writes, erases.
        assert_eq!(
            out.iter().map(|t| t.id).collect::<Vec<_>>(),
            [TxnId(2), TxnId(1), TxnId(3)]
        );
        assert_eq!(tsu.pending_for(0), 0);
        assert_eq!(tsu.pending(), 1);
        let mut busy = Vec::new();
        tsu.busy_chips_into(&mut busy);
        assert_eq!(busy, [1]);
        // Draining an already-empty chip is a no-op.
        tsu.drain_chip_into(0, &mut out);
        assert!(out.is_empty());
        assert_eq!(tsu.pending(), 1);
    }

    #[test]
    fn rebuild_reads_are_the_lowest_priority_class() {
        let mut tsu = TransactionScheduler::new(1);
        tsu.enqueue(txn(1, TxnKind::RebuildRead, 0), at(0));
        tsu.enqueue(txn(2, TxnKind::UserWrite, 0), at(1));
        tsu.enqueue(txn(3, TxnKind::GcErase, 0), at(2));
        tsu.enqueue(txn(4, TxnKind::UserRead, 0), at(3));
        tsu.enqueue(txn(5, TxnKind::RebuildWrite, 0), at(4));
        // Reads, then writes (rebuild writes ride the write FIFO), then
        // erases — the rebuild read dispatches only once the chip idles.
        assert_eq!(tsu.peek(0).unwrap().id, TxnId(4));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(4));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(2));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(5));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(3));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(1));
        assert!(tsu.pop(0).is_none());
        // requeue_front puts a failed rebuild read back at its class head
        // with its age intact, and the drain path empties the class too.
        tsu.enqueue(txn(6, TxnKind::RebuildRead, 0), at(6));
        let head = tsu.pop(0).unwrap();
        tsu.requeue_front(head, at(6));
        assert_eq!(tsu.oldest_enqueue(0), Some(at(6)));
        tsu.enqueue(txn(7, TxnKind::UserRead, 0), at(7));
        let mut out = Vec::new();
        tsu.drain_chip_into(0, &mut out);
        assert_eq!(
            out.iter().map(|t| t.id).collect::<Vec<_>>(),
            [TxnId(7), TxnId(6)],
            "drain yields rebuild reads last"
        );
        assert!(tsu.is_empty());
    }

    #[test]
    fn fifo_within_class() {
        let mut tsu = TransactionScheduler::new(1);
        for id in 0..5 {
            tsu.enqueue(txn(id, TxnKind::UserWrite, 0), at(id));
        }
        for id in 0..5 {
            assert_eq!(tsu.pop(0).unwrap().id, TxnId(id));
        }
    }

    #[test]
    fn requeue_front_preserves_position_and_age() {
        let mut tsu = TransactionScheduler::new(1);
        tsu.enqueue(txn(1, TxnKind::UserRead, 0), at(10));
        tsu.enqueue(txn(2, TxnKind::UserRead, 0), at(20));
        let head = tsu.pop(0).unwrap();
        tsu.requeue_front(head, at(10));
        assert_eq!(tsu.oldest_enqueue(0), Some(at(10)));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(1));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(2));
    }

    #[test]
    fn busy_chips_lists_nonempty_queues() {
        let mut tsu = TransactionScheduler::new(4);
        tsu.enqueue(txn(1, TxnKind::UserRead, 1), at(0));
        tsu.enqueue(txn(2, TxnKind::UserWrite, 3), at(0));
        let busy: Vec<u16> = tsu.busy_chips().collect();
        assert_eq!(busy, vec![1, 3]);
        assert_eq!(tsu.pending_for(1), 1);
        assert_eq!(tsu.pending_for(0), 0);
        assert_eq!(tsu.pending(), 2);
        assert!(!tsu.is_empty());
        assert_eq!(tsu.chip_count(), 4);
    }

    #[test]
    fn incremental_busy_set_matches_the_linear_scan() {
        // Drive a little enqueue/pop churn and require the set-backed
        // collection to stay bit-identical to the O(chips) reference scan.
        let mut tsu = TransactionScheduler::new(16);
        let check = |tsu: &TransactionScheduler| {
            let (mut fast, mut slow) = (Vec::new(), Vec::new());
            tsu.busy_chips_into(&mut fast);
            tsu.busy_chips_scan_into(&mut slow);
            assert_eq!(fast, slow);
        };
        for (id, chip) in [(1u64, 9u16), (2, 3), (3, 9), (4, 15), (5, 0)] {
            tsu.enqueue(txn(id, TxnKind::UserRead, chip), at(id));
            check(&tsu);
        }
        for chip in [9, 9, 0, 3, 15] {
            tsu.pop(chip);
            check(&tsu);
        }
        assert!(tsu.is_empty());
        let mut out = vec![7u16];
        tsu.busy_chips_into(&mut out);
        assert!(out.is_empty(), "collection clears the buffer");
        // requeue_front re-marks an emptied chip as busy.
        let head = txn(9, TxnKind::UserWrite, 5);
        tsu.requeue_front(head, at(1));
        check(&tsu);
    }

    #[test]
    fn queue_age_tracks_the_oldest_entry_across_classes() {
        let mut tsu = TransactionScheduler::new(2);
        assert_eq!(tsu.oldest_enqueue(0), None);
        assert_eq!(tsu.queue_age_ns(0, at(500)), 0);
        // A write lands first, then a read: reads pop first, but the *age*
        // anchor stays the older write until it drains.
        tsu.enqueue(txn(1, TxnKind::UserWrite, 0), at(100));
        tsu.enqueue(txn(2, TxnKind::UserRead, 0), at(300));
        assert_eq!(tsu.oldest_enqueue(0), Some(at(100)));
        assert_eq!(tsu.queue_age_ns(0, at(500)), 400);
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(2));
        assert_eq!(tsu.oldest_enqueue(0), Some(at(100)));
        assert_eq!(tsu.pop(0).unwrap().id, TxnId(1));
        assert_eq!(tsu.oldest_enqueue(0), None);
    }
}
