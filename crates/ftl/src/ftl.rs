//! The flash translation layer: out-of-place writes, dynamic page
//! allocation, garbage collection, and wear leveling (§2.2 of the paper).

use venice_nand::PhysicalPageAddr;

use crate::{ArrayGeometry, Gppa, PageMap};

/// FTL configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FtlConfig {
    /// Physical array geometry.
    pub array: ArrayGeometry,
    /// Logical pages exposed to the host (must leave over-provisioning
    /// headroom below the physical capacity).
    pub logical_pages: u64,
    /// Garbage collection triggers when a plane's free-block count drops
    /// below this threshold.
    pub gc_threshold_blocks: u32,
    /// Wear leveling triggers when the spread between the most- and
    /// least-erased blocks exceeds this many erase cycles.
    pub wear_delta_threshold: u32,
}

impl FtlConfig {
    /// A config exposing `utilization` (0..1) of the physical capacity as
    /// logical space, with default GC/wear thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization < 1`.
    pub fn with_utilization(array: ArrayGeometry, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization < 1.0,
            "utilization must leave over-provisioning headroom"
        );
        let logical_pages = (array.total_pages() as f64 * utilization) as u64;
        let spare_blocks_per_plane = (array.total_pages() - logical_pages)
            / u64::from(array.chip.pages_per_block)
            / u64::from(array.total_planes());
        FtlConfig {
            array,
            logical_pages,
            // Keep the trigger comfortably inside the over-provisioned
            // headroom even for scaled-down test geometries.
            gc_threshold_blocks: (spare_blocks_per_plane / 2).clamp(1, 4) as u32,
            wear_delta_threshold: 16,
        }
    }
}

/// Why the FTL could not complete an operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FtlError {
    /// No plane has a free page left (over-provisioning exhausted and GC
    /// cannot keep up — a configuration error in practice).
    OutOfSpace,
    /// Logical page outside the exposed logical space.
    LpaOutOfRange(u64),
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::OutOfSpace => f.write_str("flash array out of free pages"),
            FtlError::LpaOutOfRange(lpa) => write!(f, "logical page {lpa} out of range"),
        }
    }
}

impl std::error::Error for FtlError {}

/// A valid-page migration job (garbage collection or wear leveling): read
/// each `(lpa, old_gppa)` pair, relocate it, then erase the victim block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationJob {
    /// Dense plane index of the victim block.
    pub plane: usize,
    /// Victim block index within the plane.
    pub block: u32,
    /// Valid pages to move before the erase.
    pub pages: Vec<(u64, Gppa)>,
}

/// Cumulative FTL statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FtlStats {
    /// Host page writes.
    pub user_writes: u64,
    /// Host page reads (translated).
    pub user_reads: u64,
    /// Pages relocated by garbage collection.
    pub gc_relocations: u64,
    /// Blocks erased by garbage collection.
    pub gc_erases: u64,
    /// Pages relocated by wear leveling.
    pub wear_relocations: u64,
    /// Blocks erased by wear leveling.
    pub wear_erases: u64,
    /// Relocations skipped because the host overwrote the page mid-flight.
    pub stale_relocations: u64,
}

impl FtlStats {
    /// Write amplification: physical programs per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.user_writes == 0 {
            1.0
        } else {
            (self.user_writes + self.gc_relocations + self.wear_relocations) as f64
                / self.user_writes as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Block {
    /// Valid-page bitmap (lazily allocated on first program).
    valid: Option<Box<[u64]>>,
    /// LPA stored in each written page (lazily allocated).
    lpas: Option<Box<[u32]>>,
    valid_count: u32,
    written: u32,
    erase_count: u32,
    under_migration: bool,
}

impl Block {
    const fn new() -> Self {
        Block {
            valid: None,
            lpas: None,
            valid_count: 0,
            written: 0,
            erase_count: 0,
            under_migration: false,
        }
    }

    fn set_valid(&mut self, page: u32, pages_per_block: u32, lpa: u64) {
        let words = (pages_per_block as usize).div_ceil(64);
        let valid = self
            .valid
            .get_or_insert_with(|| vec![0u64; words].into_boxed_slice());
        valid[(page / 64) as usize] |= 1 << (page % 64);
        let lpas = self
            .lpas
            .get_or_insert_with(|| vec![u32::MAX; pages_per_block as usize].into_boxed_slice());
        lpas[page as usize] = lpa as u32;
        self.valid_count += 1;
    }

    fn clear_valid(&mut self, page: u32) {
        if let Some(valid) = &mut self.valid {
            let word = &mut valid[(page / 64) as usize];
            let bit = 1u64 << (page % 64);
            debug_assert!(*word & bit != 0, "double invalidation");
            *word &= !bit;
            self.valid_count -= 1;
        }
    }

    fn is_valid(&self, page: u32) -> bool {
        self.valid
            .as_ref()
            .is_some_and(|v| v[(page / 64) as usize] & (1 << (page % 64)) != 0)
    }

    fn lpa_of(&self, page: u32) -> u64 {
        u64::from(
            self.lpas.as_ref().expect("written block has lpas")[page as usize],
        )
    }
}

#[derive(Clone, Debug)]
struct Plane {
    free_blocks: Vec<u32>,
    /// Current write block, or `None` when the plane is exhausted.
    active: Option<u32>,
    next_page: u32,
}

/// Who an allocation is for: host writes must leave the last free block per
/// plane to garbage collection (forward-progress reserve).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Reserve {
    User,
    Gc,
}

/// The flash translation layer.
///
/// The FTL is a deterministic, time-free state machine: the SSD core calls
/// into it to translate reads, allocate writes, and drive garbage
/// collection / wear leveling, and turns the returned physical locations
/// into timed flash transactions.
///
/// # Example
///
/// ```
/// use venice_ftl::{ArrayGeometry, Ftl, FtlConfig};
/// use venice_nand::ChipGeometry;
///
/// let array = ArrayGeometry::new(4, ChipGeometry::z_nand_small());
/// let mut ftl = Ftl::new(FtlConfig::with_utilization(array, 0.5));
/// let gppa = ftl.allocate_write(7).unwrap();
/// assert_eq!(ftl.translate(7), Some(gppa));
/// ```
#[derive(Clone, Debug)]
pub struct Ftl {
    config: FtlConfig,
    map: PageMap,
    planes: Vec<Plane>,
    /// Indexed `plane * blocks_per_plane + block`.
    blocks: Vec<Block>,
    /// Round-robin cursor for channel-way-die-plane striping.
    plane_cursor: usize,
    stats: FtlStats,
}

impl Ftl {
    /// Creates an FTL over an erased flash array.
    ///
    /// # Panics
    ///
    /// Panics if the logical space does not leave at least
    /// `2 × gc_threshold_blocks` spare blocks per plane of over-provisioning.
    pub fn new(config: FtlConfig) -> Self {
        let planes = config.array.total_planes() as usize;
        let bpp = config.array.chip.blocks_per_plane;
        let spare = config.array.total_pages() - config.logical_pages;
        let spare_blocks_per_plane =
            spare / u64::from(config.array.chip.pages_per_block) / planes as u64;
        assert!(
            spare_blocks_per_plane >= 2 * u64::from(config.gc_threshold_blocks),
            "need over-provisioning: {spare_blocks_per_plane} spare blocks/plane \
             vs GC threshold {}",
            config.gc_threshold_blocks
        );
        Ftl {
            map: PageMap::new(config.logical_pages),
            planes: (0..planes)
                .map(|_| Plane {
                    // Block 0 becomes the first active block; the rest are free.
                    free_blocks: (1..bpp).rev().collect(),
                    active: Some(0),
                    next_page: 0,
                })
                .collect(),
            blocks: vec![Block::new(); planes * bpp as usize],
            plane_cursor: 0,
            config,
            stats: FtlStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Logical pages exposed to the host.
    pub fn logical_pages(&self) -> u64 {
        self.config.logical_pages
    }

    fn block_index(&self, plane: usize, block: u32) -> usize {
        plane * self.config.array.chip.blocks_per_plane as usize + block as usize
    }

    fn block_of(&self, g: Gppa) -> (usize, u32, u32) {
        let p = self.config.array.unpack(g);
        let plane = self.config.array.plane_index(p);
        (plane, p.addr.block, p.addr.page)
    }

    /// Translates a host read. Returns the physical page, or `None` for a
    /// never-written page (served from the controller without flash access).
    ///
    /// # Errors
    ///
    /// [`FtlError::LpaOutOfRange`] if `lpa` exceeds the logical space.
    pub fn translate_read(&mut self, lpa: u64) -> Result<Option<Gppa>, FtlError> {
        if lpa >= self.config.logical_pages {
            return Err(FtlError::LpaOutOfRange(lpa));
        }
        self.stats.user_reads += 1;
        Ok(self.map.translate(lpa))
    }

    /// Pure translation without statistics (diagnostics and tests).
    pub fn translate(&self, lpa: u64) -> Option<Gppa> {
        self.map.translate(lpa)
    }

    /// Allocates a physical page for a host write of `lpa`, invalidating any
    /// previous location (out-of-place write), and returns the new page.
    ///
    /// Host writes never consume a plane's *last* free block — that block is
    /// reserved for garbage-collection relocations, so GC can always make
    /// forward progress. When every plane is down to its reserve, the error
    /// is [`FtlError::OutOfSpace`] and the caller must throttle host writes
    /// until an erase completes (what real controllers do under sustained
    /// random-write overload).
    ///
    /// # Errors
    ///
    /// [`FtlError::LpaOutOfRange`] or [`FtlError::OutOfSpace`].
    pub fn allocate_write(&mut self, lpa: u64) -> Result<Gppa, FtlError> {
        if lpa >= self.config.logical_pages {
            return Err(FtlError::LpaOutOfRange(lpa));
        }
        let gppa = self.allocate_round_robin(lpa, Reserve::User)?;
        self.commit_mapping(lpa, gppa);
        self.stats.user_writes += 1;
        Ok(gppa)
    }

    /// Picks the next plane in channel-way-die-plane round-robin order and
    /// allocates its next free page. This dynamic striping spreads
    /// consecutive writes across chips — the allocation strategy MQSim's
    /// baseline uses to maximize array parallelism.
    fn allocate_round_robin(&mut self, lpa: u64, reserve: Reserve) -> Result<Gppa, FtlError> {
        let n = self.planes.len();
        for probe in 0..n {
            let plane_idx = (self.plane_cursor + probe) % n;
            if let Some(g) = self.try_allocate_in_plane(plane_idx, lpa, reserve) {
                self.plane_cursor = (plane_idx + 1) % n;
                return Ok(g);
            }
        }
        Err(FtlError::OutOfSpace)
    }

    /// Allocates the next page of `plane_idx`'s active block, advancing the
    /// write point and rotating in a fresh block when the active one fills.
    fn try_allocate_in_plane(
        &mut self,
        plane_idx: usize,
        lpa: u64,
        reserve: Reserve,
    ) -> Option<Gppa> {
        let pages_per_block = self.config.array.chip.pages_per_block;
        let plane = &mut self.planes[plane_idx];
        let active = plane.active?;
        // Host writes leave the last free block for GC relocations.
        if reserve == Reserve::User && plane.free_blocks.is_empty() {
            return None;
        }
        let page = plane.next_page;
        debug_assert!(page < pages_per_block);
        plane.next_page += 1;
        if plane.next_page == pages_per_block {
            plane.active = plane.free_blocks.pop();
            plane.next_page = 0;
        }
        let bi = self.block_index(plane_idx, active);
        self.blocks[bi].set_valid(page, pages_per_block, lpa);
        self.blocks[bi].written += 1;
        let addr = self.config.array.page_at(plane_idx, active, page);
        Some(self.config.array.pack(addr))
    }

    /// Updates the map and invalidates the stale copy, if any.
    fn commit_mapping(&mut self, lpa: u64, gppa: Gppa) {
        if let Some(old) = self.map.update(lpa, gppa) {
            let (plane, block, page) = self.block_of(old);
            let bi = self.block_index(plane, block);
            self.blocks[bi].clear_valid(page);
        }
    }

    /// Number of free blocks in a plane (counting a fresh active block).
    pub fn free_blocks(&self, plane_idx: usize) -> u32 {
        self.planes[plane_idx].free_blocks.len() as u32
    }

    /// True when `plane_idx` is below the GC threshold.
    pub fn needs_gc(&self, plane_idx: usize) -> bool {
        self.free_blocks(plane_idx) < self.config.gc_threshold_blocks
    }

    /// Planes currently in need of garbage collection.
    pub fn planes_needing_gc(&self) -> Vec<usize> {
        (0..self.planes.len()).filter(|&p| self.needs_gc(p)).collect()
    }

    /// Starts garbage collection on a plane: picks the fully written,
    /// non-active, least-valid block (greedy victim selection, §2.2) and
    /// returns the migration job, or `None` if no block qualifies.
    pub fn start_gc(&mut self, plane_idx: usize) -> Option<MigrationJob> {
        let bpp = self.config.array.chip.blocks_per_plane;
        let pages_per_block = self.config.array.chip.pages_per_block;
        let active = self.planes[plane_idx].active;
        let victim = (0..bpp)
            .filter(|&b| Some(b) != active)
            .map(|b| (b, &self.blocks[self.block_index(plane_idx, b)]))
            .filter(|(_, blk)| blk.written == pages_per_block && !blk.under_migration)
            .min_by_key(|(b, blk)| (blk.valid_count, *b))
            .map(|(b, _)| b)?;
        Some(self.begin_migration(plane_idx, victim))
    }

    fn begin_migration(&mut self, plane_idx: usize, victim: u32) -> MigrationJob {
        let pages_per_block = self.config.array.chip.pages_per_block;
        let bi = self.block_index(plane_idx, victim);
        self.blocks[bi].under_migration = true;
        let mut pages = Vec::with_capacity(self.blocks[bi].valid_count as usize);
        for page in 0..pages_per_block {
            if self.blocks[bi].is_valid(page) {
                let lpa = self.blocks[bi].lpa_of(page);
                let addr = self.config.array.page_at(plane_idx, victim, page);
                pages.push((lpa, self.config.array.pack(addr)));
            }
        }
        MigrationJob {
            plane: plane_idx,
            block: victim,
            pages,
        }
    }

    /// Relocates one page of a migration job: if `lpa` still maps to
    /// `old`, allocates a new page *in the same plane* (keeping GC traffic
    /// local, as MQSim does), remaps, and returns the destination for the
    /// program transaction. Returns `None` when the host overwrote the page
    /// mid-migration (the copy is stale and skipped).
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] if the plane (and every other plane) is full.
    pub fn relocate(&mut self, lpa: u64, old: Gppa, wear: bool) -> Result<Option<Gppa>, FtlError> {
        if self.map.translate(lpa) != Some(old) {
            self.stats.stale_relocations += 1;
            return Ok(None);
        }
        let (plane_idx, _, _) = self.block_of(old);
        // Prefer the victim's plane; fall back to round-robin if it is full.
        let gppa = match self.try_allocate_in_plane(plane_idx, lpa, Reserve::Gc) {
            Some(g) => g,
            None => self.allocate_round_robin(lpa, Reserve::Gc)?,
        };
        self.commit_mapping(lpa, gppa);
        if wear {
            self.stats.wear_relocations += 1;
        } else {
            self.stats.gc_relocations += 1;
        }
        Ok(Some(gppa))
    }

    /// Completes a migration job after its erase transaction finishes:
    /// resets the victim block and returns it to the plane's free pool.
    ///
    /// # Panics
    ///
    /// Panics if the block still holds valid pages (relocation incomplete).
    pub fn finish_erase(&mut self, job: &MigrationJob, wear: bool) {
        let bi = self.block_index(job.plane, job.block);
        let block = &mut self.blocks[bi];
        assert_eq!(
            block.valid_count, 0,
            "erasing a block with valid pages would lose data"
        );
        assert!(block.under_migration, "erase without migration start");
        block.valid = None;
        block.lpas = None;
        block.written = 0;
        block.erase_count += 1;
        block.under_migration = false;
        let plane = &mut self.planes[job.plane];
        if plane.active.is_none() {
            plane.active = Some(job.block);
            plane.next_page = 0;
        } else {
            plane.free_blocks.push(job.block);
        }
        if wear {
            self.stats.wear_erases += 1;
        } else {
            self.stats.gc_erases += 1;
        }
    }

    /// Erase-count spread across all blocks `(min, max)`.
    pub fn erase_count_spread(&self) -> (u32, u32) {
        let mut min = u32::MAX;
        let mut max = 0;
        for b in &self.blocks {
            min = min.min(b.erase_count);
            max = max.max(b.erase_count);
        }
        (min.min(max), max)
    }

    /// Static wear leveling check: when the erase-count spread exceeds the
    /// threshold, returns a migration job for the *coldest* fully written
    /// block, whose static data is then moved onto a hotter free block.
    pub fn check_wear_leveling(&mut self) -> Option<MigrationJob> {
        let (min, max) = self.erase_count_spread();
        if max - min <= self.config.wear_delta_threshold {
            return None;
        }
        let pages_per_block = self.config.array.chip.pages_per_block;
        let bpp = self.config.array.chip.blocks_per_plane as usize;
        // Find the coldest eligible block.
        let mut best: Option<(u32, usize, u32)> = None;
        for (idx, b) in self.blocks.iter().enumerate() {
            if b.written != pages_per_block || b.under_migration {
                continue;
            }
            let plane = idx / bpp;
            let block = (idx % bpp) as u32;
            if self.planes[plane].active == Some(block) {
                continue;
            }
            if best.is_none_or(|(e, _, _)| b.erase_count < e) {
                best = Some((b.erase_count, plane, block));
            }
        }
        let (_, plane, block) = best?;
        Some(self.begin_migration(plane, block))
    }

    /// Preconditions the SSD to steady state: maps every logical page to a
    /// striped physical page (no simulated time passes). Returns the
    /// per-block written-page counts the caller must mirror into the chip
    /// models' write pointers.
    pub fn precondition(&mut self) -> Vec<(PhysicalPageAddr, u32)> {
        assert_eq!(self.map.mapped_pages(), 0, "precondition on a used FTL");
        for lpa in 0..self.config.logical_pages {
            let g = self
                .allocate_round_robin(lpa, Reserve::User)
                .expect("logical space fits under physical capacity");
            self.commit_mapping(lpa, g);
        }
        let bpp = self.config.array.chip.blocks_per_plane as usize;
        let mut out = Vec::new();
        for (idx, b) in self.blocks.iter().enumerate() {
            if b.written > 0 {
                let plane = idx / bpp;
                let block = (idx % bpp) as u32;
                let addr = self.config.array.page_at(plane, block, 0);
                out.push((addr, b.written));
            }
        }
        out
    }

    /// Consistency check used by tests and debug assertions: per-block valid
    /// counts must match the mapping table exactly.
    pub fn check_invariants(&self) {
        let mut valid_from_blocks: u64 = 0;
        for b in &self.blocks {
            valid_from_blocks += u64::from(b.valid_count);
            assert!(b.valid_count <= b.written, "valid pages exceed written");
        }
        assert_eq!(
            valid_from_blocks,
            self.map.mapped_pages(),
            "block valid counts must equal mapped logical pages"
        );
        // Every mapping must point at a page its block marks valid.
        for lpa in 0..self.config.logical_pages {
            if let Some(g) = self.map.translate(lpa) {
                let (plane, block, page) = self.block_of(g);
                let b = &self.blocks[self.block_index(plane, block)];
                assert!(b.is_valid(page), "lpa {lpa} maps to invalid page");
                assert_eq!(b.lpa_of(page), lpa, "reverse map mismatch");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_nand::ChipGeometry;

    fn small_ftl() -> Ftl {
        let array = ArrayGeometry::new(4, ChipGeometry::z_nand_small());
        Ftl::new(FtlConfig {
            array,
            logical_pages: array.total_pages() / 2,
            gc_threshold_blocks: 2,
            wear_delta_threshold: 4,
        })
    }

    #[test]
    fn writes_stripe_across_planes() {
        let mut ftl = small_ftl();
        let mut chips = std::collections::HashSet::new();
        for lpa in 0..8 {
            let g = ftl.allocate_write(lpa).unwrap();
            chips.insert(ftl.config().array.unpack(g).chip);
        }
        // 8 consecutive writes over 4 chips × 2 planes must touch all chips.
        assert_eq!(chips.len(), 4);
        ftl.check_invariants();
    }

    #[test]
    fn overwrite_invalidates_old_copy() {
        let mut ftl = small_ftl();
        let g1 = ftl.allocate_write(0).unwrap();
        let g2 = ftl.allocate_write(0).unwrap();
        assert_ne!(g1, g2, "out-of-place write must move the page");
        assert_eq!(ftl.translate(0), Some(g2));
        ftl.check_invariants();
    }

    #[test]
    fn read_of_unwritten_page_is_none() {
        let mut ftl = small_ftl();
        assert_eq!(ftl.translate_read(3).unwrap(), None);
        assert_eq!(
            ftl.translate_read(u64::MAX).unwrap_err(),
            FtlError::LpaOutOfRange(u64::MAX)
        );
    }

    #[test]
    fn gc_reclaims_invalidated_space() {
        let mut ftl = small_ftl();
        // Hammer a small working set so blocks fill with stale pages.
        let mut guard = 0;
        while ftl.planes_needing_gc().is_empty() {
            for lpa in 0..32 {
                ftl.allocate_write(lpa).unwrap();
            }
            guard += 1;
            assert!(guard < 10_000, "GC never became necessary");
        }
        let plane = ftl.planes_needing_gc()[0];
        let free_before = ftl.free_blocks(plane);
        let job = ftl.start_gc(plane).expect("a victim exists");
        // Greedy victim selection: hammering a tiny working set leaves
        // mostly-invalid blocks, so the victim should have few valid pages.
        assert!(job.pages.len() < ftl.config().array.chip.pages_per_block as usize);
        for &(lpa, old) in &job.pages {
            ftl.relocate(lpa, old, false).unwrap();
        }
        ftl.finish_erase(&job, false);
        assert_eq!(ftl.free_blocks(plane), free_before + 1);
        assert!(ftl.stats().gc_erases == 1);
        ftl.check_invariants();
    }

    #[test]
    fn stale_relocation_is_skipped() {
        let mut ftl = small_ftl();
        let old = ftl.allocate_write(5).unwrap();
        // Host overwrites lpa 5 before GC migrates it.
        ftl.allocate_write(5).unwrap();
        assert_eq!(ftl.relocate(5, old, false).unwrap(), None);
        assert_eq!(ftl.stats().stale_relocations, 1);
    }

    #[test]
    fn write_amplification_grows_with_gc() {
        let mut ftl = small_ftl();
        for round in 0..200 {
            for lpa in 0..16 {
                ftl.allocate_write(lpa).unwrap();
            }
            for plane in ftl.planes_needing_gc() {
                if let Some(job) = ftl.start_gc(plane) {
                    for &(lpa, old) in &job.pages {
                        ftl.relocate(lpa, old, false).unwrap();
                    }
                    ftl.finish_erase(&job, false);
                }
            }
            let _ = round;
        }
        assert!(ftl.stats().write_amplification() >= 1.0);
        assert!(ftl.stats().gc_erases > 0);
        ftl.check_invariants();
    }

    #[test]
    fn precondition_maps_everything() {
        let mut ftl = small_ftl();
        let blocks = ftl.precondition();
        assert!(!blocks.is_empty());
        for lpa in 0..ftl.logical_pages() {
            assert!(ftl.translate(lpa).is_some());
        }
        ftl.check_invariants();
        // Written counts must cover exactly the logical pages.
        let total: u64 = blocks.iter().map(|&(_, w)| u64::from(w)).sum();
        assert_eq!(total, ftl.logical_pages());
    }

    #[test]
    fn wear_leveling_triggers_on_spread() {
        let mut ftl = small_ftl();
        ftl.precondition();
        assert!(ftl.check_wear_leveling().is_none(), "fresh array is level");
        // Artificially age one plane with GC cycles.
        let mut guard = 0;
        loop {
            for lpa in 0..8 {
                ftl.allocate_write(lpa).unwrap();
            }
            let mut erased = false;
            for plane in ftl.planes_needing_gc() {
                if let Some(job) = ftl.start_gc(plane) {
                    for &(lpa, old) in &job.pages {
                        ftl.relocate(lpa, old, false).unwrap();
                    }
                    ftl.finish_erase(&job, false);
                    erased = true;
                }
            }
            let (min, max) = ftl.erase_count_spread();
            if max - min > ftl.config().wear_delta_threshold {
                break;
            }
            guard += 1;
            assert!(guard < 100_000, "wear spread never exceeded threshold");
            let _ = erased;
        }
        let job = ftl.check_wear_leveling().expect("spread exceeded threshold");
        for &(lpa, old) in &job.pages {
            ftl.relocate(lpa, old, true).unwrap();
        }
        ftl.finish_erase(&job, true);
        assert_eq!(ftl.stats().wear_erases, 1);
        ftl.check_invariants();
    }

    #[test]
    fn out_of_space_is_reported() {
        let array = ArrayGeometry::new(1, ChipGeometry::z_nand_small());
        let mut ftl = Ftl::new(FtlConfig {
            array,
            logical_pages: array.total_pages() / 2,
            gc_threshold_blocks: 1,
            wear_delta_threshold: 1000,
        });
        // Fill without ever garbage collecting: eventually out of space.
        let mut result = Ok(Gppa(0));
        'outer: for _ in 0..10_000 {
            for lpa in 0..ftl.logical_pages() {
                result = ftl.allocate_write(lpa);
                if result.is_err() {
                    break 'outer;
                }
            }
        }
        assert_eq!(result.unwrap_err(), FtlError::OutOfSpace);
    }
}
