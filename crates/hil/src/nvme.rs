//! NVMe-style multi-queue submission/completion model with tenant-aware
//! weighted-round-robin arbitration.

use std::collections::VecDeque;

use venice_sim::{SimDuration, SimTime};
use venice_workloads::IoOp;

use crate::tenant::TenantSet;

/// One host I/O request as seen at the device boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostRequest {
    /// Host-assigned request id (unique per run).
    pub id: u64,
    /// Tenant (namespace) the request belongs to; index into the host
    /// interface's [`TenantSet`]. `0` on the single-tenant default path.
    pub tenant: u8,
    /// Arrival time at the submission queue doorbell.
    pub arrival: SimTime,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset into the logical space.
    pub offset: u64,
    /// Size in bytes.
    pub bytes: u32,
    /// Optional completion deadline (absolute simulation time), stamped at
    /// admission by the host resilience policy: past it, the device aborts
    /// the command at the next command boundary. `None` — the default-path
    /// value — means the request never times out.
    pub deadline: Option<SimTime>,
}

/// HIL configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HilConfig {
    /// Number of submission queues exposed to the host (NVMe exposes many;
    /// 8 matches the multi-queue setups MQSim models).
    pub queues: usize,
    /// Per-queue depth; a full queue back-pressures the submitter.
    pub queue_depth: usize,
    /// Firmware latency to fetch and decode one submission entry.
    pub submission_latency: SimDuration,
    /// Firmware latency to post one completion entry.
    pub completion_latency: SimDuration,
}

impl Default for HilConfig {
    fn default() -> Self {
        HilConfig {
            queues: 8,
            queue_depth: 8,
            submission_latency: SimDuration::from_nanos(500),
            completion_latency: SimDuration::from_nanos(300),
        }
    }
}

/// Cumulative HIL statistics (global, and one per tenant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HilStats {
    /// Requests accepted into a submission queue.
    pub submitted: u64,
    /// Requests rejected because their queue was full (host back-pressure).
    pub backpressured: u64,
    /// Requests fetched by the FTL.
    pub fetched: u64,
    /// Completions posted.
    pub completed: u64,
}

/// The host interface: multiple submission queues partitioned across
/// tenants (namespaces), arbitrated by weighted round-robin with
/// per-tenant in-flight caps.
///
/// Tenant `t` of `T` owns the contiguous queue range `[t·Q/T, (t+1)·Q/T)`;
/// within a range, fetches rotate round-robin exactly like the pre-tenancy
/// arbiter. Across ranges, the arbiter grants each tenant `weight` fetch
/// credits per cycle and skips tenants at their queue-depth cap. With one
/// tenant (the default) every step degenerates to the original global
/// round-robin — the golden-hash tests pin this bit-for-bit.
///
/// The HIL is a passive data structure — the SSD core decides *when* to
/// fetch (charging [`HilConfig::submission_latency`]) and when to complete.
#[derive(Clone, Debug)]
pub struct HostInterface {
    config: HilConfig,
    tenants: TenantSet,
    queues: Vec<VecDeque<HostRequest>>,
    /// Slots held per queue: a slot is occupied from submission until the
    /// matching completion is posted (the host sees queue_depth outstanding
    /// commands at most — how trace replay against a real device behaves).
    occupied: Vec<usize>,
    /// Queue and tenant each in-flight request was fetched from.
    inflight_queue: std::collections::HashMap<u64, (usize, u8)>,
    /// Queue-range starts: tenant `t` owns `[range_start[t], range_start[t+1])`.
    range_start: Vec<usize>,
    /// Per-tenant round-robin cursor (absolute queue index in the tenant's
    /// range).
    cursor: Vec<usize>,
    /// WRR arbitration: the tenant currently holding credits.
    active: usize,
    /// Fetch credits the active tenant has left this cycle.
    credits: u32,
    /// In-flight (fetched, not completed) requests per tenant.
    tenant_inflight: Vec<u64>,
    stats: HilStats,
    tenant_stats: Vec<HilStats>,
    inflight: u64,
    last_completion: SimTime,
    /// Background (rebuild) lane: queued page tags awaiting a rebuild slot.
    /// A separate lane, not a tenant — it holds no submission-queue slots,
    /// consumes no WRR credits, and is invisible to every foreground
    /// counter, so arming it cannot perturb foreground arbitration.
    background: VecDeque<u64>,
    /// Background fetches outstanding (fetched, not completed).
    background_inflight: usize,
    /// In-flight ceiling of the background lane; at the ceiling
    /// [`HostInterface::fetch_background`] defers (returns `None`, keeps
    /// the entry queued) rather than dropping.
    background_cap: usize,
}

impl HostInterface {
    /// Creates an idle single-tenant host interface (the pre-tenancy
    /// behavior; equivalent to `with_tenants(config, TenantSet::single())`).
    ///
    /// # Panics
    ///
    /// Panics if `queues` or `queue_depth` is zero.
    pub fn new(config: HilConfig) -> Self {
        HostInterface::with_tenants(config, TenantSet::single())
    }

    /// Creates an idle host interface with the given tenant set. Queues are
    /// partitioned into contiguous per-tenant ranges.
    ///
    /// # Panics
    ///
    /// Panics if `queues` or `queue_depth` is zero, or if there are more
    /// tenants than queues (every tenant needs at least one queue).
    pub fn with_tenants(config: HilConfig, tenants: TenantSet) -> Self {
        assert!(config.queues > 0, "need at least one submission queue");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let t = tenants.len();
        assert!(
            t <= config.queues,
            "{t} tenants need {t} queues but only {} are configured",
            config.queues
        );
        let range_start: Vec<usize> = (0..=t).map(|i| i * config.queues / t).collect();
        let cursor = range_start[..t].to_vec();
        let credits = tenants.specs()[0].weight;
        HostInterface {
            queues: (0..config.queues).map(|_| VecDeque::new()).collect(),
            occupied: vec![0; config.queues],
            inflight_queue: std::collections::HashMap::new(),
            range_start,
            cursor,
            active: 0,
            credits,
            tenant_inflight: vec![0; t],
            tenant_stats: vec![HilStats::default(); t],
            tenants,
            config,
            stats: HilStats::default(),
            inflight: 0,
            last_completion: SimTime::ZERO,
            background: VecDeque::new(),
            background_inflight: 0,
            background_cap: usize::MAX,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HilConfig {
        &self.config
    }

    /// The tenant set the queues are partitioned across.
    pub fn tenants(&self) -> &TenantSet {
        &self.tenants
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> HilStats {
        self.stats
    }

    /// Per-tenant statistics so far, indexed by tenant id.
    pub fn tenant_stats(&self) -> &[HilStats] {
        &self.tenant_stats
    }

    /// Requests fetched but not yet completed.
    pub fn inflight(&self) -> u64 {
        self.inflight
    }

    /// In-flight requests of one tenant (what the queue-depth cap bounds).
    pub fn tenant_inflight(&self, tenant: usize) -> u64 {
        self.tenant_inflight[tenant]
    }

    /// Total entries currently queued (not yet fetched).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Time of the most recent completion (simulation end marker).
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }

    /// The contiguous queue range `[start, end)` owned by a tenant.
    pub fn queue_range(&self, tenant: usize) -> (usize, usize) {
        (self.range_start[tenant], self.range_start[tenant + 1])
    }

    /// Submission-side occupancy of a tenant's namespace: slots held across
    /// its queue range, from submission until the matching completion posts
    /// (queued *and* in-flight requests). This is what the overload
    /// admission policy's watermarks are measured against.
    pub fn tenant_outstanding(&self, tenant: usize) -> usize {
        let (start, end) = self.queue_range(tenant);
        self.occupied[start..end].iter().sum()
    }

    /// Total submission capacity of a tenant's namespace: its queue range
    /// length × the per-queue depth (the denominator of the admission
    /// watermark percentages).
    pub fn namespace_capacity(&self, tenant: usize) -> usize {
        let (start, end) = self.queue_range(tenant);
        (end - start) * self.config.queue_depth
    }

    /// Which submission queue a request lands in: its tenant picks the
    /// namespace's queue range; hashing the offset picks the queue within
    /// the range (NVMe hosts typically bind queues to submitting cores —
    /// this models multiple submitters over partitioned data). With one
    /// tenant the range is every queue and the mapping is the pre-tenancy
    /// global hash.
    pub fn queue_of(&self, req: &HostRequest) -> usize {
        let (start, end) = self.queue_range(usize::from(req.tenant));
        start + (req.offset / (1 << 21)) as usize % (end - start)
    }

    /// Places a request into its submission queue. Returns `false` (and
    /// counts back-pressure against the request's tenant) when the queue
    /// has no free slot — slots stay occupied until the matching completion
    /// posts.
    pub fn submit(&mut self, req: HostRequest) -> bool {
        let t = usize::from(req.tenant);
        let q = self.queue_of(&req);
        if self.occupied[q] >= self.config.queue_depth {
            self.stats.backpressured += 1;
            self.tenant_stats[t].backpressured += 1;
            return false;
        }
        self.occupied[q] += 1;
        self.queues[q].push_back(req);
        self.stats.submitted += 1;
        self.tenant_stats[t].submitted += 1;
        true
    }

    /// Round-robin fetch within one tenant's queue range; respects the
    /// tenant's queue-depth cap.
    fn fetch_from(&mut self, tenant: usize) -> Option<HostRequest> {
        let cap = self.tenants.specs()[tenant].qd_cap;
        if cap != 0 && self.tenant_inflight[tenant] >= u64::from(cap) {
            return None;
        }
        let (start, end) = self.queue_range(tenant);
        let len = end - start;
        for probe in 0..len {
            let q = start + (self.cursor[tenant] - start + probe) % len;
            if let Some(req) = self.queues[q].pop_front() {
                self.cursor[tenant] = start + (q - start + 1) % len;
                self.stats.fetched += 1;
                self.tenant_stats[tenant].fetched += 1;
                self.inflight += 1;
                self.tenant_inflight[tenant] += 1;
                self.inflight_queue.insert(req.id, (q, req.tenant));
                return Some(req);
            }
        }
        None
    }

    /// Weighted-round-robin fetch of the next submission entry, if any.
    ///
    /// The active tenant spends one credit per fetch; when its credits run
    /// out — or it has nothing fetchable (empty range or at its cap) — the
    /// arbiter moves to the next tenant with a fresh `weight` grant. Every
    /// tenant is offered at most once per call, so `None` means no tenant
    /// has a fetchable entry (all queues empty, or every queued tenant is
    /// at its cap).
    pub fn fetch(&mut self) -> Option<HostRequest> {
        let t = self.tenants.len();
        for _ in 0..t {
            if self.credits == 0 {
                self.active = (self.active + 1) % t;
                self.credits = self.tenants.specs()[self.active].weight;
            }
            if let Some(req) = self.fetch_from(self.active) {
                self.credits -= 1;
                return Some(req);
            }
            // Nothing fetchable: forfeit the rest of this tenant's cycle.
            self.credits = 0;
        }
        None
    }

    /// Bounds the background lane's in-flight fetches (rebuild jobs the
    /// engine may hold open at once). Entries beyond the cap stay queued.
    pub fn set_background_cap(&mut self, cap: usize) {
        self.background_cap = cap;
    }

    /// Queues one background (rebuild) work tag. Never rejects: the lane
    /// holds no submission-queue slots, so there is no occupancy to
    /// back-pressure against — pacing happens at fetch time.
    pub fn submit_background(&mut self, tag: u64) {
        self.background.push_back(tag);
    }

    /// Fetches the next background tag, strictly after foreground
    /// arbitration (callers invoke this only when they choose to spend a
    /// rebuild token) and only below the lane's in-flight cap. At the cap
    /// or with nothing queued it returns `None` and the queue is left
    /// intact — a saturated lane defers, it never drops.
    pub fn fetch_background(&mut self) -> Option<u64> {
        if self.background_inflight >= self.background_cap {
            return None;
        }
        let tag = self.background.pop_front()?;
        self.background_inflight += 1;
        Some(tag)
    }

    /// Retires one background fetch, freeing its in-flight slot.
    ///
    /// # Panics
    ///
    /// Panics if no background fetch is outstanding.
    pub fn complete_background(&mut self) {
        assert!(
            self.background_inflight > 0,
            "background completion without in-flight fetch"
        );
        self.background_inflight -= 1;
    }

    /// Background tags queued (not yet fetched).
    pub fn background_queued(&self) -> usize {
        self.background.len()
    }

    /// Background fetches outstanding.
    pub fn background_inflight(&self) -> usize {
        self.background_inflight
    }

    /// Posts a completion for a fetched request, releasing its queue slot
    /// and its tenant's in-flight slot.
    ///
    /// # Panics
    ///
    /// Panics if there are no in-flight requests (double completion).
    pub fn complete(&mut self, id: u64, now: SimTime) {
        assert!(self.inflight > 0, "completion without in-flight request");
        self.inflight -= 1;
        if let Some((q, t)) = self.inflight_queue.remove(&id) {
            debug_assert!(self.occupied[q] > 0);
            self.occupied[q] -= 1;
            let t = usize::from(t);
            debug_assert!(self.tenant_inflight[t] > 0);
            self.tenant_inflight[t] -= 1;
            self.tenant_stats[t].completed += 1;
        }
        self.stats.completed += 1;
        self.last_completion = self.last_completion.max(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantSpec;

    fn req(id: u64, offset: u64) -> HostRequest {
        treq(id, 0, offset)
    }

    fn treq(id: u64, tenant: u8, offset: u64) -> HostRequest {
        HostRequest {
            id,
            tenant,
            arrival: SimTime::ZERO,
            op: IoOp::Read,
            offset,
            bytes: 4096,
            deadline: None,
        }
    }

    #[test]
    fn submit_fetch_complete_roundtrip() {
        let mut hil = HostInterface::new(HilConfig::default());
        assert!(hil.submit(req(1, 0)));
        assert_eq!(hil.queued(), 1);
        let r = hil.fetch().unwrap();
        assert_eq!(r.id, 1);
        assert_eq!(hil.inflight(), 1);
        hil.complete(1, SimTime::from_micros(5));
        assert_eq!(hil.inflight(), 0);
        assert_eq!(hil.last_completion(), SimTime::from_micros(5));
    }

    #[test]
    fn full_queue_backpressures() {
        let mut hil = HostInterface::new(HilConfig {
            queues: 1,
            queue_depth: 2,
            ..HilConfig::default()
        });
        assert!(hil.submit(req(1, 0)));
        assert!(hil.submit(req(2, 0)));
        assert!(!hil.submit(req(3, 0)));
        assert_eq!(hil.stats().backpressured, 1);
    }

    #[test]
    fn round_robin_across_queues() {
        let mut hil = HostInterface::new(HilConfig {
            queues: 4,
            ..HilConfig::default()
        });
        // Spread over 4 different 2 MiB regions → 4 different queues.
        for i in 0..4u64 {
            assert!(hil.submit(req(i, i * (1 << 21))));
        }
        let mut queues_seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let r = hil.fetch().unwrap();
            queues_seen.insert(hil.queue_of(&r));
        }
        assert_eq!(queues_seen.len(), 4, "arbiter must visit all queues");
    }

    #[test]
    fn fetch_from_empty_is_none() {
        let mut hil = HostInterface::new(HilConfig::default());
        assert!(hil.fetch().is_none());
    }

    #[test]
    #[should_panic(expected = "without in-flight")]
    fn double_completion_panics() {
        let mut hil = HostInterface::new(HilConfig::default());
        hil.complete(1, SimTime::ZERO);
    }

    // ------------------------------------------------------------------
    // Tenancy
    // ------------------------------------------------------------------

    fn pair(w_victim: u32, w_aggr: u32, cap_aggr: u32) -> TenantSet {
        TenantSet::custom(
            "test-pair",
            vec![
                TenantSpec {
                    name: "victim",
                    weight: w_victim,
                    qd_cap: 0,
                    deadline: crate::DeadlineClass::Default,
                },
                TenantSpec {
                    name: "aggressor",
                    weight: w_aggr,
                    qd_cap: cap_aggr,
                    deadline: crate::DeadlineClass::Default,
                },
            ],
        )
    }

    #[test]
    fn tenants_partition_queues_contiguously() {
        let hil = HostInterface::with_tenants(HilConfig::default(), pair(1, 1, 0));
        assert_eq!(hil.queue_range(0), (0, 4));
        assert_eq!(hil.queue_range(1), (4, 8));
        // Requests of different tenants at the same offset land in their
        // own namespace's queue range.
        assert_eq!(hil.queue_of(&treq(1, 0, 0)), 0);
        assert_eq!(hil.queue_of(&treq(2, 1, 0)), 4);
        // An uneven split still gives every tenant at least one queue.
        let three = HostInterface::with_tenants(
            HilConfig::default(),
            TenantSet::custom(
                "three",
                (0..3)
                    .map(|_| TenantSpec {
                        name: "t",
                        weight: 1,
                        qd_cap: 0,
                        deadline: crate::DeadlineClass::Default,
                    })
                    .collect(),
            ),
        );
        assert_eq!(three.queue_range(0), (0, 2));
        assert_eq!(three.queue_range(1), (2, 5));
        assert_eq!(three.queue_range(2), (5, 8));
    }

    #[test]
    #[should_panic(expected = "tenants need")]
    fn more_tenants_than_queues_rejected() {
        HostInterface::with_tenants(
            HilConfig {
                queues: 1,
                ..HilConfig::default()
            },
            pair(1, 1, 0),
        );
    }

    /// The single-tenant arbiter must replay the pre-tenancy global
    /// round-robin exactly: same fetch order over an adversarial
    /// multi-queue fill pattern (WRR degenerates to FIFO-per-queue with a
    /// rotating cursor).
    #[test]
    fn single_tenant_degenerates_to_pre_tenancy_round_robin() {
        let cfg = HilConfig::default();
        let mut hil = HostInterface::with_tenants(cfg, TenantSet::single());
        // Interleave submissions across queues 0,2,5 with repeats.
        let offsets: Vec<u64> = [0u64, 2, 5, 0, 2, 0, 7, 5]
            .iter()
            .map(|q| q * (1 << 21))
            .collect();
        for (i, &off) in offsets.iter().enumerate() {
            assert!(hil.submit(req(i as u64, off)));
        }
        // Pre-tenancy reference: cursor walk over all 8 queues.
        let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); 8];
        for (i, &off) in offsets.iter().enumerate() {
            queues[(off >> 21) as usize % 8].push_back(i as u64);
        }
        let mut next_queue = 0usize;
        let mut expected = Vec::new();
        loop {
            let mut got = None;
            for probe in 0..8 {
                let q = (next_queue + probe) % 8;
                if let Some(id) = queues[q].pop_front() {
                    next_queue = (q + 1) % 8;
                    got = Some(id);
                    break;
                }
            }
            match got {
                Some(id) => expected.push(id),
                None => break,
            }
        }
        let mut actual = Vec::new();
        while let Some(r) = hil.fetch() {
            actual.push(r.id);
        }
        assert_eq!(actual, expected, "single-tenant WRR must be the old FIFO order");
    }

    /// Queue-full back-pressure is a retry, not a drop: the same request
    /// submits successfully once a completion frees its queue slot, and
    /// both the global and the tenant's `backpressured` counters record
    /// the rejection.
    #[test]
    fn backpressured_request_is_retried_not_dropped() {
        let mut hil = HostInterface::with_tenants(
            HilConfig {
                queues: 2,
                queue_depth: 1,
                ..HilConfig::default()
            },
            pair(1, 1, 0),
        );
        assert!(hil.submit(treq(1, 0, 0)));
        // Tenant 0's only queue slot is occupied → back-pressure.
        assert!(!hil.submit(treq(2, 0, 0)));
        assert_eq!(hil.stats().backpressured, 1);
        assert_eq!(hil.tenant_stats()[0].backpressured, 1);
        assert_eq!(hil.tenant_stats()[1].backpressured, 0);
        // The other tenant's namespace is unaffected.
        assert!(hil.submit(treq(3, 1, 0)));
        // Complete tenant 0's request; the rejected request now fits.
        let r = hil.fetch().unwrap();
        assert_eq!(r.id, 1);
        hil.complete(1, SimTime::from_micros(1));
        assert!(hil.submit(treq(2, 0, 0)), "slot freed: retry must succeed");
        assert_eq!(hil.stats().submitted, 3);
        assert_eq!(hil.stats().backpressured, 1, "no new back-pressure");
    }

    /// WRR grants fetches proportional to weight over a full cycle when
    /// both tenants have plenty queued.
    #[test]
    fn wrr_visits_tenants_proportional_to_weight() {
        let mut hil = HostInterface::with_tenants(
            HilConfig {
                queues: 2,
                queue_depth: 64,
                ..HilConfig::default()
            },
            pair(3, 1, 0),
        );
        for i in 0..16u64 {
            assert!(hil.submit(treq(i, 0, 0)));
            assert!(hil.submit(treq(100 + i, 1, 0)));
        }
        // Two full WRR cycles = 2 × (3 + 1) fetches.
        let order: Vec<u8> = (0..8).map(|_| hil.fetch().unwrap().tenant).collect();
        assert_eq!(
            order,
            vec![0, 0, 0, 1, 0, 0, 0, 1],
            "weight-3 tenant gets 3 fetches per cycle, weight-1 gets 1"
        );
        let v = hil.tenant_stats()[0].fetched;
        let a = hil.tenant_stats()[1].fetched;
        assert_eq!((v, a), (6, 2));
    }

    /// A tenant at its queue-depth cap is skipped at fetch time — its
    /// requests stay queued (not dropped) — and becomes fetchable again
    /// once a completion frees an in-flight slot.
    #[test]
    fn qd_cap_blocks_fetch_until_a_completion() {
        let mut hil = HostInterface::with_tenants(
            HilConfig {
                queues: 2,
                queue_depth: 8,
                ..HilConfig::default()
            },
            pair(1, 1, 2),
        );
        for i in 0..4u64 {
            assert!(hil.submit(treq(i, 1, 0)));
        }
        // Only the aggressor has work; its cap is 2.
        assert_eq!(hil.fetch().unwrap().id, 0);
        assert_eq!(hil.fetch().unwrap().id, 1);
        assert_eq!(hil.tenant_inflight(1), 2);
        assert!(hil.fetch().is_none(), "at cap: nothing fetchable");
        assert_eq!(hil.queued(), 2, "capped requests stay queued");
        // The victim is unaffected by the aggressor's cap.
        assert!(hil.submit(treq(100, 0, 0)));
        assert_eq!(hil.fetch().unwrap().id, 100);
        // A completion frees one aggressor slot.
        hil.complete(0, SimTime::from_micros(1));
        assert_eq!(hil.tenant_inflight(1), 1);
        assert_eq!(hil.fetch().unwrap().id, 2);
        assert!(hil.fetch().is_none(), "back at cap");
    }

    /// The engine's deferred-fetch re-arm is tenant-agnostic: *any*
    /// completion triggers a fetch retry. This pins the HIL side of that
    /// contract — a completion belonging to a different tenant leaves a
    /// still-capped tenant's work queued (fetch stays `None`, nothing is
    /// dropped), and only a completion of the capped tenant itself re-arms
    /// its fetch.
    #[test]
    fn cross_tenant_completion_rearms_fetch_without_breaking_caps() {
        let mut hil = HostInterface::with_tenants(
            HilConfig {
                queues: 2,
                queue_depth: 8,
                ..HilConfig::default()
            },
            pair(1, 1, 2),
        );
        // Aggressor fills to its cap with two more queued behind.
        for i in 0..4u64 {
            assert!(hil.submit(treq(i, 1, 0)));
        }
        assert_eq!(hil.fetch().unwrap().id, 0);
        assert_eq!(hil.fetch().unwrap().id, 1);
        assert!(hil.fetch().is_none(), "aggressor at cap");
        // One victim request goes in-flight alongside.
        assert!(hil.submit(treq(100, 0, 0)));
        assert_eq!(hil.fetch().unwrap().id, 100);
        assert_eq!(hil.tenant_outstanding(1), 4, "2 in-flight + 2 queued");
        // The *victim's* completion fires the re-armed fetch attempt — it
        // must come back empty (the aggressor is still at its cap) and must
        // not disturb the aggressor's queued entries.
        hil.complete(100, SimTime::from_micros(1));
        assert!(
            hil.fetch().is_none(),
            "a cross-tenant completion must not bypass the cap"
        );
        assert_eq!(hil.queued(), 2, "capped work stays queued");
        assert_eq!(hil.tenant_inflight(1), 2);
        // The aggressor's own completion is what actually frees a slot.
        hil.complete(0, SimTime::from_micros(2));
        assert_eq!(hil.fetch().unwrap().id, 2);
        assert_eq!(hil.tenant_outstanding(1), 3, "2 in-flight + 1 queued");
    }

    /// `tenant_outstanding` counts slots from submission to completion and
    /// `namespace_capacity` is the admission watermark denominator.
    #[test]
    fn outstanding_tracks_submission_to_completion() {
        let mut hil = HostInterface::with_tenants(HilConfig::default(), pair(1, 1, 0));
        assert_eq!(hil.namespace_capacity(0), 4 * 8);
        assert_eq!(hil.namespace_capacity(1), 4 * 8);
        assert_eq!(hil.tenant_outstanding(0), 0);
        for i in 0..3u64 {
            assert!(hil.submit(treq(i, 0, i << 21)));
        }
        assert_eq!(hil.tenant_outstanding(0), 3, "queued counts");
        assert_eq!(hil.tenant_outstanding(1), 0, "neighbor unaffected");
        let fetched = hil.fetch().unwrap();
        assert_eq!(
            hil.tenant_outstanding(0),
            3,
            "fetching does not release the slot"
        );
        hil.complete(fetched.id, SimTime::from_micros(1));
        assert_eq!(hil.tenant_outstanding(0), 2, "completion releases it");
    }

    /// The background (rebuild) lane is strictly lower priority than, and
    /// invisible to, foreground WRR arbitration: arming it never perturbs
    /// the foreground fetch order, never consumes a tenant's queue-depth
    /// cap, and a saturated lane defers fetches rather than dropping them.
    #[test]
    fn background_lane_never_starves_or_perturbs_foreground() {
        let mk = || {
            HostInterface::with_tenants(
                HilConfig {
                    queues: 2,
                    queue_depth: 8,
                    ..HilConfig::default()
                },
                pair(3, 1, 2),
            )
        };
        let (mut with_bg, mut without_bg) = (mk(), mk());
        for i in 0..6u64 {
            assert!(with_bg.submit(treq(i, (i % 2) as u8, 0)));
            assert!(without_bg.submit(treq(i, (i % 2) as u8, 0)));
        }
        // A deep rebuild backlog lands alongside the foreground work…
        for tag in 0..32u64 {
            with_bg.submit_background(tag);
        }
        // …and the foreground WRR order is bit-identical with and without.
        loop {
            let (a, b) = (with_bg.fetch(), without_bg.fetch());
            assert_eq!(a, b, "background lane must not perturb foreground WRR");
            if a.is_none() {
                break;
            }
        }
        // The aggressor (tenant 1, qd_cap 2) is at its cap; a pile of
        // background fetches must not consume its (or anyone's) slots.
        assert_eq!(with_bg.tenant_inflight(1), 2);
        with_bg.set_background_cap(4);
        for _ in 0..4 {
            assert!(with_bg.fetch_background().is_some());
        }
        assert_eq!(with_bg.tenant_inflight(0), 3, "foreground lanes untouched");
        assert_eq!(with_bg.tenant_inflight(1), 2, "caps unaffected by rebuild");
        assert_eq!(with_bg.background_inflight(), 4);
        // Saturated token bucket / cap: defer, don't drop.
        assert!(with_bg.fetch_background().is_none(), "at cap: defer");
        assert_eq!(with_bg.background_queued(), 28, "nothing dropped");
        // Completion frees a slot and the deferred entry fetches in order.
        with_bg.complete_background();
        assert_eq!(with_bg.fetch_background(), Some(4));
        // The background lane never starves outright: even with every
        // foreground queue saturated, its fetches still progress.
        assert!(with_bg.fetch().is_none(), "foreground drained/capped");
        with_bg.complete_background();
        assert!(with_bg.fetch_background().is_some());
    }

    #[test]
    #[should_panic(expected = "background completion without in-flight")]
    fn background_double_completion_panics() {
        let mut hil = HostInterface::new(HilConfig::default());
        hil.complete_background();
    }

    /// Per-tenant counters sum to the global ones across a mixed run.
    #[test]
    fn tenant_stats_sum_to_global() {
        let mut hil = HostInterface::with_tenants(HilConfig::default(), pair(2, 1, 3));
        for i in 0..20u64 {
            let t = (i % 2) as u8;
            hil.submit(treq(i, t, (i / 2) << 21));
        }
        let mut fetched = Vec::new();
        while let Some(r) = hil.fetch() {
            fetched.push(r.id);
        }
        for &id in &fetched {
            hil.complete(id, SimTime::from_micros(id));
        }
        let g = hil.stats();
        let per: Vec<HilStats> = hil.tenant_stats().to_vec();
        assert_eq!(per.iter().map(|s| s.submitted).sum::<u64>(), g.submitted);
        assert_eq!(
            per.iter().map(|s| s.backpressured).sum::<u64>(),
            g.backpressured
        );
        assert_eq!(per.iter().map(|s| s.fetched).sum::<u64>(), g.fetched);
        assert_eq!(per.iter().map(|s| s.completed).sum::<u64>(), g.completed);
    }
}
