//! NVMe-style multi-queue submission/completion model.

use std::collections::VecDeque;

use venice_sim::{SimDuration, SimTime};
use venice_workloads::IoOp;

/// One host I/O request as seen at the device boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostRequest {
    /// Host-assigned request id (unique per run).
    pub id: u64,
    /// Arrival time at the submission queue doorbell.
    pub arrival: SimTime,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset into the logical space.
    pub offset: u64,
    /// Size in bytes.
    pub bytes: u32,
}

/// HIL configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HilConfig {
    /// Number of submission queues exposed to the host (NVMe exposes many;
    /// 8 matches the multi-queue setups MQSim models).
    pub queues: usize,
    /// Per-queue depth; a full queue back-pressures the submitter.
    pub queue_depth: usize,
    /// Firmware latency to fetch and decode one submission entry.
    pub submission_latency: SimDuration,
    /// Firmware latency to post one completion entry.
    pub completion_latency: SimDuration,
}

impl Default for HilConfig {
    fn default() -> Self {
        HilConfig {
            queues: 8,
            queue_depth: 8,
            submission_latency: SimDuration::from_nanos(500),
            completion_latency: SimDuration::from_nanos(300),
        }
    }
}

/// Cumulative HIL statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HilStats {
    /// Requests accepted into a submission queue.
    pub submitted: u64,
    /// Requests rejected because their queue was full (host back-pressure).
    pub backpressured: u64,
    /// Requests fetched by the FTL.
    pub fetched: u64,
    /// Completions posted.
    pub completed: u64,
}

/// The host interface: multiple submission queues with round-robin
/// arbitration and a completion counter.
///
/// The HIL is a passive data structure — the SSD core decides *when* to
/// fetch (charging [`HilConfig::submission_latency`]) and when to complete.
#[derive(Clone, Debug)]
pub struct HostInterface {
    config: HilConfig,
    queues: Vec<VecDeque<HostRequest>>,
    /// Slots held per queue: a slot is occupied from submission until the
    /// matching completion is posted (the host sees queue_depth outstanding
    /// commands at most — how trace replay against a real device behaves).
    occupied: Vec<usize>,
    /// Queue each in-flight request was fetched from.
    inflight_queue: std::collections::HashMap<u64, usize>,
    /// Round-robin arbitration cursor.
    next_queue: usize,
    stats: HilStats,
    inflight: u64,
    last_completion: SimTime,
}

impl HostInterface {
    /// Creates an idle host interface.
    ///
    /// # Panics
    ///
    /// Panics if `queues` or `queue_depth` is zero.
    pub fn new(config: HilConfig) -> Self {
        assert!(config.queues > 0, "need at least one submission queue");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        HostInterface {
            queues: (0..config.queues).map(|_| VecDeque::new()).collect(),
            occupied: vec![0; config.queues],
            inflight_queue: std::collections::HashMap::new(),
            next_queue: 0,
            config,
            stats: HilStats::default(),
            inflight: 0,
            last_completion: SimTime::ZERO,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HilConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> HilStats {
        self.stats
    }

    /// Requests fetched but not yet completed.
    pub fn inflight(&self) -> u64 {
        self.inflight
    }

    /// Total entries currently queued (not yet fetched).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Time of the most recent completion (simulation end marker).
    pub fn last_completion(&self) -> SimTime {
        self.last_completion
    }

    /// Which submission queue a request lands in: NVMe hosts typically bind
    /// queues to submitting cores; hashing the offset models multiple
    /// submitters over partitioned data.
    pub fn queue_of(&self, req: &HostRequest) -> usize {
        (req.offset / (1 << 21)) as usize % self.config.queues
    }

    /// Places a request into its submission queue. Returns `false` (and
    /// counts back-pressure) when the queue has no free slot — slots stay
    /// occupied until the matching completion posts.
    pub fn submit(&mut self, req: HostRequest) -> bool {
        let q = self.queue_of(&req);
        if self.occupied[q] >= self.config.queue_depth {
            self.stats.backpressured += 1;
            return false;
        }
        self.occupied[q] += 1;
        self.queues[q].push_back(req);
        self.stats.submitted += 1;
        true
    }

    /// Round-robin fetch of the next submission entry, if any.
    pub fn fetch(&mut self) -> Option<HostRequest> {
        let n = self.queues.len();
        for probe in 0..n {
            let q = (self.next_queue + probe) % n;
            if let Some(req) = self.queues[q].pop_front() {
                self.next_queue = (q + 1) % n;
                self.stats.fetched += 1;
                self.inflight += 1;
                self.inflight_queue.insert(req.id, q);
                return Some(req);
            }
        }
        None
    }

    /// Posts a completion for a fetched request, releasing its queue slot.
    ///
    /// # Panics
    ///
    /// Panics if there are no in-flight requests (double completion).
    pub fn complete(&mut self, id: u64, now: SimTime) {
        assert!(self.inflight > 0, "completion without in-flight request");
        self.inflight -= 1;
        if let Some(q) = self.inflight_queue.remove(&id) {
            debug_assert!(self.occupied[q] > 0);
            self.occupied[q] -= 1;
        }
        self.stats.completed += 1;
        self.last_completion = self.last_completion.max(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, offset: u64) -> HostRequest {
        HostRequest {
            id,
            arrival: SimTime::ZERO,
            op: IoOp::Read,
            offset,
            bytes: 4096,
        }
    }

    #[test]
    fn submit_fetch_complete_roundtrip() {
        let mut hil = HostInterface::new(HilConfig::default());
        assert!(hil.submit(req(1, 0)));
        assert_eq!(hil.queued(), 1);
        let r = hil.fetch().unwrap();
        assert_eq!(r.id, 1);
        assert_eq!(hil.inflight(), 1);
        hil.complete(1, SimTime::from_micros(5));
        assert_eq!(hil.inflight(), 0);
        assert_eq!(hil.last_completion(), SimTime::from_micros(5));
    }

    #[test]
    fn full_queue_backpressures() {
        let mut hil = HostInterface::new(HilConfig {
            queues: 1,
            queue_depth: 2,
            ..HilConfig::default()
        });
        assert!(hil.submit(req(1, 0)));
        assert!(hil.submit(req(2, 0)));
        assert!(!hil.submit(req(3, 0)));
        assert_eq!(hil.stats().backpressured, 1);
    }

    #[test]
    fn round_robin_across_queues() {
        let mut hil = HostInterface::new(HilConfig {
            queues: 4,
            ..HilConfig::default()
        });
        // Spread over 4 different 2 MiB regions → 4 different queues.
        for i in 0..4u64 {
            assert!(hil.submit(req(i, i * (1 << 21))));
        }
        let mut queues_seen = std::collections::HashSet::new();
        for _ in 0..4 {
            let r = hil.fetch().unwrap();
            queues_seen.insert(hil.queue_of(&r));
        }
        assert_eq!(queues_seen.len(), 4, "arbiter must visit all queues");
    }

    #[test]
    fn fetch_from_empty_is_none() {
        let mut hil = HostInterface::new(HilConfig::default());
        assert!(hil.fetch().is_none());
    }

    #[test]
    #[should_panic(expected = "without in-flight")]
    fn double_completion_panics() {
        let mut hil = HostInterface::new(HilConfig::default());
        hil.complete(1, SimTime::ZERO);
    }
}
