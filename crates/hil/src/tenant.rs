//! Tenancy model: named tenants mapped onto NVMe namespaces and
//! submission-queue ranges, with weighted-round-robin arbitration weights
//! and per-tenant queue-depth caps.
//!
//! A [`TenantSet`] is both an engine input (the [`crate::HostInterface`]
//! partitions its submission queues across the set and arbitrates fetches
//! by weight) and a sweep axis (named presets with stable labels, like
//! `FaultPlan` and `DispatchPolicyKind` in the core crate).
//!
//! The default, [`TenantSet::single()`], is one tenant owning every queue
//! with weight 1 and no cap — the host interface then degenerates exactly
//! to the pre-tenancy round-robin arbiter, which the RetryAll golden hash
//! pins bit-for-bit.

/// Per-tenant deadline contract class.
///
/// The host resilience layer resolves the class into a concrete deadline
/// when its deadline mechanism is armed (`ResiliencePolicy` presets with a
/// deadline); with deadlines unarmed, classes are inert — the default
/// single-tenant path stays bit-identical regardless of class. The HIL
/// itself never consults the class; it is a tenant attribute the core's
/// admission stamping reads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DeadlineClass {
    /// The policy's own deadline (today's 250 µs contract) — the default,
    /// reproducing the single-deadline behavior bit-for-bit.
    #[default]
    Default,
    /// Latency-sensitive: a tighter deadline than the policy default.
    Latency,
    /// Batch/throughput: a much looser deadline than the policy default.
    Batch,
    /// Deadline-free: never stamped, never aborted by timeout even when
    /// the policy arms deadlines for its neighbors.
    None,
}

impl DeadlineClass {
    /// Stable label used in sweep-point labels, manifests, and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            DeadlineClass::Default => "default",
            DeadlineClass::Latency => "latency",
            DeadlineClass::Batch => "batch",
            DeadlineClass::None => "none",
        }
    }
}

/// One tenant's contract: its share of the arbiter and its in-flight cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TenantSpec {
    /// Tenant name (namespace label; mix constituents use their app name).
    pub name: &'static str,
    /// Weighted-round-robin weight: fetch credits per arbitration cycle.
    /// Must be at least 1.
    pub weight: u32,
    /// Maximum requests this tenant may have in flight (fetched but not
    /// completed), enforced at fetch time. `0` means unlimited.
    pub qd_cap: u32,
    /// Deadline contract class, resolved against the armed resilience
    /// policy by the core ([`DeadlineClass::Default`] keeps the policy's
    /// single deadline).
    pub deadline: DeadlineClass,
}

/// A set of tenants sharing one SSD: the tenancy axis of a run.
///
/// Tenants partition the host interface's submission queues into
/// contiguous per-tenant ranges (tenant `t` of `T` owns queues
/// `[t·Q/T, (t+1)·Q/T)`), so a request's tenant id picks its namespace's
/// queue range and its offset picks the queue within the range.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TenantSet {
    label: String,
    tenants: Vec<TenantSpec>,
}

impl Default for TenantSet {
    fn default() -> Self {
        TenantSet::single()
    }
}

impl TenantSet {
    /// The default single-tenant set: one tenant (`all`) owning every
    /// queue, weight 1, no cap. Reproduces the pre-tenancy host interface
    /// bit-for-bit.
    pub fn single() -> Self {
        TenantSet {
            label: "single".to_string(),
            tenants: vec![TenantSpec {
                name: "all",
                weight: 1,
                qd_cap: 0,
                deadline: DeadlineClass::Default,
            }],
        }
    }

    /// Two equal tenants (`victim`, `aggressor`): fair-share WRR, no caps.
    /// The noisy-neighbor scenario with no QoS protection beyond equal
    /// arbitration.
    pub fn pair_fair() -> Self {
        TenantSet::custom(
            "pair-fair",
            vec![
                TenantSpec {
                    name: "victim",
                    weight: 1,
                    qd_cap: 0,
                    deadline: DeadlineClass::Default,
                },
                TenantSpec {
                    name: "aggressor",
                    weight: 1,
                    qd_cap: 0,
                    deadline: DeadlineClass::Default,
                },
            ],
        )
    }

    /// QoS-protected pair: the latency-sensitive `victim` gets a 4× WRR
    /// weight while the bursty `aggressor` is capped at 4 in-flight
    /// requests.
    pub fn victim_boost() -> Self {
        TenantSet::custom(
            "victim-boost",
            vec![
                TenantSpec {
                    name: "victim",
                    weight: 4,
                    qd_cap: 0,
                    deadline: DeadlineClass::Default,
                },
                TenantSpec {
                    name: "aggressor",
                    weight: 1,
                    qd_cap: 4,
                    deadline: DeadlineClass::Default,
                },
            ],
        )
    }

    /// Three tenants with unequal WRR shares for the trio scenario: the
    /// latency-sensitive `victim` keeps its 4× boost, the mixed
    /// `victim-mixed` stream gets a middling 2× share, and the `aggressor`
    /// runs at weight 1 under the same 4-deep in-flight cap as
    /// [`TenantSet::victim_boost`]. Exercises WRR with *three distinct*
    /// weights, not just protected-vs-unprotected.
    pub fn trio_weighted() -> Self {
        TenantSet::custom(
            "trio-weighted",
            vec![
                TenantSpec {
                    name: "victim",
                    weight: 4,
                    qd_cap: 0,
                    deadline: DeadlineClass::Default,
                },
                TenantSpec {
                    name: "victim-mixed",
                    weight: 2,
                    qd_cap: 0,
                    deadline: DeadlineClass::Default,
                },
                TenantSpec {
                    name: "aggressor",
                    weight: 1,
                    qd_cap: 4,
                    deadline: DeadlineClass::Default,
                },
            ],
        )
    }

    /// The deadline-class pair: arbitration-neutral (equal weights, no
    /// caps — exactly [`TenantSet::pair_fair`]) but with *split deadline
    /// contracts*: the latency-sensitive `victim` holds a tight
    /// [`DeadlineClass::Latency`] deadline while the `aggressor` runs
    /// deadline-free ([`DeadlineClass::None`]). Isolates the per-tenant
    /// deadline axis from the WRR/cap axes.
    pub fn deadline_split() -> Self {
        TenantSet::custom(
            "deadline-split",
            vec![
                TenantSpec {
                    name: "victim",
                    weight: 1,
                    qd_cap: 0,
                    deadline: DeadlineClass::Latency,
                },
                TenantSpec {
                    name: "aggressor",
                    weight: 1,
                    qd_cap: 0,
                    deadline: DeadlineClass::None,
                },
            ],
        )
    }

    /// An arbitrary tenant set (property tests and custom scenarios).
    ///
    /// # Panics
    ///
    /// Panics if the set is empty, exceeds 8 tenants (the preset queue
    /// count — every tenant needs at least one queue), or any weight is
    /// zero.
    pub fn custom(label: impl Into<String>, tenants: Vec<TenantSpec>) -> Self {
        assert!(!tenants.is_empty(), "a tenant set needs at least one tenant");
        assert!(
            tenants.len() <= 8,
            "at most 8 tenants (one submission queue each)"
        );
        for t in &tenants {
            assert!(t.weight >= 1, "tenant {} needs a positive weight", t.name);
        }
        TenantSet {
            label: label.into(),
            tenants,
        }
    }

    /// The named presets forming the `tenants` sweep axis.
    pub fn presets() -> Vec<TenantSet> {
        vec![
            TenantSet::single(),
            TenantSet::pair_fair(),
            TenantSet::victim_boost(),
            TenantSet::trio_weighted(),
        ]
    }

    /// Looks a preset up by its label (case-insensitive). Covers the
    /// [`TenantSet::presets`] axis plus the named specialty sets
    /// ([`TenantSet::deadline_split`]) that grids opt into individually.
    pub fn by_label(label: &str) -> Option<TenantSet> {
        TenantSet::presets()
            .into_iter()
            .chain([TenantSet::deadline_split()])
            .find(|t| t.label.eq_ignore_ascii_case(label))
    }

    /// Stable axis label (sweep point labels and manifests).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The tenant contracts, indexed by tenant id.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.tenants
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Always false: a tenant set has at least one tenant.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True for one-tenant sets (the bit-identical default path).
    pub fn is_single(&self) -> bool {
        self.tenants.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_the_default_and_inert_shape() {
        let s = TenantSet::default();
        assert_eq!(s, TenantSet::single());
        assert!(s.is_single());
        assert_eq!(s.label(), "single");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.specs()[0].weight, 1);
        assert_eq!(s.specs()[0].qd_cap, 0);
    }

    #[test]
    fn presets_round_trip_by_label() {
        for p in TenantSet::presets() {
            assert_eq!(TenantSet::by_label(p.label()), Some(p.clone()));
            assert_eq!(TenantSet::by_label(&p.label().to_uppercase()), Some(p));
        }
        assert_eq!(TenantSet::by_label("no-such"), None);
    }

    #[test]
    fn victim_boost_protects_the_victim() {
        let v = TenantSet::victim_boost();
        assert_eq!(v.len(), 2);
        assert!(v.specs()[0].weight > v.specs()[1].weight);
        assert_eq!(v.specs()[1].qd_cap, 4);
    }

    #[test]
    fn trio_weighted_orders_three_distinct_weights() {
        let t = TenantSet::trio_weighted();
        assert_eq!(t.label(), "trio-weighted");
        assert_eq!(t.len(), 3);
        let w: Vec<u32> = t.specs().iter().map(|s| s.weight).collect();
        assert_eq!(w, [4, 2, 1], "the two victims must hold distinct shares");
        assert_eq!(t.specs()[2].qd_cap, 4, "the aggressor stays capped");
        assert!(TenantSet::presets().contains(&t));
    }

    #[test]
    fn deadline_split_isolates_the_deadline_axis() {
        let d = TenantSet::deadline_split();
        assert_eq!(d.label(), "deadline-split");
        assert_eq!(d.len(), 2);
        // Arbitration-neutral: same weights/caps as pair_fair.
        let p = TenantSet::pair_fair();
        for (a, b) in d.specs().iter().zip(p.specs()) {
            assert_eq!((a.name, a.weight, a.qd_cap), (b.name, b.weight, b.qd_cap));
        }
        assert_eq!(d.specs()[0].deadline, DeadlineClass::Latency);
        assert_eq!(d.specs()[1].deadline, DeadlineClass::None);
        // Not on the default tenants axis, but label-addressable.
        assert!(!TenantSet::presets().contains(&d));
        assert_eq!(TenantSet::by_label("Deadline-Split"), Some(d));
        // Preset sets all carry the Default class (bit-identity contract).
        for set in TenantSet::presets() {
            for spec in set.specs() {
                assert_eq!(spec.deadline, DeadlineClass::Default);
            }
        }
        assert_eq!(DeadlineClass::default(), DeadlineClass::Default);
        for (class, label) in [
            (DeadlineClass::Default, "default"),
            (DeadlineClass::Latency, "latency"),
            (DeadlineClass::Batch, "batch"),
            (DeadlineClass::None, "none"),
        ] {
            assert_eq!(class.label(), label);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_set_rejected() {
        TenantSet::custom("bad", vec![]);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_rejected() {
        TenantSet::custom(
            "bad",
            vec![TenantSpec {
                name: "t",
                weight: 0,
                qd_cap: 0,
                deadline: DeadlineClass::Default,
            }],
        );
    }
}
