//! Host interface layer (HIL) for the Venice reproduction.
//!
//! Models the NVMe-style multi-queue front end of §2.2: the host places
//! requests into one of several submission queues; the HIL arbitrates
//! round-robin across queues (the NVMe default), charges a fixed firmware
//! handling latency, and posts completions back. Queue depth is finite, so
//! a saturated SSD back-pressures the host — exactly how an open-loop trace
//! replay behaves on a real device.
//!
//! # Example
//!
//! ```
//! use venice_hil::{HilConfig, HostInterface, HostRequest};
//! use venice_sim::SimTime;
//! use venice_workloads::IoOp;
//!
//! let mut hil = HostInterface::new(HilConfig::default());
//! let accepted = hil.submit(HostRequest {
//!     id: 1,
//!     arrival: SimTime::ZERO,
//!     op: IoOp::Read,
//!     offset: 0,
//!     bytes: 4096,
//! });
//! assert!(accepted);
//! let fetched = hil.fetch().unwrap();
//! assert_eq!(fetched.id, 1);
//! hil.complete(fetched.id, SimTime::from_micros(9));
//! assert_eq!(hil.stats().completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nvme;

pub use nvme::{HilConfig, HilStats, HostInterface, HostRequest};
