//! Host interface layer (HIL) for the Venice reproduction.
//!
//! Models the NVMe-style multi-queue front end of §2.2: the host places
//! requests into one of several submission queues; the HIL arbitrates
//! across queues and posts completions back after a fixed firmware
//! handling latency. Queue depth is finite, so a saturated SSD
//! back-pressures the host — exactly how an open-loop trace replay behaves
//! on a real device.
//!
//! Queues are partitioned across a [`TenantSet`] of namespaces: each
//! tenant owns a contiguous queue range, fetch arbitration is weighted
//! round-robin with per-tenant queue-depth caps, and statistics are kept
//! per tenant. The default single-tenant set degenerates to the plain
//! round-robin arbiter (the NVMe default) bit-for-bit.
//!
//! # Example
//!
//! ```
//! use venice_hil::{HilConfig, HostInterface, HostRequest};
//! use venice_sim::SimTime;
//! use venice_workloads::IoOp;
//!
//! let mut hil = HostInterface::new(HilConfig::default());
//! let accepted = hil.submit(HostRequest {
//!     id: 1,
//!     tenant: 0,
//!     arrival: SimTime::ZERO,
//!     op: IoOp::Read,
//!     offset: 0,
//!     bytes: 4096,
//!     deadline: None,
//! });
//! assert!(accepted);
//! let fetched = hil.fetch().unwrap();
//! assert_eq!(fetched.id, 1);
//! hil.complete(fetched.id, SimTime::from_micros(9));
//! assert_eq!(hil.stats().completed, 1);
//! assert_eq!(hil.tenant_stats()[0].completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nvme;
mod tenant;

pub use nvme::{HilConfig, HilStats, HostInterface, HostRequest};
pub use tenant::{DeadlineClass, TenantSet, TenantSpec};
