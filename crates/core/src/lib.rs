//! The Venice SSD simulator: full-system assembly of HIL, FTL, interconnect
//! fabrics, and flash chips.
//!
//! This crate is the reproduction's equivalent of MQSim's front end: it
//! wires together the substrates from the sibling crates and exposes a
//! one-call experiment interface.
//!
//! * [`SsdConfig`] — the paper's Table 1 configurations
//!   (performance-optimized Z-NAND, cost-optimized 3D TLC) plus shape and
//!   sizing knobs,
//! * [`SsdSim`] — the event-driven SSD model (request lifecycle per the
//!   paper's Figure 3),
//! * [`DispatchPolicyKind`] — pluggable dispatcher retry strategies
//!   (retry-all, conflict-aware backoff, round-robin attempt quota),
//! * [`ExperimentBuilder`] / [`run_systems`] — run workloads across the six
//!   systems (Baseline, pSSD, pnSSD, NoSSD, Venice, Ideal),
//! * [`RunMetrics`] — execution time, IOPS, tail latency, conflict rate,
//!   power/energy: every metric the paper's evaluation reports,
//! * [`report`] — markdown/CSV table helpers for the figure harnesses.
//!
//! # Example
//!
//! ```
//! use venice_ssd::{run_systems, SsdConfig, SystemKind};
//! use venice_workloads::catalog;
//!
//! let trace = catalog::by_name("hm_0").unwrap().generate(500);
//! let cfg = SsdConfig::performance_optimized();
//! let results = run_systems(
//!     &cfg,
//!     &[SystemKind::Baseline, SystemKind::Venice],
//!     &trace,
//! );
//! assert_eq!(results[1].completed_requests, 500);
//! // Venice resolves far more requests without path conflicts.
//! assert!(results[1].conflict_pct() < results[0].conflict_pct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dispatch;
mod experiment;
mod fault;
mod metrics;
mod redundancy;
pub mod report;
mod resilience;
mod ssd;

pub use config::{SsdConfig, StaticPower};
pub use dispatch::{
    DispatchPolicyKind, DispatchScanKind, DispatchStats, ATTEMPT_QUOTA, BACKOFF_MAX_ROUNDS,
    STARVATION_NS,
};
pub use experiment::{
    all_systems, enter_shared_pool, run_single, run_systems, shared_pool_active,
    ExperimentBuilder, SharedPoolGuard, SystemKind,
};
pub use fault::{FaultAction, FaultPlan};
pub use metrics::{RunMetrics, RunStatus, TenantMetrics};
pub use redundancy::{
    parity_group, RedundancyKind, REBUILD_BURST, REBUILD_MAX_JOBS, REBUILD_RATE,
    REBUILD_RETRY_LIMIT, REBUILD_SCAN_BATCH, REBUILD_TICK,
};
pub use resilience::{
    AdmissionParams, RequestOutcome, ResilienceParams, ResiliencePolicy, RetryParams,
    BATCH_DEADLINE, LATENCY_DEADLINE, RETRY_JITTER_SEED,
};
pub use ssd::SsdSim;
// Re-exported for config/sweep ergonomics: the scout fast-fail cache mode is
// an `SsdConfig` knob and a sweep axis, like `DispatchPolicyKind`.
pub use venice_interconnect::ScoutCacheKind;
// Re-exported for config/sweep ergonomics: the tenancy model is an
// `SsdConfig` knob and a sweep axis; it lives in `venice_hil` because the
// host interface enforces it. `DeadlineClass` rides along: it is a tenant
// attribute the core's per-tenant deadline stamping consumes.
pub use venice_hil::{DeadlineClass, TenantSet, TenantSpec};
