//! Host-side resilience policies: request deadlines with timeout-driven
//! aborts, bounded host retry with exponential backoff, and submission-side
//! admission control with load shedding.
//!
//! A [`ResiliencePolicy`] is a *named preset* (the sweep engine's
//! `resilience` axis) that expands ([`ResiliencePolicy::params`]) into the
//! three independent knob groups a production NVMe front-end pairs with
//! device-side parallelism:
//!
//! * **deadlines** — every admitted request is stamped with
//!   `submit time + deadline`; a calendar-delivered timeout aborts the
//!   attempt at the next command boundary (reusing the fail-stop machinery
//!   from `crate::fault`) and releases its fabric/TSU resources,
//! * **bounded retry** — a failed or timed-out attempt resubmits through
//!   the host interface after an exponential backoff with deterministic
//!   jitter ([`RETRY_JITTER_SEED`]), capped at
//!   [`RetryParams::max_retries`] attempts and accounted against a
//!   per-tenant retry budget so an aggressor's retries cannot starve a
//!   victim,
//! * **admission control** — per-tenant submission-side occupancy
//!   watermarks with hysteresis: over the high watermark the tenant is
//!   *overloaded* and new submissions are deferred (backpressure) or — when
//!   the running tail-latency estimate says the deadline cannot be met —
//!   shed outright with a structured [`RequestOutcome::Shed`].
//!
//! Every request reaches exactly one terminal [`RequestOutcome`];
//! `shed + completed` partitions the trace, and `Ok + DeadlineMiss +
//! FailedAfterRetries + DataLoss` partitions the completions
//! ([`RequestOutcome::DataLoss`] — unreconstructable data on a dead chip —
//! is carved out of the generic failure class by the redundancy layer).
//!
//! [`ResiliencePolicy::None`] expands to all-off parameters and therefore
//! schedules zero calendar events and takes no admission branches — the
//! golden-hash contract (`events` feeds the fingerprint) is untouched by
//! construction, exactly like [`crate::FaultPlan::None`].

use venice_sim::SimDuration;

/// Seed of the deterministic retry-jitter stream
/// (`venice_sim::rng::Xorshift64Star`): one stream per run, consumed only
/// when a retry is actually scheduled, so runs with no retries never touch
/// it and identical runs replay identical jitter.
pub const RETRY_JITTER_SEED: u64 = 0x5EED_4E57_0000_0001;

/// Terminal outcome of one host request under the resilience layer.
///
/// The engine classifies every request exactly once, at its terminal
/// completion (or at the shedding decision); [`crate::RunMetrics`] carries
/// the aggregate counts (`deadline_misses`, `shed_requests`,
/// `failed_requests`, and `deadline_met_requests` — the goodput numerator).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RequestOutcome {
    /// Completed successfully (no error status, deadline met or unarmed).
    #[default]
    Ok,
    /// The final attempt was aborted by its deadline.
    DeadlineMiss,
    /// The final attempt completed with error status (dead chip or dead
    /// path) and the retry policy had no attempt left (a cap of zero
    /// retries makes every device failure terminal immediately).
    FailedAfterRetries,
    /// Rejected at submission by the overload admission policy; the request
    /// never entered the device.
    Shed,
    /// The request addressed data on a permanently dead chip that no
    /// redundancy scheme can reconstruct ([`crate::RedundancyKind::None`],
    /// or a parity group with no survivors): the data is *gone*, not
    /// merely unreachable. Distinct from fabric-level failure — retrying
    /// cannot help — and a subset of the failed completions.
    DataLoss,
}

impl RequestOutcome {
    /// Stable label used in JSON and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RequestOutcome::Ok => "ok",
            RequestOutcome::DeadlineMiss => "deadline-miss",
            RequestOutcome::FailedAfterRetries => "failed-after-retries",
            RequestOutcome::Shed => "shed",
            RequestOutcome::DataLoss => "data-loss",
        }
    }
}

/// Bounded host-retry parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryParams {
    /// Maximum resubmissions per request (on top of the first attempt).
    pub max_retries: u32,
    /// Base backoff before the first resubmission; doubles per attempt.
    pub backoff: SimDuration,
    /// Ceiling of the exponential backoff.
    pub backoff_cap: SimDuration,
    /// Maximum *outstanding* retried requests per tenant: a request whose
    /// first retry would push its tenant over this budget goes terminal
    /// instead, so one tenant's retry storm cannot monopolize submission
    /// capacity that its neighbors' first attempts need.
    pub tenant_budget: u32,
}

/// Submission-side admission watermarks, in percent of a tenant's
/// namespace capacity (its queue range length × queue depth), so the same
/// policy scales from the single-tenant default to narrow per-tenant
/// ranges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionParams {
    /// Occupancy percentage at or above which the tenant enters overload.
    pub high_pct: u32,
    /// Occupancy percentage at or below which the tenant exits overload
    /// (hysteresis: strictly below `high_pct` so the system degrades and
    /// recovers smoothly instead of flapping).
    pub low_pct: u32,
}

/// The expanded knob groups of one [`ResiliencePolicy`] preset. `None` in
/// a group means that mechanism is disarmed (no events, no branches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResilienceParams {
    /// Per-request deadline measured from each attempt's submission.
    pub deadline: Option<SimDuration>,
    /// Bounded host retry of failed / timed-out attempts.
    pub retry: Option<RetryParams>,
    /// Submission-side admission control with load shedding.
    pub admission: Option<AdmissionParams>,
}

/// The preset deadline: well above a healthy run's mean service time
/// (~70µs saturated on the performance-optimized preset) but inside the
/// saturated tail (p99 ≈ 340–400µs on the Baseline fabric), so overload
/// and fault windows produce misses while nominal service does not.
const DEADLINE: SimDuration = SimDuration::from_micros(250);

/// Deadline of a [`venice_hil::DeadlineClass::Latency`] tenant when the
/// policy arms deadlines: well under the preset 250 µs contract, so a
/// latency-sensitive victim's misses surface while its neighbors' don't.
pub const LATENCY_DEADLINE: SimDuration = SimDuration::from_micros(100);

/// Deadline of a [`venice_hil::DeadlineClass::Batch`] tenant when the
/// policy arms deadlines: far looser than the preset contract — batch work
/// cares about completion, not tail latency.
pub const BATCH_DEADLINE: SimDuration = SimDuration::from_micros(1_000);

const RETRY: RetryParams = RetryParams {
    max_retries: 3,
    backoff: SimDuration::from_micros(10),
    backoff_cap: SimDuration::from_micros(80),
    tenant_budget: 8,
};

const ADMISSION: AdmissionParams = AdmissionParams {
    high_pct: 75,
    low_pct: 25,
};

/// Named host-resilience presets (the sweep engine's `resilience` axis):
/// the deadline × retry cross, plus the admission-control variants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ResiliencePolicy {
    /// Everything off: bit-identical to the pre-resilience engine.
    #[default]
    None,
    /// Deadlines and timeout-driven aborts only.
    Deadline,
    /// Bounded retry of failed attempts only (no deadline).
    Retry,
    /// Deadlines plus bounded retry of failed / timed-out attempts.
    DeadlineRetry,
    /// Deadlines plus deadline-aware load shedding (no retry).
    Shed,
    /// The whole layer: deadlines, bounded retry, and admission control.
    Full,
}

impl ResiliencePolicy {
    /// All presets, in presentation order.
    pub const ALL: [ResiliencePolicy; 6] = [
        ResiliencePolicy::None,
        ResiliencePolicy::Deadline,
        ResiliencePolicy::Retry,
        ResiliencePolicy::DeadlineRetry,
        ResiliencePolicy::Shed,
        ResiliencePolicy::Full,
    ];

    /// Stable label used in sweep-point labels, manifests, and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ResiliencePolicy::None => "none",
            ResiliencePolicy::Deadline => "deadline",
            ResiliencePolicy::Retry => "retry",
            ResiliencePolicy::DeadlineRetry => "deadline-retry",
            ResiliencePolicy::Shed => "shed",
            ResiliencePolicy::Full => "full",
        }
    }

    /// Looks a preset up by its label, case-insensitively — the
    /// manifest/CLI round-trip constructor.
    pub fn by_label(label: &str) -> Option<ResiliencePolicy> {
        ResiliencePolicy::ALL
            .into_iter()
            .find(|p| p.label().eq_ignore_ascii_case(label))
    }

    /// Expands the preset into its knob groups. Pure and deterministic;
    /// [`ResiliencePolicy::None`] expands to all-`None`.
    pub fn params(&self) -> ResilienceParams {
        let (deadline, retry, admission) = match self {
            ResiliencePolicy::None => (None, None, None),
            ResiliencePolicy::Deadline => (Some(DEADLINE), None, None),
            ResiliencePolicy::Retry => (None, Some(RETRY), None),
            ResiliencePolicy::DeadlineRetry => (Some(DEADLINE), Some(RETRY), None),
            ResiliencePolicy::Shed => (Some(DEADLINE), None, Some(ADMISSION)),
            ResiliencePolicy::Full => (Some(DEADLINE), Some(RETRY), Some(ADMISSION)),
        };
        ResilienceParams {
            deadline,
            retry,
            admission,
        }
    }
}

impl std::fmt::Display for ResiliencePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for policy in ResiliencePolicy::ALL {
            assert_eq!(ResiliencePolicy::by_label(policy.label()), Some(policy));
        }
        assert_eq!(
            ResiliencePolicy::by_label("Deadline-Retry"),
            Some(ResiliencePolicy::DeadlineRetry)
        );
        assert_eq!(ResiliencePolicy::by_label("bogus"), None);
        assert_eq!(ResiliencePolicy::default(), ResiliencePolicy::None);
    }

    #[test]
    fn none_expands_to_all_off() {
        let p = ResiliencePolicy::None.params();
        assert_eq!(p.deadline, None);
        assert_eq!(p.retry, None);
        assert_eq!(p.admission, None);
    }

    #[test]
    fn presets_arm_their_mechanisms() {
        let full = ResiliencePolicy::Full.params();
        assert!(full.deadline.is_some() && full.retry.is_some() && full.admission.is_some());
        let dr = ResiliencePolicy::DeadlineRetry.params();
        assert!(dr.deadline.is_some() && dr.retry.is_some() && dr.admission.is_none());
        let shed = ResiliencePolicy::Shed.params();
        assert!(shed.deadline.is_some() && shed.retry.is_none() && shed.admission.is_some());
        assert!(ResiliencePolicy::Retry.params().deadline.is_none());
        // Hysteresis must be a real gap, and the backoff must be bounded.
        let adm = full.admission.unwrap();
        assert!(adm.low_pct < adm.high_pct);
        let retry = full.retry.unwrap();
        assert!(retry.backoff_cap >= retry.backoff);
        assert!(retry.max_retries > 0 && retry.tenant_budget > 0);
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(RequestOutcome::Ok.label(), "ok");
        assert_eq!(RequestOutcome::DeadlineMiss.label(), "deadline-miss");
        assert_eq!(
            RequestOutcome::FailedAfterRetries.label(),
            "failed-after-retries"
        );
        assert_eq!(RequestOutcome::Shed.label(), "shed");
        assert_eq!(RequestOutcome::DataLoss.label(), "data-loss");
        assert_eq!(RequestOutcome::default(), RequestOutcome::Ok);
        // Per-class deadlines straddle the policy's own 250 µs contract.
        assert!(LATENCY_DEADLINE < SimDuration::from_micros(250));
        assert!(BATCH_DEADLINE > SimDuration::from_micros(250));
    }
}
