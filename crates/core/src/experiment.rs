//! One-call experiment running: the entry point the figure harnesses,
//! examples, and tests use.

use venice_interconnect::FabricKind;
use venice_workloads::Trace;

use crate::{RunMetrics, SsdConfig, SsdSim};

/// Re-export: the systems under comparison are exactly the fabrics.
pub type SystemKind = FabricKind;

/// Builder for a single run or a sweep of runs.
///
/// # Example
///
/// ```
/// use venice_ssd::{ExperimentBuilder, SystemKind};
/// use venice_workloads::WorkloadSpec;
///
/// let trace = WorkloadSpec::new("demo", 60.0, 8.0, 50.0)
///     .footprint_mb(64)
///     .generate(300);
/// let m = ExperimentBuilder::performance_optimized()
///     .system(SystemKind::Venice)
///     .run(&trace);
/// assert_eq!(m.completed_requests, 300);
/// ```
#[derive(Clone, Debug)]
pub struct ExperimentBuilder {
    config: SsdConfig,
    system: SystemKind,
}

impl ExperimentBuilder {
    /// Starts from the Table 1 performance-optimized configuration.
    pub fn performance_optimized() -> Self {
        ExperimentBuilder {
            config: SsdConfig::performance_optimized(),
            system: SystemKind::Baseline,
        }
    }

    /// Starts from the Table 1 cost-optimized configuration.
    pub fn cost_optimized() -> Self {
        ExperimentBuilder {
            config: SsdConfig::cost_optimized(),
            system: SystemKind::Baseline,
        }
    }

    /// Starts from an explicit configuration.
    pub fn with_config(config: SsdConfig) -> Self {
        ExperimentBuilder {
            config,
            system: SystemKind::Baseline,
        }
    }

    /// Selects the fabric under test.
    pub fn system(mut self, system: SystemKind) -> Self {
        self.system = system;
        self
    }

    /// Reshapes the array (Figure 15 sweep).
    pub fn shape(mut self, rows: u16, cols: u16) -> Self {
        self.config = self.config.with_shape(rows, cols);
        self
    }

    /// Runs the trace on an SSD sized for its footprint.
    pub fn run(&self, trace: &Trace) -> RunMetrics {
        let config = self.config.clone().sized_for_footprint(trace.footprint_bytes());
        SsdSim::new(config, self.system, trace).run()
    }
}

/// Runs `trace` on every system in `systems`, in parallel threads, and
/// returns the metrics in the same order.
///
/// Every run is fully independent (deterministic per `(config, system,
/// trace)`), so thread-parallelism changes nothing but wall-clock time.
pub fn run_systems(
    config: &SsdConfig,
    systems: &[SystemKind],
    trace: &Trace,
) -> Vec<RunMetrics> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = systems
            .iter()
            .map(|&system| {
                let config = config.clone();
                scope.spawn(move || {
                    let sized = config.sized_for_footprint(trace.footprint_bytes());
                    SsdSim::new(sized, system, trace).run()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation thread panicked"))
            .collect()
    })
}

/// The comparison set of the paper's main figures, in presentation order:
/// Baseline, pSSD, pnSSD, NoSSD, Venice, Ideal.
pub fn all_systems() -> [SystemKind; 6] {
    [
        SystemKind::Baseline,
        SystemKind::Pssd,
        SystemKind::PnSsd,
        SystemKind::NoSsd,
        SystemKind::Venice,
        SystemKind::Ideal,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_workloads::WorkloadSpec;

    #[test]
    fn run_systems_matches_individual_runs() {
        let trace = WorkloadSpec::new("par", 80.0, 8.0, 20.0)
            .footprint_mb(32)
            .generate(200);
        let cfg = SsdConfig::performance_optimized();
        let batch = run_systems(
            &cfg,
            &[SystemKind::Baseline, SystemKind::Venice],
            &trace,
        );
        let solo = ExperimentBuilder::performance_optimized()
            .system(SystemKind::Venice)
            .run(&trace);
        assert_eq!(batch[1].execution_time, solo.execution_time);
        assert_eq!(batch[0].system, SystemKind::Baseline);
    }

    #[test]
    fn all_systems_has_paper_order() {
        let s = all_systems();
        assert_eq!(s[0], SystemKind::Baseline);
        assert_eq!(s[4], SystemKind::Venice);
        assert_eq!(s[5], SystemKind::Ideal);
    }
}
