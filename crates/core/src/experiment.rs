//! One-call experiment running: the entry point the figure harnesses,
//! examples, and tests use.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use venice_interconnect::FabricKind;
use venice_workloads::Trace;

use crate::{RunMetrics, SsdConfig, SsdSim};

/// How many shared worker pools are currently executing jobs in this
/// process. While non-zero, [`run_systems`] clamps its own per-system
/// thread fan-out to avoid oversubscribing the machine (the pool's workers
/// already occupy the cores).
static SHARED_POOL_DEPTH: AtomicUsize = AtomicUsize::new(0);

/// Whether the nested-parallelism clamp warning has been printed yet
/// (it is printed at most once per process).
static CLAMP_WARNED: AtomicBool = AtomicBool::new(false);

/// RAII marker that a shared worker pool is executing jobs.
///
/// Held by `venice_bench::sweep::WorkerPool` for the duration of a batch;
/// while any guard is alive, [`shared_pool_active`] returns `true` and
/// [`run_systems`] runs its systems serially on the calling thread instead
/// of spawning one thread per system.
#[derive(Debug)]
pub struct SharedPoolGuard {
    nested: bool,
}

impl SharedPoolGuard {
    /// True when another guard was already alive at acquisition time: the
    /// holder is nested inside active pool work and must not fan out
    /// threads. The check-and-claim is one atomic `fetch_add`, so two
    /// concurrent acquirers can never both observe "not nested".
    pub fn is_nested(&self) -> bool {
        self.nested
    }
}

impl Drop for SharedPoolGuard {
    fn drop(&mut self) {
        SHARED_POOL_DEPTH.fetch_sub(1, Ordering::Release);
    }
}

/// Marks a shared worker pool as active until the returned guard drops.
pub fn enter_shared_pool() -> SharedPoolGuard {
    let prev = SHARED_POOL_DEPTH.fetch_add(1, Ordering::AcqRel);
    SharedPoolGuard { nested: prev > 0 }
}

/// True while any shared worker pool is executing jobs in this process.
pub fn shared_pool_active() -> bool {
    SHARED_POOL_DEPTH.load(Ordering::Acquire) > 0
}

/// Prints the nested-parallelism clamp warning, once per process.
fn warn_nested_parallelism(requested: usize) {
    if !CLAMP_WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "warning: nested parallelism request ({requested} threads) while \
             the shared sweep pool is active; clamping to serial execution \
             (further occurrences are silent)"
        );
    }
}

/// Re-export: the systems under comparison are exactly the fabrics.
pub type SystemKind = FabricKind;

/// Builder for a single run or a sweep of runs.
///
/// # Example
///
/// ```
/// use venice_ssd::{ExperimentBuilder, SystemKind};
/// use venice_workloads::WorkloadSpec;
///
/// let trace = WorkloadSpec::new("demo", 60.0, 8.0, 50.0)
///     .footprint_mb(64)
///     .generate(300);
/// let m = ExperimentBuilder::performance_optimized()
///     .system(SystemKind::Venice)
///     .run(&trace);
/// assert_eq!(m.completed_requests, 300);
/// ```
#[derive(Clone, Debug)]
pub struct ExperimentBuilder {
    config: SsdConfig,
    system: SystemKind,
}

impl ExperimentBuilder {
    /// Starts from the Table 1 performance-optimized configuration.
    pub fn performance_optimized() -> Self {
        ExperimentBuilder {
            config: SsdConfig::performance_optimized(),
            system: SystemKind::Baseline,
        }
    }

    /// Starts from the Table 1 cost-optimized configuration.
    pub fn cost_optimized() -> Self {
        ExperimentBuilder {
            config: SsdConfig::cost_optimized(),
            system: SystemKind::Baseline,
        }
    }

    /// Starts from an explicit configuration.
    pub fn with_config(config: SsdConfig) -> Self {
        ExperimentBuilder {
            config,
            system: SystemKind::Baseline,
        }
    }

    /// Selects the fabric under test.
    pub fn system(mut self, system: SystemKind) -> Self {
        self.system = system;
        self
    }

    /// Reshapes the array (Figure 15 sweep).
    pub fn shape(mut self, rows: u16, cols: u16) -> Self {
        self.config = self.config.with_shape(rows, cols);
        self
    }

    /// Runs the trace on an SSD sized for its footprint.
    pub fn run(&self, trace: &Trace) -> RunMetrics {
        run_single(&self.config, self.system, trace)
    }
}

/// Runs `trace` on one system, on an SSD sized for the trace's footprint.
///
/// This is the primitive every higher-level runner ([`run_systems`],
/// [`ExperimentBuilder::run`], the `venice_bench` sweep engine) funnels
/// through, so a `(config, system, trace)` triple produces bit-identical
/// [`RunMetrics`] no matter which entry point or thread executed it.
pub fn run_single(config: &SsdConfig, system: SystemKind, trace: &Trace) -> RunMetrics {
    let sized = config.clone().sized_for_footprint(trace.footprint_bytes());
    SsdSim::new(sized, system, trace).run()
}

/// Runs `trace` on every system in `systems`, in parallel threads, and
/// returns the metrics in the same order.
///
/// Every run is fully independent (deterministic per `(config, system,
/// trace)`), so thread-parallelism changes nothing but wall-clock time.
///
/// While a shared worker pool is executing jobs ([`shared_pool_active`]),
/// the per-system fan-out would multiply the pool's thread count, so it is
/// clamped: the systems run serially on the calling thread (with a
/// once-per-process warning) and the returned metrics are identical.
pub fn run_systems(
    config: &SsdConfig,
    systems: &[SystemKind],
    trace: &Trace,
) -> Vec<RunMetrics> {
    let guard = enter_shared_pool();
    if guard.is_nested() {
        warn_nested_parallelism(systems.len());
        return systems
            .iter()
            .map(|&system| run_single(config, system, trace))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = systems
            .iter()
            .map(|&system| scope.spawn(move || run_single(config, system, trace)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation thread panicked"))
            .collect()
    })
}

/// The comparison set of the paper's main figures, in presentation order:
/// Baseline, pSSD, pnSSD, NoSSD, Venice, Ideal.
pub fn all_systems() -> [SystemKind; 6] {
    [
        SystemKind::Baseline,
        SystemKind::Pssd,
        SystemKind::PnSsd,
        SystemKind::NoSsd,
        SystemKind::Venice,
        SystemKind::Ideal,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_workloads::WorkloadSpec;

    #[test]
    fn run_systems_matches_individual_runs() {
        let trace = WorkloadSpec::new("par", 80.0, 8.0, 20.0)
            .footprint_mb(32)
            .generate(200);
        let cfg = SsdConfig::performance_optimized();
        let batch = run_systems(
            &cfg,
            &[SystemKind::Baseline, SystemKind::Venice],
            &trace,
        );
        let solo = ExperimentBuilder::performance_optimized()
            .system(SystemKind::Venice)
            .run(&trace);
        assert_eq!(batch[1].execution_time, solo.execution_time);
        assert_eq!(batch[0].system, SystemKind::Baseline);
    }

    #[test]
    fn pool_guard_clamps_run_systems_to_identical_serial_results() {
        let trace = WorkloadSpec::new("clamp", 60.0, 8.0, 40.0)
            .footprint_mb(32)
            .generate(150);
        let cfg = SsdConfig::performance_optimized();
        let systems = [SystemKind::Baseline, SystemKind::Venice];
        let threaded = run_systems(&cfg, &systems, &trace);
        let guard = enter_shared_pool();
        assert!(shared_pool_active());
        let clamped = run_systems(&cfg, &systems, &trace);
        drop(guard);
        assert_eq!(threaded, clamped);
    }

    #[test]
    fn run_single_matches_builder() {
        let trace = WorkloadSpec::new("single", 70.0, 8.0, 30.0)
            .footprint_mb(32)
            .generate(120);
        let a = run_single(
            &SsdConfig::performance_optimized(),
            SystemKind::Venice,
            &trace,
        );
        let b = ExperimentBuilder::performance_optimized()
            .system(SystemKind::Venice)
            .run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn all_systems_has_paper_order() {
        let s = all_systems();
        assert_eq!(s[0], SystemKind::Baseline);
        assert_eq!(s[4], SystemKind::Venice);
        assert_eq!(s[5], SystemKind::Ideal);
    }
}
