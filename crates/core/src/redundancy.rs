//! Die-level parity redundancy (RAIN): pages striped into parity groups
//! across the chips of a fabric row, reconstruct-on-read for requests that
//! land on a dead chip, and a token-bucket-paced background rebuild engine.
//!
//! [`RedundancyKind`] is a named sweep axis like [`crate::FaultPlan`] and
//! [`crate::ResiliencePolicy`]: `none` (the default) arms nothing — zero
//! calendar events, identical allocation — so the golden-hash contract
//! holds by construction; `parity<G>` stripes every physical page into a
//! parity group of up to `G` chips within its fabric row.
//!
//! The model is a *timing* model of RAIN, not a data-layout change: parity
//! content is implicit (the controller XORs), so reconstructing a page that
//! lived on a dead chip issues one read per *surviving* group member
//! through the normal TSU/fabric path and one remapped write through the
//! existing FTL allocation path. Parity-capacity overhead is not modeled —
//! `None` and `Parity` allocate identically until a chip actually dies,
//! which is what keeps the default path bit-identical.
//!
//! Two mechanisms consume the group map when a chip dies permanently:
//!
//! * **degraded reads** — a foreground read translated onto the dead chip
//!   fans out reads to the surviving group members instead of completing
//!   with error status; the request finishes successfully once every
//!   survivor read returns (the XOR itself is free at the controller),
//! * **background rebuild** — a calendar-driven scrubber
//!   ([`REBUILD_TICK`]) walks the dead chip's logical pages, issues the
//!   same survivor reads plus a remapped write per page, paced by a token
//!   bucket ([`REBUILD_RATE`]/[`REBUILD_BURST`]) and bounded in flight
//!   ([`REBUILD_MAX_JOBS`]) so foreground QoS survives. Rebuild
//!   transactions are a dedicated lowest-priority TSU class.

use venice_sim::SimDuration;

/// Period of the background rebuild scrubber's calendar tick. Each tick
/// refills the token bucket and launches up to the available tokens' worth
/// of page-rebuild jobs.
pub const REBUILD_TICK: SimDuration = SimDuration::from_micros(1);

/// Token-bucket refill per tick: page rebuilds that may *start* per
/// [`REBUILD_TICK`]. Generous enough that the interconnect — not the
/// pacing — is the rebuild bottleneck (the makespan head-to-head the
/// ablation measures), while the lowest-priority TSU class keeps the
/// foreground ahead of rebuild traffic at every chip.
pub const REBUILD_RATE: u32 = 4;

/// Token-bucket capacity (burst ceiling). A saturated bucket defers
/// launches to a later tick; nothing is ever dropped. Sized to
/// [`REBUILD_MAX_JOBS`] so a freshly armed engine can fill its in-flight
/// window in one tick instead of trickling up over many.
pub const REBUILD_BURST: u32 = 64;

/// Maximum page-rebuild jobs in flight at once, bounding the rebuild
/// engine's footprint in the TSU queues regardless of token pacing. Deep
/// enough that reconstruction is limited by the *interconnect* (every
/// survivor read of a dead chip targets the same row, so the fabric's
/// path diversity toward that row sets the rebuild bandwidth) rather than
/// by the in-flight window itself; the lowest-priority TSU class — not
/// this bound — is what keeps foreground traffic ahead of the rebuild.
pub const REBUILD_MAX_JOBS: usize = 64;

/// Logical pages the scrubber examines per tick while scanning the mapping
/// for pages on the dead chip, bounding per-event work on huge arrays.
pub const REBUILD_SCAN_BATCH: u64 = 1024;

/// Re-stage attempts for a page whose media-alive survivors were all
/// intact but transiently unreachable (fabric blast radius) or unspawnable
/// (their planes hosted active migrations). XOR reconstruction needs the
/// *complete* survivor set, so a blocked page defers rather than rebuilds
/// from a partial set; the bound guarantees the rebuild drains even when a
/// survivor sits behind a permanent severance — the page is then recorded
/// as skipped, and the recovery as incomplete.
pub const REBUILD_RETRY_LIMIT: u32 = 3;

/// Die-level redundancy scheme (the sweep engine's `redundancy` axis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RedundancyKind {
    /// No redundancy: a permanent chip death loses the chip's data and
    /// requests to it classify as [`crate::RequestOutcome::DataLoss`].
    /// Bit-identical to the pre-redundancy engine (zero calendar events,
    /// identical allocation).
    #[default]
    None,
    /// RAIN parity groups of up to `group` chips within a fabric row:
    /// survive any single chip death per group via reconstruct-on-read
    /// plus background rebuild.
    Parity {
        /// Stripe width in chips (data + parity), clamped to the row
        /// length. Must be at least 2 — a group of one has no survivors.
        group: u8,
    },
}

impl RedundancyKind {
    /// All presets, in presentation order (the `redundancy` sweep axis).
    pub const ALL: [RedundancyKind; 2] =
        [RedundancyKind::None, RedundancyKind::Parity { group: 4 }];

    /// Stable axis label used in sweep-point labels, manifests, and JSON
    /// (`none`, `parity4`, ...).
    pub fn label(&self) -> String {
        match self {
            RedundancyKind::None => "none".to_string(),
            RedundancyKind::Parity { group } => format!("parity{group}"),
        }
    }

    /// Looks a scheme up by its label, case-insensitively — the
    /// manifest/CLI round-trip constructor. Accepts any `parity<G>` with
    /// `G` in `2..=64`, not just the [`RedundancyKind::ALL`] presets.
    pub fn by_label(label: &str) -> Option<RedundancyKind> {
        if label.eq_ignore_ascii_case("none") {
            return Some(RedundancyKind::None);
        }
        let rest = label
            .strip_prefix("parity")
            .or_else(|| label.strip_prefix("PARITY"))
            .or_else(|| label.strip_prefix("Parity"))?;
        let group: u8 = rest.parse().ok()?;
        (2..=64).contains(&group).then_some(RedundancyKind::Parity { group })
    }

    /// True when the scheme arms any reconstruction machinery.
    pub fn is_armed(&self) -> bool {
        !matches!(self, RedundancyKind::None)
    }

    /// The parity-group stripe width, if armed.
    pub fn group(&self) -> Option<u8> {
        match self {
            RedundancyKind::None => None,
            RedundancyKind::Parity { group } => Some(*group),
        }
    }

    /// The surviving parity-group members of `chip` on a `cols`-wide
    /// fabric row: every other chip of the group, in ascending id order.
    /// Empty for [`RedundancyKind::None`] and for degenerate groups
    /// (a one-column row has no peers to reconstruct from).
    pub fn survivors(&self, chip: u16, cols: u16) -> Vec<u16> {
        let Some(group) = self.group() else {
            return Vec::new();
        };
        let (start, end) = parity_group(chip, cols, group);
        (start..end).filter(|&c| c != chip).collect()
    }
}

/// The `[start, end)` chip-id span of the parity group containing `chip`
/// on a `cols`-wide fabric row with stripe width `group`: groups tile each
/// row left to right, and a trailing partial group simply spans fewer
/// chips. Pure geometry — independent of which chips are alive.
pub fn parity_group(chip: u16, cols: u16, group: u8) -> (u16, u16) {
    assert!(group >= 2, "parity group must span at least 2 chips");
    assert!(cols > 0, "row must be non-empty");
    let g = u16::from(group);
    let row = chip / cols;
    let col = chip % cols;
    let start = (col / g) * g;
    let end = (start + g).min(cols);
    (row * cols + start, row * cols + end)
}

impl std::fmt::Display for RedundancyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in RedundancyKind::ALL {
            assert_eq!(RedundancyKind::by_label(&kind.label()), Some(kind));
        }
        assert_eq!(
            RedundancyKind::by_label("Parity8"),
            Some(RedundancyKind::Parity { group: 8 })
        );
        assert_eq!(RedundancyKind::by_label("NONE"), Some(RedundancyKind::None));
        assert_eq!(RedundancyKind::by_label("parity1"), None, "needs survivors");
        assert_eq!(RedundancyKind::by_label("parity65"), None);
        assert_eq!(RedundancyKind::by_label("raid5"), None);
        assert_eq!(RedundancyKind::default(), RedundancyKind::None);
    }

    #[test]
    fn none_arms_nothing() {
        assert!(!RedundancyKind::None.is_armed());
        assert_eq!(RedundancyKind::None.group(), None);
        assert!(RedundancyKind::None.survivors(36, 8).is_empty());
        assert!(RedundancyKind::Parity { group: 4 }.is_armed());
    }

    #[test]
    fn groups_tile_rows_and_never_cross_them() {
        // 8×8 mesh, stripe 4: chip 36 is row 4, col 4 → group [36, 40).
        assert_eq!(parity_group(36, 8, 4), (36, 40));
        assert_eq!(
            RedundancyKind::Parity { group: 4 }.survivors(36, 8),
            vec![37, 38, 39]
        );
        // Col 3 belongs to the row's first group [32, 36).
        assert_eq!(parity_group(35, 8, 4), (32, 36));
        // Every chip's group stays within its own row.
        for chip in 0..64u16 {
            let (s, e) = parity_group(chip, 8, 4);
            assert_eq!(s / 8, chip / 8);
            assert_eq!((e - 1) / 8, chip / 8);
            assert!((s..e).contains(&chip));
        }
    }

    #[test]
    fn trailing_groups_clamp_to_the_row() {
        // 6-wide row, stripe 4: groups [0,4) and [4,6).
        assert_eq!(parity_group(5, 6, 4), (4, 6));
        assert_eq!(RedundancyKind::Parity { group: 4 }.survivors(5, 6), vec![4]);
        // A one-column row leaves no survivors: reconstruction impossible.
        assert!(RedundancyKind::Parity { group: 4 }.survivors(3, 1).is_empty());
    }

    #[test]
    fn pacing_constants_are_sane() {
        const { assert!(REBUILD_BURST >= REBUILD_RATE, "bucket must hold one refill") };
        const { assert!(REBUILD_MAX_JOBS >= 1) };
        const { assert!(REBUILD_SCAN_BATCH >= 1) };
        const { assert!(REBUILD_RETRY_LIMIT >= 1) };
        assert!(REBUILD_TICK > SimDuration::ZERO);
    }
}
