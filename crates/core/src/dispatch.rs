//! Pluggable dispatch policies: how the SSD's dispatcher chooses which
//! queued work to attempt each round.
//!
//! PR 1's profiling (ROADMAP perf follow-up (a)) showed that congested
//! Venice runs spend most of their time in *failed* scout walks: the
//! dispatcher re-attempts every queued transfer each round, and each
//! attempt on a blocked chip walks the mesh just to be cancelled. The
//! policy layer makes that strategy a first-class, swappable design axis:
//!
//! * [`DispatchPolicyKind::RetryAll`] — the original behavior (and the
//!   default): every eligible chip is attempted every round. Bit-identical
//!   `RunMetrics` to the pre-policy engine.
//! * [`DispatchPolicyKind::ConflictBackoff`] — a chip whose acquisition
//!   just failed on a *path conflict* is skipped for an exponentially
//!   growing number of rounds (1, 2, 4, … up to [`BACKOFF_MAX_ROUNDS`]);
//!   a success resets the chip. Failures that merely mean "busy chip"
//!   ([`AcquireError::ChannelBusy`]) or "no controller free" never back
//!   off — the structured [`ConflictReason`] from the fabric is what makes
//!   the distinction possible.
//! * [`DispatchPolicyKind::RoundRobinQuota`] — caps acquisition attempts
//!   per chip per round at [`ATTEMPT_QUOTA`], bounding the worst-case cost
//!   of one dispatch round regardless of queue depth.
//!
//! Both non-default policies honor a starvation guard: a chip whose oldest
//! queued transaction is older than [`STARVATION_NS`] (per the TSU's
//! queue-age probe) is always attempted, so no chip can be deferred
//! indefinitely by its own bad luck.
//!
//! # Conflict-accounting invariant
//!
//! Skipping an attempt is *not* a conflict: `conflicted_requests`,
//! `FabricStats::conflicts`, and the per-request first-conflict flag are
//! only ever charged by attempts that actually reach the fabric. A policy
//! therefore changes *which* attempts happen (deterministically), never
//! how an attempt is accounted. The determinism fingerprint of a
//! `(config, policy, system, trace)` quadruple remains exact.
//!
//! # Hot-path storage
//!
//! Per-chip policy state lives in dense arrays indexed by chip id —
//! round-stamped so that neither a round start nor a policy decision ever
//! scans or clears `O(chips)` state — per the repo's slab/dense-Vec rule.

use std::fmt;

use venice_interconnect::{AcquireError, FabricKind};

/// Maximum rounds a chip can be backed off for (cap of the exponential).
pub const BACKOFF_MAX_ROUNDS: u64 = 64;

/// Acquisition attempts allowed per chip per round under
/// [`DispatchPolicyKind::RoundRobinQuota`].
pub const ATTEMPT_QUOTA: u32 = 4;

/// Queue age (ns) past which a chip is considered starving and exempt from
/// policy skips (2 ms ≈ two tBERS of the performance-optimized flash).
pub const STARVATION_NS: u64 = 2_000_000;

/// Which dispatch policy an SSD runs (the sweep engine's `policy` axis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DispatchPolicyKind {
    /// Attempt every eligible chip every round (the pre-policy engine's
    /// behavior, bit-identical metrics).
    #[default]
    RetryAll,
    /// Exponential per-chip backoff after path-conflict failures.
    ConflictBackoff,
    /// At most [`ATTEMPT_QUOTA`] acquisition attempts per chip per round.
    RoundRobinQuota,
    /// Pick the best measured policy for the fabric under test: mesh
    /// designs run [`DispatchPolicyKind::ConflictBackoff`] (1.43× engine
    /// events/sec on congested Venice for a ~6% simulated-exec-time cost —
    /// `results/policy_ablation.json`); bus designs run
    /// [`DispatchPolicyKind::RetryAll`] (on the congested Baseline, backoff
    /// inflates the *simulated* SSD's execution time by ~13% for a marginal
    /// engine gain — a bus conflict is cheap to probe and frees at burst
    /// granularity, so deferring the retry mostly just delays service).
    /// Resolution happens once, at simulator construction
    /// ([`DispatchPolicyKind::resolve_for`]); `RunMetrics.policy` reports
    /// `auto`, so sweep-point round-trips stay exact.
    Auto,
}

impl DispatchPolicyKind {
    /// All policies, in presentation order.
    pub const ALL: [DispatchPolicyKind; 4] = [
        DispatchPolicyKind::RetryAll,
        DispatchPolicyKind::ConflictBackoff,
        DispatchPolicyKind::RoundRobinQuota,
        DispatchPolicyKind::Auto,
    ];

    /// Stable label used in sweep-point labels, manifests, and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            DispatchPolicyKind::RetryAll => "retry-all",
            DispatchPolicyKind::ConflictBackoff => "conflict-backoff",
            DispatchPolicyKind::RoundRobinQuota => "round-robin-quota",
            DispatchPolicyKind::Auto => "auto",
        }
    }

    /// Looks a policy up by its label, case-insensitively — the
    /// manifest/CLI round-trip constructor.
    pub fn by_label(label: &str) -> Option<DispatchPolicyKind> {
        DispatchPolicyKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(label))
    }

    /// The concrete policy this kind runs on `fabric` — the per-fabric
    /// default table behind [`DispatchPolicyKind::Auto`], chosen from the
    /// `results/policy_ablation.json` ablation: backoff pays on the mesh
    /// fabrics (failed scout walks are expensive and skippable) and on the
    /// bus designs costs simulated SSD performance for little engine gain
    /// (a bus conflict is cheap to probe and frees at burst granularity).
    /// Every non-`Auto` kind resolves to itself.
    pub fn resolve_for(&self, fabric: FabricKind) -> DispatchPolicyKind {
        match self {
            DispatchPolicyKind::Auto => match fabric {
                FabricKind::NoSsd | FabricKind::Venice => DispatchPolicyKind::ConflictBackoff,
                FabricKind::Baseline
                | FabricKind::Pssd
                | FabricKind::PnSsd
                | FabricKind::Ideal => DispatchPolicyKind::RetryAll,
            },
            other => *other,
        }
    }
}

impl fmt::Display for DispatchPolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Cumulative dispatcher statistics (part of [`crate::RunMetrics`] and the
/// determinism fingerprint).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Dispatch rounds executed.
    pub rounds: u64,
    /// Acquisition attempts issued to the fabric.
    pub attempts: u64,
    /// Attempts suppressed by the policy (backoff or quota).
    pub skipped_backoff: u64,
    /// Attempts that failed with a path conflict (failed scout walks on
    /// mesh fabrics, bus conflicts on channel fabrics).
    pub failed_walks: u64,
}

/// Which dispatch-round implementation the engine runs. Both produce
/// bit-identical [`crate::RunMetrics`] for every `(config, policy, system,
/// trace)` quadruple — the scan kind is a pure performance knob, never an
/// axis of behavior — enforced by the randomized cross-check in
/// `tests/properties.rs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DispatchScanKind {
    /// Incremental ready-set dispatch (the default): rounds visit only
    /// chips with dispatchable work, via dense bit sets maintained at TSU
    /// enqueue/pop and data-burst arrival, and a round that ended on an
    /// exhausted controller pool parks until a release frees one.
    #[default]
    Incremental,
    /// The retained full-scan reference dispatcher: every round walks all
    /// chips (data bursts) and linearly scans the TSU for busy chips.
    /// O(chips) per round; kept for cross-checking the incremental engine.
    FullScan,
}

impl DispatchScanKind {
    /// Diagnostic label.
    pub fn label(&self) -> &'static str {
        match self {
            DispatchScanKind::Incremental => "incremental",
            DispatchScanKind::FullScan => "full-scan",
        }
    }
}

/// Live per-simulation policy state: the [`DispatchPolicyKind`] plus dense
/// per-chip arrays (see the module docs for the storage rule).
#[derive(Clone, Debug)]
pub(crate) struct PolicyState {
    /// The configured kind (what `RunMetrics.policy` reports; may be
    /// [`DispatchPolicyKind::Auto`]).
    configured: DispatchPolicyKind,
    /// The concrete policy driving decisions (never `Auto`).
    active: DispatchPolicyKind,
    /// Current dispatch round (monotone; one `begin_round` per round).
    round: u64,
    /// ConflictBackoff: first round in which the chip may be attempted again.
    backoff_until: Vec<u64>,
    /// ConflictBackoff: consecutive-failure exponent, reset on success.
    backoff_exp: Vec<u8>,
    /// RoundRobinQuota: round stamp of `quota_used` (avoids per-round clears).
    quota_round: Vec<u64>,
    /// RoundRobinQuota: attempts consumed this round.
    quota_used: Vec<u32>,
    /// Whether this round suppressed at least one attempt.
    skipped_this_round: bool,
    /// Whether this round acquired at least one path.
    dispatched_this_round: bool,
    stats: DispatchStats,
}

impl PolicyState {
    pub(crate) fn new(kind: DispatchPolicyKind, fabric: FabricKind, chips: usize) -> Self {
        let resolved = kind.resolve_for(fabric);
        debug_assert_ne!(resolved, DispatchPolicyKind::Auto, "Auto must resolve");
        PolicyState {
            configured: kind,
            active: resolved,
            round: 0,
            backoff_until: vec![0; chips],
            backoff_exp: vec![0; chips],
            quota_round: vec![u64::MAX; chips],
            quota_used: vec![0; chips],
            skipped_this_round: false,
            dispatched_this_round: false,
            stats: DispatchStats::default(),
        }
    }

    /// The configured kind, for reporting (`Auto` stays `Auto` so sweep
    /// labels and manifests round-trip).
    pub(crate) fn kind(&self) -> DispatchPolicyKind {
        self.configured
    }

    /// The concrete policy driving decisions (what `Auto` resolved to).
    #[cfg(test)]
    pub(crate) fn resolved(&self) -> DispatchPolicyKind {
        self.active
    }

    /// Starts a dispatch round.
    #[inline]
    pub(crate) fn begin_round(&mut self) {
        self.round += 1;
        self.stats.rounds += 1;
        self.skipped_this_round = false;
        self.dispatched_this_round = false;
    }

    /// Asks whether the dispatcher may issue one acquisition attempt for
    /// `chip` (whose oldest queued transaction is `queue_age_ns` old).
    /// Returns false when the policy suppresses the attempt; a true return
    /// *consumes* the attempt (it is counted, and it decrements the chip's
    /// round quota), so call it only immediately before `try_acquire`.
    #[inline]
    pub(crate) fn try_attempt(&mut self, chip: u16, queue_age_ns: u64) -> bool {
        let c = usize::from(chip);
        match self.active {
            DispatchPolicyKind::RetryAll => {}
            DispatchPolicyKind::ConflictBackoff => {
                if self.round < self.backoff_until[c] {
                    if queue_age_ns > STARVATION_NS {
                        // Starvation guard: attempt anyway and restart the
                        // chip's backoff schedule from scratch.
                        self.backoff_until[c] = 0;
                        self.backoff_exp[c] = 0;
                    } else {
                        self.stats.skipped_backoff += 1;
                        self.skipped_this_round = true;
                        return false;
                    }
                }
            }
            DispatchPolicyKind::RoundRobinQuota => {
                if self.quota_round[c] != self.round {
                    self.quota_round[c] = self.round;
                    self.quota_used[c] = 0;
                }
                if self.quota_used[c] >= ATTEMPT_QUOTA && queue_age_ns <= STARVATION_NS {
                    self.stats.skipped_backoff += 1;
                    self.skipped_this_round = true;
                    return false;
                }
                self.quota_used[c] += 1;
            }
            DispatchPolicyKind::Auto => {
                unreachable!("Auto resolves to a concrete policy at construction")
            }
        }
        self.stats.attempts += 1;
        true
    }

    /// Records a successful path acquisition for `chip`.
    #[inline]
    pub(crate) fn note_success(&mut self, chip: u16) {
        self.dispatched_this_round = true;
        if self.active == DispatchPolicyKind::ConflictBackoff {
            let c = usize::from(chip);
            self.backoff_until[c] = 0;
            self.backoff_exp[c] = 0;
        }
    }

    /// Records a failed path acquisition for `chip`.
    #[inline]
    pub(crate) fn note_failure(&mut self, chip: u16, err: &AcquireError) {
        if !err.is_path_conflict() {
            // Busy chips (Ideal's dedicated channels) and exhausted
            // controller pools are not the dispatcher's fault: no backoff.
            return;
        }
        self.stats.failed_walks += 1;
        if self.active == DispatchPolicyKind::ConflictBackoff {
            let c = usize::from(chip);
            let wait = (1u64 << self.backoff_exp[c]).min(BACKOFF_MAX_ROUNDS);
            self.backoff_until[c] = self.round + 1 + wait;
            if (1u64 << self.backoff_exp[c]) < BACKOFF_MAX_ROUNDS {
                self.backoff_exp[c] += 1;
            }
        }
    }

    /// True when this round acquired at least one path (the fault-mode
    /// liveness probe re-arms dispatch only for rounds that moved nothing).
    #[inline]
    pub(crate) fn round_dispatched(&self) -> bool {
        self.dispatched_this_round
    }

    /// True when this round suppressed work without dispatching anything:
    /// the caller must schedule a future dispatch probe, because no
    /// in-flight event is guaranteed to re-trigger dispatch and the
    /// skipped work would otherwise strand.
    #[inline]
    pub(crate) fn round_needs_probe(&self) -> bool {
        self.skipped_this_round && !self.dispatched_this_round
    }

    pub(crate) fn stats(&self) -> DispatchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_interconnect::ConflictReason;

    const CONFLICT: AcquireError = AcquireError::PathConflict(ConflictReason::ScoutExhausted);

    #[test]
    fn labels_round_trip() {
        for kind in DispatchPolicyKind::ALL {
            assert_eq!(DispatchPolicyKind::by_label(kind.label()), Some(kind));
        }
        assert_eq!(
            DispatchPolicyKind::by_label("Conflict-Backoff"),
            Some(DispatchPolicyKind::ConflictBackoff)
        );
        assert_eq!(DispatchPolicyKind::by_label("fifo"), None);
        assert_eq!(DispatchPolicyKind::default(), DispatchPolicyKind::RetryAll);
    }

    #[test]
    fn auto_resolves_per_fabric_and_reports_itself() {
        for fabric in FabricKind::ALL {
            let expect = match fabric {
                FabricKind::NoSsd | FabricKind::Venice => DispatchPolicyKind::ConflictBackoff,
                _ => DispatchPolicyKind::RetryAll,
            };
            assert_eq!(DispatchPolicyKind::Auto.resolve_for(fabric), expect, "{fabric}");
            let p = PolicyState::new(DispatchPolicyKind::Auto, fabric, 4);
            assert_eq!(p.kind(), DispatchPolicyKind::Auto, "metrics report `auto`");
            assert_eq!(p.resolved(), expect, "{fabric}");
            // Concrete kinds resolve to themselves on every fabric.
            for kind in [
                DispatchPolicyKind::RetryAll,
                DispatchPolicyKind::ConflictBackoff,
                DispatchPolicyKind::RoundRobinQuota,
            ] {
                assert_eq!(kind.resolve_for(fabric), kind);
            }
        }
    }

    #[test]
    fn auto_backs_off_like_conflict_backoff_on_mesh_fabrics() {
        let mut p = PolicyState::new(DispatchPolicyKind::Auto, FabricKind::Venice, 1);
        p.begin_round();
        assert!(p.try_attempt(0, 0));
        p.note_failure(0, &CONFLICT);
        p.begin_round();
        assert!(!p.try_attempt(0, 0), "auto-on-mesh backs off after a conflict");
        // On a bus fabric Auto is RetryAll: never skips.
        let mut bus = PolicyState::new(DispatchPolicyKind::Auto, FabricKind::Baseline, 1);
        bus.begin_round();
        assert!(bus.try_attempt(0, 0));
        bus.note_failure(0, &CONFLICT);
        bus.begin_round();
        assert!(bus.try_attempt(0, 0), "auto-on-bus retries everything");
    }

    #[test]
    fn retry_all_never_skips() {
        let mut p = PolicyState::new(DispatchPolicyKind::RetryAll, FabricKind::Venice, 4);
        for _ in 0..10 {
            p.begin_round();
            for chip in 0..4 {
                assert!(p.try_attempt(chip, 0));
                p.note_failure(chip, &CONFLICT);
            }
            assert!(!p.round_needs_probe());
        }
        let s = p.stats();
        assert_eq!(s.rounds, 10);
        assert_eq!(s.attempts, 40);
        assert_eq!(s.skipped_backoff, 0);
        assert_eq!(s.failed_walks, 40);
    }

    #[test]
    fn backoff_grows_exponentially_and_resets_on_success() {
        let mut p = PolicyState::new(DispatchPolicyKind::ConflictBackoff, FabricKind::Venice, 2);
        // First failure: skipped for 1 round, then eligible again.
        p.begin_round();
        assert!(p.try_attempt(0, 0));
        p.note_failure(0, &CONFLICT);
        p.begin_round();
        assert!(!p.try_attempt(0, 0), "one-round backoff");
        assert!(p.round_needs_probe());
        p.begin_round();
        assert!(p.try_attempt(0, 0), "backoff expired");
        // Second consecutive failure: two rounds of skip.
        p.note_failure(0, &CONFLICT);
        p.begin_round();
        assert!(!p.try_attempt(0, 0));
        p.begin_round();
        assert!(!p.try_attempt(0, 0));
        p.begin_round();
        assert!(p.try_attempt(0, 0));
        // A success clears the schedule entirely.
        p.note_success(0);
        p.note_failure(0, &CONFLICT);
        p.begin_round();
        assert!(!p.try_attempt(0, 0), "restarted at one round");
        p.begin_round();
        assert!(p.try_attempt(0, 0));
        // Chip 1 was never penalized.
        assert_eq!(p.stats().skipped_backoff, 4);
    }

    #[test]
    fn busy_chip_failures_do_not_back_off() {
        let mut p = PolicyState::new(DispatchPolicyKind::ConflictBackoff, FabricKind::Venice, 1);
        p.begin_round();
        assert!(p.try_attempt(0, 0));
        p.note_failure(0, &AcquireError::ChannelBusy);
        p.note_failure(0, &AcquireError::NoFreeController);
        p.begin_round();
        assert!(p.try_attempt(0, 0), "non-conflict failures never back off");
        assert_eq!(p.stats().failed_walks, 0);
    }

    #[test]
    fn starving_chips_bypass_backoff() {
        let mut p = PolicyState::new(DispatchPolicyKind::ConflictBackoff, FabricKind::Venice, 1);
        p.begin_round();
        assert!(p.try_attempt(0, 0));
        p.note_failure(0, &CONFLICT);
        p.begin_round();
        assert!(
            p.try_attempt(0, STARVATION_NS + 1),
            "starvation guard overrides backoff"
        );
    }

    #[test]
    fn quota_caps_attempts_per_round() {
        let mut p = PolicyState::new(DispatchPolicyKind::RoundRobinQuota, FabricKind::Venice, 2);
        p.begin_round();
        for _ in 0..ATTEMPT_QUOTA {
            assert!(p.try_attempt(0, 0));
        }
        assert!(!p.try_attempt(0, 0), "quota exhausted");
        assert!(p.try_attempt(0, STARVATION_NS + 1), "starving chip exempt");
        assert!(p.try_attempt(1, 0), "other chips unaffected");
        p.begin_round();
        assert!(p.try_attempt(0, 0), "quota refills each round");
    }

    #[test]
    fn backoff_wait_caps_at_max_rounds() {
        let mut p = PolicyState::new(DispatchPolicyKind::ConflictBackoff, FabricKind::Venice, 1);
        for _ in 0..20 {
            p.begin_round();
            if p.try_attempt(0, 0) {
                p.note_failure(0, &CONFLICT);
            }
        }
        // After repeated failures the schedule is capped, not unbounded.
        let mut waited = 0u64;
        loop {
            p.begin_round();
            if p.try_attempt(0, 0) {
                break;
            }
            waited += 1;
            assert!(waited <= BACKOFF_MAX_ROUNDS, "wait exceeded the cap");
        }
    }
}
