//! Run metrics: everything the paper's figures report.

use venice_ftl::FtlStats;
use venice_hil::HilStats;
use venice_interconnect::FabricStats;
use venice_sim::stats::LatencySamples;
use venice_sim::{SimDuration, SimTime};

use venice_hil::DeadlineClass;

use crate::dispatch::DispatchStats;
use crate::report::{json_f64, json_str};
use crate::{DispatchPolicyKind, RedundancyKind, ResiliencePolicy};

/// How a run ended (part of [`RunMetrics`] and the sweep manifest's
/// per-point `status` field).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RunStatus {
    /// The trace ran to completion (failed-with-error requests included:
    /// they *complete*, with error status — see `failed_requests`).
    #[default]
    Complete,
    /// The watchdog ended the run early (`SsdConfig::max_events` /
    /// `max_sim_ns`): partial metrics, queue not drained.
    Aborted,
    /// The run panicked; a sweep worker caught it and recorded this
    /// placeholder instead of a result (see `RunMetrics::failed`).
    Failed,
}

impl RunStatus {
    /// Stable label used in manifests and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RunStatus::Complete => "complete",
            RunStatus::Aborted => "aborted",
            RunStatus::Failed => "failed",
        }
    }
}

/// Per-tenant metrics of one run: the QoS view of [`RunMetrics`].
///
/// One entry per tenant in the run's [`crate::TenantSet`] (a single
/// `all` entry on the default single-tenant path). Latencies, completions,
/// conflicts, back-pressure, and failures are accounted to the tenant that
/// issued the request.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantMetrics {
    /// Tenant (namespace) name from the [`crate::TenantSpec`].
    pub name: &'static str,
    /// The tenant's WRR arbitration weight.
    pub weight: u32,
    /// The tenant's queue-depth cap (0 = unlimited).
    pub qd_cap: u32,
    /// The tenant's deadline contract class (inert unless the resilience
    /// policy arms deadlines).
    pub deadline_class: DeadlineClass,
    /// End-to-end latencies of this tenant's requests.
    pub latencies: LatencySamples,
    /// Requests of this tenant that completed.
    pub completed: u64,
    /// This tenant's requests that experienced at least one path conflict.
    pub conflicted: u64,
    /// Submissions of this tenant rejected on a full queue.
    pub backpressured: u64,
    /// This tenant's requests that completed with error status.
    pub failed: u64,
    /// This tenant's requests that hit unreconstructable data loss
    /// ([`crate::RequestOutcome::DataLoss`]; a subset of `failed`).
    pub data_loss: u64,
    /// This tenant's requests whose final attempt was aborted by its
    /// deadline (a subset of `failed`).
    pub deadline_misses: u64,
    /// Host resubmissions charged to this tenant by the retry policy.
    pub host_retries: u64,
    /// This tenant's requests shed by the overload admission policy.
    pub shed: u64,
    /// This tenant's requests that completed successfully within their
    /// deadline (all successful completions when deadlines are unarmed).
    pub deadline_met: u64,
}

impl TenantMetrics {
    /// Median end-to-end latency of this tenant's requests (zero when the
    /// tenant completed nothing).
    pub fn p50(&self) -> SimDuration {
        self.quantile(0.50)
    }

    /// 99th-percentile end-to-end latency of this tenant's requests (zero
    /// when the tenant completed nothing).
    pub fn p99(&self) -> SimDuration {
        self.quantile(0.99)
    }

    fn quantile(&self, q: f64) -> SimDuration {
        let mut lat = self.latencies.clone();
        if lat.is_empty() {
            SimDuration::ZERO
        } else {
            lat.percentile(q)
        }
    }
}

/// Metrics of one simulated run (one workload × one system × one config).
///
/// Derives `PartialEq` so determinism tests can compare whole runs (the
/// engine is bit-for-bit reproducible for a `(config, system, trace)`
/// triple, regardless of sweep parallelism).
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// The fabric under test.
    pub system: venice_interconnect::FabricKind,
    /// Workload name.
    pub workload: String,
    /// Configuration name.
    pub config: &'static str,
    /// Dispatch policy the run used.
    pub policy: DispatchPolicyKind,
    /// Scout fast-fail cache mode the run used (Venice-only knob; other
    /// fabrics carry it as configured but never consult it).
    pub scout_cache: venice_interconnect::ScoutCacheKind,
    /// Requests completed.
    pub completed_requests: u64,
    /// Overall execution time: first arrival to last completion (the paper's
    /// speedup metric is the ratio of these).
    pub execution_time: SimDuration,
    /// End-to-end request latencies.
    pub latencies: LatencySamples,
    /// Requests that experienced at least one path conflict (Figure 13).
    pub conflicted_requests: u64,
    /// Total SSD energy, millijoules.
    pub energy_mj: f64,
    /// Average SSD power, milliwatts.
    pub avg_power_mw: f64,
    /// Fabric-level statistics.
    pub fabric: FabricStats,
    /// FTL statistics (GC, wear leveling, write amplification).
    pub ftl: FtlStats,
    /// Host-interface statistics.
    pub hil: HilStats,
    /// Per-tenant QoS metrics, indexed by tenant id (one `all` entry on
    /// the single-tenant default; empty only in failed placeholders).
    pub tenants: Vec<TenantMetrics>,
    /// Dispatcher statistics (rounds, attempts, policy skips, failed walks).
    pub dispatch: DispatchStats,
    /// Total flash transactions executed.
    pub transactions: u64,
    /// Total simulator events scheduled on the calendar. A finished run
    /// drains its queue, so this also equals the events processed — the
    /// numerator of the harness's events/sec throughput summary.
    pub events: u64,
    /// Simulation end time.
    pub end_time: SimTime,
    /// How the run ended (complete / watchdog-aborted / worker-failed).
    pub status: RunStatus,
    /// Fault-plan actions delivered (faults *and* repairs); zero under
    /// [`crate::FaultPlan::None`].
    pub faults_injected: u64,
    /// Fabric faults still outstanding (unrepaired) at run end.
    pub faults_active: u64,
    /// NAND program/erase operations retried after a transient failure.
    pub retried_ops: u64,
    /// Requests that completed *with error status* because a chip or its
    /// only path died. They count in `completed_requests` (the calendar
    /// never stalls on them) but not toward availability.
    pub failed_requests: u64,
    /// Host-resilience preset the run used (`None` on the default path).
    pub resilience: ResiliencePolicy,
    /// Requests whose final attempt was aborted by its deadline
    /// ([`crate::RequestOutcome::DeadlineMiss`]; a subset of
    /// `failed_requests`).
    pub deadline_misses: u64,
    /// Host resubmissions performed by the bounded retry policy.
    pub host_retries: u64,
    /// Requests shed at submission by the overload admission policy. Shed
    /// requests never enter the device: `completed_requests +
    /// shed_requests` partitions the trace.
    pub shed_requests: u64,
    /// Requests that completed successfully within their deadline — the
    /// goodput numerator. With deadlines unarmed this equals the
    /// successful completions (`completed_requests - failed_requests`).
    pub deadline_met_requests: u64,
    /// Die-level redundancy scheme the run used (`None` on the default
    /// path).
    pub redundancy: RedundancyKind,
    /// Foreground reads served by parity reconstruction (the read landed
    /// on a dead chip and fanned out to the surviving group members
    /// instead of failing).
    pub degraded_reads: u64,
    /// Pages the background rebuild engine reconstructed and remapped off
    /// the dead chip.
    pub rebuilt_pages: u64,
    /// Dead-chip pages the rebuild engine gave up on (no parity-group
    /// survivor was spawnable — peers media-dead, unreachable behind a
    /// fabric fault, or migration-busy). Non-zero means the recovery is
    /// incomplete even if `rebuild_done_ns` is set.
    pub rebuild_skipped_pages: u64,
    /// Absolute simulation time (ns) at which the background rebuild
    /// finished draining — the MTTR endpoint (`rebuild_done_ns` minus the
    /// fault-plan injection time is the rebuild makespan). Zero when no
    /// rebuild ran or it did not finish.
    pub rebuild_done_ns: u64,
    /// Requests that hit unreconstructable data loss
    /// ([`crate::RequestOutcome::DataLoss`]; a subset of
    /// `failed_requests`).
    pub data_loss_requests: u64,
}

impl RunMetrics {
    /// I/O operations per second.
    pub fn iops(&self) -> f64 {
        let secs = self.execution_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed_requests as f64 / secs
        }
    }

    /// Speedup of this run over a baseline run of the same workload:
    /// the ratio of overall execution times.
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        assert_eq!(self.workload, baseline.workload, "speedup across workloads");
        baseline.execution_time.as_secs_f64() / self.execution_time.as_secs_f64().max(1e-12)
    }

    /// Fraction of requests that experienced path conflicts, in percent.
    pub fn conflict_pct(&self) -> f64 {
        if self.completed_requests == 0 {
            0.0
        } else {
            self.conflicted_requests as f64 / self.completed_requests as f64 * 100.0
        }
    }

    /// 99th-percentile end-to-end latency.
    pub fn p99(&mut self) -> SimDuration {
        self.latencies.percentile(0.99)
    }

    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> SimDuration {
        self.latencies.mean()
    }

    /// Fraction of completed requests that completed *successfully* (no
    /// dead-chip / dead-path error): the fault ablation's availability
    /// metric. 1.0 for a clean run; 0.0 when nothing completed.
    ///
    /// What it covers: the engine's ability to keep *completing* requests
    /// around faults — dead paths routed around, dead chips fail-stopped,
    /// degraded reads reconstructed (a reconstructed read counts as a
    /// success). What it does **not** cover: durability. Without
    /// redundancy a dead chip's data is gone; those requests complete with
    /// [`crate::RequestOutcome::DataLoss`] and are counted here merely as
    /// failures — see `data_loss_requests` for the durability story.
    pub fn availability(&self) -> f64 {
        if self.completed_requests == 0 {
            0.0
        } else {
            (self.completed_requests - self.failed_requests) as f64
                / self.completed_requests as f64
        }
    }

    /// Goodput: deadline-met successful completions per second (the
    /// resilience ablation's headline metric). With every resilience knob
    /// off this is the successful-completion IOPS.
    pub fn goodput(&self) -> f64 {
        let secs = self.execution_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.deadline_met_requests as f64 / secs
        }
    }

    /// Jain's fairness index over weight-normalized per-tenant throughput:
    /// `J = (Σxᵢ)² / (n·Σxᵢ²)` with `xᵢ = completedᵢ / weightᵢ`.
    ///
    /// 1.0 means every tenant got throughput exactly proportional to its
    /// WRR weight; `1/n` means one tenant monopolized the device. Trivially
    /// 1.0 for single-tenant runs and for runs where no tenant completed
    /// anything.
    pub fn fairness_index(&self) -> f64 {
        let n = self.tenants.len();
        if n <= 1 {
            return 1.0;
        }
        let shares: Vec<f64> = self
            .tenants
            .iter()
            .map(|t| t.completed as f64 / f64::from(t.weight.max(1)))
            .collect();
        let sum: f64 = shares.iter().sum();
        let sq_sum: f64 = shares.iter().map(|x| x * x).sum();
        if sq_sum <= 0.0 {
            return 1.0;
        }
        sum * sum / (n as f64 * sq_sum)
    }

    /// A placeholder record for a sweep point whose run panicked: zero
    /// metrics, [`RunStatus::Failed`], carrying just enough identity
    /// (system / workload / config) for the manifest to report the failure
    /// instead of erroring the whole sweep.
    pub fn failed(
        system: venice_interconnect::FabricKind,
        workload: &str,
        config: &'static str,
    ) -> RunMetrics {
        RunMetrics {
            system,
            workload: workload.to_string(),
            config,
            policy: DispatchPolicyKind::RetryAll,
            scout_cache: venice_interconnect::ScoutCacheKind::Off,
            completed_requests: 0,
            execution_time: SimDuration::ZERO,
            latencies: LatencySamples::new(),
            conflicted_requests: 0,
            energy_mj: 0.0,
            avg_power_mw: 0.0,
            fabric: FabricStats::default(),
            ftl: FtlStats::default(),
            hil: HilStats::default(),
            tenants: Vec::new(),
            dispatch: DispatchStats::default(),
            transactions: 0,
            events: 0,
            end_time: SimTime::ZERO,
            status: RunStatus::Failed,
            faults_injected: 0,
            faults_active: 0,
            retried_ops: 0,
            failed_requests: 0,
            resilience: ResiliencePolicy::None,
            deadline_misses: 0,
            host_retries: 0,
            shed_requests: 0,
            deadline_met_requests: 0,
            redundancy: RedundancyKind::None,
            degraded_reads: 0,
            rebuilt_pages: 0,
            rebuild_skipped_pages: 0,
            rebuild_done_ns: 0,
            data_loss_requests: 0,
        }
    }

    /// Serializes the run as one stable JSON object (the sweep engine's
    /// per-point record format).
    ///
    /// The workspace builds without registry access, so JSON is emitted by
    /// hand: field order is fixed, integers print exactly, and floats use
    /// Rust's shortest round-trip `Display` — the same metrics always
    /// produce the same bytes, which is what lets sweep manifests carry a
    /// content fingerprint. Raw latency samples are summarized (count,
    /// mean, p50/p95/p99, max) rather than dumped.
    pub fn to_json(&self) -> String {
        let mut lat = self.latencies.clone();
        // Zero-sample runs serialize as zero latencies (percentile() would
        // panic on an empty sample set, and RunMetrics with no completions
        // is a valid value everywhere else).
        let q = |l: &mut LatencySamples, q: f64| {
            if l.is_empty() {
                0
            } else {
                l.percentile(q).as_nanos()
            }
        };
        let (p50, p95, p99, max) = (
            q(&mut lat, 0.50),
            q(&mut lat, 0.95),
            q(&mut lat, 0.99),
            q(&mut lat, 1.0),
        );
        let fb = &self.fabric;
        let ftl = &self.ftl;
        let hil = &self.hil;
        let dsp = &self.dispatch;
        // Per-tenant QoS records: variable-length, so pre-rendered with the
        // same fixed field order and hand-formatting as the outer object.
        let mut tenants_json = String::new();
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                tenants_json.push_str(", ");
            }
            tenants_json.push_str(&format!(
                "{{\"name\": {}, \"weight\": {}, \"qd_cap\": {}, \
                 \"deadline_class\": {}, \
                 \"completed\": {}, \"conflicted\": {}, \"backpressured\": {}, \
                 \"failed\": {}, \"data_loss\": {}, \"deadline_misses\": {}, \
                 \"host_retries\": {}, \
                 \"shed\": {}, \"deadline_met\": {}, \
                 \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                json_str(t.name),
                t.weight,
                t.qd_cap,
                json_str(t.deadline_class.label()),
                t.completed,
                t.conflicted,
                t.backpressured,
                t.failed,
                t.data_loss,
                t.deadline_misses,
                t.host_retries,
                t.shed,
                t.deadline_met,
                t.latencies.mean().as_nanos(),
                t.p50().as_nanos(),
                t.p99().as_nanos(),
            ));
        }
        format!(
            "{{\n  \"system\": {},\n  \"workload\": {},\n  \"config\": {},\n  \
             \"policy\": {},\n  \"scout_cache\": {},\n  \
             \"completed_requests\": {},\n  \"execution_time_ns\": {},\n  \
             \"iops\": {},\n  \"latency\": {{\"samples\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}},\n  \
             \"conflicted_requests\": {},\n  \"conflict_pct\": {},\n  \
             \"energy_mj\": {},\n  \"avg_power_mw\": {},\n  \
             \"fabric\": {{\"acquisitions\": {}, \"conflicts\": {}, \
             \"controller_unavailable\": {}, \"channel_busy\": {}, \
             \"transfers\": {}, \"bytes\": {}, \"transfer_energy_nj\": {}, \
             \"scout_steps\": {}, \"scout_detours\": {}, \"scout_misroutes\": {}, \
             \"scout_failed_steps\": {}, \"scout_fastfails\": {}, \
             \"scout_cache_invalidations\": {}, \"hops_total\": {}}},\n  \
             \"ftl\": {{\"user_writes\": {}, \"user_reads\": {}, \
             \"gc_relocations\": {}, \"gc_erases\": {}, \"wear_relocations\": {}, \
             \"wear_erases\": {}, \"stale_relocations\": {}, \
             \"write_amplification\": {}}},\n  \
             \"hil\": {{\"submitted\": {}, \"backpressured\": {}, \
             \"fetched\": {}, \"completed\": {}}},\n  \
             \"tenants\": [{}],\n  \"fairness_index\": {},\n  \
             \"dispatch\": {{\"rounds\": {}, \"attempts\": {}, \
             \"skipped_backoff\": {}, \"failed_walks\": {}}},\n  \
             \"status\": {},\n  \
             \"faults\": {{\"injected\": {}, \"active\": {}, \"retried_ops\": {}, \
             \"failed_requests\": {}, \"availability\": {}}},\n  \
             \"resilience\": {{\"policy\": {}, \"deadline_met\": {}, \
             \"deadline_misses\": {}, \"host_retries\": {}, \
             \"shed_requests\": {}, \"goodput\": {}}},\n  \
             \"redundancy\": {{\"kind\": {}, \"degraded_reads\": {}, \
             \"rebuilt_pages\": {}, \"rebuild_skipped_pages\": {}, \
             \"rebuild_done_ns\": {}, \
             \"data_loss_requests\": {}}},\n  \
             \"transactions\": {},\n  \"events\": {},\n  \"end_time_ns\": {}\n}}\n",
            json_str(self.system.label()),
            json_str(&self.workload),
            json_str(self.config),
            json_str(self.policy.label()),
            json_str(self.scout_cache.label()),
            self.completed_requests,
            self.execution_time.as_nanos(),
            json_f64(self.iops()),
            lat.len(),
            self.mean_latency().as_nanos(),
            p50,
            p95,
            p99,
            max,
            self.conflicted_requests,
            json_f64(self.conflict_pct()),
            json_f64(self.energy_mj),
            json_f64(self.avg_power_mw),
            fb.acquisitions,
            fb.conflicts,
            fb.controller_unavailable,
            fb.channel_busy,
            fb.transfers,
            fb.bytes,
            json_f64(fb.transfer_energy_nj),
            fb.scout_steps,
            fb.scout_detours,
            fb.scout_misroutes,
            fb.scout_failed_steps,
            fb.scout_fastfails,
            fb.scout_cache_invalidations,
            fb.hops_total,
            ftl.user_writes,
            ftl.user_reads,
            ftl.gc_relocations,
            ftl.gc_erases,
            ftl.wear_relocations,
            ftl.wear_erases,
            ftl.stale_relocations,
            json_f64(ftl.write_amplification()),
            hil.submitted,
            hil.backpressured,
            hil.fetched,
            hil.completed,
            tenants_json,
            json_f64(self.fairness_index()),
            dsp.rounds,
            dsp.attempts,
            dsp.skipped_backoff,
            dsp.failed_walks,
            json_str(self.status.label()),
            self.faults_injected,
            self.faults_active,
            self.retried_ops,
            self.failed_requests,
            json_f64(self.availability()),
            json_str(self.resilience.label()),
            self.deadline_met_requests,
            self.deadline_misses,
            self.host_retries,
            self.shed_requests,
            json_f64(self.goodput()),
            json_str(&self.redundancy.label()),
            self.degraded_reads,
            self.rebuilt_pages,
            self.rebuild_skipped_pages,
            self.rebuild_done_ns,
            self.data_loss_requests,
            self.transactions,
            self.events,
            self.end_time.as_nanos(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_interconnect::FabricKind;

    fn metrics(exec_us: u64, requests: u64) -> RunMetrics {
        let mut latencies = LatencySamples::new();
        for i in 0..requests {
            latencies.record(SimDuration::from_micros(i + 1));
        }
        RunMetrics {
            system: FabricKind::Baseline,
            workload: "t".into(),
            config: "test",
            policy: DispatchPolicyKind::RetryAll,
            scout_cache: venice_interconnect::ScoutCacheKind::Off,
            completed_requests: requests,
            execution_time: SimDuration::from_micros(exec_us),
            latencies,
            conflicted_requests: requests / 4,
            energy_mj: 10.0,
            avg_power_mw: 100.0,
            fabric: FabricStats::default(),
            ftl: FtlStats::default(),
            hil: HilStats::default(),
            tenants: vec![TenantMetrics {
                name: "all",
                weight: 1,
                qd_cap: 0,
                deadline_class: DeadlineClass::Default,
                latencies: LatencySamples::new(),
                completed: requests,
                conflicted: 0,
                backpressured: 0,
                failed: 0,
                data_loss: 0,
                deadline_misses: 0,
                host_retries: 0,
                shed: 0,
                deadline_met: requests,
            }],
            dispatch: DispatchStats::default(),
            transactions: requests,
            events: requests * 4,
            end_time: SimTime::from_micros(exec_us),
            status: RunStatus::Complete,
            faults_injected: 0,
            faults_active: 0,
            retried_ops: 0,
            failed_requests: 0,
            resilience: ResiliencePolicy::None,
            deadline_misses: 0,
            host_retries: 0,
            shed_requests: 0,
            deadline_met_requests: requests,
            redundancy: RedundancyKind::None,
            degraded_reads: 0,
            rebuilt_pages: 0,
            rebuild_skipped_pages: 0,
            rebuild_done_ns: 0,
            data_loss_requests: 0,
        }
    }

    #[test]
    fn iops_and_speedup() {
        let base = metrics(1_000, 100);
        let fast = metrics(250, 100);
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-9);
        // 100 requests in 1 ms = 100k IOPS.
        assert!((base.iops() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn conflict_percentage() {
        let m = metrics(1_000, 100);
        assert!((m.conflict_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn p99_from_samples() {
        let mut m = metrics(1_000, 100);
        assert_eq!(m.p99(), SimDuration::from_micros(99));
    }

    #[test]
    fn zero_division_guards() {
        let m = metrics(0, 0);
        assert_eq!(m.iops(), 0.0);
        assert_eq!(m.conflict_pct(), 0.0);
        assert_eq!(m.availability(), 0.0);
    }

    #[test]
    fn availability_excludes_failed_completions() {
        let mut m = metrics(1_000, 100);
        assert_eq!(m.availability(), 1.0);
        m.failed_requests = 25;
        assert!((m.availability() - 0.75).abs() < 1e-12);
        let json = m.to_json();
        assert!(json.contains("\"failed_requests\": 25"));
        assert!(json.contains("\"availability\": 0.75"));
    }

    #[test]
    fn failed_placeholder_serializes_with_failed_status() {
        let m = RunMetrics::failed(FabricKind::Venice, "wl", "test");
        assert_eq!(m.status, RunStatus::Failed);
        assert_eq!(m.status.label(), "failed");
        let json = m.to_json();
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("\"system\": \"Venice\""));
        assert_eq!(RunStatus::Aborted.label(), "aborted");
        assert_eq!(RunStatus::default(), RunStatus::Complete);
    }

    fn tenant(name: &'static str, weight: u32, completed: u64) -> TenantMetrics {
        let mut latencies = LatencySamples::new();
        for i in 0..completed {
            latencies.record(SimDuration::from_micros(i + 1));
        }
        TenantMetrics {
            name,
            weight,
            qd_cap: 0,
            deadline_class: DeadlineClass::Default,
            latencies,
            completed,
            conflicted: completed / 10,
            backpressured: 0,
            failed: 0,
            data_loss: 0,
            deadline_misses: 0,
            host_retries: 0,
            shed: 0,
            deadline_met: completed,
        }
    }

    #[test]
    fn goodput_counts_deadline_met_completions_per_second() {
        // 100 requests in 1 ms, all deadline-met: goodput = IOPS = 100k.
        let mut m = metrics(1_000, 100);
        assert!((m.goodput() - m.iops()).abs() < 1e-9);
        // Misses and sheds drop out of the numerator.
        m.deadline_met_requests = 40;
        m.deadline_misses = 50;
        m.shed_requests = 10;
        assert!((m.goodput() - 40_000.0).abs() < 1.0);
        let json = m.to_json();
        assert!(json.contains("\"deadline_misses\": 50"));
        assert!(json.contains("\"shed_requests\": 10"));
        assert!(json.contains("\"goodput\": 40000"));
        // Zero execution time guards the division.
        assert_eq!(metrics(0, 0).goodput(), 0.0);
    }

    #[test]
    fn fairness_index_matches_jain() {
        let mut m = metrics(1_000, 100);
        // Single tenant: trivially fair.
        assert_eq!(m.fairness_index(), 1.0);
        // Two equal-weight tenants with equal throughput: J = 1.
        m.tenants = vec![tenant("a", 1, 50), tenant("b", 1, 50)];
        assert!((m.fairness_index() - 1.0).abs() < 1e-12);
        // One tenant monopolizes: J = 1/2.
        m.tenants = vec![tenant("a", 1, 100), tenant("b", 1, 0)];
        assert!((m.fairness_index() - 0.5).abs() < 1e-12);
        // Weight-normalized: 3:1 throughput under 3:1 weights is fair.
        m.tenants = vec![tenant("a", 3, 75), tenant("b", 1, 25)];
        assert!((m.fairness_index() - 1.0).abs() < 1e-12);
        // Nothing completed: defined as fair, not NaN.
        m.tenants = vec![tenant("a", 1, 0), tenant("b", 1, 0)];
        assert_eq!(m.fairness_index(), 1.0);
    }

    #[test]
    fn tenant_percentiles_and_json_section() {
        let mut m = metrics(1_000, 100);
        m.tenants = vec![tenant("victim", 4, 60), tenant("aggressor", 1, 40)];
        let v = &m.tenants[0];
        assert_eq!(v.p50(), SimDuration::from_micros(30));
        assert_eq!(v.p99(), SimDuration::from_micros(60));
        // Empty tenants serialize zero percentiles instead of panicking.
        assert_eq!(tenant("idle", 1, 0).p99(), SimDuration::ZERO);
        let json = m.to_json();
        assert!(json.contains("\"tenants\": [{\"name\": \"victim\", \"weight\": 4,"));
        assert!(json.contains("{\"name\": \"aggressor\", \"weight\": 1,"));
        assert!(json.contains("\"fairness_index\": "));
        assert!(json.contains("\"p99_ns\": 60000"));
        // The failed placeholder carries no tenants but still serializes.
        let failed = RunMetrics::failed(FabricKind::Venice, "wl", "test");
        assert_eq!(failed.fairness_index(), 1.0);
        assert!(failed.to_json().contains("\"tenants\": []"));
    }

    #[test]
    fn redundancy_counters_serialize_in_their_own_section() {
        let mut m = metrics(1_000, 100);
        let json = m.to_json();
        assert!(json.contains(
            "\"redundancy\": {\"kind\": \"none\", \"degraded_reads\": 0, \
             \"rebuilt_pages\": 0, \"rebuild_skipped_pages\": 0, \
             \"rebuild_done_ns\": 0, \"data_loss_requests\": 0}"
        ));
        m.redundancy = RedundancyKind::Parity { group: 4 };
        m.degraded_reads = 7;
        m.rebuilt_pages = 123;
        m.rebuild_done_ns = 456_000;
        m.data_loss_requests = 0;
        m.tenants[0].data_loss = 0;
        m.tenants[0].deadline_class = DeadlineClass::Latency;
        let armed = m.to_json();
        assert!(armed.contains("\"kind\": \"parity4\""));
        assert!(armed.contains("\"degraded_reads\": 7"));
        assert!(armed.contains("\"rebuilt_pages\": 123"));
        assert!(armed.contains("\"rebuild_done_ns\": 456000"));
        assert!(armed.contains("\"deadline_class\": \"latency\""));
        assert!(armed.contains("\"data_loss\": 0"));
    }

    #[test]
    fn json_is_stable_and_carries_key_fields() {
        let m = metrics(1_000, 100);
        let a = m.to_json();
        let b = m.to_json();
        assert_eq!(a, b, "serialization must be byte-stable");
        for needle in [
            "\"system\": \"Baseline\"",
            "\"workload\": \"t\"",
            "\"policy\": \"retry-all\"",
            "\"completed_requests\": 100",
            "\"execution_time_ns\": 1000000",
            "\"p99_ns\": 99000",
            "\"dispatch\": {\"rounds\": 0",
            "\"status\": \"complete\"",
            "\"faults\": {\"injected\": 0",
            "\"availability\": 1",
            "\"resilience\": {\"policy\": \"none\"",
            "\"deadline_met\": 100",
            "\"events\": 400",
        ] {
            assert!(a.contains(needle), "missing {needle} in {a}");
        }
        // Quotes in names must not break the JSON framing.
        let mut odd = metrics(10, 5);
        odd.workload = "we\"ird".into();
        assert!(odd.to_json().contains("\"we\\\"ird\""));
        // A zero-completion run (valid everywhere else) must serialize,
        // not panic on its empty latency sample set.
        let empty = metrics(0, 0).to_json();
        assert!(empty.contains("\"p99_ns\": 0"));
        assert!(empty.contains("\"samples\": 0"));
    }
}
