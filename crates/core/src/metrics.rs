//! Run metrics: everything the paper's figures report.

use venice_ftl::FtlStats;
use venice_hil::HilStats;
use venice_interconnect::FabricStats;
use venice_sim::stats::LatencySamples;
use venice_sim::{SimDuration, SimTime};

use crate::dispatch::DispatchStats;
use crate::report::{json_f64, json_str};
use crate::DispatchPolicyKind;

/// Metrics of one simulated run (one workload × one system × one config).
///
/// Derives `PartialEq` so determinism tests can compare whole runs (the
/// engine is bit-for-bit reproducible for a `(config, system, trace)`
/// triple, regardless of sweep parallelism).
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// The fabric under test.
    pub system: venice_interconnect::FabricKind,
    /// Workload name.
    pub workload: String,
    /// Configuration name.
    pub config: &'static str,
    /// Dispatch policy the run used.
    pub policy: DispatchPolicyKind,
    /// Scout fast-fail cache mode the run used (Venice-only knob; other
    /// fabrics carry it as configured but never consult it).
    pub scout_cache: venice_interconnect::ScoutCacheKind,
    /// Requests completed.
    pub completed_requests: u64,
    /// Overall execution time: first arrival to last completion (the paper's
    /// speedup metric is the ratio of these).
    pub execution_time: SimDuration,
    /// End-to-end request latencies.
    pub latencies: LatencySamples,
    /// Requests that experienced at least one path conflict (Figure 13).
    pub conflicted_requests: u64,
    /// Total SSD energy, millijoules.
    pub energy_mj: f64,
    /// Average SSD power, milliwatts.
    pub avg_power_mw: f64,
    /// Fabric-level statistics.
    pub fabric: FabricStats,
    /// FTL statistics (GC, wear leveling, write amplification).
    pub ftl: FtlStats,
    /// Host-interface statistics.
    pub hil: HilStats,
    /// Dispatcher statistics (rounds, attempts, policy skips, failed walks).
    pub dispatch: DispatchStats,
    /// Total flash transactions executed.
    pub transactions: u64,
    /// Total simulator events scheduled on the calendar. A finished run
    /// drains its queue, so this also equals the events processed — the
    /// numerator of the harness's events/sec throughput summary.
    pub events: u64,
    /// Simulation end time.
    pub end_time: SimTime,
}

impl RunMetrics {
    /// I/O operations per second.
    pub fn iops(&self) -> f64 {
        let secs = self.execution_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed_requests as f64 / secs
        }
    }

    /// Speedup of this run over a baseline run of the same workload:
    /// the ratio of overall execution times.
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        assert_eq!(self.workload, baseline.workload, "speedup across workloads");
        baseline.execution_time.as_secs_f64() / self.execution_time.as_secs_f64().max(1e-12)
    }

    /// Fraction of requests that experienced path conflicts, in percent.
    pub fn conflict_pct(&self) -> f64 {
        if self.completed_requests == 0 {
            0.0
        } else {
            self.conflicted_requests as f64 / self.completed_requests as f64 * 100.0
        }
    }

    /// 99th-percentile end-to-end latency.
    pub fn p99(&mut self) -> SimDuration {
        self.latencies.percentile(0.99)
    }

    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> SimDuration {
        self.latencies.mean()
    }

    /// Serializes the run as one stable JSON object (the sweep engine's
    /// per-point record format).
    ///
    /// The workspace builds without registry access, so JSON is emitted by
    /// hand: field order is fixed, integers print exactly, and floats use
    /// Rust's shortest round-trip `Display` — the same metrics always
    /// produce the same bytes, which is what lets sweep manifests carry a
    /// content fingerprint. Raw latency samples are summarized (count,
    /// mean, p50/p95/p99, max) rather than dumped.
    pub fn to_json(&self) -> String {
        let mut lat = self.latencies.clone();
        // Zero-sample runs serialize as zero latencies (percentile() would
        // panic on an empty sample set, and RunMetrics with no completions
        // is a valid value everywhere else).
        let q = |l: &mut LatencySamples, q: f64| {
            if l.is_empty() {
                0
            } else {
                l.percentile(q).as_nanos()
            }
        };
        let (p50, p95, p99, max) = (
            q(&mut lat, 0.50),
            q(&mut lat, 0.95),
            q(&mut lat, 0.99),
            q(&mut lat, 1.0),
        );
        let fb = &self.fabric;
        let ftl = &self.ftl;
        let hil = &self.hil;
        let dsp = &self.dispatch;
        format!(
            "{{\n  \"system\": {},\n  \"workload\": {},\n  \"config\": {},\n  \
             \"policy\": {},\n  \"scout_cache\": {},\n  \
             \"completed_requests\": {},\n  \"execution_time_ns\": {},\n  \
             \"iops\": {},\n  \"latency\": {{\"samples\": {}, \"mean_ns\": {}, \
             \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}},\n  \
             \"conflicted_requests\": {},\n  \"conflict_pct\": {},\n  \
             \"energy_mj\": {},\n  \"avg_power_mw\": {},\n  \
             \"fabric\": {{\"acquisitions\": {}, \"conflicts\": {}, \
             \"controller_unavailable\": {}, \"channel_busy\": {}, \
             \"transfers\": {}, \"bytes\": {}, \"transfer_energy_nj\": {}, \
             \"scout_steps\": {}, \"scout_detours\": {}, \"scout_misroutes\": {}, \
             \"scout_failed_steps\": {}, \"scout_fastfails\": {}, \
             \"scout_cache_invalidations\": {}, \"hops_total\": {}}},\n  \
             \"ftl\": {{\"user_writes\": {}, \"user_reads\": {}, \
             \"gc_relocations\": {}, \"gc_erases\": {}, \"wear_relocations\": {}, \
             \"wear_erases\": {}, \"stale_relocations\": {}, \
             \"write_amplification\": {}}},\n  \
             \"hil\": {{\"submitted\": {}, \"backpressured\": {}, \
             \"fetched\": {}, \"completed\": {}}},\n  \
             \"dispatch\": {{\"rounds\": {}, \"attempts\": {}, \
             \"skipped_backoff\": {}, \"failed_walks\": {}}},\n  \
             \"transactions\": {},\n  \"events\": {},\n  \"end_time_ns\": {}\n}}\n",
            json_str(self.system.label()),
            json_str(&self.workload),
            json_str(self.config),
            json_str(self.policy.label()),
            json_str(self.scout_cache.label()),
            self.completed_requests,
            self.execution_time.as_nanos(),
            json_f64(self.iops()),
            lat.len(),
            self.mean_latency().as_nanos(),
            p50,
            p95,
            p99,
            max,
            self.conflicted_requests,
            json_f64(self.conflict_pct()),
            json_f64(self.energy_mj),
            json_f64(self.avg_power_mw),
            fb.acquisitions,
            fb.conflicts,
            fb.controller_unavailable,
            fb.channel_busy,
            fb.transfers,
            fb.bytes,
            json_f64(fb.transfer_energy_nj),
            fb.scout_steps,
            fb.scout_detours,
            fb.scout_misroutes,
            fb.scout_failed_steps,
            fb.scout_fastfails,
            fb.scout_cache_invalidations,
            fb.hops_total,
            ftl.user_writes,
            ftl.user_reads,
            ftl.gc_relocations,
            ftl.gc_erases,
            ftl.wear_relocations,
            ftl.wear_erases,
            ftl.stale_relocations,
            json_f64(ftl.write_amplification()),
            hil.submitted,
            hil.backpressured,
            hil.fetched,
            hil.completed,
            dsp.rounds,
            dsp.attempts,
            dsp.skipped_backoff,
            dsp.failed_walks,
            self.transactions,
            self.events,
            self.end_time.as_nanos(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_interconnect::FabricKind;

    fn metrics(exec_us: u64, requests: u64) -> RunMetrics {
        let mut latencies = LatencySamples::new();
        for i in 0..requests {
            latencies.record(SimDuration::from_micros(i + 1));
        }
        RunMetrics {
            system: FabricKind::Baseline,
            workload: "t".into(),
            config: "test",
            policy: DispatchPolicyKind::RetryAll,
            scout_cache: venice_interconnect::ScoutCacheKind::Off,
            completed_requests: requests,
            execution_time: SimDuration::from_micros(exec_us),
            latencies,
            conflicted_requests: requests / 4,
            energy_mj: 10.0,
            avg_power_mw: 100.0,
            fabric: FabricStats::default(),
            ftl: FtlStats::default(),
            hil: HilStats::default(),
            dispatch: DispatchStats::default(),
            transactions: requests,
            events: requests * 4,
            end_time: SimTime::from_micros(exec_us),
        }
    }

    #[test]
    fn iops_and_speedup() {
        let base = metrics(1_000, 100);
        let fast = metrics(250, 100);
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-9);
        // 100 requests in 1 ms = 100k IOPS.
        assert!((base.iops() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn conflict_percentage() {
        let m = metrics(1_000, 100);
        assert!((m.conflict_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn p99_from_samples() {
        let mut m = metrics(1_000, 100);
        assert_eq!(m.p99(), SimDuration::from_micros(99));
    }

    #[test]
    fn zero_division_guards() {
        let m = metrics(0, 0);
        assert_eq!(m.iops(), 0.0);
        assert_eq!(m.conflict_pct(), 0.0);
    }

    #[test]
    fn json_is_stable_and_carries_key_fields() {
        let m = metrics(1_000, 100);
        let a = m.to_json();
        let b = m.to_json();
        assert_eq!(a, b, "serialization must be byte-stable");
        for needle in [
            "\"system\": \"Baseline\"",
            "\"workload\": \"t\"",
            "\"policy\": \"retry-all\"",
            "\"completed_requests\": 100",
            "\"execution_time_ns\": 1000000",
            "\"p99_ns\": 99000",
            "\"dispatch\": {\"rounds\": 0",
            "\"events\": 400",
        ] {
            assert!(a.contains(needle), "missing {needle} in {a}");
        }
        // Quotes in names must not break the JSON framing.
        let mut odd = metrics(10, 5);
        odd.workload = "we\"ird".into();
        assert!(odd.to_json().contains("\"we\\\"ird\""));
        // A zero-completion run (valid everywhere else) must serialize,
        // not panic on its empty latency sample set.
        let empty = metrics(0, 0).to_json();
        assert!(empty.contains("\"p99_ns\": 0"));
        assert!(empty.contains("\"samples\": 0"));
    }
}
