//! Deterministic fault injection: scripted fault/repair plans delivered
//! through the simulator's time-wheel calendar.
//!
//! A [`FaultPlan`] is a *named, seeded script*: given the fabric shape it
//! expands ([`FaultPlan::events_for`]) into a fixed list of timestamped
//! [`FaultAction`]s that [`crate::SsdSim::run`] schedules before the first
//! arrival. Determinism is absolute — the same `(plan, rows, cols)` triple
//! always yields the same script, so fault runs fingerprint exactly like
//! fault-free runs and the sweep engine can carry `faults` as an ordinary
//! axis.
//!
//! Three action classes cover the failure modes of the paper's fabrics:
//!
//! * **fabric faults** ([`FaultAction::Fabric`]) — link/router down/up,
//!   routed to [`venice_interconnect::Fabric::inject_fault`]. The fabric
//!   computes the blast radius ([`venice_interconnect::FaultImpact`]): a bus
//!   fabric loses a whole row per severed row link, the meshes route around
//!   it; setters stamp the generation counters so stale scout-cache extents
//!   self-invalidate.
//! * **chip death** ([`FaultAction::ChipDeath`]) — a permanent chip/die
//!   failure above the fabric: queued transactions fail with error status,
//!   the chip leaves the ready sets, and later requests targeting it
//!   complete-with-error instead of stalling the calendar.
//! * **transient NAND errors** ([`FaultAction::ArmTransient`]) — the next
//!   `charges` program/erase operations on a chip fail once each and are
//!   retried after a full re-issue latency (bounded retry: each charge buys
//!   exactly one retry).
//!
//! [`FaultPlan::None`] expands to the empty script and therefore schedules
//! zero calendar events — the golden-hash contract (`events` feeds the
//! fingerprint) is untouched by construction.
//!
//! The host resilience layer ([`crate::resilience`]) is a second client of
//! the fail-stop machinery built here: a request whose deadline fires
//! aborts at the same command boundaries chip death uses, completes with
//! error status through the same bookkeeping, and relies on the same
//! wake-list contract to release its fabric/TSU resources — so deadline
//! aborts compose with every fault plan instead of duplicating its paths.

use venice_interconnect::{FabricFault, NodeId};
use venice_sim::rng::Xorshift64Star;
use venice_sim::SimTime;

/// One scripted fault-plan action (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// A fabric-level fault or repair, delivered to
    /// [`venice_interconnect::Fabric::inject_fault`].
    Fabric(FabricFault),
    /// Permanent chip/die failure at a mesh node (chip id = node id).
    ChipDeath(NodeId),
    /// Arm `charges` one-shot transient program/erase failures on a chip.
    ArmTransient {
        /// The chip whose next operations fail.
        chip: NodeId,
        /// How many operations fail (each is retried once).
        charges: u32,
    },
}

/// Named deterministic fault scripts (the sweep engine's `faults` axis).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FaultPlan {
    /// No faults: the empty script; bit-identical to the pre-fault engine.
    #[default]
    None,
    /// One mid-row link fails permanently at 20 µs. Bus fabrics lose the
    /// whole row; the meshes reroute (the ablation's headline contrast).
    Link,
    /// The `Link` fault plus a crossing column link: pnSSD loses exactly
    /// the intersection chip (both its buses dead); meshes still reroute.
    LinkCross,
    /// The `Link` fault with a repair at 120 µs: tests the repair contract
    /// (stamp, invalidate, wake) end to end.
    LinkRepair,
    /// A mid-mesh router (never column 0) fails permanently at 20 µs:
    /// exactly one chip dies; every fabric must fail its requests with
    /// error status and keep serving the survivors.
    Router,
    /// A permanent chip/die death at 20 µs, above the fabric: the fabric
    /// path stays healthy but the die never answers again.
    Chip,
    /// The `Chip` death plus two link severances at 20 µs around the same
    /// focal row — the `Link` row cut and a crossing column cut through
    /// the dead chip's east-neighbor survivor: a rebuild must thread its
    /// reconstruction traffic through an already-degraded fabric. Bus
    /// designs lose the dead chip's whole row — its parity-group
    /// survivors included — and even a row+column bus design loses the
    /// east-neighbor survivor, so their rebuilds can only skip pages;
    /// only the path-diverse meshes still reach the complete survivor set
    /// and recover everything.
    ChipAndLink,
    /// Transient NAND program/erase errors: two chips are armed with two
    /// one-shot failures each at 10 µs; every failed op retries once.
    TransientNand,
    /// A seeded storm: six sequential link/router outage windows (each
    /// paired with its repair, never touching column 0) plus one permanent
    /// chip death. The stress plan the randomized property tests sweep.
    Storm,
}

/// Fault-plan injection times (µs scale): early enough to land mid-run for
/// paper-scale traces, late enough that the pipeline is warm.
const FAULT_AT_US: u64 = 20;
const REPAIR_AT_US: u64 = 120;

impl FaultPlan {
    /// All plans, in presentation order.
    pub const ALL: [FaultPlan; 9] = [
        FaultPlan::None,
        FaultPlan::Link,
        FaultPlan::LinkCross,
        FaultPlan::LinkRepair,
        FaultPlan::Router,
        FaultPlan::Chip,
        FaultPlan::ChipAndLink,
        FaultPlan::TransientNand,
        FaultPlan::Storm,
    ];

    /// Stable label used in sweep-point labels, manifests, and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FaultPlan::None => "none",
            FaultPlan::Link => "link",
            FaultPlan::LinkCross => "link-cross",
            FaultPlan::LinkRepair => "link-repair",
            FaultPlan::Router => "router",
            FaultPlan::Chip => "chip",
            FaultPlan::ChipAndLink => "chip-link",
            FaultPlan::TransientNand => "transient-nand",
            FaultPlan::Storm => "storm",
        }
    }

    /// Looks a plan up by its label, case-insensitively — the manifest/CLI
    /// round-trip constructor.
    pub fn by_label(label: &str) -> Option<FaultPlan> {
        FaultPlan::ALL
            .into_iter()
            .find(|p| p.label().eq_ignore_ascii_case(label))
    }

    /// Expands the plan into its timestamped action script for a
    /// `rows × cols` fabric. Pure and deterministic; actions that need
    /// geometry the shape cannot provide (links on a 1-wide mesh) are
    /// dropped rather than panicking. [`FaultPlan::None`] is always empty.
    pub fn events_for(&self, rows: u16, cols: u16) -> Vec<(SimTime, FaultAction)> {
        let node = |r: u16, c: u16| NodeId(r * cols + c);
        let at = SimTime::from_micros(FAULT_AT_US);
        let repair = SimTime::from_micros(REPAIR_AT_US);
        // The plan's focal point: a mid-mesh row link (r, c0)-(r, c0+1),
        // chosen off column 0 so no plan silently kills a controller attach.
        let r = rows / 2;
        let c0 = (cols / 2).saturating_sub(1).max(1).min(cols.saturating_sub(2));
        let row_link_ok = cols >= 3;
        let mut script = Vec::new();
        match self {
            FaultPlan::None => {}
            FaultPlan::Link => {
                if row_link_ok {
                    script.push((
                        at,
                        FaultAction::Fabric(FabricFault::LinkDown {
                            a: node(r, c0),
                            b: node(r, c0 + 1),
                        }),
                    ));
                }
            }
            FaultPlan::LinkCross => {
                if row_link_ok && rows >= 2 {
                    let rb = if r + 1 < rows { r + 1 } else { r - 1 };
                    script.push((
                        at,
                        FaultAction::Fabric(FabricFault::LinkDown {
                            a: node(r, c0),
                            b: node(r, c0 + 1),
                        }),
                    ));
                    // The crossing column link shares node (r, c0): under
                    // pnSSD, row bus r and column bus c0 are both dead, so
                    // exactly their intersection chip is unreachable.
                    script.push((
                        at,
                        FaultAction::Fabric(FabricFault::LinkDown {
                            a: node(r, c0),
                            b: node(rb, c0),
                        }),
                    ));
                }
            }
            FaultPlan::LinkRepair => {
                if row_link_ok {
                    let (a, b) = (node(r, c0), node(r, c0 + 1));
                    script.push((at, FaultAction::Fabric(FabricFault::LinkDown { a, b })));
                    script.push((repair, FaultAction::Fabric(FabricFault::LinkUp { a, b })));
                }
            }
            FaultPlan::Router => {
                if cols >= 2 {
                    script.push((
                        at,
                        FaultAction::Fabric(FabricFault::RouterDown(node(r, (cols / 2).max(1)))),
                    ));
                }
            }
            FaultPlan::Chip => {
                script.push((at, FaultAction::ChipDeath(node(r, cols / 2))));
            }
            FaultPlan::ChipAndLink => {
                // The links sever first so the death lands on an
                // already-degraded fabric; all three share the focal row,
                // so on a bus design the dead chip's survivors sit behind
                // the severed row bus. The crossing column link runs
                // through the dead chip's east neighbor — its first parity
                // survivor — so a row+column bus design loses exactly that
                // one survivor too: strict parity then blocks every
                // reconstruction, and only a path-diverse mesh can still
                // reach the full survivor set.
                if row_link_ok {
                    script.push((
                        at,
                        FaultAction::Fabric(FabricFault::LinkDown {
                            a: node(r, c0),
                            b: node(r, c0 + 1),
                        }),
                    ));
                }
                let c1 = cols / 2 + 1;
                if rows >= 2 && c1 < cols {
                    let rb = if r + 1 < rows { r + 1 } else { r - 1 };
                    script.push((
                        at,
                        FaultAction::Fabric(FabricFault::LinkDown {
                            a: node(r, c1),
                            b: node(rb, c1),
                        }),
                    ));
                }
                script.push((at, FaultAction::ChipDeath(node(r, cols / 2))));
            }
            FaultPlan::TransientNand => {
                let t = SimTime::from_micros(10);
                script.push((
                    t,
                    FaultAction::ArmTransient {
                        chip: node(r, cols / 2),
                        charges: 2,
                    },
                ));
                script.push((
                    t,
                    FaultAction::ArmTransient {
                        chip: node(0, cols.saturating_sub(1)),
                        charges: 2,
                    },
                ));
            }
            FaultPlan::Storm => {
                if cols < 3 || rows < 2 {
                    return script;
                }
                let mut rng = Xorshift64Star::new(0x5EED_FA17_0000_0001);
                // Six sequential outage windows: down at t, up at t + 18 µs,
                // next window at t + 25 µs — windows never overlap, so the
                // bus fabrics' per-row outage counters and the meshes'
                // boolean masks agree on when each resource is dead.
                for k in 0..6u64 {
                    let down = SimTime::from_micros(15 + 25 * k);
                    let up = SimTime::from_micros(15 + 25 * k + 18);
                    let fault = match rng.next_bounded(3) {
                        0 => {
                            // Row link off the controller column.
                            let fr = rng.next_bounded(u64::from(rows)) as u16;
                            let fc = 1 + rng.next_bounded(u64::from(cols) - 2) as u16;
                            FabricFault::LinkDown {
                                a: node(fr, fc),
                                b: node(fr, fc + 1),
                            }
                        }
                        1 => {
                            // Column link between two non-column-0 routers.
                            let fr = rng.next_bounded(u64::from(rows) - 1) as u16;
                            let fc = 1 + rng.next_bounded(u64::from(cols) - 1) as u16;
                            FabricFault::LinkDown {
                                a: node(fr, fc),
                                b: node(fr + 1, fc),
                            }
                        }
                        _ => {
                            // Router off the controller column.
                            let fr = rng.next_bounded(u64::from(rows)) as u16;
                            let fc = 1 + rng.next_bounded(u64::from(cols) - 1) as u16;
                            FabricFault::RouterDown(node(fr, fc))
                        }
                    };
                    script.push((down, FaultAction::Fabric(fault)));
                    script.push((up, FaultAction::Fabric(fault.repaired())));
                }
                // One permanent chip death mid-storm, off column 0.
                let dr = rng.next_bounded(u64::from(rows)) as u16;
                let dc = 1 + rng.next_bounded(u64::from(cols) - 1) as u16;
                script.push((SimTime::from_micros(50), FaultAction::ChipDeath(node(dr, dc))));
            }
        }
        script
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for plan in FaultPlan::ALL {
            assert_eq!(FaultPlan::by_label(plan.label()), Some(plan));
        }
        assert_eq!(FaultPlan::by_label("Link-Repair"), Some(FaultPlan::LinkRepair));
        assert_eq!(FaultPlan::by_label("meteor"), None);
        assert_eq!(FaultPlan::default(), FaultPlan::None);
    }

    #[test]
    fn none_schedules_nothing() {
        assert!(FaultPlan::None.events_for(8, 8).is_empty());
    }

    #[test]
    fn scripts_are_deterministic_and_avoid_the_controller_column() {
        for plan in FaultPlan::ALL {
            let a = plan.events_for(8, 8);
            let b = plan.events_for(8, 8);
            assert_eq!(a, b, "{plan}: script must be deterministic");
            for (_, action) in &a {
                if let FaultAction::Fabric(FabricFault::RouterDown(n) | FabricFault::RouterUp(n)) =
                    action
                {
                    assert_ne!(n.0 % 8, 0, "{plan}: router faults avoid column 0");
                }
            }
        }
    }

    #[test]
    fn storm_pairs_every_outage_with_a_repair() {
        let script = FaultPlan::Storm.events_for(8, 8);
        let downs = script
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Fabric(f) if f.is_down()))
            .count();
        let ups = script
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Fabric(f) if !f.is_down()))
            .count();
        assert_eq!(downs, ups, "every transient outage must repair");
        assert_eq!(downs, 6);
        assert!(script
            .iter()
            .any(|(_, a)| matches!(a, FaultAction::ChipDeath(_))));
    }

    #[test]
    fn degenerate_shapes_drop_impossible_actions_instead_of_panicking() {
        for plan in FaultPlan::ALL {
            let _ = plan.events_for(1, 1);
            let _ = plan.events_for(2, 2);
            let _ = plan.events_for(1, 8);
        }
    }
}
