//! Report formatting: markdown tables and CSV emission for the figure
//! harnesses.

use std::fmt::Write as _;
use std::path::Path;

/// A simple rectangular table that renders to markdown or CSV.
///
/// # Example
///
/// ```
/// use venice_ssd::report::Table;
/// let mut t = Table::new(vec!["workload".into(), "speedup".into()]);
/// t.row(vec!["hm_0".into(), "2.41".into()]);
/// let md = t.to_markdown();
/// assert!(md.contains("| hm_0 | 2.41 |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for r in &self.rows {
            let _ = writeln!(s, "| {} |", r.join(" | "));
        }
        s
    }

    /// Renders as CSV (no quoting: the harness only emits identifiers and
    /// numbers).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.header.join(","));
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.join(","));
        }
        s
    }

    /// Writes the CSV beside any existing results, creating directories as
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the file write.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with 2 decimal places (the figures' usual precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// JSON string literal with minimal escaping (quotes and backslashes; the
/// harness only emits identifier-like names). Shared by the metrics
/// serializer and the sweep-manifest writer so the two can never diverge.
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// JSON number from a float: shortest round-trip `Display`, `null` for
/// non-finite values (JSON has no NaN/Inf).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_agree_on_content() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_writes_to_disk() {
        let mut t = Table::new(vec!["x".into()]);
        t.row(vec!["7".into()]);
        let dir = std::env::temp_dir().join("venice-report-test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n7\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(2.649), "2.65");
        assert_eq!(f3(0.0004), "0.000");
    }
}
