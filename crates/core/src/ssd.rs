//! The end-to-end SSD model: HIL → FTL → TSU → fabric → flash chips, as one
//! discrete-event simulation.
//!
//! The request lifecycle follows the paper's Figure 3 service timeline:
//!
//! * **read**: submission queue → FTL translate → chip queue → acquire
//!   controller + path → command burst (path held) → release → tR (die
//!   busy) → acquire controller + path → data burst → release → completion,
//! * **write**: one forward burst carries command + data, then tPROG runs
//!   inside the die with the path free,
//! * **erase** (GC/wear): command burst, then tBERS.
//!
//! The communication fabric is pluggable ([`FabricKind`]); everything else
//! is identical across systems, so execution-time ratios isolate the fabric
//! — the paper's experimental design. The dispatcher's retry strategy is
//! pluggable too ([`crate::DispatchPolicyKind`], see `crate::dispatch`):
//! each dispatch round consults the policy before issuing an acquisition
//! attempt, and a round that only suppressed work schedules its own probe
//! so deferred chips can never strand.
//!
//! # Hot-path storage
//!
//! All per-request / per-transaction / per-block bookkeeping lives in
//! slab- or dense-`Vec` storage keyed by small integer ids instead of hash
//! containers: transaction ids index a free-list slab of [`TxnSlot`]s,
//! request ids (trace indices) index a dense `Vec<ReqState>`, global block
//! keys index a dense in-flight-user count array, and physical pages with
//! in-flight programs live in a bitset. Steady-state simulation therefore
//! performs no hashing and no per-event allocation; scratch buffers
//! (same-instant event batches, busy-chip lists, migration partitions) are
//! reused across events.
//!
//! # Incremental ready-set dispatch
//!
//! Dispatch rounds cost O(ready chips), not O(all chips): chips with a
//! pending read-data burst live in a dense bit set (`data_ready`,
//! maintained at burst arrival/drain), chips with queued TSU work come
//! from the TSU's own busy set, and a round that ended on an exhausted
//! controller pool parks (`parked_on_controllers`) until a fabric release
//! reports a controller freed. The visit order — circular ascending from
//! the rotating fairness cursor, busy-list rotation by
//! `cursor % busy.len()` — is *exactly* the order the retained full-scan
//! dispatcher ([`crate::DispatchScanKind::FullScan`]) produces, so the two
//! engines emit bit-identical `RunMetrics` (randomized cross-check in
//! `tests/properties.rs`). The `RetryAll` golden hash in
//! `tests/integration.rs` additionally pins every *simulated-behavior*
//! field — execution time, events, transactions, conflicts, acquisitions,
//! energy — to the pre-policy dispatcher; dispatcher-*effort* stats
//! (`rounds`/`attempts`/`controller_unavailable`) may run lower than
//! PR 3's on pool-exhausting workloads because parked rounds stop
//! counting doomed probes. See `docs/ARCHITECTURE.md` § "ready-set
//! dispatch & wake lists" for the re-arming invariants.

use std::collections::VecDeque;

use venice_ftl::{
    Ftl, FtlConfig, Gppa, MappingCache, MigrationJob, RequestId, Transaction,
    TransactionScheduler, TxnId, TxnKind,
};
use venice_hil::{DeadlineClass, HostInterface, HostRequest};
use venice_interconnect::{
    build_fabric, AcquireError, Fabric, FabricKind, NodeId, PathGrant, ReleaseInfo,
};
use venice_nand::{ChipId, FlashChip, NandCommandKind, PageAddr, PhysicalPageAddr};
use venice_sim::rng::Xorshift64Star;
use venice_sim::stats::LatencySamples;
use venice_sim::{DenseBitSet, EventQueue, SimDuration, SimTime};
use venice_workloads::{IoOp, Trace};

use crate::dispatch::{DispatchScanKind, PolicyState};
use crate::redundancy::{
    REBUILD_BURST, REBUILD_MAX_JOBS, REBUILD_RATE, REBUILD_RETRY_LIMIT, REBUILD_SCAN_BATCH,
    REBUILD_TICK,
};
use crate::resilience::{
    ResilienceParams, RetryParams, BATCH_DEADLINE, LATENCY_DEADLINE, RETRY_JITTER_SEED,
};
use crate::{FaultAction, FaultPlan, ResiliencePolicy, RunMetrics, RunStatus, SsdConfig};

/// Simulator events.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Trace record `i` arrives at the host interface.
    Arrival(usize),
    /// The FTL fetches one request from a submission queue.
    Process,
    /// A command (or command+data) burst finished on the wire.
    CommandSent(TxnId),
    /// A flash array operation finished inside a die.
    ChipOpDone(TxnId),
    /// A read-data burst finished on the wire.
    DataSent(TxnId),
    /// A request's completion is posted to the host.
    RequestDone(u64),
    /// Try to dispatch queued work (coalesced; scheduled on state changes).
    Dispatch,
    /// Scripted fault-plan action `i` fires (see `crate::FaultPlan`).
    Fault(usize),
    /// A request's per-attempt deadline expired: abort the in-flight
    /// command at the next command boundary (see `crate::resilience`).
    HostTimeout(u64),
    /// A failed / timed-out request resubmits after its retry backoff.
    HostResubmit(u64),
    /// One pacing quantum of the background rebuild engine (see
    /// `crate::redundancy`): refill the token bucket, advance the scan of
    /// the dead chip's logical pages, and launch reconstruction jobs.
    /// Scheduled only while a rebuild is active, so redundancy-off runs —
    /// and redundancy-on runs that never lose a chip — keep a bit-identical
    /// calendar.
    RebuildTick,
}

/// Verdict of the submission-side admission policy for one attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Admission {
    /// Under the watermarks (or policy off): submit normally.
    Accept,
    /// Tenant overloaded but the deadline still looks meetable: defer the
    /// arrival (backpressure — the host stalls, like a full queue).
    Defer,
    /// Tenant overloaded and the tail estimate says the deadline cannot be
    /// met: shed terminally; the request never enters the device.
    Shed,
}

/// Which wire/array phase an in-flight transaction is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Queued,
    Command,
    ArrayOp,
    DataOut,
}

/// Sentinel for "transaction does not belong to a migration".
const NO_MIGRATION: usize = usize::MAX;

/// Delay before a policy-forced dispatch probe (see
/// [`SsdSim::on_dispatch`]): one wheel-bucket-sized breather, long enough
/// to advance the clock, short next to any array operation.
const POLICY_PROBE_DELAY: SimDuration = SimDuration::from_nanos(256);

/// Delay between fault-mode liveness probes: with faults in play a dispatch
/// round can fail with no in-flight event guaranteed to re-trigger it
/// (every path to a chip severed until a scripted repair), so the engine
/// keeps probing at this cadence. Coarser than [`POLICY_PROBE_DELAY`] —
/// outages last tens of microseconds — and only ever scheduled when the
/// configured fault plan is not `FaultPlan::None`.
const FAULT_PROBE_DELAY: SimDuration = SimDuration::from_micros(2);

/// One slab slot of per-transaction state. The slot index *is* the
/// transaction id; slots are recycled through a free list when the
/// transaction completes.
struct TxnSlot {
    txn: Transaction,
    phase: Phase,
    grant: Option<PathGrant>,
    /// Owning migration slot, or [`NO_MIGRATION`].
    migration: usize,
    /// The transaction already charged a first-attempt path conflict.
    conflict_flagged: bool,
    live: bool,
}

/// Dense per-request state, indexed by request id (= trace record index).
#[derive(Clone, Default)]
struct ReqState {
    arrival: SimTime,
    /// Tenant the request belongs to (index into the config's `TenantSet`).
    tenant: u8,
    remaining: u32,
    conflicted: bool,
    live: bool,
    /// At least one of the request's transactions failed on a dead chip or
    /// dead path: the request completes with error status.
    failed: bool,
    /// Host resubmissions so far (bounded retry); 0 on the first attempt.
    attempts: u32,
    /// Absolute deadline of the current attempt (`SimTime::ZERO` =
    /// unarmed); re-armed on every resubmission, so a stale timer is any
    /// firing whose instant no longer matches this field.
    deadline_at: SimTime,
    /// The current attempt's deadline fired: outstanding transactions are
    /// aborted at the next command boundary.
    timed_out: bool,
    /// The attempt read a page whose only copy sat on a dead chip with no
    /// reconstructable redundancy: the failure is *data loss*, not a
    /// routing casualty (see [`crate::RequestOutcome::DataLoss`]).
    data_loss: bool,
    /// The request reached its one terminal outcome (completed or shed).
    done: bool,
}

struct MigrationState {
    job: MigrationJob,
    wear: bool,
    reads_pending: u32,
    writes_pending: u32,
    erase_issued: bool,
}

/// One in-flight rebuild job: reconstruct the dead chip's copy of `lpa`
/// from its surviving parity-group members, then remap it onto a live
/// plane. Jobs are bounded by [`REBUILD_MAX_JOBS`], so lookups are linear
/// scans over a tiny `Vec` — no hashing (the ROADMAP storage rule).
struct RebuildJob {
    lpa: u64,
    /// Outstanding reconstruction reads; the remapped write launches when
    /// this reaches zero (a buffer-resident page starts at zero).
    reads_pending: u32,
}

/// The background rebuild engine for one dead chip (see
/// `crate::redundancy` for the pacing constants and the RAIN model).
/// One chip rebuilds at a time — later permanent deaths queue behind it
/// in [`SsdSim::rebuild_pending`] — mirroring a real RAID controller's
/// serialized rebuild.
struct RebuildState {
    /// The dead chip being rebuilt.
    chip: usize,
    /// Scan cursor over the logical address space: pages mapped to the
    /// dead chip are staged into the HIL's background lane as they are
    /// found.
    next_lpa: u64,
    /// Token bucket: [`REBUILD_RATE`] tokens per [`REBUILD_TICK`], capped
    /// at [`REBUILD_BURST`]; launching one job costs one token, so a
    /// saturated bucket defers staged pages instead of dropping them.
    tokens: u32,
    /// In-flight reconstruction jobs (≤ [`REBUILD_MAX_JOBS`], enforced by
    /// the HIL background lane's in-flight cap).
    jobs: Vec<RebuildJob>,
    /// The scan cursor reached the end of the logical space.
    scan_done: bool,
    /// Re-stage counts for severed-survivor pages, keyed by lpa (linear
    /// scans — the list only ever holds pages of the one chip being
    /// rebuilt). A page that exhausts [`REBUILD_RETRY_LIMIT`] attempts is
    /// skipped.
    retries: Vec<(u64, u32)>,
    /// Blocked pages parked until the next tick re-submits them to the
    /// background lane — tick spacing keeps one page from burning all its
    /// bounded attempts (and the whole token bucket) against a blocker
    /// that has not had a single event's time to clear.
    deferred: Vec<u64>,
}

/// What `survivor_targets` found for one dead page's parity group. XOR
/// reconstruction is all-or-nothing: every media-alive survivor that ever
/// wrote the mirrored block must contribute, so one blocked peer blocks
/// the whole page and one destroyed peer loses it outright.
struct SurvivorSet {
    /// Spawnable reconstruction-read targets (peers that never wrote the
    /// mirrored block are absent — XOR with an erased page is free).
    targets: Vec<PhysicalPageAddr>,
    /// Media-alive peers unreachable behind a fabric fault's blast
    /// radius. The severance may never heal, so rebuild retries against
    /// them are bounded by [`REBUILD_RETRY_LIMIT`].
    severed: u32,
    /// Media-alive peers whose plane hosts an active migration. Always
    /// transient — migrations are finite — so rebuild defers these pages
    /// without burning a bounded attempt.
    migrating: u32,
    /// A peer's media is permanently gone (overlapping chip deaths): the
    /// group is short a member forever and the page is unrecoverable.
    lost: bool,
}

impl SurvivorSet {
    /// True when a media-alive survivor is unreadable right now: XOR
    /// reconstruction needs the complete set, so one blocked peer blocks
    /// the whole page.
    fn blocked(&self) -> bool {
        self.severed > 0 || self.migrating > 0
    }
}

/// Outcome of one foreground degraded-read attempt.
enum DegradedRead {
    /// The complete survivor set was readable: reconstruction reads
    /// spawned (zero when every contribution was an erased page — the
    /// content reconstructs without touching flash).
    Spawned(u32),
    /// A media-alive survivor is transiently unreadable: the attempt
    /// fails as a routing casualty, never as data loss — a resilience
    /// retry can reconstruct once the path or plane drains.
    Blocked,
    /// A survivor's media is gone with the primary: even parity cannot
    /// recover the page.
    Lost,
}

/// A fixed-capacity bitset over dense ids (physical page indices).
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn with_capacity(bits: u64) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64) as usize],
        }
    }

    #[inline]
    fn contains(&self, i: u64) -> bool {
        self.words[(i / 64) as usize] & (1 << (i % 64)) != 0
    }

    #[inline]
    fn insert(&mut self, i: u64) {
        self.words[(i / 64) as usize] |= 1 << (i % 64);
    }

    #[inline]
    fn remove(&mut self, i: u64) {
        self.words[(i / 64) as usize] &= !(1 << (i % 64));
    }
}

/// The SSD simulator. Construct with [`SsdSim::new`], run a whole trace with
/// [`SsdSim::run`], and read the resulting [`RunMetrics`].
///
/// # Example
///
/// ```
/// use venice_ssd::{SsdConfig, SsdSim};
/// use venice_interconnect::FabricKind;
/// use venice_workloads::WorkloadSpec;
///
/// let trace = WorkloadSpec::new("demo", 50.0, 8.0, 100.0)
///     .footprint_mb(64)
///     .generate(200);
/// let config = SsdConfig::performance_optimized()
///     .sized_for_footprint(trace.footprint_bytes());
/// let metrics = SsdSim::new(config, FabricKind::Venice, &trace).run();
/// assert_eq!(metrics.completed_requests, 200);
/// ```
pub struct SsdSim {
    config: SsdConfig,
    kind: FabricKind,
    trace: Trace,
    fabric: Box<dyn Fabric>,
    chips: Vec<FlashChip>,
    ftl: Ftl,
    cmt: MappingCache,
    tsu: TransactionScheduler,
    hil: HostInterface,
    queue: EventQueue<Event>,

    /// Per-request state, indexed by request id (= trace record index).
    requests: Vec<ReqState>,
    /// An arrival blocked on a full submission queue: the host stalls and
    /// the remainder of the trace shifts in time (MQSim-style dependent
    /// replay — applications do not issue independently of completions).
    stalled_arrival: Option<(HostRequest, usize)>,
    /// Transaction slab: slot index = transaction id, recycled on completion.
    txns: Vec<TxnSlot>,
    free_txns: Vec<u32>,
    live_txns: usize,
    /// Total transactions ever spawned (the `transactions` metric).
    spawned_txns: u64,
    /// Per-chip FIFO of read transactions whose data awaits a path out.
    data_pending: Vec<VecDeque<TxnId>>,
    /// Dies claimed by an in-flight operation, indexed `chip * dies + die`.
    die_busy: Vec<bool>,
    migrations: Vec<Option<MigrationState>>,
    free_migrations: Vec<usize>,
    /// Per-plane "GC in progress" flags, indexed by dense plane index.
    active_gc_planes: Vec<bool>,
    /// In-flight reads/programs per global block: an erase must wait until
    /// every operation targeting its block has drained (a stale read may
    /// legally target an invalidated page until the block is erased, and a
    /// program allocated into the block must land before the erase).
    /// Indexed by global block key.
    block_users: Vec<u32>,
    /// Migration slots whose erase waits for a block's users to drain, as
    /// `(block key, migration slot)` pairs (rare; scanned linearly).
    blocked_erases: Vec<(usize, usize)>,
    /// Physical pages allocated but not yet programmed: reads of these are
    /// served from the controller's write buffer without touching flash.
    pending_programs: BitSet,
    /// Reads served from the write buffer.
    buffer_hits: u64,
    /// Host-write pages deferred because every plane is down to its GC
    /// reserve block (write throttling); retried after each erase.
    throttled_writes: VecDeque<(u64, u64)>,
    wear_job_active: bool,
    erases_since_wear_check: u32,
    dispatch_pending: bool,
    dispatch_cursor: usize,
    /// The dispatch policy's per-chip state (see `crate::dispatch`).
    policy: PolicyState,
    /// Ready set: chips with at least one read-data burst waiting for a
    /// path out (mirrors "`data_pending[c]` non-empty"), maintained at
    /// burst arrival and drain so incremental dispatch rounds visit only
    /// these chips instead of walking every chip.
    data_ready: DenseBitSet,
    /// Parked-until-controller-free: set when a dispatch round ended on
    /// [`AcquireError::NoFreeController`] (a pooled fabric's controllers
    /// are all mid-transfer, so *no* acquisition can succeed); dispatch
    /// rounds no-op — advancing only the fairness cursor — until a fabric
    /// release reports a controller freed ([`ReleaseInfo::controller`]).
    parked_on_controllers: bool,

    /// Reusable scratch: busy-chip list for dispatch rounds.
    busy_scratch: Vec<u16>,
    /// Reusable scratch: ready-chip list for incremental data-burst passes.
    data_scratch: Vec<u16>,
    /// Reusable scratch: migration pages served from the write buffer.
    mig_buffered: Vec<(u64, Gppa)>,
    /// Reusable scratch: migration pages needing a flash read.
    mig_flash: Vec<(u64, Gppa)>,

    latencies: LatencySamples,
    completed: u64,
    conflicted_requests: u64,
    /// Per-tenant QoS accounting (indexed by tenant id; length = the
    /// config's tenant count — one slot on the single-tenant default).
    tenant_latencies: Vec<LatencySamples>,
    tenant_completed: Vec<u64>,
    tenant_conflicted: Vec<u64>,
    tenant_failed: Vec<u64>,
    /// `Process` events that found nothing fetchable because every queued
    /// tenant sat at its queue-depth cap: each one is re-scheduled by a
    /// later completion (which frees in-flight capacity). Zero on the
    /// single-tenant default path — caps are the only way a fetch can fail
    /// with entries queued — so the golden hash sees no extra events.
    deferred_fetches: u64,
    first_arrival: SimTime,
    last_completion: SimTime,
    /// Reads served without flash access (never-written pages).
    zero_reads: u64,

    /// The expanded fault-plan script (empty under `FaultPlan::None`);
    /// entry `i` fires as `Event::Fault(i)`.
    fault_script: Vec<(SimTime, FaultAction)>,
    /// True when the configured fault plan schedules anything: gates the
    /// fault-mode liveness probe so fault-free runs stay bit-identical.
    fault_mode: bool,
    /// Per-chip count of overlapping death causes (fabric blast radius +
    /// scripted chip deaths); a chip is dead while its count is non-zero.
    chip_dead: Vec<u8>,
    /// Per-chip media-loss flag: set only by a permanent
    /// [`FaultAction::ChipDeath`], never cleared (dies don't heal). A chip
    /// in `chip_dead` but not here is merely unreachable (fabric blast
    /// radius) — its data is intact, so failures against it classify as
    /// routing casualties, never as data loss.
    media_dead: Vec<bool>,
    /// Per-chip armed transient NAND failures: each charge fails one
    /// program/erase once (retried after a full re-issue latency).
    transient_charges: Vec<u32>,
    faults_injected: u64,
    faults_active: u64,
    retried_ops: u64,
    failed_requests: u64,

    /// Expanded host-resilience knobs (all-`None` when the configured
    /// [`ResiliencePolicy`] is `None`).
    resilience: ResilienceParams,
    /// True when any resilience mechanism is armed: gates every new branch
    /// and every new event, so default runs keep a bit-identical calendar
    /// (the golden-hash contract), exactly like `fault_mode`.
    resilience_mode: bool,
    /// Deterministic retry-jitter stream; consumed only when a retry is
    /// actually scheduled, so retry-free runs never advance it.
    retry_rng: Xorshift64Star,
    /// Outstanding retried requests per tenant (the retry-budget meter):
    /// incremented when a request's *first* retry is granted, decremented
    /// at its terminal completion.
    tenant_retry_outstanding: Vec<u32>,
    /// Sticky per-tenant overload flags (admission hysteresis): set at the
    /// high watermark, cleared at the low one.
    overloaded: Vec<bool>,
    /// Decaying max of completion latencies (ns): rises instantly to the
    /// worst recent completion and decays by 1/8 per completion — the cheap
    /// deterministic tail proxy the deadline-aware shedding decision
    /// consults.
    tail_estimate_ns: u64,
    deadline_misses: u64,
    host_retries: u64,
    shed_requests: u64,
    deadline_met: u64,
    tenant_deadline_misses: Vec<u64>,
    tenant_host_retries: Vec<u64>,
    tenant_shed: Vec<u64>,
    tenant_deadline_met: Vec<u64>,

    /// True when the configured [`RedundancyKind`] is armed: gates the
    /// degraded-read fan-out and the rebuild engine, so
    /// `RedundancyKind::None` runs schedule zero extra events and allocate
    /// identically (the golden-hash contract, exactly like `fault_mode`).
    redundancy_mode: bool,
    /// The active rebuild, if a permanent chip death armed one.
    rebuild: Option<RebuildState>,
    /// Permanently dead chips waiting behind the active rebuild.
    rebuild_pending: VecDeque<usize>,
    /// A [`Event::RebuildTick`] is on the calendar (at most one at a time).
    rebuild_tick_armed: bool,
    /// Foreground reads served by parity reconstruction instead of the
    /// dead chip (one per reconstructed page read).
    degraded_reads: u64,
    /// Dead-chip pages reconstructed and remapped by the rebuild engine.
    rebuilt_pages: u64,
    /// Dead-chip pages the rebuild engine had to give up on: no
    /// parity-group survivor was spawnable when the job launched (peers
    /// media-dead, unreachable behind a fabric fault, or migration-busy).
    /// Non-zero means the recovery is incomplete — the pages stay mapped
    /// to the dead chip and a later foreground read still classifies them.
    rebuild_skipped_pages: u64,
    /// Instant the last rebuild drained (ZERO = none ran); MTTR is this
    /// minus the fault-injection time.
    rebuild_done: SimTime,
    data_loss_requests: u64,
    tenant_data_loss: Vec<u64>,
}

impl SsdSim {
    /// Builds a simulator for one `(config, fabric, trace)` triple. The SSD
    /// is preconditioned to steady state: every logical page is mapped and
    /// the chips' write pointers mirror the FTL's block fills.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SsdConfig::validate`]) or the trace footprint exceeds the logical
    /// space.
    pub fn new(config: SsdConfig, kind: FabricKind, trace: &Trace) -> Self {
        config.validate();
        let logical_pages = config.logical_pages_for(trace.footprint_bytes().max(1));
        let physical = config.array.total_pages();
        assert!(
            logical_pages < physical,
            "trace footprint ({logical_pages} pages) must fit under physical \
             capacity ({physical} pages); call sized_for_footprint first"
        );
        let spare_blocks_per_plane = (physical - logical_pages)
            / u64::from(config.array.chip.pages_per_block)
            / u64::from(config.array.total_planes());
        let mut ftl = Ftl::new(FtlConfig {
            array: config.array,
            logical_pages,
            // Trigger GC with half the over-provisioned blocks still free,
            // capped at the paper-scale default of 4.
            gc_threshold_blocks: (spare_blocks_per_plane / 2).clamp(1, 4) as u32,
            wear_delta_threshold: 64,
        });
        let mut chips: Vec<FlashChip> = (0..config.array.chips)
            .map(|_| FlashChip::with_energy(config.array.chip, config.timing, config.energy))
            .collect();
        for (block_addr, written) in ftl.precondition() {
            chips[usize::from(block_addr.chip.0)].precondition_block(block_addr.addr, written);
        }
        let entries_per_tp = config.page_bytes() / 8; // 8-byte mapping entries
        let chip_count = usize::from(config.array.chips);
        let dies_per_chip = config.array.chip.dies as usize;
        let total_blocks = config.array.total_blocks() as usize;
        let total_planes = config.array.total_planes() as usize;
        SsdSim {
            fabric: build_fabric(kind, config.fabric),
            chips,
            cmt: MappingCache::covering(logical_pages, entries_per_tp),
            tsu: TransactionScheduler::new(chip_count),
            hil: HostInterface::with_tenants(config.hil, config.tenants.clone()),
            // Bucket width auto-tuned so tPROG completions stay in the
            // wheel tier (ROADMAP perf follow-up (b)); pop order is
            // width-independent.
            queue: EventQueue::with_bucket_ns(config.wheel_bucket_ns()),
            requests: vec![ReqState::default(); trace.len()],
            stalled_arrival: None,
            txns: Vec::new(),
            free_txns: Vec::new(),
            live_txns: 0,
            spawned_txns: 0,
            data_pending: (0..chip_count).map(|_| VecDeque::new()).collect(),
            die_busy: vec![false; chip_count * dies_per_chip],
            migrations: Vec::new(),
            free_migrations: Vec::new(),
            active_gc_planes: vec![false; total_planes],
            block_users: vec![0; total_blocks],
            blocked_erases: Vec::new(),
            pending_programs: BitSet::with_capacity(physical),
            buffer_hits: 0,
            throttled_writes: VecDeque::new(),
            wear_job_active: false,
            erases_since_wear_check: 0,
            dispatch_pending: false,
            dispatch_cursor: 0,
            policy: PolicyState::new(config.dispatch, kind, chip_count),
            data_ready: DenseBitSet::with_capacity(chip_count),
            parked_on_controllers: false,
            busy_scratch: Vec::new(),
            data_scratch: Vec::new(),
            mig_buffered: Vec::new(),
            mig_flash: Vec::new(),
            latencies: LatencySamples::new(),
            completed: 0,
            conflicted_requests: 0,
            tenant_latencies: vec![LatencySamples::new(); config.tenants.len()],
            tenant_completed: vec![0; config.tenants.len()],
            tenant_conflicted: vec![0; config.tenants.len()],
            tenant_failed: vec![0; config.tenants.len()],
            deferred_fetches: 0,
            first_arrival: trace.events().first().map_or(SimTime::ZERO, |e| e.arrival),
            last_completion: SimTime::ZERO,
            zero_reads: 0,
            fault_script: config
                .fault_plan
                .events_for(config.fabric.rows, config.fabric.cols),
            fault_mode: config.fault_plan != FaultPlan::None,
            chip_dead: vec![0; chip_count],
            media_dead: vec![false; chip_count],
            transient_charges: vec![0; chip_count],
            faults_injected: 0,
            faults_active: 0,
            retried_ops: 0,
            failed_requests: 0,
            resilience: config.resilience.params(),
            resilience_mode: config.resilience != ResiliencePolicy::None,
            retry_rng: Xorshift64Star::new(RETRY_JITTER_SEED),
            tenant_retry_outstanding: vec![0; config.tenants.len()],
            overloaded: vec![false; config.tenants.len()],
            tail_estimate_ns: 0,
            deadline_misses: 0,
            host_retries: 0,
            shed_requests: 0,
            deadline_met: 0,
            tenant_deadline_misses: vec![0; config.tenants.len()],
            tenant_host_retries: vec![0; config.tenants.len()],
            tenant_shed: vec![0; config.tenants.len()],
            tenant_deadline_met: vec![0; config.tenants.len()],
            redundancy_mode: config.redundancy.is_armed(),
            rebuild: None,
            rebuild_pending: VecDeque::new(),
            rebuild_tick_armed: false,
            degraded_reads: 0,
            rebuilt_pages: 0,
            rebuild_skipped_pages: 0,
            rebuild_done: SimTime::ZERO,
            data_loss_requests: 0,
            tenant_data_loss: vec![0; config.tenants.len()],
            ftl,
            trace: trace.clone(),
            config,
            kind,
        }
    }

    /// Runs the whole trace to completion and returns the metrics.
    ///
    /// The main loop drains the calendar in same-instant batches
    /// ([`EventQueue::pop_batch`]); handler-scheduled events at the same
    /// instant form follow-up batches, so delivery order is identical to
    /// one-at-a-time popping.
    ///
    /// # Panics
    ///
    /// Panics if the simulation stalls (queued work with no pending events),
    /// which would indicate a scheduler bug.
    pub fn run(mut self) -> RunMetrics {
        if !self.trace.is_empty() {
            self.queue
                .schedule(self.trace.events()[0].arrival, Event::Arrival(0));
        }
        // Fault-plan actions ride the same calendar as everything else;
        // `FaultPlan::None` expands to nothing, so fault-free runs schedule
        // zero extra events (the `events` metric feeds the golden hash).
        for i in 0..self.fault_script.len() {
            let at = self.fault_script[i].0;
            self.queue.schedule(at, Event::Fault(i));
        }
        let mut batch: Vec<Event> = Vec::new();
        let mut status = RunStatus::Complete;
        while let Some(now) = self.queue.pop_batch(&mut batch) {
            // Runaway-run watchdog: end with a structured aborted outcome
            // instead of spinning the calendar forever.
            if self
                .config
                .max_events
                .is_some_and(|m| self.queue.scheduled_total() > m)
                || self.config.max_sim_ns.is_some_and(|m| now.as_nanos() > m)
            {
                status = RunStatus::Aborted;
                break;
            }
            // Test-only fail point (sweep-isolation tests): a deliberate,
            // deterministic engine panic standing in for any engine bug.
            if let Some(m) = self.config.panic_after_events {
                assert!(
                    self.queue.scheduled_total() <= m,
                    "injected fail-point panic after {} scheduled events",
                    self.queue.scheduled_total()
                );
            }
            for ev in batch.drain(..) {
                self.handle(now, ev);
            }
        }
        if status == RunStatus::Complete {
            assert!(
                self.tsu.is_empty()
                    && self.live_txns == 0
                    && self.stalled_arrival.is_none()
                    && self.throttled_writes.is_empty()
                    && self.rebuild.is_none()
                    && self.rebuild_pending.is_empty(),
                "simulation drained its event queue with work still outstanding"
            );
            assert_eq!(
                self.completed + self.shed_requests,
                self.trace.len() as u64,
                "every request must reach one terminal outcome"
            );
        }
        self.finish(status)
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrival(i) => self.on_arrival(now, i),
            Event::Process => self.on_process(now),
            Event::CommandSent(txn) => self.on_command_sent(now, txn),
            Event::ChipOpDone(txn) => self.on_chip_op_done(now, txn),
            Event::DataSent(txn) => self.on_data_sent(now, txn),
            Event::RequestDone(req) => self.on_request_done(now, req),
            Event::Dispatch => self.on_dispatch(now),
            Event::Fault(i) => self.on_fault(now, i),
            Event::HostTimeout(r) => self.on_host_timeout(now, r),
            Event::HostResubmit(r) => self.on_host_resubmit(now, r),
            Event::RebuildTick => self.on_rebuild_tick(now),
        }
    }

    fn schedule_dispatch(&mut self, now: SimTime) {
        if !self.dispatch_pending {
            self.dispatch_pending = true;
            self.queue.schedule(now, Event::Dispatch);
        }
    }

    // ------------------------------------------------------------------
    // Transaction slab
    // ------------------------------------------------------------------

    #[inline]
    fn slot(&self, id: TxnId) -> &TxnSlot {
        let s = &self.txns[id.0 as usize];
        debug_assert!(s.live, "transaction {id:?} not live");
        s
    }

    #[inline]
    fn slot_mut(&mut self, id: TxnId) -> &mut TxnSlot {
        let s = &mut self.txns[id.0 as usize];
        debug_assert!(s.live, "transaction {id:?} not live");
        s
    }

    /// Frees a transaction slot, returning its transaction and owning
    /// migration slot (if any).
    fn free_txn(&mut self, id: TxnId) -> (Transaction, usize) {
        let s = &mut self.txns[id.0 as usize];
        debug_assert!(s.live, "double free of transaction {id:?}");
        s.live = false;
        s.grant = None;
        let migration = s.migration;
        let txn = s.txn;
        self.free_txns.push(id.0 as u32);
        self.live_txns -= 1;
        (txn, migration)
    }

    // ------------------------------------------------------------------
    // Host side
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, index: usize) {
        let e = self.trace.events()[index];
        // Trace tags beyond the configured tenant count clamp to the last
        // tenant, so a single-tenant config merges any tagged trace back
        // into one stream (the bit-identical default path).
        let tenant = usize::from(self.trace.tenant_of(index)).min(self.config.tenants.len() - 1);
        let req = HostRequest {
            id: index as u64,
            tenant: tenant as u8,
            arrival: now,
            op: e.op,
            offset: e.offset,
            bytes: e.bytes,
            deadline: self.deadline_for(tenant).map(|d| now + d),
        };
        if self.resilience_mode {
            match self.admission_verdict(tenant) {
                Admission::Accept => {}
                Admission::Defer => {
                    // Overload backpressure behaves exactly like a full
                    // queue: the host stalls and the trace shifts.
                    self.stalled_arrival = Some((req, index));
                    return;
                }
                Admission::Shed => {
                    self.shed_request(index, tenant);
                    self.schedule_next_arrival(now, index);
                    return;
                }
            }
        }
        if self.hil.submit(req) {
            self.after_submit(now, req.id);
            self.schedule_next_arrival(now, index);
        } else {
            // Queue full: the host stalls; the rest of the trace shifts by
            // however long this submission waits.
            self.stalled_arrival = Some((req, index));
        }
    }

    /// Per-attempt deadline for `tenant`: the policy deadline modulated by
    /// the tenant's [`DeadlineClass`]. `None` when the policy arms no
    /// deadline (classes are inert then) or the class opts the tenant out;
    /// with every class at the default the result is exactly the policy
    /// deadline, so existing runs are bit-identical.
    fn deadline_for(&self, tenant: usize) -> Option<SimDuration> {
        let base = self.resilience.deadline?;
        match self.config.tenants.specs()[tenant].deadline {
            DeadlineClass::Default => Some(base),
            DeadlineClass::Latency => Some(LATENCY_DEADLINE),
            DeadlineClass::Batch => Some(BATCH_DEADLINE),
            DeadlineClass::None => None,
        }
    }

    /// Post-submit bookkeeping shared by first attempts, stall resumes, and
    /// resubmissions: schedules the fetch and arms the attempt's deadline.
    fn after_submit(&mut self, now: SimTime, req_id: u64) {
        self.queue
            .schedule(now + self.config.hil.submission_latency, Event::Process);
        // Same tag clamp as `on_arrival`, so every attempt of a request
        // resolves to the same tenant (and therefore deadline class).
        let tenant =
            usize::from(self.trace.tenant_of(req_id as usize)).min(self.config.tenants.len() - 1);
        if let Some(d) = self.deadline_for(tenant) {
            let at = now + d;
            self.requests[req_id as usize].deadline_at = at;
            self.queue.schedule(at, Event::HostTimeout(req_id));
        }
    }

    /// Evaluates (and updates — the hysteresis flag is sticky) the
    /// admission policy for one submission attempt of `tenant`.
    fn admission_verdict(&mut self, tenant: usize) -> Admission {
        let Some(adm) = self.resilience.admission else {
            return Admission::Accept;
        };
        let cap = self.hil.namespace_capacity(tenant);
        let out = self.hil.tenant_outstanding(tenant);
        if self.overloaded[tenant] {
            if out <= cap * adm.low_pct as usize / 100 {
                self.overloaded[tenant] = false;
            }
        } else if out >= cap * adm.high_pct as usize / 100 {
            self.overloaded[tenant] = true;
        }
        if !self.overloaded[tenant] {
            return Admission::Accept;
        }
        // Overloaded: shed when the tail estimate says the deadline cannot
        // be met anyway, otherwise defer (plain backpressure).
        match self.deadline_for(tenant) {
            Some(d) if self.tail_estimate_ns > d.as_nanos() => Admission::Shed,
            _ => Admission::Defer,
        }
    }

    /// Terminal [`crate::RequestOutcome::Shed`]: the request never enters
    /// the device. `completed + shed` partitions the trace.
    fn shed_request(&mut self, index: usize, tenant: usize) {
        let st = &mut self.requests[index];
        debug_assert!(!st.done, "double terminal outcome for request {index}");
        st.done = true;
        self.shed_requests += 1;
        self.tenant_shed[tenant] += 1;
    }

    /// A request's per-attempt deadline fired. Stale timers (the attempt
    /// already completed, or a resubmission armed a strictly later
    /// deadline) are ignored; live ones mark the request timed out so its
    /// outstanding transactions abort at the next command boundary — queued
    /// TSU work and ready data bursts at dispatch-visit time, in-flight
    /// array operations at op-done time — reusing the fail-stop machinery
    /// from the fault layer.
    fn on_host_timeout(&mut self, now: SimTime, req_id: u64) {
        let st = &mut self.requests[req_id as usize];
        if st.done || st.timed_out || st.deadline_at != now {
            return;
        }
        st.timed_out = true;
        if st.live {
            // Kick a round so a fully-queued victim does not wait for an
            // unrelated wake to get its abort drain.
            self.schedule_dispatch(now);
        }
        // Not yet fetched: the in-flight `Process` event aborts it at fetch
        // time (`on_process`), so no extra event is needed.
    }

    /// True when a transaction's owner was timed out: dispatch and
    /// completion paths fail such transactions at their next visit.
    fn txn_aborted(&self, req: Option<RequestId>) -> bool {
        req.is_some_and(|r| self.requests[r.0 as usize].timed_out)
    }

    /// Attempts to schedule a host resubmission of a failed / timed-out
    /// attempt. Returns false — the caller classifies the request
    /// terminally — when retry is off, the attempt cap is reached, or the
    /// tenant's retry budget is exhausted.
    fn try_schedule_retry(&mut self, now: SimTime, req_id: u64, tenant: usize) -> bool {
        let Some(retry) = self.resilience.retry else {
            return false;
        };
        let st = &self.requests[req_id as usize];
        if st.attempts >= retry.max_retries {
            return false;
        }
        if st.attempts == 0 && self.tenant_retry_outstanding[tenant] >= retry.tenant_budget {
            return false;
        }
        let st = &mut self.requests[req_id as usize];
        if st.attempts == 0 {
            self.tenant_retry_outstanding[tenant] += 1;
        }
        st.attempts += 1;
        st.timed_out = false;
        st.failed = false;
        st.data_loss = false;
        // Disarm the old deadline so its still-scheduled timer reads as
        // stale even if it fires during the backoff window; the
        // resubmission arms a fresh one.
        st.deadline_at = SimTime::ZERO;
        let attempts = st.attempts;
        self.host_retries += 1;
        self.tenant_host_retries[tenant] += 1;
        let delay = self.retry_backoff(retry, attempts);
        self.queue.schedule(now + delay, Event::HostResubmit(req_id));
        true
    }

    /// Exponential backoff with deterministic jitter: `backoff × 2^(n-1)`
    /// clamped to the cap, plus up to half that step of seeded jitter (the
    /// jitter decorrelates retry storms without hurting replayability).
    fn retry_backoff(&mut self, retry: RetryParams, attempt: u32) -> SimDuration {
        let base = retry.backoff.as_nanos() << (attempt.saturating_sub(1)).min(16);
        let capped = base.min(retry.backoff_cap.as_nanos());
        let jitter = self.retry_rng.next_bounded(capped / 2 + 1);
        SimDuration::from_nanos(capped + jitter)
    }

    /// A retry backoff elapsed: resubmit the request through the host
    /// interface. The original arrival is kept so the recorded latency
    /// spans every attempt; the deadline (if armed) restarts per attempt.
    fn on_host_resubmit(&mut self, now: SimTime, req_id: u64) {
        let index = req_id as usize;
        let e = self.trace.events()[index];
        let st = &self.requests[index];
        let deadline = self.deadline_for(usize::from(st.tenant)).map(|d| now + d);
        let req = HostRequest {
            id: req_id,
            tenant: st.tenant,
            arrival: st.arrival,
            op: e.op,
            offset: e.offset,
            bytes: e.bytes,
            deadline,
        };
        if self.hil.submit(req) {
            self.after_submit(now, req_id);
        } else {
            // Queue full: try again after the same backoff step without
            // charging an attempt (the device never saw this resubmission).
            // Completions drain the queue, so this terminates.
            let retry = self.resilience.retry.expect("resubmit implies retry armed");
            let attempts = self.requests[index].attempts;
            let delay = self.retry_backoff(retry, attempts);
            self.queue.schedule(now + delay, Event::HostResubmit(req_id));
        }
    }

    /// Schedules trace record `index + 1` preserving the original
    /// inter-arrival gap from record `index` (measured from the time record
    /// `index` actually entered the queue).
    fn schedule_next_arrival(&mut self, now: SimTime, index: usize) {
        if index + 1 < self.trace.len() {
            let gap = self.trace.events()[index + 1]
                .arrival
                .saturating_since(self.trace.events()[index].arrival);
            self.queue.schedule(now + gap, Event::Arrival(index + 1));
        }
    }

    fn on_process(&mut self, now: SimTime) {
        let Some(req) = self.hil.fetch() else {
            // Entries queued but nothing fetchable: every queued tenant is
            // at its queue-depth cap. Defer; a completion re-schedules us.
            if self.hil.queued() > 0 {
                self.deferred_fetches += 1;
            }
            return;
        };
        if self.resilience_mode && self.requests[req.id as usize].timed_out {
            // The deadline fired while the request sat in its submission
            // queue: abort before it touches the FTL. The error completion
            // posts through the normal path (zero transactions).
            let st = &mut self.requests[req.id as usize];
            st.arrival = req.arrival;
            st.tenant = req.tenant;
            st.remaining = 0;
            st.live = true;
            self.queue.schedule(
                now + self.config.hil.completion_latency,
                Event::RequestDone(req.id),
            );
            return;
        }
        let page = self.config.page_bytes();
        let first = req.offset / page;
        let last = (req.offset + u64::from(req.bytes).max(1) - 1) / page;
        let mut txns = 0u32;
        let mut data_loss = false;
        let mut transient_loss = false;
        for lpa in first..=last {
            if lpa >= self.ftl.logical_pages() {
                continue; // footprint rounding edge
            }
            self.charge_mapping_lookup(now, lpa);
            match req.op {
                IoOp::Read => match self.ftl.translate_read(lpa).expect("lpa in range") {
                    Some(gppa) if self.pending_programs.contains(gppa.0) => {
                        // The page's program is still in flight: the data is
                        // in the controller's write buffer — serve it there.
                        self.buffer_hits += 1;
                    }
                    Some(gppa) => {
                        let target = self.ftl.config().array.unpack(gppa);
                        let chip = usize::from(target.chip.0);
                        if self.fault_mode && self.chip_dead[chip] > 0 {
                            if self.redundancy_mode {
                                // Degraded read: fan reconstruction reads
                                // out to the surviving parity-group members
                                // through the normal TSU/fabric path; the
                                // controller XORs them (free in this timing
                                // model).
                                match self.spawn_degraded_read(now, lpa, req.id, target) {
                                    DegradedRead::Spawned(fanout) => {
                                        self.degraded_reads += 1;
                                        txns += fanout;
                                    }
                                    DegradedRead::Blocked => transient_loss = true,
                                    // Unrecoverable by parity — but data is
                                    // *lost* only when the primary's own
                                    // media died. A group-mate of the dead
                                    // chip that merely sits behind a fabric
                                    // fault keeps its data; that failure
                                    // stays a routing casualty.
                                    DegradedRead::Lost => {
                                        if self.media_dead[chip] {
                                            data_loss = true;
                                        } else {
                                            transient_loss = true;
                                        }
                                    }
                                }
                            } else {
                                // No redundancy: the read rides to dispatch
                                // and fails there (the pre-redundancy event
                                // stream, bit-identical), now *classified*
                                // as data loss when the die itself is gone.
                                // A chip that is merely unreachable (fabric
                                // blast radius) keeps its data — that
                                // failure stays a routing casualty.
                                data_loss |= self.media_dead[chip];
                                self.spawn_txn(
                                    now,
                                    TxnKind::UserRead,
                                    target,
                                    Some(lpa),
                                    Some(req.id),
                                    NO_MIGRATION,
                                );
                                txns += 1;
                            }
                        } else {
                            self.spawn_txn(
                                now,
                                TxnKind::UserRead,
                                target,
                                Some(lpa),
                                Some(req.id),
                                NO_MIGRATION,
                            );
                            txns += 1;
                        }
                    }
                    None => self.zero_reads += 1,
                },
                IoOp::Write => {
                    if self.spawn_user_write(now, req.id, lpa) {
                        txns += 1;
                    } else {
                        // Every plane is down to its GC reserve: throttle the
                        // write; it still counts toward request completion.
                        self.throttled_writes.push_back((req.id, lpa));
                        txns += 1;
                    }
                }
            }
        }
        // Field-wise update, not a struct overwrite: the resilience fields
        // (`attempts`, `deadline_at`, `timed_out`, `done`) persist across
        // resubmissions of the same request.
        let st = &mut self.requests[req.id as usize];
        st.arrival = req.arrival;
        st.tenant = req.tenant;
        st.remaining = txns;
        st.conflicted = false;
        st.live = true;
        // A lost page fails the attempt up front (its error completion may
        // post with zero transactions when reconstruction had no survivor
        // to read). A transiently unreconstructable page fails the attempt
        // the same way but is a routing-class casualty, not data loss.
        st.failed = data_loss || transient_loss;
        st.data_loss = data_loss;
        if txns == 0 {
            // Nothing touches flash (e.g. read of never-written data).
            self.queue.schedule(
                now + self.config.hil.completion_latency,
                Event::RequestDone(req.id),
            );
        }
        self.check_gc(now);
        self.schedule_dispatch(now);
    }

    /// Allocates and issues one host-write page; returns false when the FTL
    /// is out of unreserved space and the write must be throttled.
    fn spawn_user_write(&mut self, now: SimTime, req_id: u64, lpa: u64) -> bool {
        match self.ftl.allocate_write(lpa) {
            Ok(gppa) => {
                self.cmt.mark_dirty(lpa);
                self.pending_programs.insert(gppa.0);
                let target = self.ftl.config().array.unpack(gppa);
                self.spawn_txn(
                    now,
                    TxnKind::UserWrite,
                    target,
                    Some(lpa),
                    Some(req_id),
                    NO_MIGRATION,
                );
                true
            }
            Err(venice_ftl::FtlError::OutOfSpace) => false,
            Err(e) => panic!("host write failed: {e}"),
        }
    }

    /// Cached-mapping-table lookup: a miss issues a mapping-table read
    /// (modelled as a read of the data page the translation entry points at;
    /// see DESIGN.md) and fills the cache.
    fn charge_mapping_lookup(&mut self, now: SimTime, lpa: u64) {
        if self.cmt.lookup(lpa) {
            return;
        }
        if let Some(gppa) = self.ftl.translate(lpa) {
            if !self.pending_programs.contains(gppa.0) {
                let target = self.ftl.config().array.unpack(gppa);
                self.spawn_txn(now, TxnKind::MapRead, target, Some(lpa), None, NO_MIGRATION);
            }
        }
        // Dirty write-backs are absorbed by the controller DRAM buffer; the
        // covering cache used in the paper-scale experiments never evicts.
        let _ = self.cmt.fill(lpa);
    }

    fn on_request_done(&mut self, now: SimTime, req_id: u64) {
        let st = &mut self.requests[req_id as usize];
        debug_assert!(st.live, "request {req_id} not tracked");
        st.live = false;
        let (arrival, tenant, conflicted, failed, timed_out, attempts, deadline_at, data_loss) = (
            st.arrival,
            usize::from(st.tenant),
            st.conflicted,
            st.failed,
            st.timed_out,
            st.attempts,
            st.deadline_at,
            st.data_loss,
        );
        self.hil.complete(req_id, now);
        // Bounded host retry: a failed or timed-out attempt resubmits after
        // backoff instead of going terminal, while cap and budget allow.
        // The freed queue slot still re-arms deferred fetches and stalled
        // arrivals.
        if self.resilience_mode
            && (failed || timed_out)
            && self.try_schedule_retry(now, req_id, tenant)
        {
            self.rearm_after_completion(now);
            return;
        }
        // Terminal outcome classification: exactly one per request.
        let latency = now.saturating_since(arrival);
        self.latencies.record(latency);
        self.tenant_latencies[tenant].record(latency);
        if conflicted {
            self.conflicted_requests += 1;
            self.tenant_conflicted[tenant] += 1;
        }
        if timed_out {
            // `RequestOutcome::DeadlineMiss`: an error completion — counted
            // against availability like a device failure.
            self.deadline_misses += 1;
            self.tenant_deadline_misses[tenant] += 1;
            self.failed_requests += 1;
            self.tenant_failed[tenant] += 1;
        } else if failed {
            // `RequestOutcome::FailedAfterRetries` (with retry off, every
            // device failure is terminal immediately). The request reached
            // the host with error status; it still counts as completed (the
            // calendar drained it) but not as available.
            self.failed_requests += 1;
            self.tenant_failed[tenant] += 1;
            if data_loss {
                // `RequestOutcome::DataLoss`: the failure is durability,
                // not routing — the page's only copy sat on a dead chip
                // with nothing to reconstruct it from (a strict subset of
                // failed completions).
                self.data_loss_requests += 1;
                self.tenant_data_loss[tenant] += 1;
            }
        } else if deadline_at == SimTime::ZERO || now <= deadline_at {
            // `RequestOutcome::Ok` with the deadline met (or unarmed): the
            // goodput numerator.
            self.deadline_met += 1;
            self.tenant_deadline_met[tenant] += 1;
        }
        let st = &mut self.requests[req_id as usize];
        debug_assert!(!st.done, "double terminal outcome for request {req_id}");
        st.done = true;
        if attempts > 0 {
            debug_assert!(self.tenant_retry_outstanding[tenant] > 0);
            self.tenant_retry_outstanding[tenant] -= 1;
        }
        if self.resilience_mode {
            let l = latency.as_nanos();
            self.tail_estimate_ns = l.max(self.tail_estimate_ns - self.tail_estimate_ns / 8);
        }
        self.completed += 1;
        self.tenant_completed[tenant] += 1;
        self.last_completion = self.last_completion.max(now);
        self.rearm_after_completion(now);
    }

    /// A completion freed submission capacity: retry one fetch that a
    /// queue-depth cap deferred (never taken on the single-tenant path —
    /// `deferred_fetches` stays zero without caps) and resume a stalled
    /// arrival, re-checking admission when the policy is armed.
    fn rearm_after_completion(&mut self, now: SimTime) {
        if self.deferred_fetches > 0 && self.hil.queued() > 0 {
            self.deferred_fetches -= 1;
            self.queue
                .schedule(now + self.config.hil.submission_latency, Event::Process);
        }
        if let Some((mut req, index)) = self.stalled_arrival.take() {
            if self.resilience_mode {
                match self.admission_verdict(usize::from(req.tenant)) {
                    Admission::Accept => {}
                    Admission::Defer => {
                        self.stalled_arrival = Some((req, index));
                        return;
                    }
                    Admission::Shed => {
                        self.shed_request(index, usize::from(req.tenant));
                        self.schedule_next_arrival(now, index);
                        return;
                    }
                }
            }
            req.arrival = now;
            req.deadline = self.deadline_for(usize::from(req.tenant)).map(|d| now + d);
            if self.hil.submit(req) {
                self.after_submit(now, req.id);
                self.schedule_next_arrival(now, index);
            } else {
                self.stalled_arrival = Some((req, index));
            }
        }
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    fn spawn_txn(
        &mut self,
        now: SimTime,
        kind: TxnKind,
        target: PhysicalPageAddr,
        lpa: Option<u64>,
        request: Option<u64>,
        migration: usize,
    ) -> TxnId {
        let idx = self
            .free_txns
            .pop()
            .map_or(self.txns.len(), |i| i as usize);
        let id = TxnId(idx as u64);
        let txn = Transaction {
            id,
            kind,
            target,
            lpa,
            request: request.map(RequestId),
        };
        let slot = TxnSlot {
            txn,
            phase: Phase::Queued,
            grant: None,
            migration,
            conflict_flagged: false,
            live: true,
        };
        if idx == self.txns.len() {
            self.txns.push(slot);
        } else {
            debug_assert!(!self.txns[idx].live, "free list returned a live slot");
            self.txns[idx] = slot;
        }
        self.live_txns += 1;
        self.spawned_txns += 1;
        if kind.is_read() || kind.is_write() {
            let key = self.block_key(target);
            self.block_users[key] += 1;
        }
        self.tsu.enqueue(txn, now);
        self.schedule_dispatch(now);
        id
    }

    /// Global block key of a physical page (dense index into
    /// [`SsdSim::block_users`]).
    fn block_key(&self, p: PhysicalPageAddr) -> usize {
        let array = &self.ftl.config().array;
        array.plane_index(p) * array.chip.blocks_per_plane as usize + p.addr.block as usize
    }

    /// Dense die index of a physical page (into [`SsdSim::die_busy`]).
    #[inline]
    fn die_key(&self, p: PhysicalPageAddr) -> usize {
        usize::from(p.chip.0) * self.config.array.chip.dies as usize + p.addr.die as usize
    }

    /// Marks one user of `target`'s block as drained, releasing any erase
    /// waiting on that block.
    fn release_block_user(&mut self, now: SimTime, target: PhysicalPageAddr) {
        let key = self.block_key(target);
        debug_assert!(self.block_users[key] > 0, "user count tracked");
        self.block_users[key] -= 1;
        if self.block_users[key] == 0 && !self.blocked_erases.is_empty() {
            // Release erases blocked on this block, preserving queue order.
            let mut i = 0;
            while i < self.blocked_erases.len() {
                if self.blocked_erases[i].0 == key {
                    let (_, slot) = self.blocked_erases.remove(i);
                    self.spawn_migration_erase(now, slot);
                } else {
                    i += 1;
                }
            }
        }
    }

    fn on_dispatch(&mut self, now: SimTime) {
        self.dispatch_pending = false;
        if self.parked_on_controllers {
            // Parked-until-controller-free: every controller of a pooled
            // fabric is mid-transfer, so no acquisition can succeed until a
            // release reports one freed (`note_release`, which also
            // schedules a dispatch). The round no-ops; the fairness cursor
            // still advances so rotation stays aligned with a round that
            // ran and failed. Relative to an engine without parking this
            // changes only dispatcher-*effort* accounting (`rounds`,
            // `attempts`, `controller_unavailable` stop counting doomed
            // probes) — never simulated behavior: nothing could have
            // dispatched, so execution time, latencies, conflict counts,
            // acquisitions, and event scheduling are untouched. Both scan
            // kinds park identically, keeping incremental vs full-scan
            // metrics bit-identical.
            self.dispatch_cursor = self.dispatch_cursor.wrapping_add(1);
            return;
        }
        self.policy.begin_round();
        // Two passes implement the paper's controller-affinity policy: first
        // serve chips whose *home-row* controller is free (short, row-local
        // circuits), then let remaining work reach over to distant
        // controllers.
        let mut no_controller = false;
        for pass in 0..2 {
            if no_controller {
                break;
            }
            no_controller = self.dispatch_data_bursts(now, pass == 0);
            if !no_controller {
                no_controller = self.dispatch_command_bursts(now, pass == 0);
            }
        }
        self.dispatch_cursor = self.dispatch_cursor.wrapping_add(1);
        if no_controller {
            // The round ended on an exhausted controller pool: park. The
            // next release is guaranteed (the pool is exhausted because
            // grants are outstanding) and wakes dispatch, so skipped chips
            // cannot strand and no probe is needed.
            self.parked_on_controllers = true;
        } else if self.policy.round_needs_probe() {
            // Every attempt this round was suppressed and nothing was
            // dispatched: no in-flight completion is guaranteed to wake the
            // dispatcher, so schedule a probe round ourselves. Rounds are
            // what backoff counts in, so the deferred chips become eligible
            // again after a bounded number of probes.
            debug_assert!(!self.dispatch_pending);
            self.dispatch_pending = true;
            self.queue
                .schedule(now + POLICY_PROBE_DELAY, Event::Dispatch);
        } else if self.fault_mode
            && !self.policy.round_dispatched()
            && !self.dispatch_pending
            && (self.tsu.pending() > 0 || !self.data_ready.is_empty())
        {
            // Fault-mode liveness probe: a round moved nothing while work is
            // queued. Under faults that can mean every route to the work is
            // down (`RouteBlocked` is retryable until repair) with no
            // in-flight completion left to wake us — re-arm ourselves. Only
            // active when a fault plan is loaded, so fault-free runs keep a
            // bit-identical calendar.
            self.dispatch_pending = true;
            self.queue
                .schedule(now + FAULT_PROBE_DELAY, Event::Dispatch);
        }
    }

    /// Consumes a fabric release report (the wake list): a freed controller
    /// un-parks dispatch. The resource component (`bus` / `channel` / mesh
    /// region, see [`venice_interconnect::FreedResource`]) names which
    /// chips could have been unblocked; the engine's ready sets already
    /// bound round cost by *queued* work, so per-resource re-arming is left
    /// to future policies.
    fn note_release(&mut self, info: &ReleaseInfo) {
        if info.controller.is_some() {
            self.parked_on_controllers = false;
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & degraded mode
    // ------------------------------------------------------------------

    /// Delivers one scripted fault-plan action. Every class reconverges on
    /// a dispatch kick: repairs free resources parked chips may now reach,
    /// and faults fail transactions whose follow-on work (migration steps,
    /// request completions) must keep the calendar moving.
    fn on_fault(&mut self, now: SimTime, index: usize) {
        let action = self.fault_script[index].1;
        self.faults_injected += 1;
        match action {
            FaultAction::Fabric(fault) => {
                if fault.is_down() {
                    self.faults_active += 1;
                } else {
                    self.faults_active = self.faults_active.saturating_sub(1);
                }
                let impact = self.fabric.inject_fault(fault);
                for node in impact.dead_chips {
                    // Fabric blast radii are outages, not media loss: they
                    // never arm a rebuild (the chip's data is intact behind
                    // the severed path).
                    self.kill_chip(now, usize::from(node.0), false);
                }
                for node in impact.revived_chips {
                    self.revive_chip(usize::from(node.0));
                }
                // A freed resource (repaired channel/bus) behaves like a
                // release wake: handled by the unconditional un-park below.
            }
            FaultAction::ChipDeath(node) => {
                self.faults_active += 1;
                self.kill_chip(now, usize::from(node.0), true);
            }
            FaultAction::ArmTransient { chip, charges } => {
                self.transient_charges[usize::from(chip.0)] += charges;
            }
        }
        // Repairs may free the resource every pooled controller was parked
        // on, and fault drains leave successor work needing a round; either
        // way the dispatcher must look again.
        self.parked_on_controllers = false;
        self.schedule_dispatch(now);
    }

    /// Marks a chip unreachable and fail-drains everything queued for it.
    /// Failing a transaction runs its normal completion bookkeeping, which
    /// can spawn *new* transactions onto the same dead chip (relocation
    /// writes, source-block erases) or advance in-flight *rebuild* jobs
    /// (whose remapped writes land elsewhere), so the drain loops until
    /// both the TSU queues — the rebuild class included — and the pending
    /// data bursts are empty.
    ///
    /// `permanent` distinguishes media loss (a scripted
    /// [`FaultAction::ChipDeath`] — the die is gone and, with redundancy
    /// armed, a background rebuild starts) from a fabric outage's blast
    /// radius (the chip is merely unreachable until repair).
    fn kill_chip(&mut self, now: SimTime, chip: usize, permanent: bool) {
        self.chip_dead[chip] += 1;
        if permanent {
            self.media_dead[chip] = true;
            if self.redundancy_mode {
                self.start_rebuild(now, chip);
            }
        }
        if self.chip_dead[chip] > 1 {
            return; // already dead via an overlapping fault
        }
        let mut drained: Vec<Transaction> = Vec::new();
        loop {
            self.tsu.drain_chip_into(chip as u16, &mut drained);
            if drained.is_empty() && self.data_pending[chip].is_empty() {
                break;
            }
            for txn in &drained {
                self.fail_txn(now, txn.id);
            }
            while let Some(txn_id) = self.data_pending[chip].pop_front() {
                let die = self.die_key(self.slot(txn_id).txn.target);
                self.die_busy[die] = false;
                self.fail_txn(now, txn_id);
            }
        }
        self.data_ready.remove(chip);
        // In-flight command/array events finish on their own; the dead-chip
        // check in `on_chip_op_done` fails them at the command boundary.
    }

    /// Reverses one layer of chip death (repair). Queued work resumes on
    /// the next dispatch round; nothing needs re-arming beyond that because
    /// a dead chip's queues were drained, so new work wakes the ready sets.
    fn revive_chip(&mut self, chip: usize) {
        self.chip_dead[chip] = self.chip_dead[chip].saturating_sub(1);
    }

    /// Completes a transaction with error status: the owning request (if
    /// any) is marked failed but still completes, and migration bookkeeping
    /// advances normally — a degraded run must never strand the calendar.
    fn fail_txn(&mut self, now: SimTime, txn_id: TxnId) {
        let (txn, migration) = self.free_txn(txn_id);
        if let Some(req) = txn.request {
            let st = &mut self.requests[req.0 as usize];
            if st.live {
                st.failed = true;
            }
        }
        self.complete_txn(now, txn, migration);
    }

    // ------------------------------------------------------------------
    // Redundancy: degraded reads & background rebuild
    // ------------------------------------------------------------------

    /// Reconstruction-read targets for a dead chip's page: the surviving
    /// members of its parity group, each mirrored at the dead page's
    /// address with the page clamped to the peer block's write pointer (a
    /// peer that never wrote the block contributes nothing — XOR with an
    /// erased page is free). Peers whose plane hosts an active migration
    /// count as `blocked`: the migration's victim-block erase may already
    /// be in flight, and a mirrored read spawned now could land on the
    /// block *after* the erase resets its write pointer. A read spawned
    /// when no migration is active is safe — it holds a `block_users`
    /// count, so any later erase waits for it to drain. Peers behind a
    /// fabric fault's blast radius are `blocked` too (their media is
    /// intact but unreadable), and a media-dead peer marks the whole set
    /// `lost` — XOR cannot reconstruct around a missing member.
    fn survivor_targets(&self, dead: PhysicalPageAddr) -> SurvivorSet {
        let cols = self.config.fabric.cols;
        let mut set =
            SurvivorSet { targets: Vec::new(), severed: 0, migrating: 0, lost: false };
        for peer in self.config.redundancy.survivors(dead.chip.0, cols) {
            let c = usize::from(peer);
            let wp = self.chips[c].write_pointer(dead.addr);
            if wp == 0 {
                continue; // never wrote the block: no contribution needed
            }
            if self.media_dead[c] {
                set.lost = true;
                continue;
            }
            if self.chip_dead[c] > 0 {
                set.severed += 1;
                continue;
            }
            let probe = PhysicalPageAddr { chip: ChipId(peer), addr: dead.addr };
            if self.plane_under_migration(self.ftl.config().array.plane_index(probe)) {
                set.migrating += 1;
                continue;
            }
            let mut addr = dead.addr;
            addr.page = addr.page.min(wp - 1);
            set.targets.push(PhysicalPageAddr { chip: ChipId(peer), addr });
        }
        set
    }

    /// True when any active GC / wear migration targets `plane` (the
    /// active-slot list is tiny, so a linear scan suffices).
    fn plane_under_migration(&self, plane: usize) -> bool {
        self.migrations.iter().flatten().any(|m| m.job.plane == plane)
    }

    /// Fans one foreground read of a dead chip's page out to its surviving
    /// parity-group members: one reconstruction read per contributing
    /// survivor, all owned by the originating request so the completion
    /// posts only once every member arrived. XOR reconstruction is
    /// all-or-nothing, so a single blocked (or destroyed) survivor fails
    /// the whole attempt — partial fan-outs would decode garbage.
    fn spawn_degraded_read(
        &mut self,
        now: SimTime,
        lpa: u64,
        req_id: u64,
        dead: PhysicalPageAddr,
    ) -> DegradedRead {
        let set = self.survivor_targets(dead);
        if set.lost {
            return DegradedRead::Lost;
        }
        if set.blocked() {
            return DegradedRead::Blocked;
        }
        for &target in &set.targets {
            self.spawn_txn(now, TxnKind::UserRead, target, Some(lpa), Some(req_id), NO_MIGRATION);
        }
        DegradedRead::Spawned(set.targets.len() as u32)
    }

    /// Arms the background rebuild of a permanently dead `chip`, queueing
    /// behind an active rebuild (one chip rebuilds at a time, like a real
    /// RAID controller's serialized rebuild).
    fn start_rebuild(&mut self, now: SimTime, chip: usize) {
        debug_assert!(self.redundancy_mode);
        if self.rebuild.as_ref().is_some_and(|r| r.chip == chip)
            || self.rebuild_pending.contains(&chip)
        {
            return; // already rebuilding / queued (overlapping scripts)
        }
        if self.rebuild.is_some() {
            self.rebuild_pending.push_back(chip);
            return;
        }
        self.hil.set_background_cap(REBUILD_MAX_JOBS);
        self.rebuild = Some(RebuildState {
            chip,
            next_lpa: 0,
            tokens: REBUILD_BURST,
            jobs: Vec::new(),
            scan_done: false,
            retries: Vec::new(),
            deferred: Vec::new(),
        });
        if !self.rebuild_tick_armed {
            self.rebuild_tick_armed = true;
            self.queue.schedule(now + REBUILD_TICK, Event::RebuildTick);
        }
    }

    /// One pacing quantum of the rebuild engine: refill the token bucket,
    /// advance the scan of the logical space (staging dead-chip pages into
    /// the HIL's background lane), and launch reconstruction jobs while
    /// tokens and job slots last. The tick re-arms itself only while a
    /// rebuild is active, so a finished rebuild stops touching the
    /// calendar.
    fn on_rebuild_tick(&mut self, now: SimTime) {
        if self.rebuild.is_none() {
            self.rebuild_tick_armed = false;
            return;
        }
        let chip = {
            let r = self.rebuild.as_mut().expect("checked above");
            r.tokens = (r.tokens + REBUILD_RATE).min(REBUILD_BURST);
            r.chip
        };
        // Re-submit last tick's blocked pages first: their blockers have
        // had a tick to clear, and queue order retries them before fresh
        // scan output claims the tokens.
        let parked = std::mem::take(
            &mut self.rebuild.as_mut().expect("checked above").deferred,
        );
        for lpa in parked {
            self.hil.submit_background(lpa);
        }
        let logical = self.ftl.logical_pages();
        let mut scanned = 0u64;
        while scanned < REBUILD_SCAN_BATCH {
            let lpa = {
                let r = self.rebuild.as_mut().expect("checked above");
                if r.scan_done || r.next_lpa >= logical {
                    r.scan_done = true;
                    break;
                }
                let l = r.next_lpa;
                r.next_lpa += 1;
                l
            };
            scanned += 1;
            let on_dead = self.ftl.translate(lpa).is_some_and(|g| {
                usize::from(self.ftl.config().array.unpack(g).chip.0) == chip
            });
            if on_dead {
                // Stage into the HIL's background lane: invisible to
                // foreground arbitration, deferred (never dropped) when
                // the in-flight cap or the token bucket is exhausted.
                self.hil.submit_background(lpa);
            }
        }
        while self.rebuild.as_ref().expect("checked above").tokens > 0 {
            let Some(lpa) = self.hil.fetch_background() else {
                break;
            };
            self.rebuild.as_mut().expect("checked above").tokens -= 1;
            self.launch_rebuild_job(now, lpa);
        }
        self.maybe_finish_rebuild(now);
        if self.rebuild.is_some() {
            self.queue.schedule(now + REBUILD_TICK, Event::RebuildTick);
        } else {
            self.rebuild_tick_armed = false;
        }
        self.schedule_dispatch(now);
    }

    /// Launches one reconstruction job for a staged logical page. Pages
    /// remapped since the scan staged them (host overwrite, GC) need
    /// nothing; buffer-resident pages skip straight to the remapped write;
    /// the rest spawn one low-priority [`TxnKind::RebuildRead`] per
    /// contributing group member. Strict parity: a page whose survivor
    /// set is short a *transiently* unreadable member re-stages with
    /// bounded attempts ([`REBUILD_RETRY_LIMIT`]) — each retry costs a
    /// token, so the pacing bucket bounds the churn — and a page short a
    /// *destroyed* member (or out of attempts) is skipped and counted in
    /// `rebuild_skipped_pages`. The rebuild always drains, and a
    /// foreground read classifies any true loss.
    fn launch_rebuild_job(&mut self, now: SimTime, lpa: u64) {
        let chip = self.rebuild.as_ref().expect("rebuild active").chip;
        let on_dead = self
            .ftl
            .translate(lpa)
            .filter(|g| usize::from(self.ftl.config().array.unpack(*g).chip.0) == chip);
        let Some(gppa) = on_dead else {
            self.hil.complete_background();
            return;
        };
        if self.pending_programs.contains(gppa.0) {
            // The lost copy's program never landed but its data is still in
            // the controller's write buffer: rebuild without touching the
            // survivors.
            let r = self.rebuild.as_mut().expect("rebuild active");
            r.jobs.push(RebuildJob { lpa, reads_pending: 0 });
            let idx = r.jobs.len() - 1;
            self.launch_rebuild_write(now, idx);
            return;
        }
        let dead = self.ftl.config().array.unpack(gppa);
        let set = self.survivor_targets(dead);
        if set.lost {
            // Overlapping deaths destroyed a group member: the page stays
            // mapped to the dead chip and the recovery is incomplete.
            self.rebuild_skipped_pages += 1;
            self.hil.complete_background();
            return;
        }
        if set.severed > 0 {
            // A media-alive survivor sits behind a fabric fault that may
            // never heal: defer rather than reconstruct from a partial
            // set, up to REBUILD_RETRY_LIMIT tick-spaced attempts so a
            // permanent severance cannot stall the drain.
            let r = self.rebuild.as_mut().expect("rebuild active");
            match r.retries.iter().position(|(l, _)| *l == lpa) {
                Some(i) if r.retries[i].1 >= REBUILD_RETRY_LIMIT => {
                    r.retries.swap_remove(i);
                    self.rebuild_skipped_pages += 1;
                }
                Some(i) => {
                    r.retries[i].1 += 1;
                    r.deferred.push(lpa);
                }
                None => {
                    r.retries.push((lpa, 1));
                    r.deferred.push(lpa);
                }
            }
            self.hil.complete_background();
            return;
        }
        if set.migrating > 0 {
            // A survivor's plane hosts an active migration. Migrations are
            // finite and GC quiesces once writes drain, so parking the
            // page until the next tick always terminates — no bounded
            // attempt is burned on a blocker that is guaranteed to clear.
            let r = self.rebuild.as_mut().expect("rebuild active");
            r.deferred.push(lpa);
            self.hil.complete_background();
            return;
        }
        let r = self.rebuild.as_mut().expect("rebuild active");
        r.retries.retain(|(l, _)| *l != lpa);
        r.jobs.push(RebuildJob { lpa, reads_pending: set.targets.len() as u32 });
        let idx = r.jobs.len() - 1;
        if set.targets.is_empty() {
            // Every contribution was an erased page: the content
            // reconstructs without touching flash — write it straight out.
            self.launch_rebuild_write(now, idx);
            return;
        }
        for target in set.targets {
            self.spawn_txn(now, TxnKind::RebuildRead, target, Some(lpa), None, NO_MIGRATION);
        }
    }

    /// A reconstruction read arrived (or fail-drained — the bookkeeping
    /// must advance either way so `kill_chip` drains never strand a job):
    /// when the last one lands, the reconstructed page is written back out.
    fn on_rebuild_read_done(&mut self, now: SimTime, txn: Transaction) {
        let lpa = txn.lpa.expect("rebuild read has an lpa");
        let r = self.rebuild.as_mut().expect("rebuild read implies active rebuild");
        let idx = r
            .jobs
            .iter()
            .position(|j| j.lpa == lpa)
            .expect("rebuild read has a job");
        r.jobs[idx].reads_pending -= 1;
        if r.jobs[idx].reads_pending == 0 {
            self.launch_rebuild_write(now, idx);
        }
    }

    /// Writes one reconstructed page back out through the normal FTL
    /// allocator, retrying allocations that land on a dead plane (the
    /// discarded pages are plain invalidated space for GC). The program is
    /// spawned immediately after its allocation — any interleaved
    /// allocation would break the chip's in-order program contract. Out of
    /// space defers the page back into the background lane rather than
    /// dropping it; GC frees room (the dead chip's invalidated blocks are
    /// reclaimable) and a later tick retries.
    fn launch_rebuild_write(&mut self, now: SimTime, job_idx: usize) {
        let (lpa, chip) = {
            let r = self.rebuild.as_ref().expect("rebuild active");
            (r.jobs[job_idx].lpa, r.chip)
        };
        let still_dead = self
            .ftl
            .translate(lpa)
            .is_some_and(|g| usize::from(self.ftl.config().array.unpack(g).chip.0) == chip);
        if !still_dead {
            // Remapped while its reconstruction reads were in flight
            // (host overwrite): nothing left to rebuild.
            self.retire_rebuild_job(now, job_idx);
            return;
        }
        let attempts = self.config.array.total_planes().max(1);
        let mut dest = None;
        for _ in 0..attempts {
            match self.ftl.allocate_write(lpa) {
                Ok(gppa) => {
                    let target = self.ftl.config().array.unpack(gppa);
                    if self.chip_dead[usize::from(target.chip.0)] == 0 {
                        dest = Some((gppa, target));
                        break;
                    }
                    // Dead-plane allocation: superseded by the next attempt.
                }
                Err(venice_ftl::FtlError::OutOfSpace) => break,
                Err(e) => panic!("rebuild write failed: {e}"),
            }
        }
        match dest {
            Some((gppa, target)) => {
                self.pending_programs.insert(gppa.0);
                self.spawn_txn(now, TxnKind::RebuildWrite, target, Some(lpa), None, NO_MIGRATION);
            }
            None => {
                let r = self.rebuild.as_mut().expect("rebuild active");
                r.jobs.swap_remove(job_idx);
                self.hil.complete_background();
                self.hil.submit_background(lpa);
                self.check_gc(now);
            }
        }
    }

    /// A remapped rebuild write landed (or fail-drained): the page is
    /// rebuilt and its job retires.
    fn on_rebuild_write_done(&mut self, now: SimTime, txn: Transaction) {
        let lpa = txn.lpa.expect("rebuild write has an lpa");
        let r = self.rebuild.as_mut().expect("rebuild write implies active rebuild");
        let idx = r
            .jobs
            .iter()
            .position(|j| j.lpa == lpa && j.reads_pending == 0)
            .expect("rebuild write has a job");
        self.rebuilt_pages += 1;
        self.retire_rebuild_job(now, idx);
        self.check_gc(now);
    }

    /// Removes one finished job and, when the scan is done and nothing is
    /// staged or in flight, retires the whole rebuild — recording the MTTR
    /// endpoint and starting the next queued chip, if any.
    fn retire_rebuild_job(&mut self, now: SimTime, job_idx: usize) {
        self.rebuild
            .as_mut()
            .expect("rebuild active")
            .jobs
            .swap_remove(job_idx);
        self.hil.complete_background();
        self.maybe_finish_rebuild(now);
    }

    fn maybe_finish_rebuild(&mut self, now: SimTime) {
        let done = self
            .rebuild
            .as_ref()
            .is_some_and(|r| r.scan_done && r.jobs.is_empty() && r.deferred.is_empty())
            && self.hil.background_queued() == 0;
        if !done {
            return;
        }
        self.rebuild = None;
        self.rebuild_done = now;
        if let Some(chip) = self.rebuild_pending.pop_front() {
            self.start_rebuild(now, chip);
        }
    }

    /// Pending read-data bursts (they hold their die's page register, so
    /// they go before new commands). Returns true when the fabric ran out of
    /// controllers.
    ///
    /// The pass visits chips in circular ascending order from the fairness
    /// cursor. Incrementally, the visit list comes from the `data_ready`
    /// set (O(ready chips)); the retained full scan enumerates every chip —
    /// chips with no pending burst contribute nothing either way, so the
    /// acquisition sequence is bit-identical between the two.
    fn dispatch_data_bursts(&mut self, now: SimTime, home_only: bool) -> bool {
        let chip_count = self.chips.len();
        let mut ready = std::mem::take(&mut self.data_scratch);
        match self.config.scan {
            DispatchScanKind::Incremental => self
                .data_ready
                .collect_into_from(self.dispatch_cursor % chip_count, &mut ready),
            DispatchScanKind::FullScan => {
                ready.clear();
                ready.extend(
                    (0..chip_count).map(|off| ((self.dispatch_cursor + off) % chip_count) as u16),
                );
            }
        }
        let ran_out = 'out: {
            for &chip in &ready {
                let c = usize::from(chip);
                if self.chip_dead[c] > 0 {
                    // The chip died after its data became ready: fail-drain
                    // (mirrors `kill_chip` for bursts queued post-death).
                    while let Some(txn_id) = self.data_pending[c].pop_front() {
                        let die = self.die_key(self.slot(txn_id).txn.target);
                        self.die_busy[die] = false;
                        self.fail_txn(now, txn_id);
                    }
                    self.data_ready.remove(c);
                    continue;
                }
                if home_only && !self.fabric.home_controller_free(NodeId(chip)) {
                    continue;
                }
                while let Some(&txn_id) = self.data_pending[c].front() {
                    if self.resilience_mode && self.txn_aborted(self.slot(txn_id).txn.request) {
                        // The owning request's deadline fired while this
                        // burst waited for a path out: fail it at visit
                        // time and free its die (mirrors the dead-chip
                        // drain above).
                        self.data_pending[c].pop_front();
                        if self.data_pending[c].is_empty() {
                            self.data_ready.remove(c);
                        }
                        let die = self.die_key(self.slot(txn_id).txn.target);
                        self.die_busy[die] = false;
                        self.fail_txn(now, txn_id);
                        continue;
                    }
                    // Data bursts hold their die's page register, so the TSU
                    // queue age does not apply; pass zero (no starvation
                    // override — the backoff bound alone caps the deferral).
                    if !self.policy.try_attempt(chip, 0) {
                        break;
                    }
                    match self.fabric.try_acquire(NodeId(chip)) {
                        Ok(grant) => {
                            self.policy.note_success(chip);
                            self.data_pending[c].pop_front();
                            if self.data_pending[c].is_empty() {
                                self.data_ready.remove(c);
                            }
                            let bytes = self.config.page_bytes();
                            let d = self.fabric.transfer(&grant, bytes);
                            let inf = self.slot_mut(txn_id);
                            inf.phase = Phase::DataOut;
                            inf.grant = Some(grant);
                            self.queue.schedule(now + d, Event::DataSent(txn_id));
                        }
                        Err(AcquireError::ResourceDead) => {
                            // Dead path with no live chip mask (e.g. a dead
                            // dedicated channel): fail the burst and move on.
                            self.data_pending[c].pop_front();
                            if self.data_pending[c].is_empty() {
                                self.data_ready.remove(c);
                            }
                            let die = self.die_key(self.slot(txn_id).txn.target);
                            self.die_busy[die] = false;
                            self.fail_txn(now, txn_id);
                        }
                        Err(e) => {
                            self.policy.note_failure(chip, &e);
                            let req = self.slot(txn_id).txn.request;
                            self.note_acquire_failure(txn_id, req, e);
                            if e == AcquireError::NoFreeController {
                                break 'out true;
                            }
                            break;
                        }
                    }
                }
            }
            false
        };
        self.data_scratch = ready;
        ran_out
    }

    /// Command (and command+data) bursts for queued transactions. Returns
    /// true when the fabric ran out of controllers.
    ///
    /// The busy-chip list is in ascending chip-id order and the rotation
    /// start is `cursor % busy.len()`, so the list must contain *every*
    /// chip with queued work — including chips whose head die is busy (they
    /// cost one peek) — or the rotation would drift between engines.
    /// Incrementally the list comes from the TSU's busy set (O(busy));
    /// the retained full scan walks every chip's queues. Identical output.
    fn dispatch_command_bursts(&mut self, now: SimTime, home_only: bool) -> bool {
        let mut busy = std::mem::take(&mut self.busy_scratch);
        match self.config.scan {
            DispatchScanKind::Incremental => self.tsu.busy_chips_into(&mut busy),
            DispatchScanKind::FullScan => self.tsu.busy_chips_scan_into(&mut busy),
        }
        let ran_out = 'out: {
            if busy.is_empty() {
                break 'out false;
            }
            let start = self.dispatch_cursor % busy.len();
            for off in 0..busy.len() {
                let c = busy[(start + off) % busy.len()];
                if self.chip_dead[usize::from(c)] > 0 {
                    // Work arrived for a chip after its death (fault handling
                    // spawns follow-on transactions): fail it at visit time.
                    while let Some(txn) = self.tsu.pop(c) {
                        self.fail_txn(now, txn.id);
                    }
                    continue;
                }
                if home_only && !self.fabric.home_controller_free(NodeId(c)) {
                    continue;
                }
                let queue_age = self.tsu.queue_age_ns(c, now);
                while let Some(txn) = self.tsu.peek(c) {
                    let die = self.die_key(txn.target);
                    let (txn_kind, txn_id, txn_req) = (txn.kind, txn.id, txn.request);
                    if self.resilience_mode && txn_kind.is_read() && self.txn_aborted(txn_req) {
                        // The owning request's deadline fired while this
                        // transaction sat queued: fail it at visit time
                        // (mirrors the dead-chip drain above) — even behind
                        // a busy die, so abort drains are never blocked.
                        // Writes are exempt: their page is already allocated,
                        // and dropping the program here would leave a hole in
                        // the block's in-order write pointer — they ride to
                        // the array and the request is still classified a
                        // miss at completion.
                        let txn = self.tsu.pop(c).expect("peeked");
                        debug_assert_eq!(txn.id, txn_id);
                        self.fail_txn(now, txn_id);
                        continue;
                    }
                    if self.die_busy[die] {
                        break; // die occupied: nothing on this chip can start
                    }
                    if !self.policy.try_attempt(c, queue_age) {
                        break;
                    }
                    match self.fabric.try_acquire(NodeId(c)) {
                        Ok(grant) => {
                            self.policy.note_success(c);
                            let txn = self.tsu.pop(c).expect("peeked");
                            debug_assert_eq!(txn.id, txn_id);
                            self.die_busy[die] = true;
                            // Writes ship command + page data in one forward
                            // burst; reads and erases ship the command only.
                            let bytes = if txn_kind.is_write() {
                                self.config.command_bytes + self.config.page_bytes()
                            } else {
                                self.config.command_bytes
                            };
                            let d = self.fabric.transfer(&grant, bytes) + self.config.ftl_latency;
                            let inf = self.slot_mut(txn_id);
                            inf.phase = Phase::Command;
                            inf.grant = Some(grant);
                            self.queue.schedule(now + d, Event::CommandSent(txn_id));
                        }
                        Err(AcquireError::ResourceDead) => {
                            // No route to a live chip and no repair pending
                            // for its resource: complete with error status.
                            let txn = self.tsu.pop(c).expect("peeked");
                            debug_assert_eq!(txn.id, txn_id);
                            self.fail_txn(now, txn_id);
                        }
                        Err(e) => {
                            self.policy.note_failure(c, &e);
                            self.note_acquire_failure(txn_id, txn_req, e);
                            if e == AcquireError::NoFreeController {
                                break 'out true;
                            }
                            break;
                        }
                    }
                }
            }
            false
        };
        self.busy_scratch = busy;
        ran_out
    }

    /// Records a first-attempt path conflict against the owning request
    /// (Figure 13 counts requests whose service hit ≥ 1 conflict).
    fn note_acquire_failure(&mut self, txn_id: TxnId, req: Option<RequestId>, e: AcquireError) {
        if !e.is_path_conflict() {
            return;
        }
        let slot = self.slot_mut(txn_id);
        if slot.conflict_flagged {
            return;
        }
        slot.conflict_flagged = true;
        if let Some(r) = req {
            let st = &mut self.requests[r.0 as usize];
            if st.live {
                st.conflicted = true;
            }
        }
    }

    fn on_command_sent(&mut self, now: SimTime, txn_id: TxnId) {
        let inf = self.slot_mut(txn_id);
        debug_assert_eq!(inf.phase, Phase::Command);
        inf.phase = Phase::ArrayOp;
        let grant = inf.grant.take().expect("command held a grant");
        let txn = inf.txn;
        let released = self.fabric.release(grant);
        self.note_release(&released);
        let kind = if txn.kind.is_read() {
            NandCommandKind::Read
        } else if txn.kind.is_write() {
            NandCommandKind::Program
        } else {
            NandCommandKind::Erase
        };
        let done = self.chips[usize::from(txn.target.chip.0)]
            .start(kind, &[txn.target.addr], now)
            .unwrap_or_else(|e| panic!("chip rejected {txn:?}: {e}"));
        self.queue.schedule(done, Event::ChipOpDone(txn_id));
        self.schedule_dispatch(now);
    }

    fn on_chip_op_done(&mut self, now: SimTime, txn_id: TxnId) {
        let inf = self.slot(txn_id);
        let txn = inf.txn;
        let chip = usize::from(txn.target.chip.0);
        if self.chip_dead[chip] > 0 {
            // The chip died mid-array-op: fail-stop at the command boundary
            // (the op's result is lost; the die frees for post-repair use).
            let die = self.die_key(txn.target);
            self.die_busy[die] = false;
            self.fail_txn(now, txn_id);
            self.schedule_dispatch(now);
            return;
        }
        if self.resilience_mode && self.txn_aborted(txn.request) {
            // The deadline fired mid-array-op: fail-stop at the command
            // boundary, exactly like a chip death — the result is discarded
            // and the die frees for the next transaction.
            let die = self.die_key(txn.target);
            self.die_busy[die] = false;
            self.fail_txn(now, txn_id);
            self.schedule_dispatch(now);
            return;
        }
        if !txn.kind.is_read() && self.transient_charges[chip] > 0 {
            // Transient program/erase failure: retry in place. The die stays
            // claimed and the command is NOT re-issued to the chip model
            // (that would violate program ordering); the bounded retry costs
            // one more array-op time on the calendar.
            self.transient_charges[chip] -= 1;
            self.retried_ops += 1;
            let d = if txn.kind.is_erase() {
                self.config.timing.t_bers
            } else {
                self.config.timing.t_prog
            };
            self.queue.schedule(now + d, Event::ChipOpDone(txn_id));
            return;
        }
        if txn.kind.is_read() {
            // Data waits in the page register for a path out; the die stays
            // claimed until the burst drains.
            self.data_pending[usize::from(txn.target.chip.0)].push_back(txn_id);
            self.data_ready.insert(usize::from(txn.target.chip.0));
        } else {
            let die = self.die_key(txn.target);
            self.die_busy[die] = false;
            let (txn, migration) = self.free_txn(txn_id);
            self.complete_txn(now, txn, migration);
        }
        self.schedule_dispatch(now);
    }

    fn on_data_sent(&mut self, now: SimTime, txn_id: TxnId) {
        let inf = self.slot_mut(txn_id);
        debug_assert_eq!(inf.phase, Phase::DataOut);
        let grant = inf.grant.take().expect("data burst held a grant");
        let released = self.fabric.release(grant);
        self.note_release(&released);
        let (txn, migration) = self.free_txn(txn_id);
        let die = self.die_key(txn.target);
        self.die_busy[die] = false;
        self.complete_txn(now, txn, migration);
        self.schedule_dispatch(now);
    }

    fn complete_txn(&mut self, now: SimTime, txn: Transaction, migration: usize) {
        if txn.kind.is_write() {
            let gppa = self.ftl.config().array.pack(txn.target);
            self.pending_programs.remove(gppa.0);
        }
        if txn.kind.is_read() || txn.kind.is_write() {
            self.release_block_user(now, txn.target);
        }
        match txn.kind {
            TxnKind::UserRead | TxnKind::UserWrite => {
                let req = txn.request.expect("user txn has a request");
                let st = &mut self.requests[req.0 as usize];
                debug_assert!(st.live, "request tracked");
                st.remaining -= 1;
                if st.remaining == 0 {
                    self.queue.schedule(
                        now + self.config.hil.completion_latency,
                        Event::RequestDone(req.0),
                    );
                }
                if txn.kind == TxnKind::UserWrite {
                    self.check_gc(now);
                }
            }
            TxnKind::GcRead | TxnKind::WearRead => self.on_migration_read_done(now, txn, migration),
            TxnKind::GcWrite | TxnKind::WearWrite => self.on_migration_write_done(now, migration),
            TxnKind::GcErase | TxnKind::WearErase => self.on_migration_erase_done(now, migration),
            TxnKind::RebuildRead => self.on_rebuild_read_done(now, txn),
            TxnKind::RebuildWrite => self.on_rebuild_write_done(now, txn),
            TxnKind::MapRead | TxnKind::MapWrite => {}
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection and wear leveling
    // ------------------------------------------------------------------

    fn check_gc(&mut self, now: SimTime) {
        for plane in self.ftl.planes_needing_gc() {
            if self.active_gc_planes[plane] {
                continue;
            }
            if let Some(job) = self.ftl.start_gc(plane) {
                self.active_gc_planes[plane] = true;
                self.start_migration(now, job, false);
            }
        }
    }

    fn check_wear(&mut self, now: SimTime) {
        if self.wear_job_active {
            return;
        }
        if let Some(job) = self.ftl.check_wear_leveling() {
            self.wear_job_active = true;
            self.start_migration(now, job, true);
        }
    }

    fn alloc_migration(&mut self, state: MigrationState) -> usize {
        match self.free_migrations.pop() {
            Some(slot) => {
                debug_assert!(self.migrations[slot].is_none());
                self.migrations[slot] = Some(state);
                slot
            }
            None => {
                self.migrations.push(Some(state));
                self.migrations.len() - 1
            }
        }
    }

    fn start_migration(&mut self, now: SimTime, job: MigrationJob, wear: bool) {
        let read_kind = if wear { TxnKind::WearRead } else { TxnKind::GcRead };
        // Pages whose program is still in flight are copied straight from
        // the write buffer; the rest need a flash read first. Partition into
        // the reusable scratch buffers (no clone of `job.pages`).
        let mut buffered = std::mem::take(&mut self.mig_buffered);
        let mut flash = std::mem::take(&mut self.mig_flash);
        debug_assert!(buffered.is_empty() && flash.is_empty());
        for &(lpa, old) in &job.pages {
            if self.pending_programs.contains(old.0) {
                buffered.push((lpa, old));
            } else {
                flash.push((lpa, old));
            }
        }
        let slot = self.alloc_migration(MigrationState {
            reads_pending: flash.len() as u32,
            writes_pending: 0,
            erase_issued: false,
            job,
            wear,
        });
        for &(lpa, old) in &buffered {
            self.relocate_page(now, slot, lpa, old);
        }
        for &(lpa, old) in &flash {
            let target = self.ftl.config().array.unpack(old);
            self.spawn_txn(now, read_kind, target, Some(lpa), None, slot);
        }
        buffered.clear();
        flash.clear();
        self.mig_buffered = buffered;
        self.mig_flash = flash;
        self.maybe_issue_erase(now, slot);
    }

    /// Remaps one migrated page and issues its program transaction, if the
    /// mapping is still current.
    fn relocate_page(&mut self, now: SimTime, slot: usize, lpa: u64, old: Gppa) {
        let wear = self.migrations[slot].as_ref().expect("active").wear;
        let dest = self
            .ftl
            .relocate(lpa, old, wear)
            .expect("relocation cannot run out of space");
        if let Some(new_gppa) = dest {
            self.pending_programs.insert(new_gppa.0);
            let target = self.ftl.config().array.unpack(new_gppa);
            let kind = if wear { TxnKind::WearWrite } else { TxnKind::GcWrite };
            self.spawn_txn(now, kind, target, Some(lpa), None, slot);
            self.migrations[slot].as_mut().expect("active").writes_pending += 1;
        }
    }

    fn on_migration_read_done(&mut self, now: SimTime, txn: Transaction, slot: usize) {
        debug_assert_ne!(slot, NO_MIGRATION, "migration txn");
        let lpa = txn.lpa.expect("migration read has an lpa");
        let old = self.ftl.config().array.pack(txn.target);
        self.migrations[slot].as_mut().expect("active").reads_pending -= 1;
        self.relocate_page(now, slot, lpa, old);
        self.maybe_issue_erase(now, slot);
    }

    fn on_migration_write_done(&mut self, now: SimTime, slot: usize) {
        debug_assert_ne!(slot, NO_MIGRATION, "migration txn");
        self.migrations[slot].as_mut().expect("active").writes_pending -= 1;
        self.maybe_issue_erase(now, slot);
    }

    fn maybe_issue_erase(&mut self, now: SimTime, slot: usize) {
        let ready = {
            let st = self.migrations[slot].as_ref().expect("active");
            st.reads_pending == 0 && st.writes_pending == 0 && !st.erase_issued
        };
        if ready {
            self.issue_migration_erase(now, slot);
        }
    }

    fn issue_migration_erase(&mut self, now: SimTime, slot: usize) {
        let (plane, block) = {
            let st = self.migrations[slot].as_mut().expect("active");
            st.erase_issued = true;
            (st.job.plane, st.job.block)
        };
        let target = self.ftl.config().array.page_at(plane, block, 0);
        let key = self.block_key(target);
        if self.block_users[key] > 0 {
            // Stale in-flight reads still target this block; erase when the
            // last one drains.
            self.blocked_erases.push((key, slot));
            return;
        }
        self.spawn_migration_erase(now, slot);
    }

    fn spawn_migration_erase(&mut self, now: SimTime, slot: usize) {
        let (plane, block, wear) = {
            let st = self.migrations[slot].as_ref().expect("active");
            (st.job.plane, st.job.block, st.wear)
        };
        let target = self.ftl.config().array.page_at(plane, block, 0);
        let kind = if wear { TxnKind::WearErase } else { TxnKind::GcErase };
        self.spawn_txn(now, kind, target, None, None, slot);
    }

    fn on_migration_erase_done(&mut self, now: SimTime, slot: usize) {
        debug_assert_ne!(slot, NO_MIGRATION, "migration txn");
        let st = self.migrations[slot].take().expect("active");
        self.free_migrations.push(slot);
        self.ftl.finish_erase(&st.job, st.wear);
        if st.wear {
            self.wear_job_active = false;
        } else {
            self.active_gc_planes[st.job.plane] = false;
        }
        self.erases_since_wear_check += 1;
        if self.erases_since_wear_check >= 32 {
            self.erases_since_wear_check = 0;
            self.check_wear(now);
        }
        // Freed space: resume throttled host writes in order.
        while let Some(&(req_id, lpa)) = self.throttled_writes.front() {
            if self.spawn_user_write(now, req_id, lpa) {
                self.throttled_writes.pop_front();
            } else {
                break;
            }
        }
        self.check_gc(now);
    }

    // ------------------------------------------------------------------
    // Wrap-up
    // ------------------------------------------------------------------

    fn finish(self, status: RunStatus) -> RunMetrics {
        let exec = self.last_completion.saturating_since(self.first_arrival);
        let exec_s = exec.as_secs_f64().max(1e-12);
        let chips: f64 = self.chips.iter().map(|c| c.stats().energy_nj).sum();
        let fabric_stats = self.fabric.stats();
        let standby_mw = self.config.energy.standby_mw * self.chips.len() as f64;
        let static_mw = self.config.static_power.controller_mw
            + self.config.static_power.dram_mw
            + standby_mw;
        let energy_mj =
            static_mw * exec_s + chips / 1e6 + fabric_stats.transfer_energy_nj / 1e6;
        // Per-tenant QoS rollup: engine-side latency/conflict/failure
        // accounting joined with the HIL's per-tenant back-pressure counts.
        let tenant_hil = self.hil.tenant_stats();
        let tenants: Vec<crate::TenantMetrics> = self
            .config
            .tenants
            .specs()
            .iter()
            .enumerate()
            .map(|(i, spec)| crate::TenantMetrics {
                name: spec.name,
                weight: spec.weight,
                qd_cap: spec.qd_cap,
                deadline_class: spec.deadline,
                latencies: self.tenant_latencies[i].clone(),
                completed: self.tenant_completed[i],
                conflicted: self.tenant_conflicted[i],
                backpressured: tenant_hil[i].backpressured,
                failed: self.tenant_failed[i],
                data_loss: self.tenant_data_loss[i],
                deadline_misses: self.tenant_deadline_misses[i],
                host_retries: self.tenant_host_retries[i],
                shed: self.tenant_shed[i],
                deadline_met: self.tenant_deadline_met[i],
            })
            .collect();
        RunMetrics {
            system: self.kind,
            workload: self.trace.name().to_string(),
            config: self.config.name,
            policy: self.policy.kind(),
            scout_cache: self.config.fabric.scout_cache,
            completed_requests: self.completed,
            execution_time: exec,
            latencies: self.latencies,
            conflicted_requests: self.conflicted_requests,
            energy_mj,
            avg_power_mw: energy_mj / exec_s,
            fabric: fabric_stats,
            ftl: self.ftl.stats(),
            hil: self.hil.stats(),
            tenants,
            dispatch: self.policy.stats(),
            transactions: self.spawned_txns,
            events: self.queue.scheduled_total(),
            end_time: self.last_completion,
            status,
            faults_injected: self.faults_injected,
            faults_active: self.faults_active,
            retried_ops: self.retried_ops,
            failed_requests: self.failed_requests,
            resilience: self.config.resilience,
            deadline_misses: self.deadline_misses,
            host_retries: self.host_retries,
            shed_requests: self.shed_requests,
            deadline_met_requests: self.deadline_met,
            redundancy: self.config.redundancy,
            degraded_reads: self.degraded_reads,
            rebuilt_pages: self.rebuilt_pages,
            rebuild_skipped_pages: self.rebuild_skipped_pages,
            rebuild_done_ns: self.rebuild_done.as_nanos(),
            data_loss_requests: self.data_loss_requests,
        }
    }

    /// Chip-id → mesh-node mapping (identity: chip `i` sits at node `i`).
    pub fn node_of(chip: ChipId) -> NodeId {
        NodeId(chip.0)
    }

    /// Reads served from the controller without flash access so far.
    pub fn zero_reads(&self) -> u64 {
        self.zero_reads
    }
}

/// Helper for tests: a one-page read transaction target.
#[doc(hidden)]
pub fn __test_target(chip: u16) -> PhysicalPageAddr {
    PhysicalPageAddr {
        chip: ChipId(chip),
        addr: PageAddr::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedundancyKind;
    use venice_sim::SimDuration;
    use venice_workloads::WorkloadSpec;

    fn tiny_trace(requests: usize, read_pct: f64, interarrival_us: f64) -> Trace {
        WorkloadSpec::new("unit", read_pct, 8.0, interarrival_us)
            .footprint_mb(32)
            .generate(requests)
    }

    fn run(kind: FabricKind, trace: &Trace) -> RunMetrics {
        let cfg = SsdConfig::performance_optimized().sized_for_footprint(trace.footprint_bytes());
        SsdSim::new(cfg, kind, trace).run()
    }

    #[test]
    fn all_requests_complete_on_every_fabric() {
        let trace = tiny_trace(300, 70.0, 20.0);
        for kind in FabricKind::ALL {
            let m = run(kind, &trace);
            assert_eq!(m.completed_requests, 300, "{kind}");
            assert_eq!(m.latencies.len(), 300, "{kind}");
            assert!(m.execution_time > SimDuration::ZERO, "{kind}");
            assert!(m.events >= m.transactions, "{kind}");
        }
    }

    fn run_with_plan(kind: FabricKind, trace: &Trace, plan: FaultPlan) -> RunMetrics {
        let cfg = SsdConfig::performance_optimized()
            .sized_for_footprint(trace.footprint_bytes())
            .with_fault_plan(plan);
        SsdSim::new(cfg, kind, trace).run()
    }

    #[test]
    fn every_fault_plan_drains_on_every_fabric() {
        // The degraded-mode invariant: no fault scenario hangs or panics,
        // and every request completes (possibly with error status).
        let trace = tiny_trace(200, 70.0, 10.0);
        for plan in FaultPlan::ALL {
            for kind in FabricKind::ALL {
                let m = run_with_plan(kind, &trace, plan);
                assert_eq!(m.status, RunStatus::Complete, "{plan} on {kind}");
                assert_eq!(m.completed_requests, 200, "{plan} on {kind}");
                if plan == FaultPlan::None {
                    assert_eq!(m.faults_injected, 0, "{kind}");
                    assert_eq!(m.failed_requests, 0, "{kind}");
                } else {
                    assert!(m.faults_injected > 0, "{plan} on {kind}");
                }
            }
        }
    }

    #[test]
    fn chip_death_degrades_availability_but_every_request_completes() {
        // Write-heavy so the round-robin allocator is guaranteed to place
        // pages on the chip that dies at t=20µs.
        let trace = tiny_trace(400, 0.0, 5.0);
        for kind in FabricKind::ALL {
            let m = run_with_plan(kind, &trace, FaultPlan::Chip);
            assert_eq!(m.completed_requests, 400, "{kind}");
            assert!(m.failed_requests > 0, "{kind}");
            assert!(m.availability() < 1.0, "{kind}");
            assert!(m.faults_active >= 1, "{kind}");
        }
    }

    #[test]
    fn link_repair_restores_service_that_a_permanent_fault_keeps_degraded() {
        // Baseline loses the whole row bus on a link fault; the repaired
        // variant only fails the requests inside the outage window.
        let trace = tiny_trace(400, 0.0, 5.0);
        let perm = run_with_plan(FabricKind::Baseline, &trace, FaultPlan::Link);
        let rep = run_with_plan(FabricKind::Baseline, &trace, FaultPlan::LinkRepair);
        assert!(perm.failed_requests > 0);
        assert_eq!(perm.faults_active, 1);
        assert_eq!(rep.faults_active, 0, "repair retires the active fault");
        assert!(rep.failed_requests <= perm.failed_requests);
        assert!(rep.availability() >= perm.availability());
    }

    #[test]
    fn transient_nand_errors_retry_and_still_complete() {
        let trace = tiny_trace(300, 0.0, 5.0);
        for kind in [FabricKind::Baseline, FabricKind::Venice] {
            let m = run_with_plan(kind, &trace, FaultPlan::TransientNand);
            assert_eq!(m.completed_requests, 300, "{kind}");
            assert!(m.retried_ops > 0, "{kind}");
            // Transient errors are absorbed by retry: nothing fails.
            assert_eq!(m.failed_requests, 0, "{kind}");
            assert_eq!(m.availability(), 1.0, "{kind}");
        }
    }

    #[test]
    fn watchdog_aborts_instead_of_running_forever() {
        let trace = tiny_trace(300, 70.0, 20.0);
        let cfg = SsdConfig::performance_optimized()
            .sized_for_footprint(trace.footprint_bytes())
            .with_watchdog(Some(500), None);
        let m = SsdSim::new(cfg, FabricKind::Venice, &trace).run();
        assert_eq!(m.status, RunStatus::Aborted);
        assert!(m.completed_requests < 300, "the ceiling cut the run short");

        let cfg = SsdConfig::performance_optimized()
            .sized_for_footprint(trace.footprint_bytes())
            .with_watchdog(None, Some(50_000));
        let m = SsdSim::new(cfg, FabricKind::Baseline, &trace).run();
        assert_eq!(m.status, RunStatus::Aborted);
    }

    #[test]
    fn fault_free_runs_are_bit_identical_with_the_fault_engine_compiled_in() {
        // FaultPlan::None schedules zero events and takes no fault branches:
        // the golden-hash contract depends on this.
        let trace = tiny_trace(300, 70.0, 20.0);
        for kind in FabricKind::ALL {
            let base = run(kind, &trace);
            let none = run_with_plan(kind, &trace, FaultPlan::None);
            assert_eq!(base.events, none.events, "{kind}");
            assert_eq!(base.execution_time, none.execution_time, "{kind}");
            assert_eq!(base.fabric, none.fabric, "{kind}");
        }
    }

    #[test]
    fn redundancy_off_runs_are_bit_identical_with_the_subsystem_compiled_in() {
        // RedundancyKind::None schedules zero rebuild ticks, takes no
        // degraded-read branches, and allocates identically: the
        // golden-hash contract depends on this, exactly like
        // FaultPlan::None and ResiliencePolicy::None.
        let trace = tiny_trace(300, 70.0, 20.0);
        for kind in FabricKind::ALL {
            let base = run(kind, &trace);
            let cfg = SsdConfig::performance_optimized()
                .sized_for_footprint(trace.footprint_bytes())
                .with_redundancy(RedundancyKind::None);
            let none = SsdSim::new(cfg, kind, &trace).run();
            assert_eq!(base.events, none.events, "{kind}");
            assert_eq!(base.execution_time, none.execution_time, "{kind}");
            assert_eq!(base.fabric, none.fabric, "{kind}");
            assert_eq!(none.degraded_reads, 0, "{kind}");
            assert_eq!(none.rebuilt_pages, 0, "{kind}");
            assert_eq!(none.rebuild_done_ns, 0, "{kind}");
            assert_eq!(none.data_loss_requests, 0, "{kind}");
        }
    }

    #[test]
    fn parity_rebuild_recovers_a_dead_chips_pages() {
        // FaultPlan::Chip fail-stops one chip at 20µs. Without redundancy,
        // reads of its pages are terminal data loss; with a parity group
        // armed, foreground reads reconstruct from the survivors and the
        // background rebuild remaps every page off the dead chip — zero
        // data loss and a finite MTTR. A 4×4 grid concentrates 1/16 of the
        // pages on the victim so saturating reads are guaranteed to land
        // in the rebuild window.
        let trace = WorkloadSpec::new("unit", 100.0, 8.0, 1.0)
            .footprint_mb(32)
            .generate(400);
        for kind in [FabricKind::Baseline, FabricKind::Venice] {
            let cfg = SsdConfig::performance_optimized()
                .with_mesh(4, 4)
                .sized_for_footprint(trace.footprint_bytes())
                .with_fault_plan(FaultPlan::Chip);
            let bare = SsdSim::new(cfg.clone(), kind, &trace).run();
            assert!(bare.data_loss_requests > 0, "{kind}: loss must bite bare");
            assert!(
                bare.data_loss_requests <= bare.failed_requests,
                "{kind}: data loss is a subset of failures"
            );
            assert_eq!(bare.rebuilt_pages, 0, "{kind}");

            let parity = SsdSim::new(
                cfg.with_redundancy(RedundancyKind::Parity { group: 4 }),
                kind,
                &trace,
            )
            .run();
            assert_eq!(parity.status, RunStatus::Complete, "{kind}");
            assert_eq!(parity.completed_requests, 400, "{kind}");
            assert_eq!(parity.data_loss_requests, 0, "{kind}: parity must cover");
            assert!(parity.rebuilt_pages > 0, "{kind}: rebuild must remap pages");
            assert!(
                parity.rebuild_done_ns > 20_000,
                "{kind}: MTTR endpoint after the 20µs fault, got {}",
                parity.rebuild_done_ns
            );
            assert!(parity.degraded_reads > 0, "{kind}: window reads reconstruct");
            assert!(
                parity.availability() >= bare.availability(),
                "{kind}: reconstruction cannot hurt availability"
            );
        }
    }

    #[test]
    fn deadline_classes_split_one_policy_deadline() {
        // The deadline-split tenant set gives the victim a tight latency
        // contract and frees the aggressor of any deadline while keeping
        // arbitration identical to pair_fair. Saturating the Baseline
        // fabric must breach the victim's 100µs contract, while the
        // deadline-free aggressor can never miss.
        use venice_hil::TenantSet;
        let trace = venice_workloads::mix::noisy_neighbor(400);
        let cfg = SsdConfig::performance_optimized()
            .sized_for_footprint(trace.footprint_bytes())
            .with_tenants(TenantSet::deadline_split())
            .with_resilience(ResiliencePolicy::Deadline);
        let m = SsdSim::new(cfg, FabricKind::Baseline, &trace).run();
        assert_eq!(m.status, RunStatus::Complete);
        let victim = &m.tenants[0];
        let aggressor = &m.tenants[1];
        assert_eq!(victim.deadline_class, DeadlineClass::Latency);
        assert_eq!(aggressor.deadline_class, DeadlineClass::None);
        assert!(victim.deadline_misses > 0, "tight contract must breach");
        assert_eq!(aggressor.deadline_misses, 0, "deadline-free tenant cannot miss");
        assert_eq!(
            m.deadline_misses, victim.deadline_misses,
            "all misses belong to the victim"
        );
    }

    fn run_resilient(kind: FabricKind, trace: &Trace, policy: ResiliencePolicy) -> RunMetrics {
        let cfg = SsdConfig::performance_optimized()
            .sized_for_footprint(trace.footprint_bytes())
            .with_resilience(policy);
        SsdSim::new(cfg, kind, trace).run()
    }

    #[test]
    fn resilience_off_runs_are_bit_identical_with_the_layer_compiled_in() {
        // ResiliencePolicy::None schedules zero events and takes no
        // admission/timeout/retry branches: the golden-hash contract
        // depends on this, exactly like FaultPlan::None.
        let trace = tiny_trace(300, 70.0, 20.0);
        for kind in FabricKind::ALL {
            let base = run(kind, &trace);
            let none = run_resilient(kind, &trace, ResiliencePolicy::None);
            assert_eq!(base.events, none.events, "{kind}");
            assert_eq!(base.execution_time, none.execution_time, "{kind}");
            assert_eq!(base.fabric, none.fabric, "{kind}");
            assert_eq!(none.deadline_misses, 0, "{kind}");
            assert_eq!(none.host_retries, 0, "{kind}");
            assert_eq!(none.shed_requests, 0, "{kind}");
            // With deadlines unarmed, every successful completion counts as
            // deadline-met, so goodput degenerates to successful IOPS.
            assert_eq!(
                none.deadline_met_requests,
                none.completed_requests - none.failed_requests,
                "{kind}"
            );
        }
    }

    #[test]
    fn deadlines_abort_requests_that_blow_past_them() {
        // Saturating random reads on the Baseline fabric: the p99 tail
        // (~340µs) blows past the 250µs preset deadline, so timeouts must
        // fire, abort at command boundaries, and complete the victims with
        // error status — without stranding anything.
        let trace = WorkloadSpec::new("unit", 100.0, 16.0, 1.0)
            .footprint_mb(32)
            .generate(800);
        let m = run_resilient(FabricKind::Baseline, &trace, ResiliencePolicy::Deadline);
        assert_eq!(m.status, RunStatus::Complete);
        assert_eq!(m.completed_requests, 800, "every request still completes");
        assert!(m.deadline_misses > 0, "saturation must breach the deadline");
        assert_eq!(m.failed_requests, m.deadline_misses, "misses are the only failures");
        assert_eq!(m.shed_requests, 0, "no admission control armed");
        assert_eq!(
            m.deadline_met_requests + m.deadline_misses,
            m.completed_requests,
            "completions partition into met and missed"
        );
        // A deadline-free run of the same trace sees no misses.
        let free = run(FabricKind::Baseline, &trace);
        assert_eq!(free.deadline_misses, 0);
    }

    #[test]
    fn retries_recover_deadline_misses_that_plain_deadlines_cannot() {
        // Saturating reads on the Baseline fabric: tail requests blow the
        // 250µs deadline. Plain deadlines go terminal with a miss; bounded
        // retry resubmits after backoff with a fresh window measured from
        // resubmission, so most second attempts land in time.
        let trace = WorkloadSpec::new("unit", 100.0, 16.0, 1.0)
            .footprint_mb(32)
            .generate(800);
        let dl = run_resilient(FabricKind::Baseline, &trace, ResiliencePolicy::Deadline);
        let dr = run_resilient(FabricKind::Baseline, &trace, ResiliencePolicy::DeadlineRetry);
        assert!(dl.deadline_misses > 0, "saturation must breach the deadline");
        assert!(dr.host_retries > 0, "timeouts must trigger resubmission");
        assert!(
            dr.deadline_misses < dl.deadline_misses,
            "retry must absorb some misses: {} vs {}",
            dr.deadline_misses,
            dl.deadline_misses
        );
        assert_eq!(dr.completed_requests, 800);
        assert!(dr.host_retries <= 3 * 800, "the per-request cap bounds total retries");
    }

    #[test]
    fn retries_remap_writes_off_a_dead_chip() {
        // FaultPlan::Chip fail-stops one chip at 20µs; writes mapped there
        // fail terminally without retry, but a host resubmission allocates
        // a fresh page through the round-robin allocator and usually lands
        // on a live plane — bounded retry recovers most victims.
        let trace = tiny_trace(400, 0.0, 5.0);
        let cfg = SsdConfig::performance_optimized()
            .sized_for_footprint(trace.footprint_bytes())
            .with_fault_plan(FaultPlan::Chip);
        let bare = SsdSim::new(cfg.clone(), FabricKind::Baseline, &trace).run();
        let retry = SsdSim::new(
            cfg.with_resilience(ResiliencePolicy::Retry),
            FabricKind::Baseline,
            &trace,
        )
        .run();
        assert!(bare.failed_requests > 0, "chip death must bite");
        assert!(retry.host_retries > 0, "failures must trigger resubmission");
        assert!(
            retry.failed_requests < bare.failed_requests,
            "retry must recover some victims: {} vs {}",
            retry.failed_requests,
            bare.failed_requests
        );
        assert_eq!(retry.completed_requests, 400);
        assert!(retry.availability() > bare.availability());
    }

    #[test]
    fn overload_admission_sheds_and_preserves_the_partition_invariant() {
        // Saturating arrivals against the full layer: occupancy crosses the
        // high watermark, the decaying-max tail estimate exceeds the
        // deadline, and the admission policy starts shedding. Shed +
        // completed must still partition the trace (the run-end assert
        // enforces the same invariant internally).
        let trace = WorkloadSpec::new("unit", 100.0, 16.0, 0.5)
            .footprint_mb(32)
            .generate(800);
        let m = run_resilient(FabricKind::Baseline, &trace, ResiliencePolicy::Full);
        assert_eq!(m.status, RunStatus::Complete);
        assert!(m.shed_requests > 0, "overload must shed");
        assert_eq!(m.completed_requests + m.shed_requests, 800);
        assert!(m.deadline_met_requests > 0, "some requests still succeed");
        assert!(m.goodput() > 0.0);
        let by_tenant_shed: u64 = m.tenants.iter().map(|t| t.shed).sum();
        assert_eq!(by_tenant_shed, m.shed_requests);
    }

    #[test]
    fn resilient_runs_are_deterministic() {
        let trace = WorkloadSpec::new("unit", 90.0, 16.0, 1.0)
            .footprint_mb(32)
            .generate(500);
        for policy in [ResiliencePolicy::DeadlineRetry, ResiliencePolicy::Full] {
            let a = run_resilient(FabricKind::Venice, &trace, policy);
            let b = run_resilient(FabricKind::Venice, &trace, policy);
            assert_eq!(a.execution_time, b.execution_time, "{policy}");
            assert_eq!(a.events, b.events, "{policy}");
            assert_eq!(a.deadline_misses, b.deadline_misses, "{policy}");
            assert_eq!(a.host_retries, b.host_retries, "{policy}");
            assert_eq!(a.shed_requests, b.shed_requests, "{policy}");
            assert_eq!(a.latencies, b.latencies, "{policy}");
        }
    }

    #[test]
    fn ideal_is_fastest_baseline_is_slowest_under_load() {
        // Saturating random reads: path conflicts dominate the baseline.
        let trace = WorkloadSpec::new("unit", 100.0, 16.0, 1.0)
            .footprint_mb(32)
            .generate(800);
        let base = run(FabricKind::Baseline, &trace);
        let venice = run(FabricKind::Venice, &trace);
        let ideal = run(FabricKind::Ideal, &trace);
        let v_speedup = venice.speedup_over(&base);
        let i_speedup = ideal.speedup_over(&base);
        assert!(i_speedup >= v_speedup, "ideal {i_speedup} vs venice {v_speedup}");
        assert!(v_speedup > 1.2, "venice speedup {v_speedup}");
    }

    #[test]
    fn ideal_has_zero_conflicts() {
        let trace = tiny_trace(400, 90.0, 5.0);
        let m = run(FabricKind::Ideal, &trace);
        assert_eq!(m.conflicted_requests, 0);
        assert_eq!(m.fabric.conflicts, 0);
    }

    #[test]
    fn venice_conflicts_far_below_baseline() {
        // The paper reports ~0.02% for Venice vs ~24% for Baseline; our
        // dispatcher's pessimistic first-try accounting (every queued
        // transfer is attempted each scheduling round) inflates absolute
        // numbers, but Venice must still resolve conflict-free decisively
        // more often than the Baseline (see EXPERIMENTS.md).
        let trace = tiny_trace(600, 80.0, 5.0);
        let base = run(FabricKind::Baseline, &trace);
        let ven = run(FabricKind::Venice, &trace);
        assert!(
            ven.conflict_pct() < base.conflict_pct() * 0.8,
            "venice {} vs baseline {}",
            ven.conflict_pct(),
            base.conflict_pct()
        );
    }

    #[test]
    fn writes_trigger_gc_under_churn() {
        // Write-heavy with a small device: the cumulative writes exceed the
        // over-provisioned headroom, so the device must garbage collect.
        let trace = WorkloadSpec::new("churn", 5.0, 16.0, 8.0)
            .footprint_mb(64)
            .generate(4_000);
        let mut cfg = SsdConfig::performance_optimized();
        cfg.array.chip.blocks_per_plane = 8;
        cfg.array.chip.pages_per_block = 32;
        let m = SsdSim::new(cfg, FabricKind::Venice, &trace).run();
        assert!(m.ftl.gc_erases > 0, "GC never ran");
        assert!(m.ftl.write_amplification() > 1.0);
    }

    #[test]
    fn energy_accounting_is_positive_and_consistent() {
        let trace = tiny_trace(200, 50.0, 50.0);
        let m = run(FabricKind::Venice, &trace);
        assert!(m.energy_mj > 0.0);
        assert!(m.avg_power_mw > 0.0);
        let recomputed = m.energy_mj / m.execution_time.as_secs_f64();
        assert!((recomputed - m.avg_power_mw).abs() / m.avg_power_mw < 1e-6);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = tiny_trace(250, 60.0, 10.0);
        let a = run(FabricKind::Venice, &trace);
        let b = run(FabricKind::Venice, &trace);
        assert_eq!(a.execution_time, b.execution_time);
        assert_eq!(a.conflicted_requests, b.conflicted_requests);
        assert_eq!(a.transactions, b.transactions);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn deep_queue_cannot_starve_row_neighbors_under_retry_all() {
        // Fairness regression for the dispatch_cursor rotation: chips 0..=3
        // share row 0's bus on the Baseline fabric. Chip 0 gets a deep
        // queue, its neighbors one transaction each. If rotation works, the
        // neighbors' singletons drain while chip 0's queue is still mostly
        // full; a dispatcher stuck at chip 0 would drain the hog first.
        let trace = WorkloadSpec::new("empty", 50.0, 8.0, 10.0)
            .footprint_mb(32)
            .generate(0);
        let cfg = SsdConfig::performance_optimized().sized_for_footprint(32 << 20);
        let mut sim = SsdSim::new(cfg, FabricKind::Baseline, &trace);
        let now = SimTime::ZERO;
        const HOG_DEPTH: usize = 40;
        for _ in 0..HOG_DEPTH {
            sim.spawn_txn(now, TxnKind::MapRead, __test_target(0), Some(0), None, NO_MIGRATION);
        }
        for chip in 1..=3u16 {
            sim.spawn_txn(
                now,
                TxnKind::MapRead,
                __test_target(chip),
                Some(0),
                None,
                NO_MIGRATION,
            );
        }
        let mut batch = Vec::new();
        let mut hog_left_when_neighbors_drained = None;
        while let Some(t) = sim.queue.pop_batch(&mut batch) {
            for ev in batch.drain(..) {
                sim.handle(t, ev);
            }
            if hog_left_when_neighbors_drained.is_none()
                && (1..=3u16).all(|c| sim.tsu.pending_for(c) == 0)
            {
                hog_left_when_neighbors_drained = Some(sim.tsu.pending_for(0));
            }
        }
        assert_eq!(sim.live_txns, 0, "all transactions must complete");
        let left = hog_left_when_neighbors_drained.expect("neighbors drained");
        assert!(
            left >= HOG_DEPTH - 10,
            "rotation must serve the neighbors early: hog still had {left} of \
             {HOG_DEPTH} queued when they drained"
        );
    }

    #[test]
    fn cached_fastfails_do_not_park_chips_under_backoff() {
        // Liveness regression for the scout fast-fail cache (extends the
        // PR 3 liveness-probe contract): under ConflictBackoff a chip
        // whose every walk fast-fails is only *deferred* — the policy's
        // probe rounds re-attempt it after the backoff window, a fast-fail
        // is charged exactly like a live failed walk (so backoff
        // accounting is unchanged), and any release intersecting the
        // cached extent invalidates the entry and re-runs the real walk.
        // Completion of every request under sustained congestion is the
        // no-permanent-suppression proof.
        use crate::DispatchPolicyKind;
        use venice_interconnect::ScoutCacheKind;

        let trace = venice_workloads::WorkloadAxis::congested().trace(150);
        let base = SsdConfig::performance_optimized()
            .with_mesh(16, 16)
            .with_dispatch_policy(DispatchPolicyKind::ConflictBackoff)
            .sized_for_footprint(trace.footprint_bytes());
        let cached = SsdSim::new(
            base.clone().with_scout_cache(ScoutCacheKind::On),
            FabricKind::Venice,
            &trace,
        )
        .run();
        assert_eq!(cached.completed_requests, 150, "no chip may strand");
        assert!(
            cached.dispatch.skipped_backoff > 0,
            "congestion must actually exercise backoff"
        );
        assert!(
            cached.fabric.scout_fastfails > 0,
            "congestion must actually exercise the fast-fail path"
        );
        assert!(
            cached.fabric.scout_cache_invalidations > 0,
            "releases must invalidate intersecting entries"
        );
        // And the cache changes nothing the simulation can observe: the
        // uncached run completes identically.
        let uncached = SsdSim::new(base, FabricKind::Venice, &trace).run();
        assert_eq!(cached.execution_time, uncached.execution_time);
        assert_eq!(cached.latencies, uncached.latencies);
        assert_eq!(cached.dispatch, uncached.dispatch);
        assert_eq!(cached.fabric.conflicts, uncached.fabric.conflicts);
    }

    #[test]
    fn pssd_beats_baseline_on_transfer_bound_reads() {
        let trace = WorkloadSpec::new("bigreads", 100.0, 64.0, 4.0)
            .footprint_mb(64)
            .generate(400);
        let cfg = |_k| SsdConfig::performance_optimized()
            .sized_for_footprint(trace.footprint_bytes());
        let base = SsdSim::new(cfg(()), FabricKind::Baseline, &trace).run();
        let pssd = SsdSim::new(cfg(()), FabricKind::Pssd, &trace).run();
        assert!(pssd.speedup_over(&base) > 1.05);
    }
}
