//! The end-to-end SSD model: HIL → FTL → TSU → fabric → flash chips, as one
//! discrete-event simulation.
//!
//! The request lifecycle follows the paper's Figure 3 service timeline:
//!
//! * **read**: submission queue → FTL translate → chip queue → acquire
//!   controller + path → command burst (path held) → release → tR (die
//!   busy) → acquire controller + path → data burst → release → completion,
//! * **write**: one forward burst carries command + data, then tPROG runs
//!   inside the die with the path free,
//! * **erase** (GC/wear): command burst, then tBERS.
//!
//! The communication fabric is pluggable ([`FabricKind`]); everything else
//! is identical across systems, so execution-time ratios isolate the fabric
//! — the paper's experimental design.

use std::collections::{HashMap, HashSet, VecDeque};

use venice_ftl::{
    Ftl, FtlConfig, MappingCache, MigrationJob, RequestId, Transaction, TransactionScheduler,
    TxnId, TxnKind,
};
use venice_hil::{HostInterface, HostRequest};
use venice_interconnect::{build_fabric, AcquireError, Fabric, FabricKind, NodeId, PathGrant};
use venice_nand::{ChipId, FlashChip, NandCommandKind, PageAddr, PhysicalPageAddr};
use venice_sim::stats::LatencySamples;
use venice_sim::{EventQueue, SimTime};
use venice_workloads::{IoOp, Trace};

use crate::{RunMetrics, SsdConfig};

/// Simulator events.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Trace record `i` arrives at the host interface.
    Arrival(usize),
    /// The FTL fetches one request from a submission queue.
    Process,
    /// A command (or command+data) burst finished on the wire.
    CommandSent(TxnId),
    /// A flash array operation finished inside a die.
    ChipOpDone(TxnId),
    /// A read-data burst finished on the wire.
    DataSent(TxnId),
    /// A request's completion is posted to the host.
    RequestDone(u64),
    /// Try to dispatch queued work (coalesced; scheduled on state changes).
    Dispatch,
}

/// Which wire/array phase an in-flight transaction is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Command,
    ArrayOp,
    DataOut,
}

struct InFlight {
    txn: Transaction,
    phase: Phase,
    grant: Option<PathGrant>,
}

struct ReqState {
    arrival: SimTime,
    remaining: u32,
    conflicted: bool,
}

struct MigrationState {
    job: MigrationJob,
    wear: bool,
    reads_pending: u32,
    writes_pending: u32,
    erase_issued: bool,
}

/// The SSD simulator. Construct with [`SsdSim::new`], run a whole trace with
/// [`SsdSim::run`], and read the resulting [`RunMetrics`].
///
/// # Example
///
/// ```
/// use venice_ssd::{SsdConfig, SsdSim};
/// use venice_interconnect::FabricKind;
/// use venice_workloads::WorkloadSpec;
///
/// let trace = WorkloadSpec::new("demo", 50.0, 8.0, 100.0)
///     .footprint_mb(64)
///     .generate(200);
/// let config = SsdConfig::performance_optimized()
///     .sized_for_footprint(trace.footprint_bytes());
/// let metrics = SsdSim::new(config, FabricKind::Venice, &trace).run();
/// assert_eq!(metrics.completed_requests, 200);
/// ```
pub struct SsdSim {
    config: SsdConfig,
    kind: FabricKind,
    trace: Trace,
    fabric: Box<dyn Fabric>,
    chips: Vec<FlashChip>,
    ftl: Ftl,
    cmt: MappingCache,
    tsu: TransactionScheduler,
    hil: HostInterface,
    queue: EventQueue<Event>,

    requests: HashMap<u64, ReqState>,
    /// An arrival blocked on a full submission queue: the host stalls and
    /// the remainder of the trace shifts in time (MQSim-style dependent
    /// replay — applications do not issue independently of completions).
    stalled_arrival: Option<(HostRequest, usize)>,
    inflight: HashMap<u64, InFlight>,
    conflict_flagged: HashSet<u64>,
    next_txn: u64,
    /// Per-chip FIFO of read transactions whose data awaits a path out.
    data_pending: Vec<VecDeque<TxnId>>,
    /// Dies claimed by an in-flight operation, `(chip, die)`.
    die_busy: HashSet<(u16, u32)>,
    migrations: Vec<Option<MigrationState>>,
    txn_migration: HashMap<u64, usize>,
    active_gc_planes: HashSet<usize>,
    /// In-flight reads/programs per global block: an erase must wait until
    /// every operation targeting its block has drained (a stale read may
    /// legally target an invalidated page until the block is erased, and a
    /// program allocated into the block must land before the erase).
    block_users: HashMap<u64, u32>,
    /// Migration slots whose erase waits for a block's users to drain.
    blocked_erases: HashMap<u64, Vec<usize>>,
    /// Physical pages allocated but not yet programmed: reads of these are
    /// served from the controller's write buffer without touching flash.
    pending_programs: HashSet<u64>,
    /// Reads served from the write buffer.
    buffer_hits: u64,
    /// Host-write pages deferred because every plane is down to its GC
    /// reserve block (write throttling); retried after each erase.
    throttled_writes: VecDeque<(u64, u64)>,
    wear_job_active: bool,
    erases_since_wear_check: u32,
    dispatch_pending: bool,
    dispatch_cursor: usize,

    latencies: LatencySamples,
    completed: u64,
    conflicted_requests: u64,
    first_arrival: SimTime,
    last_completion: SimTime,
    /// Reads served without flash access (never-written pages).
    zero_reads: u64,
}

impl SsdSim {
    /// Builds a simulator for one `(config, fabric, trace)` triple. The SSD
    /// is preconditioned to steady state: every logical page is mapped and
    /// the chips' write pointers mirror the FTL's block fills.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SsdConfig::validate`]) or the trace footprint exceeds the logical
    /// space.
    pub fn new(config: SsdConfig, kind: FabricKind, trace: &Trace) -> Self {
        config.validate();
        let logical_pages = config.logical_pages_for(trace.footprint_bytes().max(1));
        let physical = config.array.total_pages();
        assert!(
            logical_pages < physical,
            "trace footprint ({logical_pages} pages) must fit under physical \
             capacity ({physical} pages); call sized_for_footprint first"
        );
        let spare_blocks_per_plane = (physical - logical_pages)
            / u64::from(config.array.chip.pages_per_block)
            / u64::from(config.array.total_planes());
        let mut ftl = Ftl::new(FtlConfig {
            array: config.array,
            logical_pages,
            // Trigger GC with half the over-provisioned blocks still free,
            // capped at the paper-scale default of 4.
            gc_threshold_blocks: (spare_blocks_per_plane / 2).clamp(1, 4) as u32,
            wear_delta_threshold: 64,
        });
        let mut chips: Vec<FlashChip> = (0..config.array.chips)
            .map(|_| FlashChip::with_energy(config.array.chip, config.timing, config.energy))
            .collect();
        for (block_addr, written) in ftl.precondition() {
            chips[usize::from(block_addr.chip.0)].precondition_block(block_addr.addr, written);
        }
        let entries_per_tp = config.page_bytes() / 8; // 8-byte mapping entries
        let chip_count = usize::from(config.array.chips);
        SsdSim {
            fabric: build_fabric(kind, config.fabric),
            chips,
            cmt: MappingCache::covering(logical_pages, entries_per_tp),
            tsu: TransactionScheduler::new(chip_count),
            hil: HostInterface::new(config.hil),
            queue: EventQueue::new(),
            requests: HashMap::new(),
            stalled_arrival: None,
            inflight: HashMap::new(),
            conflict_flagged: HashSet::new(),
            next_txn: 0,
            data_pending: (0..chip_count).map(|_| VecDeque::new()).collect(),
            die_busy: HashSet::new(),
            migrations: Vec::new(),
            txn_migration: HashMap::new(),
            active_gc_planes: HashSet::new(),
            block_users: HashMap::new(),
            blocked_erases: HashMap::new(),
            pending_programs: HashSet::new(),
            buffer_hits: 0,
            throttled_writes: VecDeque::new(),
            wear_job_active: false,
            erases_since_wear_check: 0,
            dispatch_pending: false,
            dispatch_cursor: 0,
            latencies: LatencySamples::new(),
            completed: 0,
            conflicted_requests: 0,
            first_arrival: trace.events().first().map_or(SimTime::ZERO, |e| e.arrival),
            last_completion: SimTime::ZERO,
            zero_reads: 0,
            ftl,
            trace: trace.clone(),
            config,
            kind,
        }
    }

    /// Runs the whole trace to completion and returns the metrics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation stalls (queued work with no pending events),
    /// which would indicate a scheduler bug.
    pub fn run(mut self) -> RunMetrics {
        if !self.trace.is_empty() {
            self.queue
                .schedule(self.trace.events()[0].arrival, Event::Arrival(0));
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.handle(now, ev);
        }
        assert!(
            self.tsu.is_empty()
                && self.inflight.is_empty()
                && self.stalled_arrival.is_none()
                && self.throttled_writes.is_empty(),
            "simulation drained its event queue with work still outstanding"
        );
        assert_eq!(
            self.completed,
            self.trace.len() as u64,
            "all requests must complete"
        );
        self.finish()
    }

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrival(i) => self.on_arrival(now, i),
            Event::Process => self.on_process(now),
            Event::CommandSent(txn) => self.on_command_sent(now, txn),
            Event::ChipOpDone(txn) => self.on_chip_op_done(now, txn),
            Event::DataSent(txn) => self.on_data_sent(now, txn),
            Event::RequestDone(req) => self.on_request_done(now, req),
            Event::Dispatch => self.on_dispatch(now),
        }
    }

    fn schedule_dispatch(&mut self, now: SimTime) {
        if !self.dispatch_pending {
            self.dispatch_pending = true;
            self.queue.schedule(now, Event::Dispatch);
        }
    }

    // ------------------------------------------------------------------
    // Host side
    // ------------------------------------------------------------------

    fn on_arrival(&mut self, now: SimTime, index: usize) {
        let e = self.trace.events()[index];
        let req = HostRequest {
            id: index as u64,
            arrival: now,
            op: e.op,
            offset: e.offset,
            bytes: e.bytes,
        };
        if self.hil.submit(req) {
            self.queue
                .schedule(now + self.config.hil.submission_latency, Event::Process);
            self.schedule_next_arrival(now, index);
        } else {
            // Queue full: the host stalls; the rest of the trace shifts by
            // however long this submission waits.
            self.stalled_arrival = Some((req, index));
        }
    }

    /// Schedules trace record `index + 1` preserving the original
    /// inter-arrival gap from record `index` (measured from the time record
    /// `index` actually entered the queue).
    fn schedule_next_arrival(&mut self, now: SimTime, index: usize) {
        if index + 1 < self.trace.len() {
            let gap = self.trace.events()[index + 1]
                .arrival
                .saturating_since(self.trace.events()[index].arrival);
            self.queue.schedule(now + gap, Event::Arrival(index + 1));
        }
    }

    fn on_process(&mut self, now: SimTime) {
        let Some(req) = self.hil.fetch() else { return };
        let page = self.config.page_bytes();
        let first = req.offset / page;
        let last = (req.offset + u64::from(req.bytes).max(1) - 1) / page;
        let mut txns = 0u32;
        for lpa in first..=last {
            if lpa >= self.ftl.logical_pages() {
                continue; // footprint rounding edge
            }
            self.charge_mapping_lookup(now, lpa);
            match req.op {
                IoOp::Read => match self.ftl.translate_read(lpa).expect("lpa in range") {
                    Some(gppa) if self.pending_programs.contains(&gppa.0) => {
                        // The page's program is still in flight: the data is
                        // in the controller's write buffer — serve it there.
                        self.buffer_hits += 1;
                    }
                    Some(gppa) => {
                        let target = self.ftl.config().array.unpack(gppa);
                        self.spawn_txn(now, TxnKind::UserRead, target, Some(lpa), Some(req.id));
                        txns += 1;
                    }
                    None => self.zero_reads += 1,
                },
                IoOp::Write => {
                    if self.spawn_user_write(now, req.id, lpa) {
                        txns += 1;
                    } else {
                        // Every plane is down to its GC reserve: throttle the
                        // write; it still counts toward request completion.
                        self.throttled_writes.push_back((req.id, lpa));
                        txns += 1;
                    }
                }
            }
        }
        self.requests.insert(
            req.id,
            ReqState {
                arrival: req.arrival,
                remaining: txns,
                conflicted: false,
            },
        );
        if txns == 0 {
            // Nothing touches flash (e.g. read of never-written data).
            self.queue.schedule(
                now + self.config.hil.completion_latency,
                Event::RequestDone(req.id),
            );
        }
        self.check_gc(now);
        self.schedule_dispatch(now);
    }

    /// Allocates and issues one host-write page; returns false when the FTL
    /// is out of unreserved space and the write must be throttled.
    fn spawn_user_write(&mut self, now: SimTime, req_id: u64, lpa: u64) -> bool {
        match self.ftl.allocate_write(lpa) {
            Ok(gppa) => {
                self.cmt.mark_dirty(lpa);
                self.pending_programs.insert(gppa.0);
                let target = self.ftl.config().array.unpack(gppa);
                self.spawn_txn(now, TxnKind::UserWrite, target, Some(lpa), Some(req_id));
                true
            }
            Err(venice_ftl::FtlError::OutOfSpace) => false,
            Err(e) => panic!("host write failed: {e}"),
        }
    }

    /// Cached-mapping-table lookup: a miss issues a mapping-table read
    /// (modelled as a read of the data page the translation entry points at;
    /// see DESIGN.md) and fills the cache.
    fn charge_mapping_lookup(&mut self, now: SimTime, lpa: u64) {
        if self.cmt.lookup(lpa) {
            return;
        }
        if let Some(gppa) = self.ftl.translate(lpa) {
            if !self.pending_programs.contains(&gppa.0) {
                let target = self.ftl.config().array.unpack(gppa);
                self.spawn_txn(now, TxnKind::MapRead, target, Some(lpa), None);
            }
        }
        // Dirty write-backs are absorbed by the controller DRAM buffer; the
        // covering cache used in the paper-scale experiments never evicts.
        let _ = self.cmt.fill(lpa);
    }

    fn on_request_done(&mut self, now: SimTime, req_id: u64) {
        let st = self.requests.remove(&req_id).expect("request tracked");
        self.hil.complete(req_id, now);
        self.latencies.record(now.saturating_since(st.arrival));
        if st.conflicted {
            self.conflicted_requests += 1;
        }
        self.completed += 1;
        self.last_completion = self.last_completion.max(now);
        // A stalled host can resume now that a completion freed a slot.
        if let Some((mut req, index)) = self.stalled_arrival.take() {
            req.arrival = now;
            if self.hil.submit(req) {
                self.queue
                    .schedule(now + self.config.hil.submission_latency, Event::Process);
                self.schedule_next_arrival(now, index);
            } else {
                self.stalled_arrival = Some((req, index));
            }
        }
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    fn spawn_txn(
        &mut self,
        now: SimTime,
        kind: TxnKind,
        target: PhysicalPageAddr,
        lpa: Option<u64>,
        request: Option<u64>,
    ) -> TxnId {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let txn = Transaction {
            id,
            kind,
            target,
            lpa,
            request: request.map(RequestId),
        };
        if kind.is_read() || kind.is_write() {
            *self.block_users.entry(self.block_key(target)).or_insert(0) += 1;
        }
        self.tsu.enqueue(txn);
        self.schedule_dispatch(now);
        id
    }

    /// Global block key of a physical page.
    fn block_key(&self, p: PhysicalPageAddr) -> u64 {
        let array = &self.ftl.config().array;
        array.plane_index(p) as u64 * u64::from(array.chip.blocks_per_plane)
            + u64::from(p.addr.block)
    }

    /// Marks one user of `target`'s block as drained, releasing any erase
    /// waiting on that block.
    fn release_block_user(&mut self, now: SimTime, target: PhysicalPageAddr) {
        let key = self.block_key(target);
        let count = self.block_users.get_mut(&key).expect("user count tracked");
        *count -= 1;
        if *count == 0 {
            self.block_users.remove(&key);
            if let Some(slots) = self.blocked_erases.remove(&key) {
                for slot in slots {
                    self.spawn_migration_erase(now, slot);
                }
            }
        }
    }

    fn on_dispatch(&mut self, now: SimTime) {
        self.dispatch_pending = false;
        // Two passes implement the paper's controller-affinity policy: first
        // serve chips whose *home-row* controller is free (short, row-local
        // circuits), then let remaining work reach over to distant
        // controllers.
        let mut no_controller = false;
        for pass in 0..2 {
            if no_controller {
                break;
            }
            no_controller = self.dispatch_data_bursts(now, pass == 0);
            if !no_controller {
                no_controller = self.dispatch_command_bursts(now, pass == 0);
            }
        }
        self.dispatch_cursor = self.dispatch_cursor.wrapping_add(1);
    }

    /// Pending read-data bursts (they hold their die's page register, so
    /// they go before new commands). Returns true when the fabric ran out of
    /// controllers.
    fn dispatch_data_bursts(&mut self, now: SimTime, home_only: bool) -> bool {
        let chip_count = self.chips.len();
        for off in 0..chip_count {
            let c = (self.dispatch_cursor + off) % chip_count;
            if home_only && !self.fabric.home_controller_free(NodeId(c as u16)) {
                continue;
            }
            while let Some(&txn_id) = self.data_pending[c].front() {
                match self.fabric.try_acquire(NodeId(c as u16)) {
                    Ok(grant) => {
                        self.data_pending[c].pop_front();
                        let bytes = self.config.page_bytes();
                        let d = self.fabric.transfer(&grant, bytes);
                        let inf = self.inflight.get_mut(&txn_id.0).expect("tracked");
                        inf.phase = Phase::DataOut;
                        inf.grant = Some(grant);
                        self.queue.schedule(now + d, Event::DataSent(txn_id));
                    }
                    Err(e) => {
                        let req = self.inflight.get(&txn_id.0).and_then(|i| i.txn.request);
                        self.note_acquire_failure(txn_id, req, e);
                        if e == AcquireError::NoFreeController {
                            return true;
                        }
                        break;
                    }
                }
            }
        }
        false
    }

    /// Command (and command+data) bursts for queued transactions. Returns
    /// true when the fabric ran out of controllers.
    fn dispatch_command_bursts(&mut self, now: SimTime, home_only: bool) -> bool {
        let busy: Vec<u16> = self.tsu.busy_chips().collect();
        if busy.is_empty() {
            return false;
        }
        let start = self.dispatch_cursor % busy.len();
        for off in 0..busy.len() {
            let c = busy[(start + off) % busy.len()];
            if home_only && !self.fabric.home_controller_free(NodeId(c)) {
                continue;
            }
            loop {
                let Some(txn) = self.tsu.peek(c) else { break };
                let die = (c, txn.target.addr.die);
                if self.die_busy.contains(&die) {
                    break; // die occupied: nothing on this chip can start
                }
                let txn_kind = txn.kind;
                let txn_id = txn.id;
                let txn_req = txn.request;
                match self.fabric.try_acquire(NodeId(c)) {
                    Ok(grant) => {
                        let txn = self.tsu.pop(c).expect("peeked");
                        self.die_busy.insert(die);
                        // Writes ship command + page data in one forward
                        // burst; reads and erases ship the command only.
                        let bytes = if txn_kind.is_write() {
                            self.config.command_bytes + self.config.page_bytes()
                        } else {
                            self.config.command_bytes
                        };
                        let d = self.fabric.transfer(&grant, bytes) + self.config.ftl_latency;
                        self.inflight.insert(
                            txn_id.0,
                            InFlight {
                                txn,
                                phase: Phase::Command,
                                grant: Some(grant),
                            },
                        );
                        self.queue.schedule(now + d, Event::CommandSent(txn_id));
                    }
                    Err(e) => {
                        self.note_acquire_failure(txn_id, txn_req, e);
                        if e == AcquireError::NoFreeController {
                            return true;
                        }
                        break;
                    }
                }
            }
        }
        false
    }

    /// Records a first-attempt path conflict against the owning request
    /// (Figure 13 counts requests whose service hit ≥ 1 conflict).
    fn note_acquire_failure(&mut self, txn_id: TxnId, req: Option<RequestId>, e: AcquireError) {
        if !e.is_path_conflict() || !self.conflict_flagged.insert(txn_id.0) {
            return;
        }
        if let Some(r) = req {
            if let Some(st) = self.requests.get_mut(&r.0) {
                st.conflicted = true;
            }
        }
    }

    fn on_command_sent(&mut self, now: SimTime, txn_id: TxnId) {
        let inf = self.inflight.get_mut(&txn_id.0).expect("tracked");
        debug_assert_eq!(inf.phase, Phase::Command);
        inf.phase = Phase::ArrayOp;
        let grant = inf.grant.take().expect("command held a grant");
        let txn = inf.txn;
        self.fabric.release(grant);
        let kind = if txn.kind.is_read() {
            NandCommandKind::Read
        } else if txn.kind.is_write() {
            NandCommandKind::Program
        } else {
            NandCommandKind::Erase
        };
        let done = self.chips[usize::from(txn.target.chip.0)]
            .start(kind, &[txn.target.addr], now)
            .unwrap_or_else(|e| panic!("chip rejected {txn:?}: {e}"));
        self.queue.schedule(done, Event::ChipOpDone(txn_id));
        self.schedule_dispatch(now);
    }

    fn on_chip_op_done(&mut self, now: SimTime, txn_id: TxnId) {
        let inf = self.inflight.get_mut(&txn_id.0).expect("tracked");
        let txn = inf.txn;
        if txn.kind.is_read() {
            // Data waits in the page register for a path out; the die stays
            // claimed until the burst drains.
            self.data_pending[usize::from(txn.target.chip.0)].push_back(txn_id);
        } else {
            self.die_busy.remove(&(txn.target.chip.0, txn.target.addr.die));
            self.inflight.remove(&txn_id.0);
            self.complete_txn(now, txn);
        }
        self.schedule_dispatch(now);
    }

    fn on_data_sent(&mut self, now: SimTime, txn_id: TxnId) {
        let inf = self.inflight.remove(&txn_id.0).expect("tracked");
        debug_assert_eq!(inf.phase, Phase::DataOut);
        self.fabric.release(inf.grant.expect("data burst held a grant"));
        self.die_busy
            .remove(&(inf.txn.target.chip.0, inf.txn.target.addr.die));
        self.complete_txn(now, inf.txn);
        self.schedule_dispatch(now);
    }

    fn complete_txn(&mut self, now: SimTime, txn: Transaction) {
        self.conflict_flagged.remove(&txn.id.0);
        if txn.kind.is_write() {
            let gppa = self.ftl.config().array.pack(txn.target);
            self.pending_programs.remove(&gppa.0);
        }
        if txn.kind.is_read() || txn.kind.is_write() {
            self.release_block_user(now, txn.target);
        }
        match txn.kind {
            TxnKind::UserRead | TxnKind::UserWrite => {
                let req = txn.request.expect("user txn has a request");
                let st = self.requests.get_mut(&req.0).expect("request tracked");
                st.remaining -= 1;
                if st.remaining == 0 {
                    self.queue.schedule(
                        now + self.config.hil.completion_latency,
                        Event::RequestDone(req.0),
                    );
                }
                if txn.kind == TxnKind::UserWrite {
                    self.check_gc(now);
                }
            }
            TxnKind::GcRead | TxnKind::WearRead => self.on_migration_read_done(now, txn),
            TxnKind::GcWrite | TxnKind::WearWrite => self.on_migration_write_done(now, txn),
            TxnKind::GcErase | TxnKind::WearErase => self.on_migration_erase_done(now, txn),
            TxnKind::MapRead | TxnKind::MapWrite => {}
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection and wear leveling
    // ------------------------------------------------------------------

    fn check_gc(&mut self, now: SimTime) {
        for plane in self.ftl.planes_needing_gc() {
            if self.active_gc_planes.contains(&plane) {
                continue;
            }
            if let Some(job) = self.ftl.start_gc(plane) {
                self.active_gc_planes.insert(plane);
                self.start_migration(now, job, false);
            }
        }
    }

    fn check_wear(&mut self, now: SimTime) {
        if self.wear_job_active {
            return;
        }
        if let Some(job) = self.ftl.check_wear_leveling() {
            self.wear_job_active = true;
            self.start_migration(now, job, true);
        }
    }

    fn start_migration(&mut self, now: SimTime, job: MigrationJob, wear: bool) {
        let read_kind = if wear { TxnKind::WearRead } else { TxnKind::GcRead };
        let pages = job.pages.clone();
        // Pages whose program is still in flight are copied straight from
        // the write buffer; the rest need a flash read first.
        let (buffered, flash): (Vec<_>, Vec<_>) = pages
            .into_iter()
            .partition(|(_, old)| self.pending_programs.contains(&old.0));
        let slot = self.migrations.len();
        self.migrations.push(Some(MigrationState {
            reads_pending: flash.len() as u32,
            writes_pending: 0,
            erase_issued: false,
            job,
            wear,
        }));
        for (lpa, old) in buffered {
            self.relocate_page(now, slot, lpa, old);
        }
        for (lpa, old) in flash {
            let target = self.ftl.config().array.unpack(old);
            let id = self.spawn_txn(now, read_kind, target, Some(lpa), None);
            self.txn_migration.insert(id.0, slot);
        }
        self.maybe_issue_erase(now, slot);
    }

    /// Remaps one migrated page and issues its program transaction, if the
    /// mapping is still current.
    fn relocate_page(&mut self, now: SimTime, slot: usize, lpa: u64, old: venice_ftl::Gppa) {
        let wear = self.migrations[slot].as_ref().expect("active").wear;
        let dest = self
            .ftl
            .relocate(lpa, old, wear)
            .expect("relocation cannot run out of space");
        if let Some(new_gppa) = dest {
            self.pending_programs.insert(new_gppa.0);
            let target = self.ftl.config().array.unpack(new_gppa);
            let kind = if wear { TxnKind::WearWrite } else { TxnKind::GcWrite };
            let id = self.spawn_txn(now, kind, target, Some(lpa), None);
            self.txn_migration.insert(id.0, slot);
            self.migrations[slot].as_mut().expect("active").writes_pending += 1;
        }
    }

    fn on_migration_read_done(&mut self, now: SimTime, txn: Transaction) {
        let slot = self.txn_migration.remove(&txn.id.0).expect("migration txn");
        let lpa = txn.lpa.expect("migration read has an lpa");
        let old = self.ftl.config().array.pack(txn.target);
        self.migrations[slot].as_mut().expect("active").reads_pending -= 1;
        self.relocate_page(now, slot, lpa, old);
        self.maybe_issue_erase(now, slot);
    }

    fn on_migration_write_done(&mut self, now: SimTime, txn: Transaction) {
        let slot = self.txn_migration.remove(&txn.id.0).expect("migration txn");
        self.migrations[slot].as_mut().expect("active").writes_pending -= 1;
        self.maybe_issue_erase(now, slot);
    }

    fn maybe_issue_erase(&mut self, now: SimTime, slot: usize) {
        let ready = {
            let st = self.migrations[slot].as_ref().expect("active");
            st.reads_pending == 0 && st.writes_pending == 0 && !st.erase_issued
        };
        if ready {
            self.issue_migration_erase(now, slot);
        }
    }

    fn issue_migration_erase(&mut self, now: SimTime, slot: usize) {
        let (plane, block) = {
            let st = self.migrations[slot].as_mut().expect("active");
            st.erase_issued = true;
            (st.job.plane, st.job.block)
        };
        let target = self.ftl.config().array.page_at(plane, block, 0);
        let key = self.block_key(target);
        if self.block_users.get(&key).copied().unwrap_or(0) > 0 {
            // Stale in-flight reads still target this block; erase when the
            // last one drains.
            self.blocked_erases.entry(key).or_default().push(slot);
            return;
        }
        self.spawn_migration_erase(now, slot);
    }

    fn spawn_migration_erase(&mut self, now: SimTime, slot: usize) {
        let (plane, block, wear) = {
            let st = self.migrations[slot].as_ref().expect("active");
            (st.job.plane, st.job.block, st.wear)
        };
        let target = self.ftl.config().array.page_at(plane, block, 0);
        let kind = if wear { TxnKind::WearErase } else { TxnKind::GcErase };
        let id = self.spawn_txn(now, kind, target, None, None);
        self.txn_migration.insert(id.0, slot);
    }

    fn on_migration_erase_done(&mut self, now: SimTime, txn: Transaction) {
        let slot = self.txn_migration.remove(&txn.id.0).expect("migration txn");
        let st = self.migrations[slot].take().expect("active");
        self.ftl.finish_erase(&st.job, st.wear);
        if st.wear {
            self.wear_job_active = false;
        } else {
            self.active_gc_planes.remove(&st.job.plane);
        }
        self.erases_since_wear_check += 1;
        if self.erases_since_wear_check >= 32 {
            self.erases_since_wear_check = 0;
            self.check_wear(now);
        }
        // Freed space: resume throttled host writes in order.
        while let Some(&(req_id, lpa)) = self.throttled_writes.front() {
            if self.spawn_user_write(now, req_id, lpa) {
                self.throttled_writes.pop_front();
            } else {
                break;
            }
        }
        self.check_gc(now);
    }

    // ------------------------------------------------------------------
    // Wrap-up
    // ------------------------------------------------------------------

    fn finish(self) -> RunMetrics {
        let exec = self.last_completion.saturating_since(self.first_arrival);
        let exec_s = exec.as_secs_f64().max(1e-12);
        let chips: f64 = self.chips.iter().map(|c| c.stats().energy_nj).sum();
        let fabric_stats = self.fabric.stats();
        let standby_mw = self.config.energy.standby_mw * self.chips.len() as f64;
        let static_mw = self.config.static_power.controller_mw
            + self.config.static_power.dram_mw
            + standby_mw;
        let energy_mj =
            static_mw * exec_s + chips / 1e6 + fabric_stats.transfer_energy_nj / 1e6;
        let transactions = self.next_txn;
        RunMetrics {
            system: self.kind,
            workload: self.trace.name().to_string(),
            config: self.config.name,
            completed_requests: self.completed,
            execution_time: exec,
            latencies: self.latencies,
            conflicted_requests: self.conflicted_requests,
            energy_mj,
            avg_power_mw: energy_mj / exec_s,
            fabric: fabric_stats,
            ftl: self.ftl.stats(),
            hil: self.hil.stats(),
            transactions,
            end_time: self.last_completion,
        }
    }

    /// Chip-id → mesh-node mapping (identity: chip `i` sits at node `i`).
    pub fn node_of(chip: ChipId) -> NodeId {
        NodeId(chip.0)
    }

    /// Reads served from the controller without flash access so far.
    pub fn zero_reads(&self) -> u64 {
        self.zero_reads
    }
}

/// Helper for tests: a one-page read transaction target.
#[doc(hidden)]
pub fn __test_target(chip: u16) -> PhysicalPageAddr {
    PhysicalPageAddr {
        chip: ChipId(chip),
        addr: PageAddr::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venice_sim::SimDuration;
    use venice_workloads::WorkloadSpec;

    fn tiny_trace(requests: usize, read_pct: f64, interarrival_us: f64) -> Trace {
        WorkloadSpec::new("unit", read_pct, 8.0, interarrival_us)
            .footprint_mb(32)
            .generate(requests)
    }

    fn run(kind: FabricKind, trace: &Trace) -> RunMetrics {
        let cfg = SsdConfig::performance_optimized().sized_for_footprint(trace.footprint_bytes());
        SsdSim::new(cfg, kind, trace).run()
    }

    #[test]
    fn all_requests_complete_on_every_fabric() {
        let trace = tiny_trace(300, 70.0, 20.0);
        for kind in FabricKind::ALL {
            let m = run(kind, &trace);
            assert_eq!(m.completed_requests, 300, "{kind}");
            assert_eq!(m.latencies.len(), 300, "{kind}");
            assert!(m.execution_time > SimDuration::ZERO, "{kind}");
        }
    }

    #[test]
    fn ideal_is_fastest_baseline_is_slowest_under_load() {
        // Saturating random reads: path conflicts dominate the baseline.
        let trace = WorkloadSpec::new("unit", 100.0, 16.0, 1.0)
            .footprint_mb(32)
            .generate(800);
        let base = run(FabricKind::Baseline, &trace);
        let venice = run(FabricKind::Venice, &trace);
        let ideal = run(FabricKind::Ideal, &trace);
        let v_speedup = venice.speedup_over(&base);
        let i_speedup = ideal.speedup_over(&base);
        assert!(i_speedup >= v_speedup, "ideal {i_speedup} vs venice {v_speedup}");
        assert!(v_speedup > 1.2, "venice speedup {v_speedup}");
    }

    #[test]
    fn ideal_has_zero_conflicts() {
        let trace = tiny_trace(400, 90.0, 5.0);
        let m = run(FabricKind::Ideal, &trace);
        assert_eq!(m.conflicted_requests, 0);
        assert_eq!(m.fabric.conflicts, 0);
    }

    #[test]
    fn venice_conflicts_far_below_baseline() {
        // The paper reports ~0.02% for Venice vs ~24% for Baseline; our
        // dispatcher's pessimistic first-try accounting (every queued
        // transfer is attempted each scheduling round) inflates absolute
        // numbers, but Venice must still resolve conflict-free decisively
        // more often than the Baseline (see EXPERIMENTS.md).
        let trace = tiny_trace(600, 80.0, 5.0);
        let base = run(FabricKind::Baseline, &trace);
        let ven = run(FabricKind::Venice, &trace);
        assert!(
            ven.conflict_pct() < base.conflict_pct() * 0.8,
            "venice {} vs baseline {}",
            ven.conflict_pct(),
            base.conflict_pct()
        );
    }

    #[test]
    fn writes_trigger_gc_under_churn() {
        // Write-heavy with a small device: the cumulative writes exceed the
        // over-provisioned headroom, so the device must garbage collect.
        let trace = WorkloadSpec::new("churn", 5.0, 16.0, 8.0)
            .footprint_mb(64)
            .generate(4_000);
        let mut cfg = SsdConfig::performance_optimized();
        cfg.array.chip.blocks_per_plane = 8;
        cfg.array.chip.pages_per_block = 32;
        let m = SsdSim::new(cfg, FabricKind::Venice, &trace).run();
        assert!(m.ftl.gc_erases > 0, "GC never ran");
        assert!(m.ftl.write_amplification() > 1.0);
    }

    #[test]
    fn energy_accounting_is_positive_and_consistent() {
        let trace = tiny_trace(200, 50.0, 50.0);
        let m = run(FabricKind::Venice, &trace);
        assert!(m.energy_mj > 0.0);
        assert!(m.avg_power_mw > 0.0);
        let recomputed = m.energy_mj / m.execution_time.as_secs_f64();
        assert!((recomputed - m.avg_power_mw).abs() / m.avg_power_mw < 1e-6);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = tiny_trace(250, 60.0, 10.0);
        let a = run(FabricKind::Venice, &trace);
        let b = run(FabricKind::Venice, &trace);
        assert_eq!(a.execution_time, b.execution_time);
        assert_eq!(a.conflicted_requests, b.conflicted_requests);
        assert_eq!(a.transactions, b.transactions);
    }

    #[test]
    fn pssd_beats_baseline_on_transfer_bound_reads() {
        let trace = WorkloadSpec::new("bigreads", 100.0, 64.0, 4.0)
            .footprint_mb(64)
            .generate(400);
        let cfg = |_k| SsdConfig::performance_optimized()
            .sized_for_footprint(trace.footprint_bytes());
        let base = SsdSim::new(cfg(()), FabricKind::Baseline, &trace).run();
        let pssd = SsdSim::new(cfg(()), FabricKind::Pssd, &trace).run();
        assert!(pssd.speedup_over(&base) > 1.05);
    }
}
