//! SSD configurations: the paper's Table 1 presets and scaling knobs.

use venice_ftl::ArrayGeometry;
use venice_hil::{HilConfig, TenantSet};
use venice_interconnect::{FabricParams, ScoutCacheKind};
use venice_nand::{ChipGeometry, NandTiming, OpEnergy};
use venice_sim::SimDuration;

use crate::{DispatchPolicyKind, DispatchScanKind, FaultPlan, RedundancyKind, ResiliencePolicy};

/// Static (load-independent) power draw of the SSD, used by the Figure 14
/// energy model: controller, DRAM, and per-chip standby power.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StaticPower {
    /// SSD controller static power, mW.
    pub controller_mw: f64,
    /// DRAM static power, mW.
    pub dram_mw: f64,
}

impl Default for StaticPower {
    fn default() -> Self {
        StaticPower {
            controller_mw: 1_500.0,
            dram_mw: 500.0,
        }
    }
}

/// A complete SSD configuration.
///
/// Use [`SsdConfig::performance_optimized`] / [`SsdConfig::cost_optimized`]
/// for the paper's Table 1 presets, then [`SsdConfig::sized_for_footprint`]
/// to scale the flash capacity to the workload (the reproduction scales both
/// trace footprint and device capacity together, preserving the utilization
/// pressure that drives garbage collection — see DESIGN.md).
#[derive(Clone, Debug, PartialEq)]
pub struct SsdConfig {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Flash array geometry (chips × per-chip layout).
    pub array: ArrayGeometry,
    /// NAND operation latencies.
    pub timing: NandTiming,
    /// NAND per-operation energy.
    pub energy: OpEnergy,
    /// Interconnect parameters (shape, bandwidths, electrical model).
    pub fabric: FabricParams,
    /// Host interface parameters.
    pub hil: HilConfig,
    /// Tenancy model: tenants mapped to namespace queue ranges with WRR
    /// weights and queue-depth caps (a sweep axis). The default,
    /// [`TenantSet::single()`], reproduces the pre-tenancy host interface
    /// bit-for-bit.
    pub tenants: TenantSet,
    /// Fraction of physical capacity exposed as logical space.
    pub utilization: f64,
    /// Bytes of a command burst on the wire (opcode + address + CRC).
    pub command_bytes: u64,
    /// Firmware latency to process one flash transaction in the FTL.
    pub ftl_latency: SimDuration,
    /// Static power model.
    pub static_power: StaticPower,
    /// Dispatch policy of the transaction dispatcher (a sweep-engine axis;
    /// [`DispatchPolicyKind::RetryAll`] reproduces the pre-policy engine
    /// bit-for-bit).
    pub dispatch: DispatchPolicyKind,
    /// Dispatch-round implementation: the incremental ready-set engine
    /// (default) or the retained full-scan reference. Metrics are
    /// bit-identical either way; this is a performance/cross-check knob,
    /// not a behavioral axis.
    pub scan: DispatchScanKind,
    /// Scripted fault plan delivered through the event calendar (a sweep
    /// axis). [`FaultPlan::None`] (the default) schedules zero events and
    /// reproduces the fault-free engine bit-for-bit.
    pub fault_plan: FaultPlan,
    /// Host-side resilience policy: deadlines/timeouts, bounded retry, and
    /// overload admission control (a sweep axis).
    /// [`ResiliencePolicy::None`] (the default) schedules zero events and
    /// reproduces the pre-resilience engine bit-for-bit.
    pub resilience: ResiliencePolicy,
    /// Die-level redundancy scheme: RAIN parity groups with
    /// reconstruct-on-read and background rebuild (a sweep axis).
    /// [`RedundancyKind::None`] (the default) schedules zero events and
    /// allocates identically — the pre-redundancy engine bit-for-bit.
    pub redundancy: RedundancyKind,
    /// Runaway-run watchdog: abort the run once this many calendar events
    /// have been scheduled. `None` (the preset default) disables the check;
    /// sweeps enable a generous ceiling so no fault scenario can spin the
    /// calendar forever.
    pub max_events: Option<u64>,
    /// Runaway-run watchdog: abort the run once simulated time passes this
    /// many nanoseconds. `None` disables the check.
    pub max_sim_ns: Option<u64>,
    /// Test-only fail point: panic the engine once this many calendar
    /// events have been scheduled. Stands in for "any engine bug" in the
    /// sweep-isolation tests (a panicking point must be caught and recorded
    /// as failed without taking the sweep down). `None` — the only value
    /// presets ever carry — compiles the check down to a branch that never
    /// fires.
    pub panic_after_events: Option<u64>,
}

impl SsdConfig {
    /// Table 1 performance-optimized configuration (Samsung Z-NAND-like):
    /// 8 channels × 8 chips, 1.2 GB/s channels, 4 KiB pages, tR = 3 µs.
    ///
    /// The per-plane block count is simulation-scaled (fewer, shorter blocks
    /// than the 240 GB device) — capacity is set per workload via
    /// [`SsdConfig::sized_for_footprint`]; parallelism (channels, chips,
    /// dies, planes) matches the paper exactly.
    pub fn performance_optimized() -> Self {
        let chip = ChipGeometry {
            dies: 1,
            planes_per_die: 2,
            blocks_per_plane: 64,
            pages_per_block: 256,
            page_size: 4 * 1024,
        };
        SsdConfig {
            name: "performance-optimized",
            array: ArrayGeometry::new(64, chip),
            timing: NandTiming::z_nand(),
            energy: OpEnergy::z_nand(),
            fabric: FabricParams::table1(),
            hil: HilConfig::default(),
            tenants: TenantSet::single(),
            utilization: 0.75,
            command_bytes: 8,
            ftl_latency: SimDuration::from_nanos(250),
            static_power: StaticPower::default(),
            dispatch: DispatchPolicyKind::RetryAll,
            scan: DispatchScanKind::Incremental,
            fault_plan: FaultPlan::None,
            resilience: ResiliencePolicy::None,
            redundancy: RedundancyKind::None,
            max_events: None,
            max_sim_ns: None,
            panic_after_events: None,
        }
    }

    /// Table 1 cost-optimized configuration (PM9A3-like 3D TLC): same
    /// channel layout, 16 KiB pages, tR = 45 µs.
    pub fn cost_optimized() -> Self {
        let chip = ChipGeometry {
            dies: 1,
            planes_per_die: 2,
            blocks_per_plane: 64,
            pages_per_block: 256,
            page_size: 16 * 1024,
        };
        SsdConfig {
            name: "cost-optimized",
            array: ArrayGeometry::new(64, chip),
            timing: NandTiming::tlc_3d(),
            energy: OpEnergy::tlc_3d(),
            fabric: FabricParams::table1(),
            hil: HilConfig::default(),
            tenants: TenantSet::single(),
            utilization: 0.75,
            command_bytes: 8,
            ftl_latency: SimDuration::from_nanos(250),
            static_power: StaticPower::default(),
            dispatch: DispatchPolicyKind::RetryAll,
            scan: DispatchScanKind::Incremental,
            fault_plan: FaultPlan::None,
            resilience: ResiliencePolicy::None,
            redundancy: RedundancyKind::None,
            max_events: None,
            max_sim_ns: None,
            panic_after_events: None,
        }
    }

    /// Reshapes the flash array to `rows` controllers × `cols` chips per row
    /// while keeping the chip count (Figure 15's 4×16 / 8×8 / 16×4 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `rows × cols` differs from the current chip count.
    pub fn with_shape(mut self, rows: u16, cols: u16) -> Self {
        assert_eq!(
            rows as u32 * cols as u32,
            u32::from(self.array.chips),
            "shape must preserve the chip count"
        );
        self.fabric = FabricParams {
            rows,
            cols,
            ..self.fabric
        };
        self
    }

    /// Resizes the flash array to a `rows × cols` mesh: the fabric shape
    /// *and* the chip count become `rows × cols` (per-chip geometry is
    /// kept). For shapes that preserve the current chip count this is
    /// exactly [`SsdConfig::with_shape`]; larger meshes (16×16, 32×32 — the
    /// big-mesh sweep entries) grow the array, scaling chip-level
    /// parallelism with the fabric. Capacity is re-derived per workload by
    /// [`SsdConfig::sized_for_footprint`], so over-provisioning pressure is
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero or exceeds 256 (controller ids
    /// are `u8`: one controller per row, and pnSSD drives column buses by
    /// controller index too), or if the chip count exceeds the `u16`
    /// chip-id space.
    pub fn with_mesh(mut self, rows: u16, cols: u16) -> Self {
        assert!(rows > 0 && cols > 0, "mesh must be non-empty");
        assert!(
            rows <= 256 && cols <= 256,
            "mesh {rows}x{cols} exceeds the u8 controller-id space (max 256 rows/cols)"
        );
        let chips = u32::from(rows) * u32::from(cols);
        assert!(
            u16::try_from(chips).is_ok(),
            "mesh {rows}x{cols} exceeds the u16 chip-id space"
        );
        self.array.chips = chips as u16;
        self.fabric = FabricParams {
            rows,
            cols,
            ..self.fabric
        };
        self
    }

    /// Selects the dispatch-round implementation (incremental ready-set
    /// engine vs the retained full-scan reference). Metrics are
    /// bit-identical for both — this knob exists for cross-checks and the
    /// `dispatch_scan` microbench, not for sweeps.
    pub fn with_dispatch_scan(mut self, scan: DispatchScanKind) -> Self {
        self.scan = scan;
        self
    }

    /// Overrides the NAND operation latencies (a sweep-engine timing axis).
    ///
    /// Only latencies change: the per-operation energy model and page
    /// geometry keep the preset's values, so a timing axis isolates timing
    /// sensitivity from the rest of the NAND model.
    pub fn with_timing(mut self, timing: NandTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Overrides the per-queue submission-queue depth (a sweep-engine
    /// queue-depth axis). Deeper queues admit more host-side outstanding
    /// requests before back-pressure.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.hil.queue_depth = depth.max(1);
        self
    }

    /// Overrides the dispatch policy (a sweep-engine policy axis). Only
    /// the dispatcher's retry strategy changes; conflict accounting and
    /// every other model parameter keep the preset's semantics.
    pub fn with_dispatch_policy(mut self, policy: DispatchPolicyKind) -> Self {
        self.dispatch = policy;
        self
    }

    /// Selects the Venice scout fast-fail cache mode (a sweep-engine axis;
    /// only the Venice fabric consults it). `Off` (the default) reproduces
    /// the pre-cache engine bit-for-bit; `On` is pinned bit-identical in
    /// every simulated-behavior field by the `Checked` cross-check — only
    /// the cache's own effort counters (`scout_fastfails`,
    /// `scout_cache_invalidations`) differ.
    pub fn with_scout_cache(mut self, cache: ScoutCacheKind) -> Self {
        self.fabric.scout_cache = cache;
        self
    }

    /// The configured scout fast-fail cache mode.
    pub fn scout_cache(&self) -> ScoutCacheKind {
        self.fabric.scout_cache
    }

    /// Selects the tenancy model (a sweep-engine axis). [`TenantSet::single()`]
    /// — the preset default — reproduces the pre-tenancy host interface
    /// bit-for-bit; multi-tenant sets partition the submission queues into
    /// per-tenant namespace ranges with WRR arbitration and queue-depth
    /// caps. Tenant tags on the trace beyond the set's size are clamped to
    /// the last tenant, so a single-tenant set merges any tagged trace back
    /// into one stream.
    pub fn with_tenants(mut self, tenants: TenantSet) -> Self {
        self.tenants = tenants;
        self
    }

    /// Selects the scripted fault plan (a sweep-engine axis).
    /// [`FaultPlan::None`] reproduces the fault-free engine bit-for-bit —
    /// it schedules zero calendar events.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Selects the host-side resilience policy (a sweep-engine axis).
    /// [`ResiliencePolicy::None`] reproduces the pre-resilience engine
    /// bit-for-bit — it schedules zero calendar events and takes no
    /// admission branches.
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// Selects the die-level redundancy scheme (a sweep-engine axis).
    /// [`RedundancyKind::None`] reproduces the pre-redundancy engine
    /// bit-for-bit — it schedules zero calendar events and allocates
    /// identically; `Parity` changes nothing until a chip actually dies.
    pub fn with_redundancy(mut self, redundancy: RedundancyKind) -> Self {
        self.redundancy = redundancy;
        self
    }

    /// Arms the runaway-run watchdog: the run aborts with a structured
    /// [`crate::RunStatus::Aborted`] outcome once either ceiling is
    /// crossed, instead of spinning the calendar forever. `None` leaves a
    /// dimension unchecked.
    pub fn with_watchdog(mut self, max_events: Option<u64>, max_sim_ns: Option<u64>) -> Self {
        self.max_events = max_events;
        self.max_sim_ns = max_sim_ns;
        self
    }

    /// Arms the test-only fail point: the engine panics once `events`
    /// calendar events have been scheduled. Exists so sweep-isolation tests
    /// can inject a deterministic engine bug; never set it outside tests.
    pub fn with_panic_after_events(mut self, events: u64) -> Self {
        self.panic_after_events = Some(events);
        self
    }

    /// Scales the per-plane block count so that the physical capacity is
    /// `footprint_bytes / utilization`, rounding up to whole blocks per
    /// plane. This keeps over-provisioning pressure constant across
    /// workloads with different footprints.
    pub fn sized_for_footprint(mut self, footprint_bytes: u64) -> Self {
        let physical_bytes = footprint_bytes as f64 / self.utilization;
        let planes = u64::from(self.array.total_planes());
        let block_bytes =
            u64::from(self.array.chip.pages_per_block) * u64::from(self.array.chip.page_size);
        let blocks = (physical_bytes / (planes * block_bytes) as f64).ceil() as u32;
        // Floor of 8 blocks/plane keeps GC hysteresis meaningful.
        self.array.chip.blocks_per_plane = blocks.max(8);
        self
    }

    /// Logical pages exposed for a given workload footprint.
    pub fn logical_pages_for(&self, footprint_bytes: u64) -> u64 {
        footprint_bytes.div_ceil(u64::from(self.array.chip.page_size))
    }

    /// Bytes per physical page.
    pub fn page_bytes(&self) -> u64 {
        u64::from(self.array.chip.page_size)
    }

    /// Event-calendar bucket width (ns) auto-tuned to this configuration's
    /// NAND timing: the smallest power of two such that the wheel's
    /// horizon (`WHEEL_BUCKETS × width`) covers two program latencies, so
    /// the dominant long-horizon events (tPROG completions) stay in the
    /// O(1) wheel instead of the overflow heap. Floored at 256 ns — the
    /// PR 1 constant — so short-timing configs are unchanged.
    pub fn wheel_bucket_ns(&self) -> u64 {
        let horizon_needed = self.timing.t_prog.as_nanos().saturating_mul(2).max(1);
        let width = horizon_needed.div_ceil(venice_sim::WHEEL_BUCKETS as u64);
        width.next_power_of_two().max(256)
    }

    /// Consistency checks (chip count must equal the mesh node count).
    pub fn validate(&self) {
        assert_eq!(
            usize::from(self.array.chips),
            self.fabric.mesh().node_count(),
            "chip array and interconnect mesh must agree"
        );
        assert!(
            self.utilization > 0.0 && self.utilization < 1.0,
            "utilization must be in (0,1)"
        );
        assert!(
            self.tenants.len() <= self.hil.queues,
            "every tenant needs at least one submission queue"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let p = SsdConfig::performance_optimized();
        assert_eq!(p.array.chips, 64);
        assert_eq!(p.array.chip.page_size, 4 * 1024);
        assert_eq!(p.timing, NandTiming::z_nand());
        assert_eq!(p.fabric.rows, 8);
        assert_eq!(p.fabric.cols, 8);
        p.validate();
        let c = SsdConfig::cost_optimized();
        assert_eq!(c.array.chip.page_size, 16 * 1024);
        assert_eq!(c.timing, NandTiming::tlc_3d());
        c.validate();
    }

    #[test]
    fn shape_sweep_preserves_chip_count() {
        for (r, c) in [(4u16, 16u16), (8, 8), (16, 4)] {
            let cfg = SsdConfig::performance_optimized().with_shape(r, c);
            assert_eq!(cfg.fabric.rows, r);
            assert_eq!(cfg.fabric.cols, c);
            cfg.validate();
        }
    }

    #[test]
    #[should_panic(expected = "preserve the chip count")]
    fn bad_shape_rejected() {
        SsdConfig::performance_optimized().with_shape(4, 4);
    }

    #[test]
    fn with_mesh_resizes_the_array_with_the_fabric() {
        // Count-preserving meshes behave exactly like with_shape.
        let same = SsdConfig::performance_optimized().with_mesh(4, 16);
        assert_eq!(same.array.chips, 64);
        assert_eq!((same.fabric.rows, same.fabric.cols), (4, 16));
        same.validate();
        // Big meshes grow the chip array to match.
        for (r, c) in [(16u16, 16u16), (32, 32)] {
            let big = SsdConfig::performance_optimized().with_mesh(r, c);
            assert_eq!(big.array.chips, r * c);
            assert_eq!((big.fabric.rows, big.fabric.cols), (r, c));
            big.validate();
            // Capacity sizing still tracks the workload footprint.
            let sized = big.sized_for_footprint(256 << 20);
            assert!(sized.array.chip.blocks_per_plane >= 8);
            sized.validate();
        }
    }

    #[test]
    #[should_panic(expected = "controller-id space")]
    fn with_mesh_rejects_meshes_beyond_the_controller_id_space() {
        // 300 rows would alias FcId(44..) onto FcId(0..) through the u8
        // controller ids — must fail fast, not corrupt fabric bookkeeping.
        SsdConfig::performance_optimized().with_mesh(300, 2);
    }

    #[test]
    fn dispatch_scan_defaults_to_incremental() {
        let cfg = SsdConfig::performance_optimized();
        assert_eq!(cfg.scan, DispatchScanKind::Incremental);
        assert_eq!(cfg.scan.label(), "incremental");
        let full = cfg.with_dispatch_scan(DispatchScanKind::FullScan);
        assert_eq!(full.scan, DispatchScanKind::FullScan);
        assert_eq!(full.scan.label(), "full-scan");
    }

    #[test]
    fn axis_overrides_apply() {
        let cfg = SsdConfig::performance_optimized()
            .with_timing(NandTiming::tlc_3d())
            .with_queue_depth(32)
            .with_dispatch_policy(DispatchPolicyKind::ConflictBackoff);
        assert_eq!(cfg.timing, NandTiming::tlc_3d());
        assert_eq!(cfg.hil.queue_depth, 32);
        assert_eq!(cfg.dispatch, DispatchPolicyKind::ConflictBackoff);
        // The default is the pre-policy engine's behavior.
        assert_eq!(
            SsdConfig::performance_optimized().dispatch,
            DispatchPolicyKind::RetryAll
        );
        // Energy and geometry keep the preset's values.
        assert_eq!(cfg.energy, OpEnergy::z_nand());
        assert_eq!(cfg.array.chip.page_size, 4 * 1024);
        // Queue depth has a floor of one.
        assert_eq!(SsdConfig::performance_optimized().with_queue_depth(0).hil.queue_depth, 1);
    }

    #[test]
    fn fault_plan_and_watchdog_default_off_and_apply() {
        let cfg = SsdConfig::performance_optimized();
        assert_eq!(cfg.fault_plan, FaultPlan::None);
        assert_eq!(cfg.max_events, None);
        assert_eq!(cfg.max_sim_ns, None);
        assert_eq!(SsdConfig::cost_optimized().fault_plan, FaultPlan::None);
        let armed = cfg
            .with_fault_plan(FaultPlan::Link)
            .with_watchdog(Some(1_000_000), Some(5_000_000_000));
        assert_eq!(armed.fault_plan, FaultPlan::Link);
        assert_eq!(armed.max_events, Some(1_000_000));
        assert_eq!(armed.max_sim_ns, Some(5_000_000_000));
        armed.validate();
    }

    #[test]
    fn resilience_defaults_off_and_applies() {
        let cfg = SsdConfig::performance_optimized();
        assert_eq!(cfg.resilience, ResiliencePolicy::None);
        assert_eq!(SsdConfig::cost_optimized().resilience, ResiliencePolicy::None);
        let armed = cfg.with_resilience(ResiliencePolicy::Full);
        assert_eq!(armed.resilience, ResiliencePolicy::Full);
        assert!(armed.resilience.params().deadline.is_some());
        armed.validate();
    }

    #[test]
    fn redundancy_defaults_none_and_applies() {
        let cfg = SsdConfig::performance_optimized();
        assert_eq!(cfg.redundancy, RedundancyKind::None);
        assert_eq!(SsdConfig::cost_optimized().redundancy, RedundancyKind::None);
        let armed = cfg.with_redundancy(RedundancyKind::Parity { group: 4 });
        assert_eq!(armed.redundancy, RedundancyKind::Parity { group: 4 });
        assert!(armed.redundancy.is_armed());
        armed.validate();
    }

    #[test]
    fn tenants_default_single_and_apply() {
        let cfg = SsdConfig::performance_optimized();
        assert_eq!(cfg.tenants, TenantSet::single());
        assert!(cfg.tenants.is_single());
        assert_eq!(SsdConfig::cost_optimized().tenants, TenantSet::single());
        let pair = cfg.with_tenants(TenantSet::pair_fair());
        assert_eq!(pair.tenants.label(), "pair-fair");
        assert_eq!(pair.tenants.len(), 2);
        pair.validate();
    }

    #[test]
    #[should_panic(expected = "at least one submission queue")]
    fn more_tenants_than_queues_fails_validation() {
        let mut cfg = SsdConfig::performance_optimized().with_tenants(TenantSet::pair_fair());
        cfg.hil.queues = 1;
        cfg.validate();
    }

    #[test]
    fn sizing_tracks_footprint() {
        let cfg = SsdConfig::performance_optimized().sized_for_footprint(2 << 30);
        let physical = cfg.array.total_pages() * cfg.page_bytes();
        let logical = 2u64 << 30;
        let util = logical as f64 / physical as f64;
        assert!(util <= cfg.utilization + 0.05, "util {util}");
        assert!(util > 0.4, "device should not be vastly oversized: {util}");
    }

    #[test]
    fn logical_pages_round_up() {
        let cfg = SsdConfig::performance_optimized();
        assert_eq!(cfg.logical_pages_for(4096), 1);
        assert_eq!(cfg.logical_pages_for(4097), 2);
    }

    #[test]
    fn wheel_bucket_tracks_nand_timing() {
        // z-nand: 2 × 100 µs over 512 buckets → 391 ns → 512 ns buckets.
        assert_eq!(SsdConfig::performance_optimized().wheel_bucket_ns(), 512);
        // tlc-3d: 2 × 650 µs over 512 buckets → 2539 ns → 4096 ns buckets.
        assert_eq!(SsdConfig::cost_optimized().wheel_bucket_ns(), 4096);
        // Very fast flash floors at the PR 1 constant.
        let mut fast = SsdConfig::performance_optimized();
        fast.timing.t_prog = SimDuration::from_nanos(100);
        assert_eq!(fast.wheel_bucket_ns(), 256);
    }
}
