//! The design-space sweep engine: grids of (config × workload × shape ×
//! timing × queue-depth × fabric) points executed on one shared worker
//! pool, with reproducible JSON artifacts.
//!
//! This module is the process's single arbiter of simulation parallelism.
//! PR 1 had two independent fan-out levels — `run_systems` spawned one
//! thread per system while the catalog sweep spawned `VENICE_PAR` workers,
//! multiplying to `VENICE_PAR × systems` threads — which oversubscribed
//! cores on wide sweeps. Here every simulation of a sweep becomes one job
//! on a [`WorkerPool`]; while the pool is draining jobs,
//! [`venice_ssd::run_systems`] detects it (via the shared-pool guard in
//! `venice_ssd`) and clamps its own fan-out to serial execution.
//!
//! # Determinism contract
//!
//! A sweep point's [`RunMetrics`] depend only on its `(config, system,
//! trace)` triple — never on the pool size, job interleaving, or which
//! worker ran it. Results are returned in point-id order, and the manifest
//! carries content fingerprints ([`SweepOutcome::grid_hash`],
//! [`SweepOutcome::metrics_fingerprint`]) that are bit-identical for every
//! pool size; `tests/integration.rs` asserts this for pool sizes 1 and 4.
//!
//! # Example
//!
//! ```no_run
//! use venice_bench::sweep::SweepGrid;
//! use venice_interconnect::FabricKind;
//! use venice_workloads::WorkloadAxis;
//!
//! let outcome = SweepGrid::new("demo")
//!     .workload(WorkloadAxis::catalog("hm_0").unwrap())
//!     .fabrics(&[FabricKind::Baseline, FabricKind::Venice])
//!     .requests(500)
//!     .run();
//! let dir = outcome.write(&venice_bench::results_dir()).unwrap();
//! println!("manifest at {}", dir.join("manifest.json").display());
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use venice_interconnect::FabricKind;
use venice_nand::NandTiming;
use venice_ssd::report::json_str;
use venice_ssd::{
    run_single, DispatchPolicyKind, FaultPlan, RedundancyKind, ResiliencePolicy, RunMetrics,
    ScoutCacheKind, SsdConfig, TenantSet,
};
use venice_workloads::{Trace, WorkloadAxis};

use crate::{CatalogRow, SweepSummary};

/// The shared worker pool: a fixed thread budget draining a batch of
/// independent jobs through one atomic work queue.
///
/// There is one [`WorkerPool::global`] pool per process (sized by
/// `VENICE_PAR`, default: available cores); explicitly sized pools exist
/// for reproducibility tests. Workers are scoped threads spawned per
/// batch — idle sweeps keep no threads alive — but the pool's *activity*
/// is process-global: while any batch is draining, nested parallelism
/// requests (a second `run` call, or `venice_ssd::run_systems` invoked
/// from inside a job) log one warning and run inline on the calling
/// thread instead of multiplying threads.
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
}

/// The process-wide pool instance behind [`WorkerPool::global`].
static GLOBAL_POOL: OnceLock<WorkerPool> = OnceLock::new();

/// Whether the nested-`run` clamp warning has been printed yet.
static NESTED_RUN_WARNED: AtomicBool = AtomicBool::new(false);

impl WorkerPool {
    /// Creates a pool with an explicit thread budget (floor of one).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The process-wide shared pool, created on first use and sized by
    /// `VENICE_PAR` (default: available cores) at that moment.
    pub fn global() -> &'static WorkerPool {
        GLOBAL_POOL.get_or_init(|| WorkerPool::new(crate::venice_par()))
    }

    /// The pool's thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job and returns their results in job order.
    ///
    /// Jobs are claimed from a shared atomic queue by `min(threads, jobs)`
    /// scoped workers, so an expensive job never blocks the queue — idle
    /// workers steal the remaining ones. If the pool is already active
    /// (nested call), the jobs run inline serially on the calling thread
    /// after a once-per-process warning; results are identical either way.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send,
        T: Send,
    {
        // Claim-and-check is one atomic fetch_add inside enter_shared_pool,
        // so two concurrent top-level runs can never both take the parallel
        // path (the loser clamps inline).
        let guard = venice_ssd::enter_shared_pool();
        if guard.is_nested() {
            if !NESTED_RUN_WARNED.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: nested WorkerPool::run ({} jobs) while the shared \
                     pool is active; running inline serially \
                     (further occurrences are silent)",
                    jobs.len()
                );
            }
            return jobs.into_iter().map(|job| job()).collect();
        }
        let n = jobs.len();
        let workers = self.threads.min(n.max(1));
        let next = AtomicUsize::new(0);
        let jobs: Vec<Mutex<Option<F>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = jobs[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    *slots[i].lock().expect("result slot poisoned") = Some(job());
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job completed")
            })
            .collect()
    }
}

/// A design-space grid: axes that expand into a deterministic, id-stamped
/// list of [`SweepPoint`]s.
///
/// Empty axes fall back to the base: no `configs` means the Table 1
/// performance-optimized preset, no `fabrics` means all six systems, no
/// `workloads` means the whole Table 2 catalog, and no `shapes` /
/// `timings` / `queue_depths` / `policies` / `scout_caches` / `faults` /
/// `resiliences` / `redundancies` means each config's own values.
/// Expansion order is fixed — configs ▸ workloads ▸ shapes ▸ timings ▸
/// queue depths ▸ policies ▸ scout caches ▸ fault plans ▸ tenant sets ▸
/// resilience policies ▸ redundancy schemes ▸ fabrics (innermost) — so
/// point ids are stable for a given grid.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    name: String,
    requests: usize,
    configs: Vec<SsdConfig>,
    workloads: Vec<WorkloadAxis>,
    shapes: Vec<(u16, u16)>,
    timings: Vec<NandTiming>,
    queue_depths: Vec<usize>,
    policies: Vec<DispatchPolicyKind>,
    scout_caches: Vec<ScoutCacheKind>,
    faults: Vec<FaultPlan>,
    tenant_sets: Vec<TenantSet>,
    resiliences: Vec<ResiliencePolicy>,
    redundancies: Vec<RedundancyKind>,
    fabrics: Vec<FabricKind>,
}

/// Watchdog event ceiling armed on every sweep point whose config does not
/// set its own (generous: orders of magnitude above any healthy point, so
/// it only ever fires on a genuinely runaway simulation).
pub const SWEEP_MAX_EVENTS: u64 = 2_000_000_000;

/// Watchdog simulated-time ceiling armed on every sweep point whose config
/// does not set its own (one simulated hour).
pub const SWEEP_MAX_SIM_NS: u64 = 3_600_000_000_000;

impl SweepGrid {
    /// Creates an empty grid named `name` (the name keys the output
    /// directory `results/sweep_<name>/`). Requests default to
    /// [`crate::requests`] (`VENICE_REQUESTS`, default 3000).
    pub fn new(name: impl Into<String>) -> Self {
        SweepGrid {
            name: name.into(),
            requests: crate::requests(),
            configs: Vec::new(),
            workloads: Vec::new(),
            shapes: Vec::new(),
            timings: Vec::new(),
            queue_depths: Vec::new(),
            policies: Vec::new(),
            scout_caches: Vec::new(),
            faults: Vec::new(),
            tenant_sets: Vec::new(),
            resiliences: Vec::new(),
            redundancies: Vec::new(),
            fabrics: Vec::new(),
        }
    }

    /// The grid's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the per-workload request budget.
    pub fn requests(mut self, requests: usize) -> Self {
        self.requests = requests.max(1);
        self
    }

    /// Adds one base configuration to the config axis.
    pub fn config(mut self, config: SsdConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Adds one workload to the workload axis.
    pub fn workload(mut self, axis: WorkloadAxis) -> Self {
        self.workloads.push(axis);
        self
    }

    /// Extends the workload axis.
    pub fn workloads(mut self, axes: Vec<WorkloadAxis>) -> Self {
        self.workloads.extend(axes);
        self
    }

    /// Extends the fabric axis.
    pub fn fabrics(mut self, fabrics: &[FabricKind]) -> Self {
        self.fabrics.extend_from_slice(fabrics);
        self
    }

    /// Replaces the fabric axis wholesale (CLI `--systems` override).
    pub fn replace_fabrics(mut self, fabrics: &[FabricKind]) -> Self {
        self.fabrics.clear();
        self.fabrics.extend_from_slice(fabrics);
        self
    }

    /// Extends the array-shape axis (`rows × cols` controller layouts).
    /// Shapes preserving the base config's chip count reshape it (the
    /// Figure 15 sweep); larger meshes — 16×16, 32×32 — resize the chip
    /// array with the fabric (`SsdConfig::with_mesh`), putting big-mesh
    /// scaling on the grid.
    pub fn shapes(mut self, shapes: &[(u16, u16)]) -> Self {
        self.shapes.extend_from_slice(shapes);
        self
    }

    /// Extends the NAND-timing axis.
    pub fn timings(mut self, timings: &[NandTiming]) -> Self {
        self.timings.extend_from_slice(timings);
        self
    }

    /// Extends the submission-queue-depth axis.
    pub fn queue_depths(mut self, depths: &[usize]) -> Self {
        self.queue_depths.extend_from_slice(depths);
        self
    }

    /// Extends the dispatch-policy axis.
    pub fn policies(mut self, policies: &[DispatchPolicyKind]) -> Self {
        self.policies.extend_from_slice(policies);
        self
    }

    /// Extends the scout fast-fail-cache axis (the Venice cache ablation).
    pub fn scout_caches(mut self, caches: &[ScoutCacheKind]) -> Self {
        self.scout_caches.extend_from_slice(caches);
        self
    }

    /// Replaces the scout fast-fail-cache axis wholesale (the CLI
    /// `--scout-cache` override — like [`SweepGrid::replace_fabrics`],
    /// so overriding a grid that already sets the axis restricts it
    /// instead of appending duplicate points).
    pub fn replace_scout_caches(mut self, caches: &[ScoutCacheKind]) -> Self {
        self.scout_caches.clear();
        self.scout_caches.extend_from_slice(caches);
        self
    }

    /// Extends the fault-plan axis (the degraded-mode ablation: each plan
    /// scripts a deterministic sequence of fabric/chip/NAND faults).
    pub fn fault_plans(mut self, plans: &[FaultPlan]) -> Self {
        self.faults.extend_from_slice(plans);
        self
    }

    /// Extends the tenant-set axis (the multi-tenant QoS ablation: each
    /// set defines tenant→queue partitioning, WRR weights, and per-tenant
    /// queue-depth caps).
    pub fn tenant_sets(mut self, sets: &[TenantSet]) -> Self {
        self.tenant_sets.extend_from_slice(sets);
        self
    }

    /// Extends the host-resilience axis (the resilience ablation: each
    /// preset arms a combination of request deadlines, bounded host retry,
    /// and submission-side admission control).
    pub fn resilience_policies(mut self, policies: &[ResiliencePolicy]) -> Self {
        self.resiliences.extend_from_slice(policies);
        self
    }

    /// Extends the redundancy-scheme axis (the RAIN rebuild ablation: each
    /// scheme stripes pages into die-level parity groups, arming degraded
    /// reads and the background rebuild engine on chip death).
    pub fn redundancy_kinds(mut self, kinds: &[RedundancyKind]) -> Self {
        self.redundancies.extend_from_slice(kinds);
        self
    }

    /// Resolved workload axis (Table 2 catalog when none was set).
    fn effective_workloads(&self) -> Vec<WorkloadAxis> {
        if self.workloads.is_empty() {
            WorkloadAxis::table2()
        } else {
            self.workloads.clone()
        }
    }

    /// Resolved config axis (performance-optimized when none was set).
    fn effective_configs(&self) -> Vec<SsdConfig> {
        if self.configs.is_empty() {
            vec![SsdConfig::performance_optimized()]
        } else {
            self.configs.clone()
        }
    }

    /// Resolved fabric axis (all six systems when none was set).
    fn effective_fabrics(&self) -> Vec<FabricKind> {
        if self.fabrics.is_empty() {
            FabricKind::ALL.to_vec()
        } else {
            self.fabrics.clone()
        }
    }

    /// Expands the grid into its deterministic, id-stamped point list.
    ///
    /// # Panics
    ///
    /// Panics if a shape-axis value is degenerate (zero rows/cols or a
    /// chip count beyond the u16 id space) — fail-fast, before any
    /// simulation runs.
    pub fn build_points(&self) -> Vec<SweepPoint> {
        let configs = self.effective_configs();
        let workloads = self.effective_workloads();
        let fabrics = self.effective_fabrics();
        let mut points = Vec::new();
        for base in &configs {
            let shapes: Vec<(u16, u16)> = if self.shapes.is_empty() {
                vec![(base.fabric.rows, base.fabric.cols)]
            } else {
                self.shapes.clone()
            };
            let timings: Vec<NandTiming> = if self.timings.is_empty() {
                vec![base.timing]
            } else {
                self.timings.clone()
            };
            let depths: Vec<usize> = if self.queue_depths.is_empty() {
                vec![base.hil.queue_depth]
            } else {
                self.queue_depths.clone()
            };
            let policies: Vec<DispatchPolicyKind> = if self.policies.is_empty() {
                vec![base.dispatch]
            } else {
                self.policies.clone()
            };
            let caches: Vec<ScoutCacheKind> = if self.scout_caches.is_empty() {
                vec![base.scout_cache()]
            } else {
                self.scout_caches.clone()
            };
            let faults: Vec<FaultPlan> = if self.faults.is_empty() {
                vec![base.fault_plan]
            } else {
                self.faults.clone()
            };
            let tenant_sets: Vec<TenantSet> = if self.tenant_sets.is_empty() {
                vec![base.tenants.clone()]
            } else {
                self.tenant_sets.clone()
            };
            let resiliences: Vec<ResiliencePolicy> = if self.resiliences.is_empty() {
                vec![base.resilience]
            } else {
                self.resiliences.clone()
            };
            let redundancies: Vec<RedundancyKind> = if self.redundancies.is_empty() {
                vec![base.redundancy]
            } else {
                self.redundancies.clone()
            };
            for (workload_idx, workload) in workloads.iter().enumerate() {
                for &(rows, cols) in &shapes {
                    for &timing in &timings {
                        for &depth in &depths {
                            for &policy in &policies {
                                for &scout_cache in &caches {
                                    for &fault_plan in &faults {
                                        for tenant_set in &tenant_sets {
                                        for &resilience in &resiliences {
                                        for &redundancy in &redundancies {
                                        for &fabric in &fabrics {
                                            let config = base
                                                .clone()
                                                .with_mesh(rows, cols)
                                                .with_timing(timing)
                                                .with_queue_depth(depth)
                                                .with_dispatch_policy(policy)
                                                .with_scout_cache(scout_cache)
                                                .with_fault_plan(fault_plan)
                                                .with_tenants(tenant_set.clone())
                                                .with_resilience(resilience)
                                                .with_redundancy(redundancy);
                                            // Sweeps run unattended: arm the
                                            // generous runaway-run watchdog
                                            // unless the base config set its
                                            // own ceilings.
                                            let config = if config.max_events.is_none()
                                                && config.max_sim_ns.is_none()
                                            {
                                                config.with_watchdog(
                                                    Some(SWEEP_MAX_EVENTS),
                                                    Some(SWEEP_MAX_SIM_NS),
                                                )
                                            } else {
                                                config
                                            };
                                            let timing_name = timing
                                                .preset_name()
                                                .unwrap_or("custom")
                                                .to_string();
                                            let label = format!(
                                                "{}/{}/{}x{}/{}/qd{}/{}/{}/{}/{}/{}/{}/{}",
                                                base.name,
                                                workload.name(),
                                                rows,
                                                cols,
                                                timing_name,
                                                depth,
                                                policy.label(),
                                                scout_cache.label(),
                                                fault_plan.label(),
                                                tenant_set.label(),
                                                resilience.label(),
                                                redundancy.label(),
                                                fabric.label()
                                            );
                                            points.push(SweepPoint {
                                                id: points.len(),
                                                label,
                                                workload_idx,
                                                workload: workload.name().to_string(),
                                                config_name: base.name,
                                                shape: (rows, cols),
                                                timing_name,
                                                queue_depth: depth,
                                                policy,
                                                scout_cache,
                                                fault_plan,
                                                tenants: tenant_set.label().to_string(),
                                                resilience,
                                                redundancy,
                                                fabric,
                                                config,
                                            });
                                        }
                                        }
                                        }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Runs the grid on the process-wide [`WorkerPool::global`] pool.
    pub fn run(&self) -> SweepOutcome {
        self.run_on(WorkerPool::global())
    }

    /// Runs the grid on an explicit pool (used by the determinism tests to
    /// compare pool sizes; results are bit-identical for every size).
    ///
    /// Traces are generated once per workload axis value — also on the
    /// pool — and shared by reference across every point that replays
    /// them, so a six-fabric grid does not generate its traces six times.
    pub fn run_on(&self, pool: &WorkerPool) -> SweepOutcome {
        let start = Instant::now();
        let workloads = self.effective_workloads();
        let requests = self.requests;
        let traces: Vec<Trace> = pool.run(
            workloads
                .iter()
                .map(|axis| move || axis.trace(requests))
                .collect(),
        );
        let points = self.build_points();
        let metrics: Vec<RunMetrics> = pool.run(
            points
                .iter()
                .map(|point| {
                    let trace = &traces[point.workload_idx];
                    move || run_point_guarded(point, trace)
                })
                .collect(),
        );
        let records: Vec<PointRecord> = points
            .into_iter()
            .zip(metrics)
            .map(|(point, metrics)| PointRecord { point, metrics })
            .collect();
        // Serialize each point once up front: the fingerprints, manifest,
        // and artifact writer all reuse these strings.
        let point_jsons = records.iter().map(|r| r.metrics.to_json()).collect();
        SweepOutcome {
            grid_json: self.definition_json(),
            name: self.name.clone(),
            requests: self.requests,
            workload_count: workloads.len(),
            fabric_count: self.effective_fabrics().len(),
            pool_threads: pool.threads(),
            wall_seconds: start.elapsed().as_secs_f64(),
            records,
            point_jsons,
        }
    }

    /// Runs the grid, reusing any point records already on disk from a
    /// previous run of the *same* grid — the resumable sweep.
    ///
    /// A prior artifact at `base_dir/sweep_<name>/` is trusted when its
    /// `grid.json` stamp byte-equals this grid's definition JSON (name,
    /// requests, every axis — so any change invalidates reuse; the
    /// stamp's FNV hash is the manifest's `grid_hash`). Points whose
    /// record file exists are not re-simulated; only the missing ones run
    /// on `pool`. `fresh` forces a full re-run regardless (the CLI's
    /// `--fresh`).
    ///
    /// The grid stamp is written *before* any simulation and every
    /// executed point persists its record (atomically, via a temp-file
    /// rename) *as it completes*, so a killed sweep resumes from the
    /// points it finished. When the stamp does not match, stale point
    /// records are cleared first — records from two different grids can
    /// never mix. Call [`ResumedSweep::write`] afterwards to (re)write
    /// the manifest indexing all points; until then, a prior run's
    /// manifest may lag the stamp.
    pub fn run_resumable(
        &self,
        base_dir: &Path,
        pool: &WorkerPool,
        fresh: bool,
    ) -> ResumedSweep {
        let start = Instant::now();
        let points = self.build_points();
        let grid_json = self.definition_json();
        let dir = base_dir.join(format!("sweep_{}", self.name));
        let grid_file = dir.join("grid.json");
        let resumable = !fresh
            && std::fs::read_to_string(&grid_file).is_ok_and(|g| g == grid_json);
        let jsons: Vec<Option<String>> = points
            .iter()
            .map(|p| {
                if !resumable {
                    return None;
                }
                std::fs::read_to_string(dir.join(p.file_name()))
                    .ok()
                    // Records are written atomically, so this is belt-and-
                    // suspenders: only a structurally whole document is
                    // trusted.
                    .filter(|s| s.starts_with('{') && s.trim_end().ends_with('}'))
                    // A failed (panicked) point's placeholder record is
                    // never reused: the resumed sweep retries it.
                    .filter(|s| !s.contains("\"status\": \"failed\""))
            })
            .collect();
        let reused: Vec<bool> = jsons.iter().map(|j| j.is_some()).collect();
        if !resumable {
            // Different grid (or --fresh): clear stale records before
            // stamping the new definition.
            let _ = std::fs::remove_dir_all(dir.join("points"));
        }
        // Stamp the definition up front (best-effort: an unwritable
        // results dir degrades to a non-resumable sweep, not a failure).
        let _ = std::fs::create_dir_all(dir.join("points"));
        let _ = write_atomic(&grid_file, grid_json.as_bytes());
        // Generate traces only for workloads some missing point still needs.
        let workloads = self.effective_workloads();
        let requests = self.requests;
        let mut needed = vec![false; workloads.len()];
        for p in points.iter().filter(|p| !reused[p.id]) {
            needed[p.workload_idx] = true;
        }
        let traces: Vec<Option<Trace>> = pool.run(
            workloads
                .iter()
                .zip(&needed)
                .map(|(axis, &need)| move || need.then(|| axis.trace(requests)))
                .collect(),
        );
        let missing: Vec<&SweepPoint> = points.iter().filter(|p| !reused[p.id]).collect();
        let dir_ref = &dir;
        let results: Vec<(RunMetrics, String)> = pool.run(
            missing
                .iter()
                .map(|point| {
                    let trace = traces[point.workload_idx]
                        .as_ref()
                        .expect("trace generated for missing point");
                    move || {
                        let m = run_point_guarded(point, trace);
                        // Persist the record the moment the point finishes,
                        // so a killed sweep resumes from here (best-effort).
                        let json = m.to_json();
                        let _ =
                            write_atomic(&dir_ref.join(point.file_name()), json.as_bytes());
                        (m, json)
                    }
                })
                .collect(),
        );
        let mut jsons = jsons;
        let mut executed = Vec::with_capacity(missing.len());
        for (point, (m, json)) in missing.into_iter().zip(results) {
            jsons[point.id] = Some(json);
            executed.push((point.id, m));
        }
        ResumedSweep {
            grid_json,
            name: self.name.clone(),
            requests: self.requests,
            pool_threads: pool.threads(),
            wall_seconds: start.elapsed().as_secs_f64(),
            point_jsons: jsons
                .into_iter()
                .map(|j| j.expect("every point reused or executed"))
                .collect(),
            points,
            reused,
            executed,
            dir,
        }
    }

    /// The grid definition as one stable JSON object (embedded in the
    /// manifest and hashed into [`SweepOutcome::grid_hash`]).
    pub fn definition_json(&self) -> String {
        let configs: Vec<String> = self
            .effective_configs()
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        let workloads: Vec<String> = self
            .effective_workloads()
            .iter()
            .map(|w| w.name().to_string())
            .collect();
        let fabrics: Vec<String> = self
            .effective_fabrics()
            .iter()
            .map(|f| f.label().to_string())
            .collect();
        let shapes: Vec<String> = if self.shapes.is_empty() {
            vec!["base".to_string()]
        } else {
            self.shapes.iter().map(|(r, c)| format!("{r}x{c}")).collect()
        };
        let timings: Vec<String> = if self.timings.is_empty() {
            vec!["base".to_string()]
        } else {
            self.timings
                .iter()
                .map(|t| t.preset_name().unwrap_or("custom").to_string())
                .collect()
        };
        let depths: Vec<String> = if self.queue_depths.is_empty() {
            vec!["base".to_string()]
        } else {
            self.queue_depths.iter().map(|d| d.to_string()).collect()
        };
        let policies: Vec<String> = if self.policies.is_empty() {
            vec!["base".to_string()]
        } else {
            self.policies.iter().map(|p| p.label().to_string()).collect()
        };
        let caches: Vec<String> = if self.scout_caches.is_empty() {
            vec!["base".to_string()]
        } else {
            self.scout_caches
                .iter()
                .map(|c| c.label().to_string())
                .collect()
        };
        let faults: Vec<String> = if self.faults.is_empty() {
            vec!["base".to_string()]
        } else {
            self.faults.iter().map(|f| f.label().to_string()).collect()
        };
        let tenants: Vec<String> = if self.tenant_sets.is_empty() {
            vec!["base".to_string()]
        } else {
            self.tenant_sets
                .iter()
                .map(|t| t.label().to_string())
                .collect()
        };
        let resiliences: Vec<String> = if self.resiliences.is_empty() {
            vec!["base".to_string()]
        } else {
            self.resiliences
                .iter()
                .map(|r| r.label().to_string())
                .collect()
        };
        let redundancies: Vec<String> = if self.redundancies.is_empty() {
            vec!["base".to_string()]
        } else {
            self.redundancies.iter().map(|r| r.label()).collect()
        };
        format!(
            "{{\"name\": {}, \"requests\": {}, \"configs\": {}, \
             \"workloads\": {}, \"shapes\": {}, \"timings\": {}, \
             \"queue_depths\": {}, \"policies\": {}, \"scout_caches\": {}, \
             \"faults\": {}, \"tenants\": {}, \"resilience\": {}, \
             \"redundancy\": {}, \"fabrics\": {}}}",
            json_str(&self.name),
            self.requests,
            json_str_list(&configs),
            json_str_list(&workloads),
            json_str_list(&shapes),
            json_str_list(&timings),
            json_str_list(&depths),
            json_str_list(&policies),
            json_str_list(&caches),
            json_str_list(&faults),
            json_str_list(&tenants),
            json_str_list(&resiliences),
            json_str_list(&redundancies),
            json_str_list(&fabrics),
        )
    }
}

/// One expanded grid point: a fully resolved configuration plus the axis
/// coordinates it came from.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Position in the grid's deterministic expansion order (also the
    /// result order and the point-file numbering).
    pub id: usize,
    /// Human-readable coordinates, e.g.
    /// `performance-optimized/hm_0/8x8/z-nand/qd8/Venice`.
    pub label: String,
    /// Index into the grid's workload axis (shared-trace lookup).
    pub workload_idx: usize,
    /// Workload axis value name.
    pub workload: String,
    /// Base configuration preset name.
    pub config_name: &'static str,
    /// Array shape (`rows`, `cols`).
    pub shape: (u16, u16),
    /// NAND-timing axis value name (`"z-nand"`, `"tlc-3d"`, or `"custom"`).
    pub timing_name: String,
    /// Submission-queue depth.
    pub queue_depth: usize,
    /// Dispatch policy under test.
    pub policy: DispatchPolicyKind,
    /// Scout fast-fail cache mode under test.
    pub scout_cache: ScoutCacheKind,
    /// Fault plan under test (`FaultPlan::None` on fault-free grids).
    pub fault_plan: FaultPlan,
    /// Tenant-set axis value label (`"single"` on single-tenant grids).
    pub tenants: String,
    /// Host-resilience policy under test (`ResiliencePolicy::None` on
    /// resilience-free grids).
    pub resilience: ResiliencePolicy,
    /// Redundancy scheme under test (`RedundancyKind::None` on
    /// redundancy-free grids).
    pub redundancy: RedundancyKind,
    /// The fabric under test.
    pub fabric: FabricKind,
    /// The fully resolved configuration this point simulates.
    pub config: SsdConfig,
}

impl SweepPoint {
    /// The point's result file name inside the sweep directory
    /// (`points/p<id>-<sanitized label>.json`).
    pub fn file_name(&self) -> String {
        let slug: String = self
            .label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        format!("points/p{:04}-{}.json", self.id, slug)
    }
}

/// One executed point: its coordinates plus the run's metrics.
#[derive(Clone, Debug)]
pub struct PointRecord {
    /// The grid coordinates and resolved configuration.
    pub point: SweepPoint,
    /// The simulation's metrics.
    pub metrics: RunMetrics,
}

/// The result of running a [`SweepGrid`]: every point's metrics in point-id
/// order, plus everything needed to write a reproducible artifact.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    grid_json: String,
    name: String,
    requests: usize,
    workload_count: usize,
    fabric_count: usize,
    pool_threads: usize,
    wall_seconds: f64,
    records: Vec<PointRecord>,
    /// `records[i].metrics.to_json()`, computed once at construction and
    /// shared by the fingerprints, manifest, and artifact writer.
    point_jsons: Vec<String>,
}

impl SweepOutcome {
    /// The executed points, in point-id order.
    pub fn records(&self) -> &[PointRecord] {
        &self.records
    }

    /// The grid's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Wall-clock seconds the sweep took.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_seconds
    }

    /// FNV-1a hash of the grid definition JSON: identifies *what* was swept.
    pub fn grid_hash(&self) -> String {
        format!("{:016x}", fnv1a(self.grid_json.as_bytes(), FNV_OFFSET))
    }

    /// FNV-1a hash chained over every point's metrics JSON in id order,
    /// from `seed`: identifies *what came out*.
    fn chain_points(&self, seed: u64) -> u64 {
        self.point_jsons
            .iter()
            .fold(seed, |h, json| fnv1a(json.as_bytes(), h))
    }

    /// FNV-1a hash chained over every point's metrics JSON in id order:
    /// identifies *what came out*. Bit-identical across pool sizes and
    /// execution orders; wall-clock time and environment are excluded.
    pub fn metrics_fingerprint(&self) -> String {
        format!("{:016x}", self.chain_points(FNV_OFFSET))
    }

    /// Grid hash and metrics fingerprint folded together (the point chain
    /// seeded with the grid-definition hash): the manifest's single
    /// comparison handle for "same sweep, same results".
    pub fn manifest_fingerprint(&self) -> String {
        let seed = fnv1a(self.grid_json.as_bytes(), FNV_OFFSET);
        format!("{:016x}", self.chain_points(seed))
    }

    /// Total simulator events across all points.
    pub fn events(&self) -> u64 {
        self.records.iter().map(|r| r.metrics.events).sum()
    }

    /// The sweep's throughput summary (compatible with the catalog-sweep
    /// summary line the harness has printed since PR 1).
    pub fn summary(&self) -> SweepSummary {
        SweepSummary {
            workloads: self.workload_count,
            systems: self.fabric_count,
            points: self.records.len(),
            par: self.pool_threads,
            wall_seconds: self.wall_seconds,
            events: self.events(),
        }
    }

    /// Regroups the outcome into `(workload name, metrics per fabric)` rows
    /// for points matching `filter`, preserving point order — the shape the
    /// figure renderers consume.
    ///
    /// A row is one full non-fabric coordinate — (config, workload, shape,
    /// timing, queue depth, policy, scout cache, fault plan, tenant set,
    /// resilience policy, redundancy scheme) — so metrics from different
    /// configurations are never merged into one row: on a grid where
    /// `filter` leaves several configs/shapes/timings/depths/policies/
    /// caches/tenant-sets/resilience/redundancy presets, the same workload
    /// name simply appears once per coordinate. Within a row, metrics are
    /// in fabric-axis order.
    pub fn rows_by_workload(
        &self,
        filter: impl Fn(&SweepPoint) -> bool,
    ) -> Vec<CatalogRow> {
        let coord = |p: &SweepPoint| {
            (
                p.config_name,
                p.workload_idx,
                p.shape,
                p.timing_name.clone(),
                p.queue_depth,
                p.policy,
                p.scout_cache,
                p.fault_plan,
                p.tenants.clone(),
                p.resilience,
                p.redundancy,
            )
        };
        let mut rows: Vec<CatalogRow> = Vec::new();
        let mut last_coord = None;
        for r in self.records.iter().filter(|r| filter(&r.point)) {
            let key = Some(coord(&r.point));
            if last_coord != key {
                rows.push((r.point.workload.clone(), Vec::new()));
                last_coord = key;
            }
            rows.last_mut()
                .expect("row pushed above")
                .1
                .push(r.metrics.clone());
        }
        rows
    }

    /// [`SweepOutcome::rows_by_workload`] over every point — the
    /// single-config catalog-sweep case (one row per workload).
    pub fn catalog_rows(&self) -> Vec<CatalogRow> {
        self.rows_by_workload(|_| true)
    }

    /// The sweep manifest as one JSON document: grid definition, git
    /// revision, environment knobs, pool/wall-clock info, fingerprints,
    /// and the per-point index with headline numbers for quick diffing.
    pub fn manifest_json(&self) -> String {
        let points: Vec<SweepPoint> = self.records.iter().map(|r| r.point.clone()).collect();
        manifest_json_for(
            &self.name,
            &self.grid_json,
            self.requests,
            self.pool_threads,
            self.wall_seconds,
            &points,
            &self.point_jsons,
        )
    }

    /// Writes the sweep artifact under `base_dir`: a
    /// `sweep_<name>/manifest.json` plus one `points/p<id>-<label>.json`
    /// metrics record per point. Returns the sweep directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file writes.
    pub fn write(&self, base_dir: &Path) -> std::io::Result<PathBuf> {
        let dir = base_dir.join(format!("sweep_{}", self.name));
        std::fs::create_dir_all(dir.join("points"))?;
        for (r, json) in self.records.iter().zip(&self.point_jsons) {
            std::fs::write(dir.join(r.point.file_name()), json)?;
        }
        std::fs::write(dir.join("manifest.json"), self.manifest_json())?;
        Ok(dir)
    }
}

/// The result of a resumable sweep ([`SweepGrid::run_resumable`]): every
/// point's stable JSON record in id order — reused from disk or freshly
/// simulated — plus the metrics of the points that actually ran.
#[derive(Clone, Debug)]
pub struct ResumedSweep {
    grid_json: String,
    name: String,
    requests: usize,
    pool_threads: usize,
    wall_seconds: f64,
    points: Vec<SweepPoint>,
    /// One stable-JSON record per point, in point-id order.
    point_jsons: Vec<String>,
    /// Whether each point's record was reused from a prior artifact.
    reused: Vec<bool>,
    /// `(point id, metrics)` of the points executed this run, in id order.
    executed: Vec<(usize, RunMetrics)>,
    /// The sweep artifact directory this run resumed from and persists to.
    dir: PathBuf,
}

impl ResumedSweep {
    /// The grid's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Every grid point, in id order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The per-point stable-JSON records, in id order.
    pub fn point_jsons(&self) -> &[String] {
        &self.point_jsons
    }

    /// How many point records were reused from the prior artifact.
    pub fn reused_count(&self) -> usize {
        self.reused.iter().filter(|&&r| r).count()
    }

    /// Whether point `id`'s record was reused.
    pub fn point_reused(&self, id: usize) -> bool {
        self.reused[id]
    }

    /// The points executed this run, with their metrics, in id order.
    pub fn executed(&self) -> &[(usize, RunMetrics)] {
        &self.executed
    }

    /// Wall-clock seconds this (partial) run took.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_seconds
    }

    /// FNV-1a hash of the grid definition JSON (same as
    /// [`SweepOutcome::grid_hash`] for the same grid).
    pub fn grid_hash(&self) -> String {
        format!("{:016x}", fnv1a(self.grid_json.as_bytes(), FNV_OFFSET))
    }

    /// FNV-1a hash chained over every point record in id order. A resumed
    /// run of a deterministic grid produces the same fingerprint as the
    /// uninterrupted run it is completing.
    pub fn metrics_fingerprint(&self) -> String {
        let h = self
            .point_jsons
            .iter()
            .fold(FNV_OFFSET, |h, j| fnv1a(j.as_bytes(), h));
        format!("{h:016x}")
    }

    /// Total simulator events across all points (parsed back out of the
    /// stable records, so reused points count too).
    pub fn events(&self) -> u64 {
        self.point_jsons
            .iter()
            .map(|j| json_u64_field(j, "events"))
            .sum()
    }

    /// The manifest document (same schema as [`SweepOutcome::manifest_json`]).
    pub fn manifest_json(&self) -> String {
        manifest_json_for(
            &self.name,
            &self.grid_json,
            self.requests,
            self.pool_threads,
            self.wall_seconds,
            &self.points,
            &self.point_jsons,
        )
    }

    /// The sweep artifact directory (`<base_dir>/sweep_<name>`) this run
    /// resumed from; executed point records were already persisted there
    /// as they completed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Completes the on-disk artifact in [`ResumedSweep::dir`]: re-writes
    /// every point record (executed ones were already persisted as they
    /// completed; this repairs any that a full disk dropped) and the full
    /// manifest indexing all points. Returns the sweep directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file writes.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(self.dir.join("points"))?;
        for (p, json) in self.points.iter().zip(&self.point_jsons) {
            let path = self.dir.join(p.file_name());
            if !self.reused[p.id] || !path.is_file() {
                write_atomic(&path, json.as_bytes())?;
            }
        }
        write_atomic(&self.dir.join("manifest.json"), self.manifest_json().as_bytes())?;
        Ok(self.dir.clone())
    }

    /// The sweep's throughput summary (reused points contribute their
    /// recorded events but no fresh wall-clock work).
    pub fn summary(&self) -> crate::SweepSummary {
        let mut systems: Vec<FabricKind> = Vec::new();
        for p in &self.points {
            if !systems.contains(&p.fabric) {
                systems.push(p.fabric);
            }
        }
        crate::SweepSummary {
            workloads: self
                .points
                .iter()
                .map(|p| p.workload_idx)
                .max()
                .map_or(0, |m| m + 1),
            systems: systems.len(),
            points: self.points.len(),
            par: self.pool_threads,
            wall_seconds: self.wall_seconds,
            events: self.events(),
        }
    }
}

/// Runs one point with panic isolation: a panicking simulation becomes a
/// [`RunMetrics::failed`] placeholder (recorded with `"status": "failed"`)
/// instead of killing the worker pool — the rest of the sweep continues,
/// and a resumed sweep retries the point.
fn run_point_guarded(point: &SweepPoint, trace: &Trace) -> RunMetrics {
    catch_unwind(AssertUnwindSafe(|| {
        run_single(&point.config, point.fabric, trace)
    }))
    .unwrap_or_else(|_| {
        eprintln!(
            "warning: sweep point {} panicked; recording a failed placeholder",
            point.label
        );
        RunMetrics::failed(point.fabric, &point.workload, point.config_name)
    })
}

/// The `"status"` of a point record (`"complete"` when the field is absent
/// — records written before run status existed).
fn json_status(json: &str) -> &'static str {
    if json.contains("\"status\": \"failed\"") {
        "failed"
    } else if json.contains("\"status\": \"aborted\"") {
        "aborted"
    } else {
        "complete"
    }
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a 64-bit round over `bytes`, continuing from `seed` so hashes
/// can be chained across records.
fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    bytes.iter().fold(seed, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Writes `bytes` to `path` atomically: a temp file in the same directory
/// is renamed over the target, so readers (and a resumed sweep) never see
/// a torn or truncated record.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Extracts the unsigned integer value of a `"key": <digits>` field from
/// one of the engine's stable-JSON documents (zero when absent — the
/// engine's own records always carry the fields this module asks for).
fn json_u64_field(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    json.find(&needle)
        .map(|at| {
            json[at + needle.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .fold(0u64, |n, c| n * 10 + u64::from(c as u8 - b'0'))
        })
        .unwrap_or(0)
}

/// The manifest document shared by [`SweepOutcome`] and [`ResumedSweep`]:
/// headline per-point numbers are read back out of the stable point JSON,
/// so a reused record and a fresh one index identically.
fn manifest_json_for(
    name: &str,
    grid_json: &str,
    requests: usize,
    pool_threads: usize,
    wall_seconds: f64,
    points: &[SweepPoint],
    point_jsons: &[String],
) -> String {
    let mut index = String::from("[\n");
    for (i, (p, json)) in points.iter().zip(point_jsons).enumerate() {
        index.push_str(&format!(
            "    {{\"id\": {}, \"label\": {}, \"file\": {}, \"status\": {}, \
             \"execution_time_ns\": {}, \"events\": {}}}{}\n",
            p.id,
            json_str(&p.label),
            json_str(&p.file_name()),
            json_str(json_status(json)),
            json_u64_field(json, "execution_time_ns"),
            json_u64_field(json, "events"),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    index.push_str("  ]");
    let grid_hash = format!("{:016x}", fnv1a(grid_json.as_bytes(), FNV_OFFSET));
    let metrics_fp = format!(
        "{:016x}",
        point_jsons
            .iter()
            .fold(FNV_OFFSET, |h, j| fnv1a(j.as_bytes(), h))
    );
    let manifest_fp = format!(
        "{:016x}",
        point_jsons.iter().fold(
            fnv1a(grid_json.as_bytes(), FNV_OFFSET),
            |h, j| fnv1a(j.as_bytes(), h)
        )
    );
    format!(
        "{{\n  \"name\": {},\n  \"engine\": \"venice_bench::sweep\",\n  \
         \"git\": {},\n  \"requests\": {},\n  \"points_total\": {},\n  \
         \"pool_threads\": {},\n  \"wall_seconds\": {},\n  \
         \"env\": {{\"VENICE_REQUESTS\": {}, \"VENICE_PAR\": {}, \
         \"VENICE_RESULTS_DIR\": {}}},\n  \"grid\": {},\n  \
         \"grid_hash\": {},\n  \"metrics_fingerprint\": {},\n  \
         \"manifest_fingerprint\": {},\n  \"points\": {}\n}}\n",
        json_str(name),
        json_str(&git_describe()),
        requests,
        points.len(),
        pool_threads,
        wall_seconds,
        json_env("VENICE_REQUESTS"),
        json_env("VENICE_PAR"),
        json_env("VENICE_RESULTS_DIR"),
        grid_json,
        json_str(&grid_hash),
        json_str(&metrics_fp),
        json_str(&manifest_fp),
        index,
    )
}

/// JSON array of string literals.
fn json_str_list(items: &[String]) -> String {
    let body: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", body.join(", "))
}

/// The raw value of env var `name` as a JSON value (`null` when unset).
fn json_env(name: &str) -> String {
    match std::env::var(name) {
        Ok(v) => json_str(&v),
        Err(_) => "null".to_string(),
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// outside a git checkout (recorded in manifests for provenance; never part
/// of the fingerprints).
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> SweepGrid {
        SweepGrid::new("unit")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .workload(WorkloadAxis::catalog("proj_3").expect("catalog"))
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice])
            .requests(80)
    }

    #[test]
    fn pool_preserves_job_order_and_results() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<_> = (0..37).map(|i| move || i * i).collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        // Thread budget floors at one and is visible.
        assert_eq!(WorkerPool::new(0).threads(), 1);
    }

    #[test]
    fn nested_pool_runs_clamp_inline() {
        let pool = WorkerPool::new(2);
        // Jobs that themselves use a pool: must not deadlock or nest threads.
        let out = pool.run(vec![
            || WorkerPool::new(2).run(vec![|| 1, || 2]),
            || WorkerPool::new(2).run(vec![|| 3, || 4]),
        ]);
        assert_eq!(out, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn grid_expansion_is_deterministic_and_id_stamped() {
        let grid = tiny_grid();
        let a = grid.build_points();
        let b = grid.build_points();
        assert_eq!(a.len(), 4); // 2 workloads × 2 fabrics
        for (i, (pa, pb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(pa.id, i);
            assert_eq!(pa.label, pb.label);
        }
        // Fabrics are the innermost axis.
        assert_eq!(a[0].workload, "hm_0");
        assert_eq!(a[0].fabric, FabricKind::Baseline);
        assert_eq!(a[1].workload, "hm_0");
        assert_eq!(a[1].fabric, FabricKind::Venice);
        assert_eq!(a[2].workload, "proj_3");
    }

    #[test]
    fn axes_expand_multiplicatively() {
        let grid = SweepGrid::new("axes")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .fabrics(&[FabricKind::Venice])
            .shapes(&[(4, 16), (8, 8)])
            .timings(&[NandTiming::z_nand(), NandTiming::tlc_3d()])
            .queue_depths(&[4, 16])
            .requests(50);
        let points = grid.build_points();
        assert_eq!(points.len(), 8); // 1 × 2 shapes × 2 timings × 2 depths
        assert_eq!(points[0].shape, (4, 16));
        assert_eq!(points[0].timing_name, "z-nand");
        assert_eq!(points[0].queue_depth, 4);
        let last = points.last().expect("non-empty");
        assert_eq!(last.shape, (8, 8));
        assert_eq!(last.timing_name, "tlc-3d");
        assert_eq!(last.queue_depth, 16);
        assert_eq!(last.config.hil.queue_depth, 16);
        assert_eq!(last.config.fabric.rows, 8);
    }

    #[test]
    fn policy_axis_expands_and_round_trips_through_the_manifest() {
        let grid = SweepGrid::new("policy-axis")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .policies(&DispatchPolicyKind::ALL)
            .fabrics(&[FabricKind::Venice])
            .requests(50);
        let points = grid.build_points();
        assert_eq!(points.len(), DispatchPolicyKind::ALL.len());
        for (p, kind) in points.iter().zip(DispatchPolicyKind::ALL) {
            assert_eq!(p.policy, kind);
            assert_eq!(p.config.dispatch, kind, "policy must reach the config");
            assert!(p.label.contains(kind.label()), "label {}", p.label);
            // Round-trip: every label the manifest stores resolves back to
            // the same axis value.
            assert_eq!(DispatchPolicyKind::by_label(kind.label()), Some(kind));
        }
        let def = grid.definition_json();
        assert!(
            def.contains(
                "\"policies\": [\"retry-all\", \"conflict-backoff\", \"round-robin-quota\", \
                 \"auto\"]"
            ),
            "definition must carry the policy axis: {def}"
        );
        // An unset axis serializes as the base marker, like the other axes.
        let plain = SweepGrid::new("no-policy")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .requests(50);
        assert!(plain.definition_json().contains("\"policies\": [\"base\"]"));
        assert_eq!(plain.build_points()[0].policy, DispatchPolicyKind::RetryAll);
    }

    #[test]
    fn tenant_axis_expands_and_reaches_the_config() {
        let grid = SweepGrid::new("tenant-axis")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .tenant_sets(&TenantSet::presets())
            .fabrics(&[FabricKind::Venice])
            .requests(50);
        let points = grid.build_points();
        assert_eq!(points.len(), TenantSet::presets().len());
        for (p, set) in points.iter().zip(TenantSet::presets()) {
            assert_eq!(p.tenants, set.label());
            assert_eq!(p.config.tenants, set, "tenant set must reach the config");
            assert!(p.label.contains(set.label()), "label {}", p.label);
            assert_eq!(
                TenantSet::by_label(set.label()),
                Some(set),
                "manifest labels must round-trip"
            );
        }
        let def = grid.definition_json();
        assert!(
            def.contains("\"tenants\": [\"single\", \"pair-fair\", \"victim-boost\", \"trio-weighted\"]"),
            "definition must carry the tenant axis: {def}"
        );
        // An unset axis serializes as the base marker, like the other axes.
        let plain = SweepGrid::new("no-tenants")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .requests(50);
        assert!(plain.definition_json().contains("\"tenants\": [\"base\"]"));
        assert!(plain.build_points()[0].config.tenants.is_single());
    }

    #[test]
    fn resilience_axis_expands_and_reaches_the_config() {
        let grid = SweepGrid::new("resilience-axis")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .resilience_policies(&ResiliencePolicy::ALL)
            .fabrics(&[FabricKind::Venice])
            .requests(50);
        let points = grid.build_points();
        assert_eq!(points.len(), ResiliencePolicy::ALL.len());
        for (p, policy) in points.iter().zip(ResiliencePolicy::ALL) {
            assert_eq!(p.resilience, policy);
            assert_eq!(
                p.config.resilience, policy,
                "resilience policy must reach the config"
            );
            assert!(p.label.contains(policy.label()), "label {}", p.label);
            assert_eq!(
                ResiliencePolicy::by_label(policy.label()),
                Some(policy),
                "manifest labels must round-trip"
            );
        }
        let def = grid.definition_json();
        assert!(
            def.contains(
                "\"resilience\": [\"none\", \"deadline\", \"retry\", \"deadline-retry\", \
                 \"shed\", \"full\"]"
            ),
            "definition must carry the resilience axis: {def}"
        );
        // An unset axis serializes as the base marker, like the other axes.
        let plain = SweepGrid::new("no-resilience")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .requests(50);
        assert!(plain.definition_json().contains("\"resilience\": [\"base\"]"));
        assert_eq!(
            plain.build_points()[0].config.resilience,
            ResiliencePolicy::None
        );
    }

    #[test]
    fn redundancy_axis_expands_and_reaches_the_config() {
        let grid = SweepGrid::new("redundancy-axis")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .redundancy_kinds(&RedundancyKind::ALL)
            .fabrics(&[FabricKind::Venice])
            .requests(50);
        let points = grid.build_points();
        assert_eq!(points.len(), RedundancyKind::ALL.len());
        for (p, kind) in points.iter().zip(RedundancyKind::ALL) {
            assert_eq!(p.redundancy, kind);
            assert_eq!(
                p.config.redundancy, kind,
                "redundancy scheme must reach the config"
            );
            assert!(p.label.contains(&kind.label()), "label {}", p.label);
            assert_eq!(
                RedundancyKind::by_label(&kind.label()),
                Some(kind),
                "manifest labels must round-trip"
            );
        }
        let def = grid.definition_json();
        assert!(
            def.contains("\"redundancy\": [\"none\", \"parity4\"]"),
            "definition must carry the redundancy axis: {def}"
        );
        // An unset axis serializes as the base marker, like the other axes.
        let plain = SweepGrid::new("no-redundancy")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .requests(50);
        assert!(plain.definition_json().contains("\"redundancy\": [\"base\"]"));
        assert_eq!(
            plain.build_points()[0].config.redundancy,
            RedundancyKind::None
        );
    }

    #[test]
    fn outcome_rows_group_by_workload_in_axis_order() {
        let outcome = tiny_grid().run_on(&WorkerPool::new(2));
        let rows = outcome.catalog_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "hm_0");
        assert_eq!(rows[1].0, "proj_3");
        assert_eq!(rows[0].1.len(), 2);
        assert_eq!(rows[0].1[0].system, FabricKind::Baseline);
        assert_eq!(rows[0].1[1].system, FabricKind::Venice);
        let venice_only = outcome.rows_by_workload(|p| p.fabric == FabricKind::Venice);
        assert_eq!(venice_only.len(), 2);
        assert_eq!(venice_only[0].1.len(), 1);
    }

    #[test]
    fn rows_never_merge_across_configs_or_axes() {
        // Two configs × one workload × one fabric: an undiscriminating
        // grouping must yield one row per config, not one merged row.
        let outcome = SweepGrid::new("unit-two-configs")
            .config(SsdConfig::performance_optimized())
            .config(SsdConfig::cost_optimized())
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .fabrics(&[FabricKind::Baseline, FabricKind::Venice])
            .requests(60)
            .run_on(&WorkerPool::new(1));
        let rows = outcome.catalog_rows();
        assert_eq!(rows.len(), 2, "one row per config coordinate");
        assert_eq!(rows[0].0, "hm_0");
        assert_eq!(rows[1].0, "hm_0");
        assert_eq!(rows[0].1.len(), 2, "fabric order within a row");
        assert_eq!(rows[0].1[0].config, "performance-optimized");
        assert_eq!(rows[1].1[0].config, "cost-optimized");
    }

    #[test]
    fn manifest_carries_fingerprints_and_points() {
        let outcome = tiny_grid().run_on(&WorkerPool::new(2));
        let manifest = outcome.manifest_json();
        assert!(manifest.contains("\"name\": \"unit\""));
        assert!(manifest.contains(&format!("\"grid_hash\": \"{}\"", outcome.grid_hash())));
        assert!(manifest
            .contains(&format!("\"metrics_fingerprint\": \"{}\"", outcome.metrics_fingerprint())));
        assert!(manifest.contains("\"points_total\": 4"));
        assert!(manifest.contains("p0000-"));
        let summary = outcome.summary();
        assert_eq!(summary.workloads, 2);
        assert_eq!(summary.systems, 2);
        assert_eq!(summary.events, outcome.events());
    }

    #[test]
    fn sweep_artifact_writes_manifest_and_points() {
        let outcome = SweepGrid::new("unit-write")
            .workload(WorkloadAxis::catalog("hm_0").expect("catalog"))
            .fabrics(&[FabricKind::Ideal])
            .requests(60)
            .run_on(&WorkerPool::new(1));
        let base = std::env::temp_dir().join("venice-sweep-test");
        let _ = std::fs::remove_dir_all(&base);
        let dir = outcome.write(&base).expect("write artifact");
        assert!(dir.join("manifest.json").is_file());
        let point_file = dir.join(outcome.records()[0].point.file_name());
        let json = std::fs::read_to_string(point_file).expect("point record");
        assert!(json.contains("\"workload\": \"hm_0\""));
        let _ = std::fs::remove_dir_all(&base);
    }
}
