//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary in this crate regenerates one table or figure of the Venice
//! paper (see DESIGN.md §4 for the index). They all print a
//! markdown rendering to stdout and write a CSV under `results/`.
//!
//! Knobs (environment variables; invalid values warn on stderr and fall
//! back to the default):
//!
//! * `VENICE_REQUESTS` — requests per workload (default 3000; the paper-vs-
//!   measured records in EXPERIMENTS.md use 4000),
//! * `VENICE_RESULTS_DIR` — where CSVs land (default `./results`),
//! * `VENICE_PAR` — thread budget of the shared worker pool (default:
//!   available cores, read once when the pool is first used). Every
//!   (workload × system) sweep point is one pool job; results are returned
//!   in grid order and are bit-identical for every `VENICE_PAR` value.
//!
//! Catalog sweeps print a one-line throughput summary to stderr (wall-clock
//! seconds plus simulator events/sec, see [`SweepSummary`]); together with
//! the `results/bench_*.json` files written by [`microbench`] this keeps the
//! engine's performance trajectory measurable run over run.
//!
//! All simulation fan-out goes through the [`sweep`] engine's single shared
//! [`sweep::WorkerPool`] — there is exactly one level of parallelism per
//! process, and `VENICE_PAR × systems` thread multiplication cannot happen.

#![warn(missing_docs)]

pub mod figures;
pub mod microbench;
pub mod sweep;

use std::path::PathBuf;

use venice_interconnect::FabricKind;
use venice_ssd::{run_single, RunMetrics, SsdConfig};
use venice_workloads::{catalog, Trace, WorkloadAxis};

use sweep::{SweepGrid, WorkerPool};

/// Parses `name` from the environment, warning on stderr (and falling back
/// to `default`) when the value is set but unparsable.
fn parsed_env<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!(
                    "warning: ignoring invalid {name}={raw:?}; using the default"
                );
                default
            }
        },
    }
}

/// Requests per workload for harness runs (`VENICE_REQUESTS`, default 3000).
pub fn requests() -> usize {
    parsed_env("VENICE_REQUESTS", 3000)
}

/// Directory CSV outputs are written to (`VENICE_RESULTS_DIR`, default
/// `./results`). Warns and falls back when the override names an existing
/// non-directory.
pub fn results_dir() -> PathBuf {
    match std::env::var("VENICE_RESULTS_DIR") {
        Err(_) => PathBuf::from("results"),
        Ok(raw) => {
            let p = PathBuf::from(&raw);
            if p.exists() && !p.is_dir() {
                eprintln!(
                    "warning: VENICE_RESULTS_DIR={raw:?} is not a directory; \
                     using the default ./results"
                );
                PathBuf::from("results")
            } else {
                p
            }
        }
    }
}

/// Catalog-sweep worker threads (`VENICE_PAR`, default: available cores).
/// Zero is invalid and warns like an unparsable value.
pub fn venice_par() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let par: usize = parsed_env("VENICE_PAR", cores);
    if par == 0 {
        eprintln!("warning: ignoring invalid VENICE_PAR=0; using the default");
        cores
    } else {
        par
    }
}

/// The five real systems of the main figures (Ideal added separately).
pub fn real_systems() -> [FabricKind; 5] {
    [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
    ]
}

/// Throughput summary of one sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepSummary {
    /// Workload-axis values replayed.
    pub workloads: usize,
    /// Fabric-axis values per workload.
    pub systems: usize,
    /// Total grid points executed. For a plain catalog sweep this is
    /// `workloads × systems`; multi-axis grids (shapes, timings, queue
    /// depths, several configs) run more.
    pub points: usize,
    /// Worker threads used.
    pub par: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Total simulator events processed across all runs.
    pub events: u64,
}

impl SweepSummary {
    /// Simulator events per wall-clock second (the sweep's throughput).
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds.max(1e-9)
    }
}

impl std::fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep: {} points ({} workloads x {} systems",
            self.points, self.workloads, self.systems,
        )?;
        if self.points != self.workloads * self.systems {
            write!(f, " x axes")?;
        }
        write!(
            f,
            ") in {:.2}s wall, {:.2}M events, {:.2}M events/s (pool={})",
            self.wall_seconds,
            self.events as f64 / 1e6,
            self.events_per_sec() / 1e6,
            self.par,
        )
    }
}

/// One catalog sweep row: a workload name and its per-system metrics.
pub type CatalogRow = (String, Vec<RunMetrics>);

/// The Table 2 catalog grid: every catalog workload × `systems` under
/// `config` — the sweep behind most of the paper's figures.
fn catalog_grid(config: &SsdConfig, systems: &[FabricKind], requests: usize) -> SweepGrid {
    SweepGrid::new("catalog")
        .config(config.clone())
        .workloads(WorkloadAxis::table2())
        .fabrics(systems)
        .requests(requests)
}

/// Runs every Table 2 workload across `systems` under `config`, returning
/// `(workload name, per-system metrics)` in catalog order.
///
/// Executes on the process-wide shared [`sweep::WorkerPool`] (sized by
/// [`venice_par`] at first use) and prints a throughput summary to stderr;
/// use [`sweep_catalog`] for explicit parallelism control or to consume the
/// [`SweepSummary`].
pub fn run_catalog(
    config: &SsdConfig,
    systems: &[FabricKind],
    requests: usize,
) -> Vec<CatalogRow> {
    let outcome = catalog_grid(config, systems, requests).run();
    let summary = outcome.summary();
    eprintln!("[venice-bench] {summary}");
    outcome.catalog_rows()
}

/// [`run_catalog`] with an explicit worker-thread count and no summary
/// print, on a dedicated [`WorkerPool`] of that size.
///
/// Every run is fully independent and deterministic per `(config, system,
/// trace)`, so the returned metrics are identical for every `par`; only
/// wall-clock time changes (this is what the pool-size determinism tests
/// assert).
pub fn sweep_catalog(
    config: &SsdConfig,
    systems: &[FabricKind],
    requests: usize,
    par: usize,
) -> (Vec<CatalogRow>, SweepSummary) {
    let pool = WorkerPool::new(par);
    let outcome = catalog_grid(config, systems, requests).run_on(&pool);
    (outcome.catalog_rows(), outcome.summary())
}

/// Runs one named workload across `systems` on the shared pool.
pub fn run_workload(
    config: &SsdConfig,
    systems: &[FabricKind],
    name: &str,
    requests: usize,
) -> Vec<RunMetrics> {
    let trace = catalog::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .generate(requests);
    run_trace(config, systems, &trace)
}

/// Runs an arbitrary trace across `systems` on the shared pool (one job
/// per system; identical metrics to serial execution).
pub fn run_trace(config: &SsdConfig, systems: &[FabricKind], trace: &Trace) -> Vec<RunMetrics> {
    WorkerPool::global().run(
        systems
            .iter()
            .map(|&system| move || run_single(config, system, trace))
            .collect(),
    )
}

/// The non-fabric coordinates of a sweep point — the key the report
/// tables use to find a point's Baseline sibling. Keyed on the workload
/// axis *index* (not the display name): axis names are user-supplied and
/// need not be unique.
fn point_coord(
    p: &sweep::SweepPoint,
) -> (
    &'static str,
    usize,
    (u16, u16),
    String,
    usize,
    venice_ssd::DispatchPolicyKind,
    venice_ssd::FaultPlan,
) {
    (
        p.config_name,
        p.workload_idx,
        p.shape,
        p.timing_name.clone(),
        p.queue_depth,
        p.policy,
        p.fault_plan,
    )
}

/// Renders `(point, metrics)` rows as the per-point markdown table both
/// sweep reports share, with speedup over the Baseline row at the same
/// grid coordinates when one is present.
fn point_table(rows: &[(&sweep::SweepPoint, &RunMetrics)]) -> venice_ssd::report::Table {
    use venice_ssd::report::{f2, Table};
    let baselines: Vec<(_, &RunMetrics)> = rows
        .iter()
        .filter(|(p, _)| p.fabric == FabricKind::Baseline)
        .map(|&(p, m)| (point_coord(p), m))
        .collect();
    let mut t = Table::new(
        ["point", "exec (ms)", "kIOPS", "conflict %", "vs Baseline"]
            .map(String::from)
            .to_vec(),
    );
    for &(p, m) in rows {
        let vs_baseline = baselines
            .iter()
            .find(|(c, _)| *c == point_coord(p))
            .map_or_else(|| "-".to_string(), |(_, b)| format!("{}x", f2(m.speedup_over(b))));
        t.row(vec![
            p.label.clone(),
            format!("{:.3}", m.execution_time.as_secs_f64() * 1e3),
            format!("{:.1}", m.iops() / 1e3),
            f2(m.conflict_pct()),
            vs_baseline,
        ]);
    }
    t
}

/// Prints a sweep outcome as a per-point markdown table (with speedup over
/// the Baseline point at the same grid coordinates, when the grid has one),
/// writes the artifact under [`results_dir`], and prints the summary and
/// manifest path to stderr.
pub fn report_grid(outcome: &sweep::SweepOutcome) {
    let rows: Vec<(&sweep::SweepPoint, &RunMetrics)> = outcome
        .records()
        .iter()
        .map(|r| (&r.point, &r.metrics))
        .collect();
    println!("# Sweep {}: {} points\n", outcome.name(), outcome.records().len());
    print!("{}", point_table(&rows).to_markdown());
    let summary = outcome.summary();
    eprintln!("[venice-bench] {summary}");
    match outcome.write(&results_dir()) {
        Ok(dir) => eprintln!(
            "[venice-bench] sweep artifact: {} (manifest fingerprint {})",
            dir.join("manifest.json").display(),
            outcome.manifest_fingerprint()
        ),
        Err(e) => eprintln!("warning: cannot write sweep artifact: {e}"),
    }
}

/// Prints a resumable sweep's outcome — the `sweep_catalog` CLI's default
/// output path. Reused points are already on disk, so the table covers the
/// points executed *this* run (with speedup over a same-coordinate Baseline
/// point when one also ran); the manifest written to [`sweep::ResumedSweep::dir`]
/// — the directory the sweep resumed from — always indexes all points.
pub fn report_resumed(outcome: &sweep::ResumedSweep) {
    let rows: Vec<(&sweep::SweepPoint, &RunMetrics)> = outcome
        .executed()
        .iter()
        .map(|(id, m)| (&outcome.points()[*id], m))
        .collect();
    println!(
        "# Sweep {}: {} points ({} reused, {} executed)\n",
        outcome.name(),
        outcome.points().len(),
        outcome.reused_count(),
        outcome.executed().len()
    );
    if rows.is_empty() {
        println!("all point records reused; pass --fresh to re-simulate\n");
    } else {
        print!("{}", point_table(&rows).to_markdown());
    }
    eprintln!("[venice-bench] {}", outcome.summary());
    match outcome.write() {
        Ok(dir) => eprintln!(
            "[venice-bench] sweep artifact: {} (metrics fingerprint {})",
            dir.join("manifest.json").display(),
            outcome.metrics_fingerprint()
        ),
        Err(e) => eprintln!("warning: cannot write sweep artifact: {e}"),
    }
}

/// Speedup of `system` over the baseline entry in the same result row.
pub fn speedup(results: &[RunMetrics], system: FabricKind) -> f64 {
    let base = results
        .iter()
        .find(|m| m.system == FabricKind::Baseline)
        .expect("baseline present");
    results
        .iter()
        .find(|m| m.system == system)
        .expect("system present")
        .speedup_over(base)
}

/// Metric lookup by system.
pub fn metrics(results: &[RunMetrics], system: FabricKind) -> &RunMetrics {
    results
        .iter()
        .find(|m| m.system == system)
        .expect("system present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_one_workload() {
        let cfg = SsdConfig::performance_optimized();
        let results = run_workload(
            &cfg,
            &[FabricKind::Baseline, FabricKind::Venice],
            "hm_0",
            150,
        );
        assert_eq!(results.len(), 2);
        assert!(speedup(&results, FabricKind::Venice) > 0.0);
        assert_eq!(metrics(&results, FabricKind::Venice).system, FabricKind::Venice);
    }

    #[test]
    fn sweep_summary_accounts_events() {
        let cfg = SsdConfig::performance_optimized();
        let (rows, summary) = sweep_catalog(&cfg, &[FabricKind::Ideal], 60, 4);
        assert_eq!(rows.len(), catalog::TABLE2.len());
        assert_eq!(summary.workloads, rows.len());
        assert_eq!(summary.systems, 1);
        let total: u64 = rows.iter().map(|(_, ms)| ms[0].events).sum();
        assert_eq!(summary.events, total);
        assert!(summary.events_per_sec() > 0.0);
        // Catalog order is preserved regardless of which worker ran what.
        for (row, entry) in rows.iter().zip(catalog::TABLE2.iter()) {
            assert_eq!(row.0, entry.name);
        }
    }
}
