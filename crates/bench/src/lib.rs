//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary in this crate regenerates one table or figure of the Venice
//! paper (see DESIGN.md §4 for the index). They all print a
//! markdown rendering to stdout and write a CSV under `results/`.
//!
//! Knobs (environment variables):
//!
//! * `VENICE_REQUESTS` — requests per workload (default 3000; the paper-vs-
//!   measured records in EXPERIMENTS.md use 4000),
//! * `VENICE_RESULTS_DIR` — where CSVs land (default `./results`).

use std::path::PathBuf;

use venice_interconnect::FabricKind;
use venice_ssd::{run_systems, RunMetrics, SsdConfig};
use venice_workloads::{catalog, Trace};

/// Requests per workload for harness runs.
pub fn requests() -> usize {
    std::env::var("VENICE_REQUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000)
}

/// Directory CSV outputs are written to.
pub fn results_dir() -> PathBuf {
    std::env::var("VENICE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// The five real systems of the main figures (Ideal added separately).
pub fn real_systems() -> [FabricKind; 5] {
    [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
    ]
}

/// Runs every Table 2 workload across `systems` under `config`, returning
/// `(workload name, per-system metrics)` in catalog order.
pub fn run_catalog(
    config: &SsdConfig,
    systems: &[FabricKind],
    requests: usize,
) -> Vec<(String, Vec<RunMetrics>)> {
    catalog::TABLE2
        .iter()
        .map(|entry| {
            let trace = catalog::spec(entry).generate(requests);
            (entry.name.to_string(), run_systems(config, systems, &trace))
        })
        .collect()
}

/// Runs one named workload across `systems`.
pub fn run_workload(
    config: &SsdConfig,
    systems: &[FabricKind],
    name: &str,
    requests: usize,
) -> Vec<RunMetrics> {
    let trace = catalog::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .generate(requests);
    run_systems(config, systems, &trace)
}

/// Runs an arbitrary trace across `systems`.
pub fn run_trace(config: &SsdConfig, systems: &[FabricKind], trace: &Trace) -> Vec<RunMetrics> {
    run_systems(config, systems, trace)
}

/// Speedup of `system` over the baseline entry in the same result row.
pub fn speedup(results: &[RunMetrics], system: FabricKind) -> f64 {
    let base = results
        .iter()
        .find(|m| m.system == FabricKind::Baseline)
        .expect("baseline present");
    results
        .iter()
        .find(|m| m.system == system)
        .expect("system present")
        .speedup_over(base)
}

/// Metric lookup by system.
pub fn metrics<'a>(results: &'a [RunMetrics], system: FabricKind) -> &'a RunMetrics {
    results
        .iter()
        .find(|m| m.system == system)
        .expect("system present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_one_workload() {
        let cfg = SsdConfig::performance_optimized();
        let results = run_workload(
            &cfg,
            &[FabricKind::Baseline, FabricKind::Venice],
            "hm_0",
            150,
        );
        assert_eq!(results.len(), 2);
        assert!(speedup(&results, FabricKind::Venice) > 0.0);
        assert_eq!(metrics(&results, FabricKind::Venice).system, FabricKind::Venice);
    }
}
