//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary in this crate regenerates one table or figure of the Venice
//! paper (see DESIGN.md §4 for the index). They all print a
//! markdown rendering to stdout and write a CSV under `results/`.
//!
//! Knobs (environment variables; invalid values warn on stderr and fall
//! back to the default):
//!
//! * `VENICE_REQUESTS` — requests per workload (default 3000; the paper-vs-
//!   measured records in EXPERIMENTS.md use 4000),
//! * `VENICE_RESULTS_DIR` — where CSVs land (default `./results`),
//! * `VENICE_PAR` — worker threads for catalog sweeps (default: available
//!   cores). Each worker replays whole workloads, and each workload still
//!   fans its systems out via [`run_systems`]; results are returned in
//!   catalog order and are bit-identical for every `VENICE_PAR` value.
//!
//! Catalog sweeps print a one-line throughput summary to stderr (wall-clock
//! seconds plus simulator events/sec, see [`SweepSummary`]); together with
//! the `results/bench_*.json` files written by [`microbench`] this keeps the
//! engine's performance trajectory measurable run over run.

pub mod microbench;

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use venice_interconnect::FabricKind;
use venice_ssd::{run_systems, RunMetrics, SsdConfig};
use venice_workloads::{catalog, Trace};

/// Parses `name` from the environment, warning on stderr (and falling back
/// to `default`) when the value is set but unparsable.
fn parsed_env<T: std::str::FromStr>(name: &str, default: T) -> T {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!(
                    "warning: ignoring invalid {name}={raw:?}; using the default"
                );
                default
            }
        },
    }
}

/// Requests per workload for harness runs (`VENICE_REQUESTS`, default 3000).
pub fn requests() -> usize {
    parsed_env("VENICE_REQUESTS", 3000)
}

/// Directory CSV outputs are written to (`VENICE_RESULTS_DIR`, default
/// `./results`). Warns and falls back when the override names an existing
/// non-directory.
pub fn results_dir() -> PathBuf {
    match std::env::var("VENICE_RESULTS_DIR") {
        Err(_) => PathBuf::from("results"),
        Ok(raw) => {
            let p = PathBuf::from(&raw);
            if p.exists() && !p.is_dir() {
                eprintln!(
                    "warning: VENICE_RESULTS_DIR={raw:?} is not a directory; \
                     using the default ./results"
                );
                PathBuf::from("results")
            } else {
                p
            }
        }
    }
}

/// Catalog-sweep worker threads (`VENICE_PAR`, default: available cores).
/// Zero is invalid and warns like an unparsable value.
pub fn venice_par() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let par: usize = parsed_env("VENICE_PAR", cores);
    if par == 0 {
        eprintln!("warning: ignoring invalid VENICE_PAR=0; using the default");
        cores
    } else {
        par
    }
}

/// The five real systems of the main figures (Ideal added separately).
pub fn real_systems() -> [FabricKind; 5] {
    [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
    ]
}

/// Throughput summary of one catalog sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepSummary {
    /// Workloads replayed.
    pub workloads: usize,
    /// Systems per workload.
    pub systems: usize,
    /// Worker threads used.
    pub par: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Total simulator events processed across all runs.
    pub events: u64,
}

impl SweepSummary {
    /// Simulator events per wall-clock second (the sweep's throughput).
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds.max(1e-9)
    }
}

impl std::fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "catalog sweep: {} workloads x {} systems in {:.2}s wall, \
             {:.2}M events, {:.2}M events/s (VENICE_PAR={})",
            self.workloads,
            self.systems,
            self.wall_seconds,
            self.events as f64 / 1e6,
            self.events_per_sec() / 1e6,
            self.par,
        )
    }
}

/// One catalog sweep row: a workload name and its per-system metrics.
pub type CatalogRow = (String, Vec<RunMetrics>);

/// Runs every Table 2 workload across `systems` under `config`, returning
/// `(workload name, per-system metrics)` in catalog order.
///
/// Workloads are fanned out over [`venice_par`] scoped worker threads and a
/// throughput summary is printed to stderr; use [`sweep_catalog`] for
/// explicit parallelism control or to consume the [`SweepSummary`].
pub fn run_catalog(
    config: &SsdConfig,
    systems: &[FabricKind],
    requests: usize,
) -> Vec<CatalogRow> {
    let (rows, summary) = sweep_catalog(config, systems, requests, venice_par());
    eprintln!("[venice-bench] {summary}");
    rows
}

/// [`run_catalog`] with explicit worker-thread count and no summary print.
///
/// Every run is fully independent and deterministic per `(config, system,
/// trace)`, so the returned metrics are identical for every `par`; only
/// wall-clock time changes.
pub fn sweep_catalog(
    config: &SsdConfig,
    systems: &[FabricKind],
    requests: usize,
    par: usize,
) -> (Vec<CatalogRow>, SweepSummary) {
    let entries = &catalog::TABLE2;
    let par = par.clamp(1, entries.len().max(1));
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<CatalogRow>>> =
        (0..entries.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..par {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(entry) = entries.get(i) else { break };
                let trace = catalog::spec(entry).generate(requests);
                let row = (entry.name.to_string(), run_systems(config, systems, &trace));
                *slots[i].lock().expect("result slot poisoned") = Some(row);
            });
        }
    });
    let rows: Vec<CatalogRow> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every catalog entry computed")
        })
        .collect();
    let events: u64 = rows
        .iter()
        .flat_map(|(_, ms)| ms.iter())
        .map(|m| m.events)
        .sum();
    let summary = SweepSummary {
        workloads: rows.len(),
        systems: systems.len(),
        par,
        wall_seconds: start.elapsed().as_secs_f64(),
        events,
    };
    (rows, summary)
}

/// Runs one named workload across `systems`.
pub fn run_workload(
    config: &SsdConfig,
    systems: &[FabricKind],
    name: &str,
    requests: usize,
) -> Vec<RunMetrics> {
    let trace = catalog::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .generate(requests);
    run_systems(config, systems, &trace)
}

/// Runs an arbitrary trace across `systems`.
pub fn run_trace(config: &SsdConfig, systems: &[FabricKind], trace: &Trace) -> Vec<RunMetrics> {
    run_systems(config, systems, trace)
}

/// Speedup of `system` over the baseline entry in the same result row.
pub fn speedup(results: &[RunMetrics], system: FabricKind) -> f64 {
    let base = results
        .iter()
        .find(|m| m.system == FabricKind::Baseline)
        .expect("baseline present");
    results
        .iter()
        .find(|m| m.system == system)
        .expect("system present")
        .speedup_over(base)
}

/// Metric lookup by system.
pub fn metrics(results: &[RunMetrics], system: FabricKind) -> &RunMetrics {
    results
        .iter()
        .find(|m| m.system == system)
        .expect("system present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_one_workload() {
        let cfg = SsdConfig::performance_optimized();
        let results = run_workload(
            &cfg,
            &[FabricKind::Baseline, FabricKind::Venice],
            "hm_0",
            150,
        );
        assert_eq!(results.len(), 2);
        assert!(speedup(&results, FabricKind::Venice) > 0.0);
        assert_eq!(metrics(&results, FabricKind::Venice).system, FabricKind::Venice);
    }

    #[test]
    fn sweep_summary_accounts_events() {
        let cfg = SsdConfig::performance_optimized();
        let (rows, summary) = sweep_catalog(&cfg, &[FabricKind::Ideal], 60, 4);
        assert_eq!(rows.len(), catalog::TABLE2.len());
        assert_eq!(summary.workloads, rows.len());
        assert_eq!(summary.systems, 1);
        let total: u64 = rows.iter().map(|(_, ms)| ms[0].events).sum();
        assert_eq!(summary.events, total);
        assert!(summary.events_per_sec() > 0.0);
        // Catalog order is preserved regardless of which worker ran what.
        for (row, entry) in rows.iter().zip(catalog::TABLE2.iter()) {
            assert_eq!(row.0, entry.name);
        }
    }
}
