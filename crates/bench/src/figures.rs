//! The paper's tables and figures as library functions over the sweep
//! engine.
//!
//! Each artifact is split into a *runner* (`fig09()`, `table2()`, ...) that
//! the thin `src/bin/` wrappers call, and, where simulations are involved, a
//! *renderer* (`render_fig09(...)`) that formats precomputed rows. The split
//! lets [`repro_all`] execute one master catalog sweep on the shared worker
//! pool and render every dependent figure from it without re-simulating,
//! while standalone binaries still run exactly the grid the paper's figure
//! needs. Renderers are pure over their inputs, so a figure rendered from
//! the master sweep is byte-identical to one rendered from its standalone
//! grid.

use venice_interconnect::{table4 as table4_rows, AreaModel, FabricKind, LinkPower};
use venice_sim::stats::{arithmetic_mean, geometric_mean};
use venice_ssd::report::{f2, f3, Table};
use venice_ssd::{all_systems, RunMetrics, SsdConfig};
use venice_workloads::{catalog, mix, WorkloadAxis};

use crate::sweep::SweepGrid;
use crate::{metrics, requests, results_dir, run_catalog, run_trace, speedup, CatalogRow};

/// Table 1: the evaluated SSD configurations and Venice design parameters.
pub fn table1() {
    let mut t = Table::new(
        ["parameter", "performance-optimized", "cost-optimized"]
            .map(String::from)
            .to_vec(),
    );
    let p = SsdConfig::performance_optimized();
    let c = SsdConfig::cost_optimized();
    let nand = |cfg: &SsdConfig| {
        format!(
            "{} channels x {} chips, {} die/chip, {} planes/die, {} B page",
            cfg.fabric.rows,
            cfg.fabric.cols,
            cfg.array.chip.dies,
            cfg.array.chip.planes_per_die,
            cfg.array.chip.page_size
        )
    };
    let rows: Vec<(&str, String, String)> = vec![
        ("NAND config", nand(&p), nand(&c)),
        ("Read (tR)", p.timing.t_r.to_string(), c.timing.t_r.to_string()),
        (
            "Program (tPROG)",
            p.timing.t_prog.to_string(),
            c.timing.t_prog.to_string(),
        ),
        (
            "Erase (tBERS)",
            p.timing.t_bers.to_string(),
            c.timing.t_bers.to_string(),
        ),
        (
            "Channel I/O rate",
            format!("{:.1} GB/s", p.fabric.bus_bytes_per_ns),
            format!("{:.1} GB/s", c.fabric.bus_bytes_per_ns),
        ),
        (
            "Venice topology",
            format!("{}x{} 2D mesh, 8-bit 1 GHz links", p.fabric.rows, p.fabric.cols),
            format!("{}x{} 2D mesh, 8-bit 1 GHz links", c.fabric.rows, c.fabric.cols),
        ),
        (
            "Routing / switching",
            "non-minimal fully-adaptive / circuit switching".into(),
            "non-minimal fully-adaptive / circuit switching".into(),
        ),
    ];
    for (name, a, b) in rows {
        t.row(vec![name.to_string(), a, b]);
    }
    println!("# Table 1: evaluated configurations\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("table1.csv")).expect("write csv");
}

/// Table 2: published trace statistics next to the statistics of the
/// synthetic traces we generate, verifying the calibration.
pub fn table2() {
    let mut t = Table::new(
        [
            "trace",
            "suite",
            "read% (paper)",
            "read% (ours)",
            "avg KB (paper)",
            "avg KB (ours)",
            "interarrival us (paper)",
            "interarrival us (ours)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for e in &catalog::TABLE2 {
        let stats = catalog::spec(e).generate(3000).stats();
        t.row(vec![
            e.name.into(),
            e.suite.into(),
            f2(e.read_pct),
            f2(stats.read_pct),
            f2(e.avg_request_kb),
            f2(stats.avg_request_kb),
            f2(e.avg_interarrival_us),
            f2(stats.avg_interarrival_us),
        ]);
    }
    println!("# Table 2: trace characteristics, paper vs generated\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("table2.csv")).expect("write csv");
}

/// Table 3: the mixed workloads — constituents, description, and published
/// vs generated merged inter-arrival time.
pub fn table3() {
    let mut t = Table::new(
        [
            "mix",
            "constituents",
            "description",
            "interarrival us (paper)",
            "interarrival us (ours)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for m in &mix::TABLE3 {
        let stats = mix::generate(m, 1000).stats();
        t.row(vec![
            m.name.into(),
            m.constituents.join(" + "),
            m.description.into(),
            f2(m.avg_interarrival_us),
            f2(stats.avg_interarrival_us),
        ]);
    }
    println!("# Table 3: mixed workloads, paper vs generated\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("table3.csv")).expect("write csv");
}

/// Table 4: power and area overheads of Venice's router and links, plus the
/// §6.6 headline numbers.
pub fn table4() {
    let power = LinkPower::paper();
    let area = AreaModel::paper();
    let mut t = Table::new(
        ["component", "# of instances", "avg power (mW, 4KB transfer)", "area"]
            .map(String::from)
            .to_vec(),
    );
    for row in table4_rows(&power, &area) {
        t.row(vec![
            row.component.into(),
            row.instances.into(),
            format!("{:.3}", row.avg_power_mw),
            row.area,
        ]);
    }
    println!("# Table 4: power and area overheads of Venice\n");
    print!("{}", t.to_markdown());
    println!();
    println!(
        "Router PCB footprint: {:.1} mm^2 = {:.0}% of a {:.0} mm^2 flash chip",
        area.router_pcb_mm2(),
        area.router_overhead_fraction() * 100.0,
        area.flash_chip_mm2,
    );
    println!(
        "Link power vs shared bus: {} mW vs {} mW ({:.0}% lower)",
        power.link_mw,
        power.bus_mw,
        (1.0 - power.link_mw / power.bus_mw) * 100.0,
    );
    println!(
        "Total link area for the 8x8 mesh (112 links): {:.0}% lower than 8 shared channels",
        area.link_area_reduction(8, 8) * 100.0,
    );
    t.write_csv(results_dir().join("table4.csv")).expect("write csv");
}

/// Renders Figure 4 (prior approaches vs the ideal SSD) from catalog rows
/// that include at least Baseline, pSSD, pnSSD, NoSSD, and Ideal.
pub fn render_fig04(rows: &[CatalogRow]) {
    let order = [
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Ideal,
    ];
    let mut t = Table::new(
        ["workload", "pSSD", "pnSSD", "NoSSD", "Path-conflict-free"]
            .map(String::from)
            .to_vec(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    for (name, results) in rows {
        let s: Vec<f64> = order.iter().map(|&k| speedup(results, k)).collect();
        for (c, v) in cols.iter_mut().zip(&s) {
            c.push(*v);
        }
        t.row(vec![name.clone(), f2(s[0]), f2(s[1]), f2(s[2]), f2(s[3])]);
    }
    t.row(
        std::iter::once("GMEAN".to_string())
            .chain(cols.iter().map(|c| f2(geometric_mean(c.iter().copied()))))
            .collect(),
    );
    println!("# Figure 4: prior approaches vs the ideal SSD (speedup over Baseline)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("fig04.csv")).expect("write csv");
}

/// Figure 4, standalone: runs its own catalog grid (the motivation study's
/// five systems) and renders it.
pub fn fig04() {
    let systems = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Ideal,
    ];
    let rows = run_catalog(&SsdConfig::performance_optimized(), &systems, requests());
    render_fig04(&rows);
}

/// Renders one configuration's Figure 9 panel (speedup over Baseline) from
/// all-six-system catalog rows. `tag` is the output-file suffix
/// (`a-performance-optimized` / `b-cost-optimized`).
pub fn render_fig09(tag: &str, rows: &[CatalogRow]) {
    let mut t = Table::new(
        ["workload", "pSSD", "pnSSD", "NoSSD", "Venice", "Path-conflict-free"]
            .map(String::from)
            .to_vec(),
    );
    let order = [
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
        FabricKind::Ideal,
    ];
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    for (name, results) in rows {
        let s: Vec<f64> = order.iter().map(|&k| speedup(results, k)).collect();
        for (c, v) in cols.iter_mut().zip(&s) {
            c.push(*v);
        }
        t.row(
            std::iter::once(name.clone())
                .chain(s.iter().map(|&v| f2(v)))
                .collect(),
        );
    }
    t.row(
        std::iter::once("GMEAN".to_string())
            .chain(cols.iter().map(|c| f2(geometric_mean(c.iter().copied()))))
            .collect(),
    );
    println!("\n# Figure 9{tag}: speedup over Baseline\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join(format!("fig09{tag}.csv")))
        .expect("write csv");
}

/// Figure 9, standalone: both Table 1 configurations across all six systems.
pub fn fig09() {
    for (tag, cfg) in [
        ("a-performance-optimized", SsdConfig::performance_optimized()),
        ("b-cost-optimized", SsdConfig::cost_optimized()),
    ] {
        let rows = run_catalog(&cfg, &all_systems(), requests());
        render_fig09(tag, &rows);
    }
}

/// Renders one configuration's Figure 10 panel (IOPS normalized to the
/// ideal SSD) from all-six-system catalog rows.
pub fn render_fig10(tag: &str, rows: &[CatalogRow]) {
    let order = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
    ];
    let mut t = Table::new(
        ["workload", "Baseline", "pSSD", "pnSSD", "NoSSD", "Venice"]
            .map(String::from)
            .to_vec(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    for (name, results) in rows {
        let ideal = metrics(results, FabricKind::Ideal).iops();
        let s: Vec<f64> = order
            .iter()
            .map(|&k| metrics(results, k).iops() / ideal)
            .collect();
        for (c, v) in cols.iter_mut().zip(&s) {
            c.push(*v);
        }
        t.row(
            std::iter::once(name.clone())
                .chain(s.iter().map(|&v| f3(v)))
                .collect(),
        );
    }
    t.row(
        std::iter::once("AVG".to_string())
            .chain(cols.iter().map(|c| f3(arithmetic_mean(c.iter().copied()))))
            .collect(),
    );
    println!("\n# Figure 10{tag}: throughput normalized to the ideal SSD\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join(format!("fig10{tag}.csv")))
        .expect("write csv");
}

/// Figure 10, standalone: both Table 1 configurations across all six
/// systems.
pub fn fig10() {
    for (tag, cfg) in [
        ("a-performance-optimized", SsdConfig::performance_optimized()),
        ("b-cost-optimized", SsdConfig::cost_optimized()),
    ] {
        let rows = run_catalog(&cfg, &all_systems(), requests());
        render_fig10(tag, &rows);
    }
}

/// Renders one workload's Figure 11 tail-latency CDF from all-six-system
/// results (paper order: Baseline, pSSD, pnSSD, NoSSD, Venice, Ideal).
pub fn render_fig11(name: &str, results: &[RunMetrics]) {
    let mut t = Table::new(
        ["quantile", "Baseline", "pSSD", "pnSSD", "NoSSD", "Venice", "Ideal"]
            .map(String::from)
            .to_vec(),
    );
    let points = 21;
    let cdfs: Vec<Vec<(venice_sim::SimDuration, f64)>> = results
        .iter()
        .map(|m| m.latencies.clone().tail_cdf(0.99, points))
        .collect();
    for i in 0..points {
        let q = cdfs[0][i].1;
        t.row(
            std::iter::once(format!("{q:.4}"))
                .chain(cdfs.iter().map(|c| f2(c[i].0.as_micros_f64())))
                .collect(),
        );
    }
    println!("\n# Figure 11: {name} tail latency CDF (latencies in µs at quantile)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join(format!("fig11-{name}.csv")))
        .expect("write csv");
    // Headline number: p99 reduction of Venice vs Baseline.
    let p99 = |idx: usize| cdfs[idx][0].0.as_micros_f64();
    println!(
        "\nVenice p99 vs Baseline p99: {:.1} µs vs {:.1} µs ({:.0}% lower)\n",
        p99(4),
        p99(0),
        (1.0 - p99(4) / p99(0)) * 100.0
    );
}

/// Figure 11, standalone: src1_0 and hm_0 across all six systems.
pub fn fig11() {
    let cfg = SsdConfig::performance_optimized();
    for name in ["src1_0", "hm_0"] {
        let results = crate::run_workload(&cfg, &all_systems(), name, requests());
        render_fig11(name, &results);
    }
}

/// Renders Figure 12 (mixed-workload speedups) from per-mix all-six-system
/// rows in Table 3 order.
pub fn render_fig12(rows: &[CatalogRow]) {
    let order = [
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
        FabricKind::Ideal,
    ];
    let mut t = Table::new(
        ["mix", "pSSD", "pnSSD", "NoSSD", "Venice", "Path-conflict-free"]
            .map(String::from)
            .to_vec(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    for (name, results) in rows {
        let s: Vec<f64> = order.iter().map(|&k| speedup(results, k)).collect();
        for (c, v) in cols.iter_mut().zip(&s) {
            c.push(*v);
        }
        t.row(
            std::iter::once(name.clone())
                .chain(s.iter().map(|&v| f2(v)))
                .collect(),
        );
    }
    t.row(
        std::iter::once("GMEAN".to_string())
            .chain(cols.iter().map(|c| f2(geometric_mean(c.iter().copied()))))
            .collect(),
    );
    println!("# Figure 12: mixed workloads (speedup over Baseline)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("fig12.csv")).expect("write csv");
}

/// Figure 12, standalone: the six Table 3 mixes as a sweep grid (each mix
/// splits the request budget across its constituent streams).
pub fn fig12() {
    let outcome = SweepGrid::new("fig12")
        .config(SsdConfig::performance_optimized())
        .workloads(WorkloadAxis::table3())
        .fabrics(&all_systems())
        .requests(requests())
        .run();
    render_fig12(&outcome.catalog_rows());
}

/// Renders Figure 13 (% of requests experiencing path conflicts) from
/// all-six-system catalog rows.
pub fn render_fig13(rows: &[CatalogRow]) {
    let order = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
    ];
    let mut t = Table::new(
        ["workload", "Baseline", "pSSD", "pnSSD", "NoSSD", "Venice"]
            .map(String::from)
            .to_vec(),
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
    for (name, results) in rows {
        let s: Vec<f64> = order
            .iter()
            .map(|&k| metrics(results, k).conflict_pct())
            .collect();
        for (c, v) in cols.iter_mut().zip(&s) {
            c.push(*v);
        }
        t.row(
            std::iter::once(name.clone())
                .chain(s.iter().map(|&v| f2(v)))
                .collect(),
        );
    }
    t.row(
        std::iter::once("AVG".to_string())
            .chain(cols.iter().map(|c| f2(arithmetic_mean(c.iter().copied()))))
            .collect(),
    );
    println!("# Figure 13: % of I/O requests experiencing path conflicts\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("fig13.csv")).expect("write csv");
}

/// Figure 13, standalone: performance-optimized catalog across all six
/// systems.
pub fn fig13() {
    let rows = run_catalog(&SsdConfig::performance_optimized(), &all_systems(), requests());
    render_fig13(&rows);
}

/// Renders Figure 14 (power and energy normalized to Baseline) from catalog
/// rows that include the five real systems.
pub fn render_fig14(rows: &[CatalogRow]) {
    let order = [
        FabricKind::Pssd,
        FabricKind::PnSsd,
        FabricKind::NoSsd,
        FabricKind::Venice,
    ];
    for (tag, normalized_power) in [
        ("a-power", true),   // normalized average power
        ("b-energy", false), // normalized energy
    ] {
        let mut t = Table::new(
            ["workload", "pSSD", "pnSSD", "NoSSD", "Venice"]
                .map(String::from)
                .to_vec(),
        );
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); order.len()];
        for (name, results) in rows {
            let base = metrics(results, FabricKind::Baseline);
            let s: Vec<f64> = order
                .iter()
                .map(|&k| {
                    let m = metrics(results, k);
                    if normalized_power {
                        m.avg_power_mw / base.avg_power_mw
                    } else {
                        m.energy_mj / base.energy_mj
                    }
                })
                .collect();
            for (c, v) in cols.iter_mut().zip(&s) {
                c.push(*v);
            }
            t.row(
                std::iter::once(name.clone())
                    .chain(s.iter().map(|&v| f3(v)))
                    .collect(),
            );
        }
        t.row(
            std::iter::once("AVG".to_string())
                .chain(cols.iter().map(|c| f3(arithmetic_mean(c.iter().copied()))))
                .collect(),
        );
        let title = if normalized_power { "power" } else { "energy" };
        println!("\n# Figure 14{tag}: normalized {title} (vs Baseline)\n");
        print!("{}", t.to_markdown());
        t.write_csv(results_dir().join(format!("fig14{tag}.csv")))
            .expect("write csv");
    }
}

/// Figure 14, standalone: the five real systems on the
/// performance-optimized catalog.
pub fn fig14() {
    let rows = run_catalog(
        &SsdConfig::performance_optimized(),
        &crate::real_systems(),
        requests(),
    );
    render_fig14(&rows);
}

/// Renders Figure 15 (controller-count sensitivity) from per-shape catalog
/// rows.
pub fn render_fig15(shape_rows: &[((u16, u16), Vec<CatalogRow>)]) {
    let mut t = Table::new(
        ["shape", "pSSD", "NoSSD", "Venice", "Path-conflict-free"]
            .map(String::from)
            .to_vec(),
    );
    for ((rows_dim, cols_dim), per_workload) in shape_rows {
        let gmean = |k: FabricKind| {
            geometric_mean(per_workload.iter().map(|(_, r)| speedup(r, k)))
        };
        t.row(vec![
            format!("{rows_dim}x{cols_dim}"),
            f2(gmean(FabricKind::Pssd)),
            f2(gmean(FabricKind::NoSsd)),
            f2(gmean(FabricKind::Venice)),
            f2(gmean(FabricKind::Ideal)),
        ]);
    }
    println!("# Figure 15: controller-count sensitivity (GMEAN speedup over Baseline)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("fig15.csv")).expect("write csv");
}

/// Figure 15, standalone: one grid with a 4×16 / 8×8 / 16×4 shape axis
/// (pnSSD omitted, as in the paper, because it requires an N×N array).
pub fn fig15() {
    let shapes = [(4u16, 16u16), (8, 8), (16, 4)];
    let systems = [
        FabricKind::Baseline,
        FabricKind::Pssd,
        FabricKind::NoSsd,
        FabricKind::Venice,
        FabricKind::Ideal,
    ];
    let outcome = SweepGrid::new("fig15")
        .config(SsdConfig::performance_optimized())
        .workloads(WorkloadAxis::table2())
        .shapes(&shapes)
        .fabrics(&systems)
        .requests(requests())
        .run();
    let shape_rows: Vec<((u16, u16), Vec<CatalogRow>)> = shapes
        .iter()
        .map(|&shape| (shape, outcome.rows_by_workload(|p| p.shape == shape)))
        .collect();
    render_fig15(&shape_rows);
}

/// The routing-adaptivity ablation: full Venice vs minimal-only Venice vs
/// NoSSD's deterministic XY, on a read-intensive workload subset.
pub fn ablate_routing() {
    let names = ["proj_3", "src2_1", "YCSB_B", "ssd-10", "hm_0"];
    let mut t = Table::new(
        ["workload", "NoSSD (XY)", "Venice minimal-only", "Venice (full)"]
            .map(String::from)
            .to_vec(),
    );
    for name in names {
        let trace = catalog::by_name(name).expect("catalog").generate(requests());
        let cfg = SsdConfig::performance_optimized();
        let systems = [FabricKind::Baseline, FabricKind::NoSsd, FabricKind::Venice];
        let full = run_trace(&cfg, &systems, &trace);
        let mut min_cfg = SsdConfig::performance_optimized();
        min_cfg.fabric.venice_minimal_only = true;
        let minimal = run_trace(&min_cfg, &systems, &trace);
        t.row(vec![
            name.into(),
            f2(speedup(&full, FabricKind::NoSsd)),
            f2(speedup(&minimal, FabricKind::Venice)),
            f2(speedup(&full, FabricKind::Venice)),
        ]);
    }
    println!("# Ablation: routing adaptivity (speedup over Baseline)\n");
    print!("{}", t.to_markdown());
    t.write_csv(results_dir().join("ablate_routing.csv"))
        .expect("write csv");
}

/// Reproduces every table and figure in one process, entirely through the
/// shared-pool sweep engine.
///
/// One master grid — both Table 1 configurations × the whole Table 2
/// catalog × all six systems — is executed first and written as a
/// reproducible artifact (`results/sweep_repro_all/manifest.json` plus
/// per-point metrics JSON); the catalog figures are then rendered from
/// that single outcome, so no catalog point simulates twice. Figure 15's
/// shape axis, Figure 12's mixes, and the routing ablation run as their
/// own grids on the same pool.
pub fn repro_all() {
    let master = SweepGrid::new("repro_all")
        .config(SsdConfig::performance_optimized())
        .config(SsdConfig::cost_optimized())
        .workloads(WorkloadAxis::table2())
        .fabrics(&all_systems())
        .requests(requests());
    eprintln!("==> master catalog sweep (2 configs x 19 workloads x 6 systems)");
    let outcome = master.run();
    let summary = outcome.summary();
    eprintln!("[venice-bench] {summary}");
    let dir = outcome.write(&results_dir()).expect("write sweep artifact");
    eprintln!(
        "[venice-bench] sweep artifact: {} (manifest fingerprint {})",
        dir.join("manifest.json").display(),
        outcome.manifest_fingerprint()
    );

    let perf_rows = outcome.rows_by_workload(|p| p.config_name == "performance-optimized");
    let cost_rows = outcome.rows_by_workload(|p| p.config_name == "cost-optimized");
    let workload_row = |name: &str| -> &Vec<RunMetrics> {
        &perf_rows
            .iter()
            .find(|(n, _)| n == name)
            .expect("catalog workload in master sweep")
            .1
    };

    eprintln!("==> tables");
    table1();
    table2();
    table3();
    table4();
    eprintln!("==> catalog figures (rendered from the master sweep)");
    render_fig04(&perf_rows);
    render_fig09("a-performance-optimized", &perf_rows);
    render_fig09("b-cost-optimized", &cost_rows);
    render_fig10("a-performance-optimized", &perf_rows);
    render_fig10("b-cost-optimized", &cost_rows);
    render_fig11("src1_0", workload_row("src1_0"));
    render_fig11("hm_0", workload_row("hm_0"));
    render_fig13(&perf_rows);
    render_fig14(&perf_rows);
    eprintln!("==> dedicated grids (mixes, shape axis, ablation)");
    fig12();
    fig15();
    ablate_routing();
}
